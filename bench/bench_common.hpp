/**
 * @file
 * Shared helpers for the reproduction benchmarks.
 *
 * Every bench binary (one per paper table/figure) prints its
 * reproduction table to stdout first — paper value next to measured
 * value so the shape can be compared at a glance — and then runs its
 * google-benchmark microbenchmarks.
 */

#ifndef STELLAR_BENCH_COMMON_HPP
#define STELLAR_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace stellar::bench
{

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print one row of right-padded cells. */
inline void
row(const std::vector<std::string> &cells, std::size_t width = 16)
{
    std::string line;
    for (const auto &cell : cells)
        line += padRight(cell, width) + " ";
    std::printf("%s\n", line.c_str());
}

/** Print a horizontal rule sized for n cells. */
inline void
rule(std::size_t cells, std::size_t width = 16)
{
    std::printf("%s\n", std::string(cells * (width + 1), '-').c_str());
}

/** Standard main: print the reproduction report, then run benchmarks. */
#define STELLAR_BENCH_MAIN(report_fn)                                     \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        report_fn();                                                       \
        ::benchmark::Initialize(&argc, argv);                              \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        return 0;                                                          \
    }

} // namespace stellar::bench

#endif // STELLAR_BENCH_COMMON_HPP
