/**
 * @file
 * Shared helpers for the reproduction benchmarks.
 *
 * Every bench binary (one per paper table/figure) prints its
 * reproduction table to stdout first — paper value next to measured
 * value so the shape can be compared at a glance — and then runs its
 * google-benchmark microbenchmarks.
 */

#ifndef STELLAR_BENCH_COMMON_HPP
#define STELLAR_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/strings.hpp"

namespace stellar::bench
{

/**
 * Worker threads for the reproduction sweeps (sim::runMany). Set by
 * `--threads N` (default 1, serial); results are byte-identical at any
 * value, so threads only change wall-clock time.
 */
inline std::size_t &
threadsRef()
{
    static std::size_t threads = 1;
    return threads;
}

inline std::size_t
threads()
{
    return threadsRef();
}

/**
 * Consume `--threads N` / `--threads=N` from argv (before
 * benchmark::Initialize sees and rejects it). Used by
 * STELLAR_BENCH_MAIN.
 */
inline void
parseThreads(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; i++) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
            threadsRef() = std::size_t(std::atoi(argv[++i]));
            continue;
        }
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threadsRef() = std::size_t(std::atoi(argv[i] + 10));
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print one row of right-padded cells. */
inline void
row(const std::vector<std::string> &cells, std::size_t width = 16)
{
    std::string line;
    for (const auto &cell : cells)
        line += padRight(cell, width) + " ";
    std::printf("%s\n", line.c_str());
}

/** Print a horizontal rule sized for n cells. */
inline void
rule(std::size_t cells, std::size_t width = 16)
{
    std::printf("%s\n", std::string(cells * (width + 1), '-').c_str());
}

/**
 * Standard main: parse `--threads`, print the reproduction report, then
 * run benchmarks (which receive the remaining argv).
 */
#define STELLAR_BENCH_MAIN(report_fn)                                     \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        ::stellar::bench::parseThreads(&argc, argv);                       \
        report_fn();                                                       \
        ::benchmark::Initialize(&argc, argv);                              \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        return 0;                                                          \
    }

} // namespace stellar::bench

#endif // STELLAR_BENCH_COMMON_HPP
