/**
 * @file
 * Shared helpers for the reproduction benchmarks.
 *
 * Every bench binary (one per paper table/figure) prints its
 * reproduction table to stdout first — paper value next to measured
 * value so the shape can be compared at a glance — and then runs its
 * google-benchmark microbenchmarks.
 */

#ifndef STELLAR_BENCH_COMMON_HPP
#define STELLAR_BENCH_COMMON_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/strings.hpp"
#include "workloads/cache.hpp"

namespace stellar::bench
{

/**
 * Worker threads for the reproduction sweeps (sim::runMany). Set by
 * `--threads N` (default 1, serial); results are byte-identical at any
 * value, so threads only change wall-clock time.
 */
inline std::size_t &
threadsRef()
{
    static std::size_t threads = 1;
    return threads;
}

inline std::size_t
threads()
{
    return threadsRef();
}

/** Set by `--cache-stats`: print workload-cache counters at exit. */
inline bool &
cacheStatsRef()
{
    static bool requested = false;
    return requested;
}

/**
 * Consume the sweep flags shared by every bench binary (before
 * benchmark::Initialize sees and rejects them). Used by
 * STELLAR_BENCH_MAIN:
 *  - `--threads N` / `--threads=N`: sim::runMany workers;
 *  - `--no-cache`: disable the workload cache (every sweep point
 *    synthesizes privately; output must stay byte-identical);
 *  - `--cache-stats`: print cache counters to *stderr* after the
 *    report (stderr, because hit/miss splits depend on thread timing
 *    and stdout is held byte-identical across all configurations).
 */
inline void
parseSweepFlags(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; i++) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
            threadsRef() = std::size_t(std::atoi(argv[++i]));
            continue;
        }
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threadsRef() = std::size_t(std::atoi(argv[i] + 10));
            continue;
        }
        if (std::strcmp(argv[i], "--no-cache") == 0) {
            workloads::Cache::global().setEnabled(false);
            continue;
        }
        if (std::strcmp(argv[i], "--cache-stats") == 0) {
            cacheStatsRef() = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    *argc = out;
}

/** Backwards-compatible alias for parseSweepFlags. */
inline void
parseThreads(int *argc, char **argv)
{
    parseSweepFlags(argc, argv);
}

/** Print cache counters to stderr when `--cache-stats` was given. */
inline void
reportCacheStats()
{
    if (!cacheStatsRef())
        return;
    std::fprintf(stderr, "%s\n",
                 workloads::cacheStatsReport(
                         workloads::Cache::global().stats())
                         .c_str());
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

/** Print one row of right-padded cells. */
inline void
row(const std::vector<std::string> &cells, std::size_t width = 16)
{
    std::string line;
    for (const auto &cell : cells)
        line += padRight(cell, width) + " ";
    std::printf("%s\n", line.c_str());
}

/** Print a horizontal rule sized for n cells. */
inline void
rule(std::size_t cells, std::size_t width = 16)
{
    std::printf("%s\n", std::string(cells * (width + 1), '-').c_str());
}

/**
 * Standard main: parse `--threads`, print the reproduction report, then
 * run benchmarks (which receive the remaining argv).
 */
#define STELLAR_BENCH_MAIN(report_fn)                                     \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        ::stellar::bench::parseSweepFlags(&argc, argv);                    \
        report_fn();                                                       \
        ::stellar::bench::reportCacheStats();                              \
        ::benchmark::Initialize(&argc, argv);                              \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        return 0;                                                          \
    }

} // namespace stellar::bench

#endif // STELLAR_BENCH_COMMON_HPP
