/**
 * @file
 * Design-space-exploration ablation: the automated dataflow search that
 * motivates an *automated* design framework. Enumerates every distinct
 * causal dataflow for the matmul spec under coefficient/wiring
 * constraints, generates each accelerator, and reports the Pareto-style
 * leaders plus the raw exploration throughput.
 */

#include "bench_common.hpp"

#include "accel/analytic_cost.hpp"
#include "accel/dse.hpp"
#include "accel/report.hpp"
#include "func/library.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Automated dataflow exploration (matmul, 8x8x8)");
    model::AreaParams area_params;
    model::TimingParams timing_params;

    for (std::int64_t hop : {1, 2}) {
        accel::DseOptions options;
        options.topK = 6;
        options.enumerate.maxHopLength = hop;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {8, 8, 8}, options, area_params,
                timing_params, &stats);
        std::printf("\nmax hop length %lld: top %zu designs\n",
                    (long long)hop, candidates.size());
        std::printf("%s", accel::dseStatsReport(stats).c_str());
        bench::row({"PEs", "wires", "wirelen", "steps", "Fmax", "area",
                    "score"}, 10);
        bench::rule(7, 10);
        for (const auto &candidate : candidates) {
            bench::row({std::to_string(candidate.pes),
                        std::to_string(candidate.wires),
                        std::to_string(candidate.wireLength),
                        std::to_string(candidate.scheduleLength),
                        formatDouble(candidate.fmaxMhz, 0),
                        formatDouble(candidate.areaUm2 / 1e3, 0) + "K",
                        formatDouble(candidate.score * 1e9, 2)},
                       10);
        }
    }
    std::printf("\nEvery candidate passed invertibility and causality "
                "checks and ran through the\nfull generation pipeline "
                "(Fig 7) before being scored.\n");

    // Fast-path ablation: the same sweep with the exact maxPes prune
    // and with the analytic prepass, against the full single-phase run.
    // The prune is lossless and the prepass proxy keeps the real
    // leaders, so the top designs match the full run.
    std::printf("\nfast-path ablation (matmul 8x8x8, larger 12x12x12 "
                "elaboration)\n");
    bench::row({"mode", "evaluated", "skipped", "evaluate ms", "cand/s",
                "speedup"}, 12);
    bench::rule(6, 12);
    double full_ms = 0.0;
    for (int mode = 0; mode < 4; mode++) {
        accel::DseOptions options;
        options.topK = 6;
        options.threads = 1;
        if (mode == 1)
            options.maxPes = 256;
        if (mode == 2)
            options.analyticPrepass = 24;
        if (mode == 3)
            options.analyticTopK = 24;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {12, 12, 12}, options, area_params,
                timing_params, &stats);
        benchmark::DoNotOptimize(candidates);
        if (mode == 0)
            full_ms = stats.evaluateMs;
        const char *labels[] = {"full", "maxPes=256", "prepass=24",
                                "analytic-k=24"};
        double total_ms =
                stats.prepassMs + stats.analyticMs + stats.evaluateMs;
        bench::row({labels[mode], std::to_string(stats.evaluated),
                    std::to_string(stats.prunedEarly +
                                   stats.prepassFiltered +
                                   stats.analyticFiltered),
                    formatDouble(total_ms, 1),
                    formatDouble(stats.candidatesPerSecond(), 1),
                    formatDouble(full_ms / total_ms, 2) + "x"},
                   12);
    }

    // The analytic tier's headline act: a hop-3, coefficient-[-2,2]
    // space (thousands of candidates) that single-phase elaboration
    // makes painful. The closed-form tier scores all of it and only the
    // top-K survivors are elaborated; the exact scores mean the final
    // table equals what the full run would produce. All counters below
    // are deterministic; wall-derived values appear only on " ms"
    // lines.
    std::printf("\nhop-3 sweep (matmul 8x8x8, coeff [-2,2], "
                "analytic-top-k 12)\n");
    {
        accel::DseOptions options;
        options.topK = 6;
        options.enumerate.maxHopLength = 3;
        options.enumerate.minCoeff = -2;
        options.enumerate.maxCoeff = 2;
        options.enumerate.limit = 30000;
        options.analyticTopK = 12;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {8, 8, 8}, options, area_params,
                timing_params, &stats);
        std::printf("%s", accel::dseStatsReport(stats).c_str());
        bench::row({"PEs", "wires", "wirelen", "steps", "Fmax", "area",
                    "score"}, 10);
        bench::rule(7, 10);
        for (const auto &candidate : candidates) {
            bench::row({std::to_string(candidate.pes),
                        std::to_string(candidate.wires),
                        std::to_string(candidate.wireLength),
                        std::to_string(candidate.scheduleLength),
                        formatDouble(candidate.fmaxMhz, 0),
                        formatDouble(candidate.areaUm2 / 1e3, 0) + "K",
                        formatDouble(candidate.score * 1e9, 2)},
                       10);
        }
    }

    // Streaming ablation: the fused streamed scan vs the materialized
    // two-phase path over the hop-3 coefficient-[-3,3] space (40.4M
    // codes; orbit canonicalization skips ~87% before decoding). The
    // survivor sequence, counters, and final table are byte-identical
    // by contract — only the wall time differs. Counters below are
    // deterministic; wall-derived values appear only on " ms" lines or
    // in the trailing speedup column.
    std::printf("\nstreaming ablation (matmul 8x8x8, coeff [-3,3], "
                "hop 3, analytic-top-k 12)\n");
    bench::row({"mode", "enumerated", "orbit-skipped", "enum+tier ms",
                "speedup"}, 14);
    bench::rule(5, 14);
    double materialized_ms = 0.0;
    for (int mode = 0; mode < 2; mode++) {
        accel::DseOptions options;
        options.topK = 6;
        options.threads = 1;
        options.enumerate.maxHopLength = 3;
        options.enumerate.minCoeff = -3;
        options.enumerate.maxCoeff = 3;
        options.enumerate.limit = 30000;
        options.analyticTopK = 12;
        options.streamEnumeration = mode == 1;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {8, 8, 8}, options, area_params,
                timing_params, &stats);
        benchmark::DoNotOptimize(candidates);
        // Fused: analyticMs mirrors enumerateMs (one phase). Split:
        // the two phases are timed separately and sum.
        double total_ms = mode == 1
                                  ? stats.enumerateMs
                                  : stats.enumerateMs + stats.analyticMs;
        if (mode == 0)
            materialized_ms = total_ms;
        bench::row({mode == 0 ? "materialized" : "streamed",
                    std::to_string(stats.enumerated),
                    std::to_string(stats.orbitSkipped),
                    formatDouble(total_ms, 1),
                    formatDouble(materialized_ms / total_ms, 2) + "x"},
                   14);
    }

    // Failure surfacing: a starved step budget fails every candidate,
    // and the stats report breaks the failures down by kind.
    std::printf("\nfailure surfacing (stepBudget=10, every candidate "
                "times out)\n");
    {
        accel::DseOptions options;
        options.topK = 6;
        options.threads = 1;
        options.stepBudget = 10;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {8, 8, 8}, options, area_params,
                timing_params, &stats);
        benchmark::DoNotOptimize(candidates);
        std::printf("%s", accel::dseStatsReport(stats).c_str());
    }

    // Parallel-scaling report: the same default sweep at 1/2/4 workers.
    // Rankings are identical at every thread count (deterministic
    // reduction); only the wall time changes.
    std::printf("\nparallel scaling (matmul 8x8x8, default sweep)\n");
    bench::row({"threads", "evaluate ms", "cand/s", "speedup"}, 12);
    bench::rule(4, 12);
    double serial_ms = 0.0;
    for (std::size_t threads : {1u, 2u, 4u}) {
        accel::DseOptions options;
        options.topK = 6;
        options.threads = threads;
        accel::DseStats stats;
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {8, 8, 8}, options, area_params,
                timing_params, &stats);
        benchmark::DoNotOptimize(candidates);
        if (threads == 1)
            serial_ms = stats.evaluateMs;
        bench::row({std::to_string(threads),
                    formatDouble(stats.evaluateMs, 1),
                    formatDouble(stats.candidatesPerSecond(), 1),
                    formatDouble(serial_ms / stats.evaluateMs, 2) + "x"},
                   12);
    }
}

void
BM_ExploreMatmulDataflows(benchmark::State &state)
{
    model::AreaParams area_params;
    model::TimingParams timing_params;
    accel::DseOptions options;
    options.topK = 4;
    options.threads = std::size_t(state.range(0));
    for (auto _ : state) {
        auto candidates = accel::exploreDataflows(
                func::matmulSpec(), {4, 4, 4}, options, area_params,
                timing_params);
        benchmark::DoNotOptimize(candidates);
    }
}
BENCHMARK(BM_ExploreMatmulDataflows)
        ->Arg(1)
        ->Arg(2)
        ->Arg(4)
        ->Unit(benchmark::kMillisecond);

// Steady-state throughput of the closed-form scorer alone: one cost
// model, every hop-2 matmul transform scored per iteration. This is
// the per-candidate cost the analytic tier pays instead of
// core::generate.
void
BM_AnalyticScoreOnly(benchmark::State &state)
{
    auto spec = stellar::func::matmulSpec();
    stellar::IntVec bounds{8, 8, 8};
    stellar::model::AreaParams area_params;
    stellar::model::TimingParams timing_params;
    stellar::accel::AnalyticCostModel model(spec, bounds, {}, 8, 8,
                                            area_params, timing_params);
    auto transforms = stellar::dataflow::enumerateTransforms(
            spec, stellar::dataflow::EnumerateOptions{});
    std::int64_t scored = 0;
    for (auto _ : state) {
        for (const auto &transform : transforms) {
            auto score = model.score(transform);
            benchmark::DoNotOptimize(score);
        }
        scored += std::int64_t(transforms.size());
    }
    state.SetItemsProcessed(scored);
}
BENCHMARK(BM_AnalyticScoreOnly)->Unit(benchmark::kMillisecond);

void
BM_EnumerateOnly(benchmark::State &state)
{
    auto spec = stellar::func::matmulSpec();
    stellar::dataflow::EnumerateOptions options;
    for (auto _ : state) {
        auto transforms =
                stellar::dataflow::enumerateTransforms(spec, options);
        benchmark::DoNotOptimize(transforms);
    }
}
BENCHMARK(BM_EnumerateOnly)->Unit(benchmark::kMillisecond);

// The pull-style scan alone, never materializing the transform vector:
// the enumeration cost the fused analytic tier actually pays.
void
BM_EnumerateStreamOnly(benchmark::State &state)
{
    auto spec = stellar::func::matmulSpec();
    stellar::dataflow::EnumerateOptions options;
    std::int64_t yielded = 0;
    for (auto _ : state) {
        std::size_t count = 0;
        stellar::dataflow::forEachTransform(
                spec, options,
                [&](const stellar::dataflow::EnumeratedTransform &) {
                    count++;
                    return true;
                });
        benchmark::DoNotOptimize(count);
        yielded += std::int64_t(count);
    }
    state.SetItemsProcessed(yielded);
}
BENCHMARK(BM_EnumerateStreamOnly)->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
