/**
 * @file
 * Table III reproduction: area breakdown of the handwritten vs the
 * Stellar-generated Gemmini accelerator (ASAP7-like model, 500 MHz),
 * plus the Section VI-B frequency story (700 MHz vs 1 GHz).
 */

#include "bench_common.hpp"

#include "accel/designs.hpp"
#include "core/accelerator.hpp"
#include "model/area.hpp"
#include "model/timing.hpp"

namespace
{

using namespace stellar;

void
report()
{
    model::AreaParams params;
    auto handwritten = accel::gemminiAreaBreakdown(params, false);
    auto generated = accel::gemminiAreaBreakdown(params, true);

    bench::banner("Table III: Gemmini area comparison (um^2)");
    bench::row({"Component", "Original", "Orig %", "Stellar-gen",
                "Stellar %", "Paper orig", "Paper stellar"});
    bench::rule(7);
    struct PaperRow
    {
        const char *name;
        double orig;
        double stellar;
    };
    const PaperRow paper_rows[] = {
        {"Matmul array", 334e3, 420e3}, {"SRAMs", 2225e3, 2247e3},
        {"Regfiles", 25e3, 104e3},      {"Loop unrollers", 259e3, 482e3},
        {"Dma", 102e3, 109e3},          {"Host CPU", 337e3, 337e3},
    };
    for (const auto &paper : paper_rows) {
        double orig = handwritten.of(paper.name);
        double gen = generated.of(paper.name);
        bench::row({paper.name,
                    formatDouble(orig / 1e3, 0) + "K",
                    formatDouble(100.0 * orig / handwritten.total(), 1) + "%",
                    formatDouble(gen / 1e3, 0) + "K",
                    formatDouble(100.0 * gen / generated.total(), 1) + "%",
                    formatDouble(paper.orig / 1e3, 0) + "K",
                    formatDouble(paper.stellar / 1e3, 0) + "K"});
    }
    bench::rule(7);
    bench::row({"Total",
                formatDouble(handwritten.total() / 1e3, 0) + "K", "100%",
                formatDouble(generated.total() / 1e3, 0) + "K", "100%",
                "3282K", "3699K"});
    std::printf("\nmeasured area overhead: %.1f%% (paper: ~13%%)\n",
                100.0 * (generated.total() / handwritten.total() - 1.0));

    bench::banner("Section VI-B: achievable frequency");
    model::TimingParams timing;
    auto spec = accel::gemminiLikeSpec(16);
    auto gen = core::generate(spec);
    auto hand_timing = model::timingOf(timing, gen, true);
    auto stellar_timing = model::timingOf(timing, gen, false);
    bench::row({"Design", "Fmax (MHz)", "Binding path"});
    bench::rule(3);
    bench::row({"Handwritten",
                formatDouble(hand_timing.fmaxMhz(), 0),
                hand_timing.slowest()->name});
    bench::row({"Stellar-generated",
                formatDouble(stellar_timing.fmaxMhz(), 0),
                stellar_timing.slowest()->name});
    std::printf("paper: handwritten synthesizes to 700 MHz (centralized "
                "loop unroller fails\ntiming above that); the "
                "Stellar-generated design reaches 1 GHz.\n");
}

void
BM_GenerateGemmini16(benchmark::State &state)
{
    auto spec = stellar::accel::gemminiLikeSpec(16);
    for (auto _ : state) {
        auto generated = stellar::core::generate(spec);
        benchmark::DoNotOptimize(generated);
    }
}
BENCHMARK(BM_GenerateGemmini16)->Unit(benchmark::kMillisecond);

void
BM_AreaBreakdown(benchmark::State &state)
{
    stellar::model::AreaParams params;
    for (auto _ : state) {
        auto breakdown = stellar::accel::gemminiAreaBreakdown(params, true);
        benchmark::DoNotOptimize(breakdown);
    }
}
BENCHMARK(BM_AreaBreakdown)->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
