/**
 * @file
 * Fig 16a reproduction: PE utilization of the handwritten vs the
 * Stellar-generated Gemmini running ResNet50 (batch 1, both at
 * 500 MHz). The paper reports the generated design achieving ~90% of
 * the handwritten accelerator's utilization end to end.
 */

#include "bench_common.hpp"

#include "sim/run_many.hpp"
#include "sim/systolic.hpp"
#include "workloads/cache.hpp"
#include "workloads/resnet.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Fig 16a: Gemmini utilization on ResNet50 (batch 1)");
    bench::row({"Layer", "M", "N", "K", "Handwritten", "Stellar-gen",
                "Relative"}, 13);
    bench::rule(7, 13);

    sim::SystolicConfig handwritten;
    sim::SystolicConfig generated;
    generated.stellarGenerated = true;

    struct LayerPoint
    {
        sim::SystolicResult hand, gen;
    };
    const auto layers_ptr = workloads::cachedResnetLayers(false);
    const auto &layers = *layers_ptr;
    auto points = sim::runMany(
            layers.size(), bench::threads(), [&](std::size_t i) {
                LayerPoint point;
                point.hand = sim::simulateSystolicMatmul(
                        handwritten, layers[i].m, layers[i].n,
                        layers[i].k);
                point.gen = sim::simulateSystolicMatmul(
                        generated, layers[i].m, layers[i].n, layers[i].k);
                return point;
            });

    std::int64_t hand_cycles = 0, gen_cycles = 0, total_macs = 0;
    for (std::size_t i = 0; i < layers.size(); i++) {
        const auto &layer = layers[i];
        const auto &hand = points[i].hand;
        const auto &gen = points[i].gen;
        hand_cycles += hand.cycles;
        gen_cycles += gen.cycles;
        total_macs += layer.macs();
        bool representative = false;
        for (const auto &rep : *workloads::cachedResnetLayers(true))
            if (rep.name == layer.name)
                representative = true;
        if (representative) {
            bench::row({layer.name, std::to_string(layer.m),
                        std::to_string(layer.n), std::to_string(layer.k),
                        formatDouble(100.0 * hand.utilization, 1) + "%",
                        formatDouble(100.0 * gen.utilization, 1) + "%",
                        formatDouble(100.0 * gen.utilization /
                                             hand.utilization, 1) + "%"},
                       13);
        }
    }
    double peak = 256.0;
    double hand_util = double(total_macs) / (double(hand_cycles) * peak);
    double gen_util = double(total_macs) / (double(gen_cycles) * peak);
    std::printf("\nend-to-end utilization: handwritten %.1f%%, "
                "stellar-generated %.1f%%\n", 100.0 * hand_util,
                100.0 * gen_util);
    std::printf("measured relative utilization: %.1f%% (paper: ~90%%)\n",
                100.0 * gen_util / hand_util);
}

void
BM_SimulateResnetLayer(benchmark::State &state)
{
    sim::SystolicConfig config;
    config.stellarGenerated = state.range(0) != 0;
    for (auto _ : state) {
        auto result = sim::simulateSystolicMatmul(config, 3136, 64, 576);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SimulateResnetLayer)
        ->Arg(0)
        ->Arg(1)
        ->Unit(benchmark::kMicrosecond);

} // namespace

STELLAR_BENCH_MAIN(report)
