/**
 * @file
 * Fig 3 ablation: pipelining strategies. Changing a single value in the
 * time row of the space-time transform adds or removes pipeline
 * registers along the A-streaming axis of the input-stationary matmul
 * array; this sweep reports the frequency/area/register trade-off.
 */

#include "bench_common.hpp"

#include "core/accelerator.hpp"
#include "dataflow/transform.hpp"
#include "func/library.hpp"
#include "model/area.hpp"
#include "model/timing.hpp"
#include "rtl/generate.hpp"

namespace
{

using namespace stellar;

core::GeneratedAccelerator
generateWith(std::int64_t extra_time, int dim)
{
    core::AcceleratorSpec spec;
    spec.name = "pipelining_" + std::to_string(extra_time);
    spec.functional = func::matmulSpec();
    spec.transform =
            dataflow::dataflows::inputStationaryPipelined(extra_time);
    spec.elaborationBounds = {dim, dim, dim};
    return core::generate(spec);
}

void
report()
{
    bench::banner("Fig 3 ablation: time-row pipelining of the 16x16 "
                  "input-stationary array");
    bench::row({"time-row entry", "regs/hop (A)", "Fmax (MHz)",
                "array area", "RTL FF bits"}, 15);
    bench::rule(5, 15);

    model::AreaParams area_params;
    model::TimingParams timing_params;
    for (std::int64_t extra : {0, 1, 2, 3}) {
        auto generated = generateWith(extra, 16);
        auto timing = model::timingOf(timing_params, generated, false);
        double area = model::arrayArea(area_params, generated, 8, 8, true);
        auto design = rtl::lowerToVerilog(generated);
        bench::row({std::to_string(extra),
                    std::to_string(generated.spec.transform.pipelineDepth(
                            {0, 1, 0})),
                    formatDouble(timing.fmaxMhz(), 0),
                    formatDouble(area / 1e3, 0) + "K",
                    std::to_string(rtl::countRegisters(design))},
                   15);
    }
    std::printf("\npaper (Fig 3): larger time-row entries mean more "
                "aggressive pipelining --\nhigher frequency at the cost "
                "of more registers.\n");
}

void
BM_GeneratePipelined(benchmark::State &state)
{
    for (auto _ : state) {
        auto generated = generateWith(state.range(0), 8);
        benchmark::DoNotOptimize(generated);
    }
}
BENCHMARK(BM_GeneratePipelined)
        ->Arg(0)
        ->Arg(2)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
