/**
 * @file
 * Fig 3 ablation: pipelining strategies. Changing a single value in the
 * time row of the space-time transform adds or removes pipeline
 * registers along the A-streaming axis of the input-stationary matmul
 * array; this sweep reports the frequency/area/register trade-off.
 */

#include "bench_common.hpp"

#include "core/accelerator.hpp"
#include "dataflow/transform.hpp"
#include "func/library.hpp"
#include "model/area.hpp"
#include "model/timing.hpp"
#include "rtl/generate.hpp"
#include "sim/run_many.hpp"

namespace
{

using namespace stellar;

core::GeneratedAccelerator
generateWith(std::int64_t extra_time, int dim)
{
    core::AcceleratorSpec spec;
    spec.name = "pipelining_" + std::to_string(extra_time);
    spec.functional = func::matmulSpec();
    spec.transform =
            dataflow::dataflows::inputStationaryPipelined(extra_time);
    spec.elaborationBounds = {dim, dim, dim};
    return core::generate(spec);
}

void
report()
{
    bench::banner("Fig 3 ablation: time-row pipelining of the 16x16 "
                  "input-stationary array");
    bench::row({"time-row entry", "regs/hop (A)", "Fmax (MHz)",
                "array area", "RTL FF bits"}, 15);
    bench::rule(5, 15);

    model::AreaParams area_params;
    model::TimingParams timing_params;
    const std::vector<std::int64_t> extras = {0, 1, 2, 3};
    struct SweepPoint
    {
        std::int64_t regsPerHop = 0;
        double fmaxMhz = 0.0;
        double area = 0.0;
        std::int64_t ffBits = 0;
    };
    auto points = sim::runMany(
            extras.size(), bench::threads(), [&](std::size_t i) {
                auto generated = generateWith(extras[i], 16);
                auto timing =
                        model::timingOf(timing_params, generated, false);
                auto design = rtl::lowerToVerilog(generated);
                SweepPoint point;
                point.regsPerHop =
                        generated.spec.transform.pipelineDepth({0, 1, 0});
                point.fmaxMhz = timing.fmaxMhz();
                point.area = model::arrayArea(area_params, generated, 8,
                                              8, true);
                point.ffBits = rtl::countRegisters(design);
                return point;
            });
    for (std::size_t i = 0; i < extras.size(); i++) {
        bench::row({std::to_string(extras[i]),
                    std::to_string(points[i].regsPerHop),
                    formatDouble(points[i].fmaxMhz, 0),
                    formatDouble(points[i].area / 1e3, 0) + "K",
                    std::to_string(points[i].ffBits)},
                   15);
    }
    std::printf("\npaper (Fig 3): larger time-row entries mean more "
                "aggressive pipelining --\nhigher frequency at the cost "
                "of more registers.\n");
}

void
BM_GeneratePipelined(benchmark::State &state)
{
    for (auto _ : state) {
        auto generated = generateWith(state.range(0), 8);
        benchmark::DoNotOptimize(generated);
    }
}
BENCHMARK(BM_GeneratePipelined)
        ->Arg(0)
        ->Arg(2)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
