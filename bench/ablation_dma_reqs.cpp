/**
 * @file
 * Section VI-C ablation: sweep of the DMA's independent-requests-per-
 * cycle parameter on the OuterSPACE pointer-chasing workload. The paper
 * moves from 1 to 16 requests/cycle "without changing total DRAM
 * bandwidth"; this sweep shows where the returns saturate.
 */

#include "bench_common.hpp"

#include "sim/outerspace.hpp"
#include "sim/run_many.hpp"
#include "sparse/suitesparse.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("DMA request-rate ablation (OuterSPACE-like, "
                  "poisson3Da + wiki-Vote)");
    bench::row({"reqs/cycle", "poisson3Da GF/s", "wiki-Vote GF/s",
                "ptr stall cycles"}, 18);
    bench::rule(4, 18);

    auto poisson = workloads::cachedSuiteSparse(
            sparse::scaleProfile(sparse::profileByName("poisson3Da"),
                                 80000), 1);
    auto wiki = workloads::cachedSuiteSparse(
            sparse::scaleProfile(sparse::profileByName("wiki-Vote"),
                                 80000), 1);
    const std::vector<int> rates = {1, 2, 4, 8, 16, 32};
    struct RatePoint
    {
        sim::OuterSpaceResult poisson, wiki;
    };
    auto points = sim::runMany(
            rates.size(), bench::threads(), [&](std::size_t i) {
                sim::OuterSpaceConfig config;
                config.dma = sim::DmaConfig::withRate(rates[i]);
                RatePoint point;
                point.poisson = sim::simulateOuterSpace(config, *poisson);
                point.wiki = sim::simulateOuterSpace(config, *wiki);
                return point;
            });
    for (std::size_t i = 0; i < rates.size(); i++) {
        const auto &a = points[i].poisson;
        const auto &b = points[i].wiki;
        bench::row({std::to_string(rates[i]),
                    formatDouble(a.gflops(1.5), 2),
                    formatDouble(b.gflops(1.5), 2),
                    std::to_string(a.pointerStallCycles +
                                   b.pointerStallCycles)},
                   18);
    }
    std::printf("\npaper: 1 -> 16 requests/cycle raised average "
                "throughput from 1.42 to 2.1 GFLOP/s;\nreturns saturate "
                "once DRAM bandwidth, not request rate, binds.\n");
}

void
BM_OuterSpaceRate(benchmark::State &state)
{
    auto matrix = workloads::cachedSuiteSparse(
            sparse::scaleProfile(sparse::profileByName("wiki-Vote"),
                                 30000), 1);
    sim::OuterSpaceConfig config;
    config.dma = sim::DmaConfig::withRate(int(state.range(0)));
    for (auto _ : state) {
        auto result = sim::simulateOuterSpace(config, *matrix);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_OuterSpaceRate)
        ->Arg(1)
        ->Arg(4)
        ->Arg(16)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
