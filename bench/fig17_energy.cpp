/**
 * @file
 * Fig 17 reproduction: energy per MAC of the handwritten vs the
 * Stellar-generated Gemmini on ResNet50 layers (Intel-22nm-like model,
 * 500 MHz). The paper reports Stellar's power overhead ranging from 7%
 * at best to 30% at worst across layers.
 */

#include "bench_common.hpp"

#include "accel/designs.hpp"
#include "model/area.hpp"
#include "model/energy.hpp"
#include "sim/run_many.hpp"
#include "sim/systolic.hpp"
#include "workloads/cache.hpp"
#include "workloads/resnet.hpp"

namespace
{

using namespace stellar;

model::EnergyEvents
eventsOf(const sim::SystolicResult &result, double area_mm2,
         bool stellar_generated)
{
    model::EnergyEvents events;
    events.macs = result.macs;
    events.macBits = 8;
    events.sramReadBytes = result.spadReadBytes;
    events.sramWriteBytes = result.spadWriteBytes;
    events.regfileBytes = result.regfileBytes;
    events.dramBytes = result.dramBytes;
    events.cycles = result.cycles;
    events.areaMm2 = area_mm2;
    // Stellar PEs toggle their time counters and global stall wiring
    // every cycle (Section VI-B).
    if (stellar_generated)
        events.peToggleEvents = result.cycles * 256;
    return events;
}

void
report()
{
    bench::banner("Fig 17: energy per MAC on ResNet50 layers (pJ)");
    bench::row({"Layer", "Handwritten", "Stellar-gen", "Overhead",
                "Paper range"}, 14);
    bench::rule(5, 14);

    model::AreaParams area_params;
    model::EnergyParams energy_params;
    double hand_mm2 =
            accel::gemminiAreaBreakdown(area_params, false).total() / 1e6;
    double gen_mm2 =
            accel::gemminiAreaBreakdown(area_params, true).total() / 1e6;

    sim::SystolicConfig handwritten;
    sim::SystolicConfig generated;
    generated.stellarGenerated = true;

    struct LayerPoint
    {
        sim::SystolicResult hand, gen;
    };
    const auto layers_ptr = workloads::cachedResnetLayers(true);
    const auto &layers = *layers_ptr;
    auto points = sim::runMany(
            layers.size(), bench::threads(), [&](std::size_t i) {
                LayerPoint point;
                point.hand = sim::simulateSystolicMatmul(
                        handwritten, layers[i].m, layers[i].n,
                        layers[i].k);
                point.gen = sim::simulateSystolicMatmul(
                        generated, layers[i].m, layers[i].n, layers[i].k);
                return point;
            });

    double worst = 0.0, best = 1e9;
    for (std::size_t i = 0; i < layers.size(); i++) {
        double hand_pj = model::energyPerMac(
                energy_params, eventsOf(points[i].hand, hand_mm2, false));
        double gen_pj = model::energyPerMac(
                energy_params, eventsOf(points[i].gen, gen_mm2, true));
        double overhead = gen_pj / hand_pj - 1.0;
        worst = std::max(worst, overhead);
        best = std::min(best, overhead);
        bench::row({layers[i].name, formatDouble(hand_pj, 3),
                    formatDouble(gen_pj, 3),
                    formatDouble(100.0 * overhead, 1) + "%", "7-30%"},
                   14);
    }
    std::printf("\nmeasured overhead range: %.1f%% - %.1f%% "
                "(paper: 7%% at best, 30%% at worst)\n", 100.0 * best,
                100.0 * worst);
}

void
BM_EnergyModel(benchmark::State &state)
{
    model::EnergyParams params;
    model::EnergyEvents events;
    events.macs = 1000000;
    events.sramReadBytes = 4000000;
    events.cycles = 10000;
    events.areaMm2 = 3.7;
    for (auto _ : state) {
        double pj = model::energyPerMac(params, events);
        benchmark::DoNotOptimize(pj);
    }
}
BENCHMARK(BM_EnergyModel);

} // namespace

STELLAR_BENCH_MAIN(report)
