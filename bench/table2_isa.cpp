/**
 * @file
 * Table II reproduction: the custom RISC-V command set. Prints the
 * command summary, walks the Listing 7 programs through the assembler
 * and disassembler, and microbenchmarks encode/decode throughput.
 */

#include "bench_common.hpp"

#include "isa/driver.hpp"
#include "isa/instructions.hpp"

namespace
{

using namespace stellar;
using namespace stellar::isa;

std::vector<Instruction>
listing7Program()
{
    Driver driver;
    // Dense matrix into SRAM_A.
    driver.setSrcAndDst(MemUnit::Dram, MemUnit::Sram0);
    driver.setDataAddr(Target::Src, 0x80000000ULL);
    for (int axis = 0; axis < 2; axis++) {
        driver.setSpan(Target::Both, axis, 64);
        driver.setAxis(Target::Both, axis, AxisType::Dense);
    }
    driver.setStride(Target::Both, 0, 1);
    driver.setStride(Target::Both, 1, 64);
    driver.issue();
    // CSR matrix into SRAM_B.
    driver.setSrcAndDst(MemUnit::Dram, MemUnit::Sram1);
    driver.setDataAddr(Target::Src, 0x80100000ULL);
    driver.setMetadataAddr(Target::Src, 0, MetadataType::RowId,
                           0x80200000ULL);
    driver.setMetadataAddr(Target::Src, 0, MetadataType::Coord,
                           0x80300000ULL);
    driver.setSpan(Target::Both, 0, kEntireAxis);
    driver.setSpan(Target::Both, 1, 64);
    driver.setStride(Target::Both, 0, 1);
    driver.setMetadataStride(Target::Both, 0, 0, MetadataType::Coord, 1);
    driver.setMetadataStride(Target::Both, 1, 0, MetadataType::RowId, 1);
    driver.setAxis(Target::Both, 0, AxisType::Compressed);
    driver.setAxis(Target::Both, 1, AxisType::Dense);
    driver.issue();
    return driver.program();
}

void
report()
{
    bench::banner("Table II: the Stellar 64-bit RISC-V command set");
    bench::row({"Opcode", "Rs1[19:16]", "Rs1[15:0]", "Rs2"}, 22);
    bench::rule(4, 22);
    bench::row({"set_address", "src/dst/both", "axis (+meta sel)",
                "DRAM/SRAM address"}, 22);
    bench::row({"set_span", "src/dst/both", "axis",
                "elements to move"}, 22);
    bench::row({"set_data_stride", "src/dst/both", "axis", "stride"}, 22);
    bench::row({"set_metadata_stride", "src/dst/both", "axis+meta type",
                "stride"}, 22);
    bench::row({"set_axis_type", "src/dst/both", "axis",
                "Dense/Compressed/..."}, 22);
    bench::row({"set_constant", "n/a", "constant id",
                "value"}, 22);

    bench::banner("Listing 7 program, assembled and disassembled");
    auto program = listing7Program();
    auto bytes = encode(program);
    std::printf("%zu instructions, %zu bytes encoded\n", program.size(),
                bytes.size());
    for (const auto &inst : decode(bytes))
        std::printf("  %s\n", disassemble(inst).c_str());
}

void
BM_EncodeDecode(benchmark::State &state)
{
    auto program = listing7Program();
    for (auto _ : state) {
        auto decoded = decode(encode(program));
        benchmark::DoNotOptimize(decoded);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(program.size()));
}
BENCHMARK(BM_EncodeDecode);

void
BM_ConfigStateApply(benchmark::State &state)
{
    auto program = listing7Program();
    for (auto _ : state) {
        ConfigState config;
        auto descs = config.applyProgram(program);
        benchmark::DoNotOptimize(descs);
    }
}
BENCHMARK(BM_ConfigStateApply);

} // namespace

STELLAR_BENCH_MAIN(report)
