/**
 * @file
 * Load-balancing ablation (Section III-D / Fig 6 at the system level):
 * the OuterSPACE-like multiply phase with and without Listing 3-style
 * adjacent-wave work sharing, across mesh and power-law matrices. Graph
 * matrices with heavy-tailed column work gain the most; uniform meshes
 * barely move — the "which feature contributes what" question the
 * paper's separation of concerns exists to answer.
 */

#include "bench_common.hpp"

#include "sim/balance.hpp"
#include "sim/outerspace.hpp"
#include "sparse/matrix.hpp"
#include "sparse/suitesparse.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Load-balancing ablation (OuterSPACE-like multiply "
                  "phase, C = A*A)");
    bench::row({"Matrix", "pattern", "util unbal.", "util bal.",
                "compute cyc unb", "compute cyc bal", "shifts"}, 14);
    bench::rule(7, 14);
    for (const char *name : {"poisson3Da", "filter3D", "cop20k_A",
                             "wiki-Vote", "email-Enron", "web-Google",
                             "scircuit"}) {
        auto profile = sparse::scaleProfile(sparse::profileByName(name),
                                            80000);
        auto matrix = sparse::synthesize(profile, 1);

        sim::OuterSpaceConfig unbalanced;
        unbalanced.dma = sim::DmaConfig::withRate(16);
        unbalanced.loadBalanced = false;
        auto u = sim::simulateOuterSpace(unbalanced, matrix);

        sim::OuterSpaceConfig balanced = unbalanced;
        balanced.loadBalanced = true;
        auto b = sim::simulateOuterSpace(balanced, matrix);

        // Isolate the compute side: the PE-array cycles each schedule
        // needs, independent of the memory system.
        auto csc = sparse::csrToCsc(matrix);
        std::vector<std::int64_t> column_work;
        for (std::int64_t k = 0; k < matrix.cols(); k++) {
            std::int64_t products = csc.colNnz(k) * matrix.rowNnz(k);
            if (products > 0)
                column_work.push_back((products + 15) / 16);
        }
        auto cu = sim::simulateRowWaves(column_work, 16, false);
        auto cb = sim::simulateRowWaves(column_work, 16, true);

        bench::row({name,
                    profile.pattern == sparse::MatrixPattern::Mesh
                            ? "mesh"
                            : "power-law",
                    formatDouble(100.0 * u.multiplyUtilization, 1) + "%",
                    formatDouble(100.0 * b.multiplyUtilization, 1) + "%",
                    std::to_string(cu.cycles),
                    std::to_string(cb.cycles),
                    std::to_string(b.balancerShifts)},
                   14);
    }
    std::printf("\npower-law matrices (imbalanced column work) gain the "
                "most from balancing:\ntheir PE-array compute cycles "
                "drop 3-6x (Fig 6's mechanism). On the full\nsystem "
                "with the 16-request DMA these runs stay memory-bound, "
                "so the paper's\nthroughput story is carried by the "
                "DMA experiments instead.\n");
}

void
BM_BalancedVsUnbalanced(benchmark::State &state)
{
    auto matrix = sparse::synthesize(
            sparse::scaleProfile(sparse::profileByName("wiki-Vote"),
                                 30000), 1);
    sim::OuterSpaceConfig config;
    config.loadBalanced = state.range(0) != 0;
    for (auto _ : state) {
        auto result = sim::simulateOuterSpace(config, matrix);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_BalancedVsUnbalanced)
        ->Arg(0)
        ->Arg(1)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
