/**
 * @file
 * Load-balancing ablation (Section III-D / Fig 6 at the system level):
 * the OuterSPACE-like multiply phase with and without Listing 3-style
 * adjacent-wave work sharing, across mesh and power-law matrices. Graph
 * matrices with heavy-tailed column work gain the most; uniform meshes
 * barely move — the "which feature contributes what" question the
 * paper's separation of concerns exists to answer.
 */

#include "bench_common.hpp"

#include "sim/balance.hpp"
#include "sim/outerspace.hpp"
#include "sim/run_many.hpp"
#include "sparse/matrix.hpp"
#include "sparse/suitesparse.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Load-balancing ablation (OuterSPACE-like multiply "
                  "phase, C = A*A)");
    bench::row({"Matrix", "pattern", "util unbal.", "util bal.",
                "compute cyc unb", "compute cyc bal", "shifts"}, 14);
    bench::rule(7, 14);
    const std::vector<const char *> names = {
            "poisson3Da", "filter3D",    "cop20k_A", "wiki-Vote",
            "email-Enron", "web-Google", "scircuit"};
    struct MatrixPoint
    {
        bool mesh = false;
        sim::OuterSpaceResult unbalanced, balanced;
        std::int64_t computeUnbalanced = 0, computeBalanced = 0;
    };
    auto points = sim::runMany(
            names.size(), bench::threads(), [&](std::size_t i) {
                auto profile = sparse::scaleProfile(
                        sparse::profileByName(names[i]), 80000);
                auto cached = workloads::cachedSuiteSparse(profile, 1);
                const sparse::CsrMatrix &matrix = *cached;
                MatrixPoint point;
                point.mesh =
                        profile.pattern == sparse::MatrixPattern::Mesh;

                sim::OuterSpaceConfig unbalanced;
                unbalanced.dma = sim::DmaConfig::withRate(16);
                unbalanced.loadBalanced = false;
                point.unbalanced =
                        sim::simulateOuterSpace(unbalanced, matrix);

                sim::OuterSpaceConfig balanced = unbalanced;
                balanced.loadBalanced = true;
                point.balanced =
                        sim::simulateOuterSpace(balanced, matrix);

                // Isolate the compute side: the PE-array cycles each
                // schedule needs, independent of the memory system.
                auto csc = sparse::csrToCsc(matrix);
                std::vector<std::int64_t> column_work;
                for (std::int64_t k = 0; k < matrix.cols(); k++) {
                    std::int64_t products =
                            csc.colNnz(k) * matrix.rowNnz(k);
                    if (products > 0)
                        column_work.push_back((products + 15) / 16);
                }
                point.computeUnbalanced =
                        sim::simulateRowWaves(column_work, 16, false)
                                .cycles;
                point.computeBalanced =
                        sim::simulateRowWaves(column_work, 16, true)
                                .cycles;
                return point;
            });
    for (std::size_t i = 0; i < names.size(); i++) {
        const auto &point = points[i];
        bench::row({names[i], point.mesh ? "mesh" : "power-law",
                    formatDouble(100.0 * point.unbalanced
                                                 .multiplyUtilization,
                                 1) + "%",
                    formatDouble(100.0 * point.balanced
                                                 .multiplyUtilization,
                                 1) + "%",
                    std::to_string(point.computeUnbalanced),
                    std::to_string(point.computeBalanced),
                    std::to_string(point.balanced.balancerShifts)},
                   14);
    }
    std::printf("\npower-law matrices (imbalanced column work) gain the "
                "most from balancing:\ntheir PE-array compute cycles "
                "drop 3-6x (Fig 6's mechanism). On the full\nsystem "
                "with the 16-request DMA these runs stay memory-bound, "
                "so the paper's\nthroughput story is carried by the "
                "DMA experiments instead.\n");
}

void
BM_BalancedVsUnbalanced(benchmark::State &state)
{
    auto matrix = workloads::cachedSuiteSparse(
            sparse::scaleProfile(sparse::profileByName("wiki-Vote"),
                                 30000), 1);
    sim::OuterSpaceConfig config;
    config.loadBalanced = state.range(0) != 0;
    for (auto _ : state) {
        auto result = sim::simulateOuterSpace(config, *matrix);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_BalancedVsUnbalanced)
        ->Arg(0)
        ->Arg(1)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
