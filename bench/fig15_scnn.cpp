/**
 * @file
 * Fig 15 reproduction: PE utilization of the handwritten vs the
 * Stellar-generated SCNN on pruned AlexNet. The paper reports the
 * generated design reaching 83-94% of the handwritten accelerator.
 */

#include "bench_common.hpp"

#include "sim/run_many.hpp"
#include "sim/scnn.hpp"
#include "workloads/alexnet.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Fig 15: SCNN PE utilization on pruned AlexNet");
    bench::row({"Layer", "Handwritten", "Stellar-gen", "Relative",
                "Paper rel."});
    bench::rule(5);

    sim::ScnnConfig handwritten;
    sim::ScnnConfig generated;
    generated.stellarGenerated = true;

    struct LayerPoint
    {
        sim::ScnnResult hand, gen;
    };
    const auto layers_ptr = workloads::cachedAlexnetLayers();
    const auto &layers = *layers_ptr;
    auto points = sim::runMany(
            layers.size(), bench::threads(), [&](std::size_t i) {
                LayerPoint point;
                point.hand =
                        sim::simulateScnnLayer(handwritten, layers[i], 1);
                point.gen =
                        sim::simulateScnnLayer(generated, layers[i], 1);
                return point;
            });

    double worst = 1.0, best = 0.0;
    for (std::size_t i = 0; i < layers.size(); i++) {
        const auto &hand = points[i].hand;
        const auto &gen = points[i].gen;
        double relative = gen.utilization / hand.utilization;
        worst = std::min(worst, relative);
        best = std::max(best, relative);
        bench::row({layers[i].name,
                    formatDouble(100.0 * hand.utilization, 1) + "%",
                    formatDouble(100.0 * gen.utilization, 1) + "%",
                    formatDouble(100.0 * relative, 1) + "%",
                    "83-94%"});
    }
    std::printf("\nmeasured relative range: %.1f%% - %.1f%% "
                "(paper: 83%% - 94%%)\n", 100.0 * worst, 100.0 * best);
}

void
BM_ScnnConv3(benchmark::State &state)
{
    sim::ScnnConfig config;
    config.stellarGenerated = state.range(0) != 0;
    const auto layers_ptr = workloads::cachedAlexnetLayers();
    const auto &layer = (*layers_ptr)[2];
    for (auto _ : state) {
        auto result = sim::simulateScnnLayer(config, layer, 1);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ScnnConv3)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

} // namespace

STELLAR_BENCH_MAIN(report)
