/**
 * @file
 * Fig 16b reproduction: throughput of the Stellar-generated
 * OuterSPACE-like accelerator squaring SuiteSparse matrices. The paper's
 * initial design (default one-request-per-cycle DMA) averaged
 * 1.42 GFLOP/s vs OuterSPACE's reported 2.9; widening the DMA to 16
 * independent requests per cycle recovered 2.1 GFLOP/s (Section VI-C).
 *
 * Matrices are synthesized to each profile's published statistics and
 * scaled to a tractable nonzero budget (noted below); the shape of the
 * result — where the DMA fix helps and by how much — is the target.
 */

#include "bench_common.hpp"

#include "sim/outerspace.hpp"
#include "sim/run_many.hpp"
#include "sparse/suitesparse.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

constexpr std::int64_t kNnzBudget = 120000;
constexpr double kFreqGhz = 1.5; // OuterSPACE's clock

void
report()
{
    bench::banner("Fig 16b: OuterSPACE-like SpGEMM throughput (C = A*A)");
    std::printf("matrices synthesized from published stats, scaled to "
                "<= %lld nnz\n\n", (long long)kNnzBudget);
    bench::row({"Matrix", "nnz(scaled)", "initial GF/s", "16-req GF/s",
                "speedup"}, 15);
    bench::rule(5, 15);

    sim::OuterSpaceConfig initial;
    initial.dma = sim::DmaConfig::withRate(1);
    sim::OuterSpaceConfig improved;
    improved.dma = sim::DmaConfig::withRate(16);

    struct MatrixPoint
    {
        std::int64_t nnz = 0;
        sim::OuterSpaceResult slow, fast;
    };
    const auto &profiles = sparse::outerSpaceSuite();
    auto points = sim::runMany(
            profiles.size(), bench::threads(), [&](std::size_t i) {
                auto scaled = sparse::scaleProfile(profiles[i],
                                                   kNnzBudget);
                auto matrix = workloads::cachedSuiteSparse(scaled, 1);
                MatrixPoint point;
                point.nnz = matrix->nnz();
                point.slow = sim::simulateOuterSpace(initial, *matrix);
                point.fast = sim::simulateOuterSpace(improved, *matrix);
                return point;
            });

    double initial_sum = 0.0, improved_sum = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < profiles.size(); i++) {
        double gf_slow = points[i].slow.gflops(kFreqGhz);
        double gf_fast = points[i].fast.gflops(kFreqGhz);
        initial_sum += gf_slow;
        improved_sum += gf_fast;
        count++;
        bench::row({profiles[i].name, std::to_string(points[i].nnz),
                    formatDouble(gf_slow, 2), formatDouble(gf_fast, 2),
                    formatDouble(gf_fast / gf_slow, 2) + "x"},
                   15);
    }
    bench::rule(5, 15);
    double initial_avg = initial_sum / count;
    double improved_avg = improved_sum / count;
    bench::row({"average", "", formatDouble(initial_avg, 2),
                formatDouble(improved_avg, 2),
                formatDouble(improved_avg / initial_avg, 2) + "x"},
               15);
    std::printf("\npaper: initial Stellar-generated design 1.42 GFLOP/s "
                "avg; 16-request DMA\n2.1 GFLOP/s avg; original "
                "OuterSPACE paper reports 2.9 GFLOP/s avg.\n");
}

void
BM_OuterSpacePoisson(benchmark::State &state)
{
    auto profile = sparse::scaleProfile(
            sparse::profileByName("poisson3Da"), 40000);
    auto matrix = workloads::cachedSuiteSparse(profile, 1);
    sim::OuterSpaceConfig config;
    config.dma = sim::DmaConfig::withRate(int(state.range(0)));
    for (auto _ : state) {
        auto result = sim::simulateOuterSpace(config, *matrix);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_OuterSpacePoisson)
        ->Arg(1)
        ->Arg(16)
        ->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
