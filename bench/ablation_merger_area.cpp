/**
 * @file
 * Section IV-F / VI-D ablation: merger area. The paper reports SpArch's
 * flattened mergers (128 64-bit comparators for throughput 16) at 13x
 * the area of the simpler row-partitioned mergers, and its hierarchical
 * merge trees at 13x the area of OuterSPACE-style flat mergers.
 */

#include "bench_common.hpp"

#include "model/area.hpp"
#include "sim/merger.hpp"
#include "sim/run_many.hpp"
#include "sparse/suitesparse.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

void
report()
{
    model::AreaParams params;
    bench::banner("Merger area ablation (um^2)");
    bench::row({"Merger", "Config", "Area", "vs row-part(32)"}, 20);
    bench::rule(4, 20);
    double row32 = model::rowPartitionedMergerArea(params, 32);
    struct Entry
    {
        std::string name;
        std::string config;
        double area;
    };
    std::vector<Entry> entries = {
        {"row-partitioned", "8 lanes",
         model::rowPartitionedMergerArea(params, 8)},
        {"row-partitioned", "32 lanes", row32},
        {"row-partitioned", "64 lanes",
         model::rowPartitionedMergerArea(params, 64)},
        {"flattened", "tput 8", model::flattenedMergerArea(params, 8)},
        {"flattened", "tput 16 (SpArch)",
         model::flattenedMergerArea(params, 16)},
        {"flattened", "tput 32", model::flattenedMergerArea(params, 32)},
        {"hierarchical", "tput 16, 64-way",
         model::hierarchicalMergerArea(params, 16, 64)},
    };
    for (const auto &entry : entries) {
        bench::row({entry.name, entry.config,
                    formatDouble(entry.area / 1e3, 1) + "K",
                    formatDouble(entry.area / row32, 1) + "x"},
                   20);
    }
    std::printf("\npaper: the flattened SpArch merger is 13x the area of "
                "the row-partitioned\nmerger; measured: %.1fx\n",
                model::flattenedMergerArea(params, 16) / row32);

    // Performance side of Section IV-F: the expensive hierarchical tree
    // merges W ways per pass instead of two.
    bench::banner("Hierarchical (64-way tree) vs pairwise flattened "
                  "merging");
    auto profile = stellar::sparse::scaleProfile(
            stellar::sparse::profileByName("poisson3Da"), 30000);
    auto partials = stellar::workloads::cachedOuterPartials(profile, 5);
    stellar::sim::MergerConfig merger_config;
    // The two schedules are independent simulation points; sweep them
    // through the parallel driver like the figure benches.
    auto schedules = stellar::sim::runMany(
            2, stellar::bench::threads(), [&](std::size_t i) {
                return i == 0 ? stellar::sim::runMergeSchedule(
                                        merger_config,
                                        stellar::sim::MergerKind::
                                                Flattened,
                                        *partials)
                              : stellar::sim::runHierarchicalMerge(
                                        merger_config, *partials, 64);
            });
    const auto &pairwise = schedules[0];
    const auto &tree = schedules[1];
    bench::row({"schedule", "cycles", "merged elements"}, 18);
    bench::rule(3, 18);
    bench::row({"pairwise", std::to_string(pairwise.cycles),
                std::to_string(pairwise.mergedElements)}, 18);
    bench::row({"64-way tree", std::to_string(tree.cycles),
                std::to_string(tree.mergedElements)}, 18);
    std::printf("\nthe tree costs %.1fx the comparator area (above) but "
                "merges in %.1fx fewer cycles.\n",
                model::hierarchicalMergerArea(params, 16, 64) / row32,
                double(pairwise.cycles) / double(tree.cycles));
}

void
BM_MergerAreaSweep(benchmark::State &state)
{
    model::AreaParams params;
    for (auto _ : state) {
        double total = 0.0;
        for (int t = 2; t <= 64; t *= 2)
            total += model::flattenedMergerArea(params, t) +
                     model::rowPartitionedMergerArea(params, t);
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_MergerAreaSweep);

} // namespace

STELLAR_BENCH_MAIN(report)
