/**
 * @file
 * Table I reproduction: the framework feature matrix. The Stellar row is
 * introspected from this library (every capability probed through the
 * real pipeline); prior-framework rows are transcribed from the paper.
 */

#include "bench_common.hpp"

#include "accel/features.hpp"

namespace
{

using namespace stellar;
using namespace stellar::accel;

void
report()
{
    bench::banner("Table I: framework feature comparison");
    std::vector<std::string> header = {"Framework"};
    for (auto feature : allFeatures())
        header.push_back(featureName(feature));
    bench::row(header, 22);
    bench::rule(header.size(), 22);

    auto print_row = [](const FrameworkRow &fr) {
        std::vector<std::string> cells = {fr.name};
        for (auto support : fr.support)
            cells.push_back(supportMark(support));
        bench::row(cells, 22);
    };
    for (const auto &fr : priorFrameworkRows())
        print_row(fr);
    print_row(stellarRow());
    std::printf("\npaper: Stellar supports every axis except simulator "
                "output, and is the only\nframework with an ISA-level "
                "interface. The Stellar row above is introspected\nfrom "
                "this library at runtime.\n");
}

void
BM_IntrospectStellarRow(benchmark::State &state)
{
    for (auto _ : state) {
        auto row = stellarRow();
        benchmark::DoNotOptimize(row);
    }
}
BENCHMARK(BM_IntrospectStellarRow)->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
