/**
 * @file
 * Fig 19 reproduction: the two merger spatial-array structures. The
 * figure illustrates (a) the row-partitioned merger, one PE per row
 * fiber each popping one element per cycle, and (b) the flattened
 * merger popping multiple elements per cycle from one flattened fiber
 * through a comparator array. Both are generated through the standard
 * pipeline here, and their structural inventories printed side by side.
 */

#include "bench_common.hpp"

#include "accel/designs.hpp"
#include "core/accelerator.hpp"
#include "model/area.hpp"
#include "rtl/generate.hpp"
#include "rtl/lint.hpp"
#include "sim/run_many.hpp"

namespace
{

using namespace stellar;

void
report()
{
    bench::banner("Fig 19: merger spatial-array structures");
    model::AreaParams params;

    struct Row
    {
        const char *label;
        core::AcceleratorSpec spec;
        double mergerArea;
        int comparators;
        const char *popsPerCycle;
    };
    std::vector<Row> rows;
    rows.push_back({"(a) row-partitioned (GAMMA-like)",
                    accel::gammaMergerSpec(32),
                    model::rowPartitionedMergerArea(params, 32), 32,
                    "1 per lane (32 lanes)"});
    rows.push_back({"(b) flattened (SpArch-like)",
                    accel::spArchMergerSpec(16),
                    model::flattenedMergerArea(params, 16), 128,
                    "up to 16 from one fiber"});

    bench::row({"Structure", "merge PEs", "64b comparators",
                "pops/cycle", "area"}, 22);
    bench::rule(5, 22);
    struct RowPoint
    {
        std::int64_t pes = 0;
        std::size_t lintIssues = 0;
    };
    auto points = sim::runMany(
            rows.size(), bench::threads(), [&](std::size_t i) {
                auto generated = core::generate(rows[i].spec);
                auto design = rtl::lowerToVerilog(generated);
                RowPoint point;
                point.pes = generated.array.numPes();
                point.lintIssues = rtl::lintAll(design).size();
                return point;
            });
    for (std::size_t i = 0; i < rows.size(); i++) {
        const auto &row = rows[i];
        bench::row({row.label,
                    std::to_string(points[i].pes *
                                   (row.spec.name == "gamma_merger" ? 32
                                                                    : 1)),
                    std::to_string(row.comparators), row.popsPerCycle,
                    formatDouble(row.mergerArea / 1e3, 1) + "K um^2"},
                   22);
        if (points[i].lintIssues != 0)
            std::printf("  !! %zu lint issues\n", points[i].lintIssues);
    }
    std::printf("\npaper (Fig 19 + Sec VI-D): the row-partitioned merger "
                "assigns each row fiber\nto its own PE; the flattened "
                "merger spends 128 comparators to pop 16\nelements per "
                "cycle from a single flattened fiber, at 13x the area.\n");
}

void
BM_GenerateMergers(benchmark::State &state)
{
    for (auto _ : state) {
        auto gamma = core::generate(accel::gammaMergerSpec(8));
        auto sparch = core::generate(accel::spArchMergerSpec(8));
        benchmark::DoNotOptimize(gamma);
        benchmark::DoNotOptimize(sparch);
    }
}
BENCHMARK(BM_GenerateMergers)->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
