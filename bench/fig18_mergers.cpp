/**
 * @file
 * Fig 18 reproduction: merged elements per cycle of row-partitioned
 * (throughput 32) vs flattened (throughput 16) mergers, merging the
 * partial matrices of C = A*A in SpArch's execution order. The paper
 * reports the row-partitioned merger reaching >= 80% of the flattened
 * merger on over a third of the matrices, and beating it outright on
 * four (e.g. poisson3Da and cop20k_A).
 */

#include "bench_common.hpp"

#include "sim/merger.hpp"
#include "sim/run_many.hpp"
#include "sparse/matrix.hpp"
#include "sparse/suitesparse.hpp"
#include "workloads/cache.hpp"

namespace
{

using namespace stellar;

constexpr std::int64_t kNnzBudget = 60000;

void
report()
{
    bench::banner("Fig 18: merged elements/cycle, row-partitioned (tput "
                  "32) vs flattened (tput 16)");
    std::printf("partial matrices from C = A*A in SpArch pairwise order; "
                "matrices scaled to <= %lld nnz\n\n",
                (long long)kNnzBudget);
    bench::row({"Matrix", "row-part e/c", "flattened e/c", "ratio",
                "winner"}, 15);
    bench::rule(5, 15);

    sim::MergerConfig config;
    struct MatrixPoint
    {
        sim::MergerResult row, flat;
    };
    const auto &profiles = sparse::outerSpaceSuite();
    auto points = sim::runMany(
            profiles.size(), bench::threads(), [&](std::size_t i) {
                auto scaled = sparse::scaleProfile(profiles[i],
                                                   kNnzBudget);
                auto partials = workloads::cachedOuterPartials(scaled, 2);
                MatrixPoint point;
                point.row = sim::runMergeSchedule(
                        config, sim::MergerKind::RowPartitioned,
                        *partials);
                point.flat = sim::runMergeSchedule(
                        config, sim::MergerKind::Flattened, *partials);
                return point;
            });

    int at_least_80 = 0, row_wins = 0, total = 0;
    std::vector<std::string> winners;
    for (std::size_t i = 0; i < profiles.size(); i++) {
        const auto &row = points[i].row;
        const auto &flat = points[i].flat;
        double ratio = row.elementsPerCycle() / flat.elementsPerCycle();
        total++;
        if (ratio >= 0.8)
            at_least_80++;
        if (ratio > 1.0) {
            row_wins++;
            winners.push_back(profiles[i].name);
        }
        bench::row({profiles[i].name,
                    formatDouble(row.elementsPerCycle(), 2),
                    formatDouble(flat.elementsPerCycle(), 2),
                    formatDouble(ratio, 2),
                    ratio > 1.0 ? "row-partitioned" : "flattened"},
                   15);
    }
    bench::rule(5, 15);
    std::printf("\nrow-partitioned >= 80%% of flattened on %d/%d matrices "
                "(paper: over a third)\n", at_least_80, total);
    std::printf("row-partitioned wins outright on %d matrices "
                "(paper: four, incl. poisson3Da, cop20k_A):", row_wins);
    for (const auto &name : winners)
        std::printf(" %s", name.c_str());
    std::printf("\n");
}

void
BM_MergeSchedule(benchmark::State &state)
{
    auto profile = sparse::scaleProfile(
            sparse::profileByName("poisson3Da"), 20000);
    auto partials = workloads::cachedOuterPartials(profile, 2);
    sim::MergerConfig config;
    auto kind = state.range(0) == 0 ? sim::MergerKind::RowPartitioned
                                    : sim::MergerKind::Flattened;
    for (auto _ : state) {
        auto result = sim::runMergeSchedule(config, kind, *partials);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_MergeSchedule)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

STELLAR_BENCH_MAIN(report)
