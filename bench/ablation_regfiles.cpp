/**
 * @file
 * Fig 14 ablation: register-file optimization levels. Shows the
 * comparator/mux/area cost of each regfile kind and which kinds the
 * optimizer actually selects for the book's producer/consumer order
 * scenarios (matched, transposed, reordered-monotone, unknown).
 */

#include "bench_common.hpp"

#include "core/regfile_opt.hpp"
#include "mem/access_order.hpp"
#include "model/area.hpp"
#include "sim/run_many.hpp"

namespace
{

using namespace stellar;

void
report()
{
    model::AreaParams params;
    bench::banner("Fig 14 ablation: regfile kinds (256 entries, 16+16 "
                  "ports, 8-bit data)");
    bench::row({"Kind", "Comparators", "Muxes", "Area (um^2)"}, 18);
    bench::rule(4, 18);
    const std::vector<core::RegfileKind> kinds = {
            core::RegfileKind::FeedForward,
            core::RegfileKind::Transposing,
            core::RegfileKind::EdgeIO,
            core::RegfileKind::FullyAssociative};
    struct KindPoint
    {
        core::RegfileConfig config;
        double area = 0.0;
    };
    auto points = sim::runMany(
            kinds.size(), bench::threads(), [&](std::size_t i) {
                KindPoint point;
                point.config = core::configForKind(kinds[i], 256, 16, 16);
                point.area =
                        model::regfileArea(params, point.config, 8, 16);
                return point;
            });
    for (std::size_t i = 0; i < kinds.size(); i++) {
        bench::row({core::regfileKindName(kinds[i]),
                    std::to_string(points[i].config.comparators),
                    std::to_string(points[i].config.muxes),
                    formatDouble(points[i].area, 0)},
                   18);
    }

    bench::banner("Optimizer selections per producer/consumer scenario");
    bench::row({"Scenario", "Selected kind"}, 30);
    bench::rule(2, 30);

    auto matched_producer = mem::skewedOrder(16, 16);
    auto matched = core::optimizeRegfile(matched_producer,
                                         mem::skewedOrder(16, 16), 256);
    bench::row({"matched skewed orders (Fig 13)",
                core::regfileKindName(matched.kind)}, 30);

    auto row_major = mem::rowMajorOrder({16, 16}, 16);
    mem::AccessOrder col_major;
    for (std::int64_t c = 0; c < 16; c++) {
        std::vector<IntVec> step;
        for (std::int64_t r = 0; r < 16; r++)
            step.push_back({r, c});
        col_major.addStep(step);
    }
    auto transposed = core::optimizeRegfile(row_major, col_major, 256);
    bench::row({"row-major in, column-major out",
                core::regfileKindName(transposed.kind)}, 30);

    auto edge = core::optimizeRegfile(row_major, mem::skewedOrder(16, 16),
                                      256);
    bench::row({"row-major in, skewed out",
                core::regfileKindName(edge.kind)}, 30);

    mem::AccessOrder unknown;
    unknown.addStep({{5, 9}});
    unknown.addStep({{0, 0}});
    auto fallback = core::optimizeRegfile(row_major, unknown, 256);
    bench::row({"unpredictable indirect accesses",
                core::regfileKindName(fallback.kind)}, 30);

    std::printf("\npaper (Fig 14 / Sec IV-D): passes run from the most "
                "efficient structure down,\nfalling back to the "
                "fully-associative design only when nothing cheaper "
                "applies.\n");
}

void
BM_OptimizeRegfile(benchmark::State &state)
{
    auto producer = mem::rowMajorOrder({16, 16}, 16);
    auto consumer = mem::skewedOrder(16, 16);
    for (auto _ : state) {
        auto config = core::optimizeRegfile(producer, consumer, 256);
        benchmark::DoNotOptimize(config);
    }
}
BENCHMARK(BM_OptimizeRegfile);

} // namespace

STELLAR_BENCH_MAIN(report)
