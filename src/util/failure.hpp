/**
 * @file
 * Structured failure taxonomy for the elaboration/DSE/simulation stack.
 *
 * The framework's exploration loops elaborate many candidate designs;
 * one malformed or pathological candidate must degrade to a *recorded
 * outcome*, never a crash of the whole run. This header wraps the
 * PanicError/FatalError split of util/logging.hpp into a classified
 * Failure record that carries the failure kind, the originating stage,
 * and the candidate identity, so DSE drivers and reports can account
 * for failures deterministically.
 */

#ifndef STELLAR_UTIL_FAILURE_HPP
#define STELLAR_UTIL_FAILURE_HPP

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

#include "util/logging.hpp"

namespace stellar::util
{

/** Why a pipeline stage failed. */
enum class FailureKind
{
    UserSpec,      //!< invalid specification or input (FatalError)
    InternalPanic, //!< a stellar bug tripped an invariant (PanicError)
    ResourceBudget, //!< a resource cap was exceeded (ResourceBudgetError)
    Timeout,       //!< a watchdog step budget expired (TimeoutError)
    Unknown,       //!< any other exception type
};

/** Number of FailureKind values (for per-kind counters). */
inline constexpr std::size_t kFailureKindCount = 5;

/** Short stable name of a failure kind (e.g. "user-spec"). */
const char *failureKindName(FailureKind kind);

/**
 * Thrown when a watchdog step budget expires. Carries the diagnostic
 * state dump supplied at the tick that tripped the budget (last point
 * executed, queue occupancies, ...) so a livelocked schedule reports
 * *where* it was spinning instead of looping forever.
 */
class TimeoutError : public std::runtime_error
{
  public:
    TimeoutError(const std::string &stage, std::int64_t steps,
                 std::int64_t budget, const std::string &diagnostic);

    /**
     * A wall-clock deadline expiry (WatchdogScope's max_millis): the
     * stage ran for `elapsed_ms` against a `budget_ms` deadline, having
     * executed `steps` counted units of work. Classified identically to
     * a step-budget expiry (FailureKind::Timeout).
     */
    static TimeoutError wallClock(const std::string &stage,
                                  std::int64_t elapsed_ms,
                                  std::int64_t budget_ms,
                                  std::int64_t steps,
                                  const std::string &diagnostic);

    const std::string &stage() const { return stage_; }
    std::int64_t steps() const { return steps_; }
    std::int64_t budget() const { return budget_; }
    const std::string &diagnostic() const { return diagnostic_; }

    /** True when a wall-clock deadline, not the step budget, expired. */
    bool isWallClock() const { return wallClock_; }
    std::int64_t elapsedMillis() const { return elapsedMillis_; }
    std::int64_t millisBudget() const { return millisBudget_; }

  private:
    /** Raw constructor for the wallClock factory (budget unused: 0). */
    TimeoutError(const std::string &message, const std::string &stage,
                 std::int64_t steps, const std::string &diagnostic)
        : std::runtime_error(message), stage_(stage), steps_(steps),
          budget_(0), diagnostic_(diagnostic)
    {}

    std::string stage_;
    std::int64_t steps_;
    std::int64_t budget_;
    std::string diagnostic_;
    bool wallClock_ = false;
    std::int64_t elapsedMillis_ = 0;
    std::int64_t millisBudget_ = 0;
};

/** Thrown when a candidate exceeds an explicit resource cap. */
class ResourceBudgetError : public std::runtime_error
{
  public:
    explicit ResourceBudgetError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** One classified, recordable failure. */
struct Failure
{
    FailureKind kind = FailureKind::Unknown;
    std::string stage;     //!< pipeline stage that raised it
    std::string candidate; //!< identity of the failing candidate
    std::string message;   //!< human-readable cause

    /** "kind at stage (candidate): message". */
    std::string toString() const;
};

/**
 * Classify a captured exception into the taxonomy. `stage` and
 * `candidate` annotate the record; a TimeoutError's own stage wins when
 * `stage` is empty. Classification depends only on the exception, so
 * serial and parallel explorations produce identical records.
 */
Failure classifyException(std::exception_ptr error,
                          const std::string &stage = {},
                          const std::string &candidate = {});

} // namespace stellar::util

#endif // STELLAR_UTIL_FAILURE_HPP
