/**
 * @file
 * One hardened JSON-subset parser for every untrusted text surface.
 *
 * Two independent parsers used to guard JSON inputs (the calibration
 * corpus reader and, with the serve daemon, its request surface); a
 * hardening fix to one silently missed the other. This module is the
 * single shared implementation: a recursive-descent parser over the
 * JSON subset our serializers emit (objects, arrays, strings with the
 * short escape set, strtod numbers, true/false/null), with a byte
 * offset in every diagnostic, a nesting-depth cap, and an optional
 * input-size cap so hostile requests fail loudly and cheaply instead
 * of exhausting the stack or the heap.
 *
 * Consumers: model/calibration.cpp (corpus records), serve/protocol
 * (daemon requests/responses), serve/snapshot (design-memo warm-start
 * files). All of them validate *semantics* (required keys, value
 * ranges) on the parsed Value tree; this layer owns syntax only.
 */

#ifndef STELLAR_UTIL_JSON_HPP
#define STELLAR_UTIL_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stellar::util::json
{

/** One parsed JSON value; a small ordered document tree. */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;

    /** Object members in input order (duplicate keys are rejected at
     *  parse time, so lookup by key is unambiguous). */
    std::vector<std::pair<std::string, Value>> object;

    /** Byte offset of the value's first character in the parsed text,
     *  for semantic diagnostics ("unknown field at byte N"). */
    std::size_t offset = 0;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** The member named `key`, or nullptr (objects only). */
    const Value *find(const std::string &key) const;
};

/** Parser limits; the defaults suit every current consumer. */
struct ParseLimits
{
    /** Maximum input size in bytes (0 = unlimited). */
    std::size_t maxBytes = 0;

    /** Maximum container nesting depth; a hostile "[[[[..." must die
     *  by diagnostic, not by stack overflow. */
    std::size_t maxDepth = 64;
};

/**
 * Parse one JSON document (trailing content is an error). Every
 * failure raises util FatalError with the message prefixed by `what`
 * and carrying the byte offset of the problem. Numbers must be finite
 * (no nan/inf tokens); strings support the \" \\ \/ \b \f \n \r \t
 * escapes (anything else, including \u, is rejected).
 */
Value parse(const std::string &text, const std::string &what = "json",
            const ParseLimits &limits = {});

/** Serialize a value compactly (no whitespace), escaping strings with
 *  the same short escape set parse() accepts. Numbers print as %.17g,
 *  so every finite double round-trips exactly. */
std::string serialize(const Value &value);

/** %.17g: the shortest text that round-trips every finite double. */
std::string serializeDouble(double value);

/** Quote + escape a string for embedding in hand-built JSON text.
 *  Bytes outside the escape set that are not printable ASCII are
 *  emitted as-is (the parser reads them back verbatim). */
std::string quote(const std::string &text);

/**
 * Require that `value.number` is an integral value representable in
 * int64; raises FatalError naming `what` and the byte offset
 * otherwise. The guard every integer-typed request field goes through.
 */
std::int64_t toInt64(const Value &value, const std::string &what);

} // namespace stellar::util::json

#endif // STELLAR_UTIL_JSON_HPP
