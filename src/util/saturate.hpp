/**
 * @file
 * Saturating 64-bit integer arithmetic.
 *
 * Analytic candidate scoring multiplies per-axis extents that are
 * themselves products of transform coefficients and elaboration bounds;
 * at extreme coefficients those products exceed the int64 range. A
 * wrapped product silently turns an astronomically large design into a
 * small (or negative) one and corrupts pruning decisions, so the
 * geometry helpers clamp to the representable range instead and let
 * callers observe the clamp through the optional `saturated` flag.
 */

#ifndef STELLAR_UTIL_SATURATE_HPP
#define STELLAR_UTIL_SATURATE_HPP

#include <cstdint>
#include <limits>

namespace stellar::util
{

/** a + b, clamped to the int64 range; *saturated set on clamp. */
inline std::int64_t
satAdd(std::int64_t a, std::int64_t b, bool *saturated = nullptr)
{
    std::int64_t out = 0;
    if (!__builtin_add_overflow(a, b, &out))
        return out;
    if (saturated != nullptr)
        *saturated = true;
    // Addition only overflows when both operands share a sign.
    return a < 0 ? std::numeric_limits<std::int64_t>::min()
                 : std::numeric_limits<std::int64_t>::max();
}

/** a * b, clamped to the int64 range; *saturated set on clamp. */
inline std::int64_t
satMul(std::int64_t a, std::int64_t b, bool *saturated = nullptr)
{
    std::int64_t out = 0;
    if (!__builtin_mul_overflow(a, b, &out))
        return out;
    if (saturated != nullptr)
        *saturated = true;
    return (a < 0) == (b < 0)
                   ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min();
}

} // namespace stellar::util

#endif // STELLAR_UTIL_SATURATE_HPP
