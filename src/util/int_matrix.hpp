/**
 * @file
 * Small dense integer and rational matrices.
 *
 * These back the space-time transforms of Section III-B: the transform T is
 * an invertible integer matrix, applied to integer iteration vectors, and
 * inverted exactly (via the adjugate) to recover tensor iterators from
 * space-time coordinates inside PEs (Fig 11).
 */

#ifndef STELLAR_UTIL_INT_MATRIX_HPP
#define STELLAR_UTIL_INT_MATRIX_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/fraction.hpp"

namespace stellar
{

using IntVec = std::vector<std::int64_t>;
using FracVec = std::vector<Fraction>;

class FracMatrix;

/** A small, dense, row-major matrix of 64-bit integers. */
class IntMatrix
{
  public:
    IntMatrix() : rows_(0), cols_(0) {}
    IntMatrix(int rows, int cols);

    /** Build from a row-major nested initializer, e.g. {{1,0},{0,1}}. */
    IntMatrix(std::initializer_list<std::initializer_list<std::int64_t>> rows);

    static IntMatrix identity(int n);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    std::int64_t &at(int r, int c);
    std::int64_t at(int r, int c) const;

    IntVec row(int r) const;
    IntVec col(int c) const;

    IntMatrix operator*(const IntMatrix &other) const;
    IntVec operator*(const IntVec &v) const;
    IntMatrix operator+(const IntMatrix &other) const;
    IntMatrix operator-(const IntMatrix &other) const;
    bool operator==(const IntMatrix &other) const = default;

    IntMatrix transpose() const;

    /** Exact determinant by cofactor expansion (matrices here are tiny). */
    std::int64_t determinant() const;

    bool isSquare() const { return rows_ == cols_; }
    bool isInvertible() const;

    /** Exact inverse as a rational matrix; fatal if singular. */
    FracMatrix inverse() const;

    std::string toString() const;

  private:
    std::int64_t minorDet(int skip_row, int skip_col) const;

    int rows_;
    int cols_;
    std::vector<std::int64_t> data_;
};

/** A small, dense, row-major matrix of exact rationals. */
class FracMatrix
{
  public:
    FracMatrix() : rows_(0), cols_(0) {}
    FracMatrix(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    Fraction &at(int r, int c);
    const Fraction &at(int r, int c) const;

    FracVec operator*(const FracVec &v) const;
    FracVec operator*(const IntVec &v) const;
    FracMatrix operator*(const FracMatrix &other) const;
    bool operator==(const FracMatrix &other) const = default;

    /** True when every entry is integral. */
    bool isIntegral() const;

    /** Convert to an integer matrix; panics when not integral. */
    IntMatrix toIntMatrix() const;

    std::string toString() const;

  private:
    int rows_;
    int cols_;
    std::vector<Fraction> data_;
};

/** Element-wise difference a - b of equal-length vectors. */
IntVec vecSub(const IntVec &a, const IntVec &b);

/** Element-wise sum of equal-length vectors. */
IntVec vecAdd(const IntVec &a, const IntVec &b);

/** Sum of absolute values (L1 norm), used for wire-length estimates. */
std::int64_t vecL1(const IntVec &v);

/** True when every component is zero. */
bool vecIsZero(const IntVec &v);

std::string vecToString(const IntVec &v);
std::string vecToString(const FracVec &v);

} // namespace stellar

#endif // STELLAR_UTIL_INT_MATRIX_HPP
