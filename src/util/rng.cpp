#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace stellar
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    require(bound > 0, "Rng::nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = -bound % bound;
    while (true) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    require(lo <= hi, "Rng::nextRange requires lo <= hi");
    std::uint64_t span = std::uint64_t(hi - lo) + 1;
    return lo + std::int64_t(nextBounded(span));
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double probability)
{
    return nextDouble() < probability;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    double sum = 0.0;
    for (int i = 0; i < 12; i++)
        sum += nextDouble();
    return mean + (sum - 6.0) * stddev;
}

std::size_t
Rng::nextZipf(std::size_t n, double s)
{
    require(n > 0, "Rng::nextZipf requires n > 0");
    // Inverse-CDF sampling against the (approximated) generalized
    // harmonic normalizer. Accurate enough for workload shaping.
    double h = 0.0;
    // For large n, approximate the tail of the harmonic sum analytically.
    const std::size_t exact_terms = n < 1024 ? n : 1024;
    for (std::size_t k = 1; k <= exact_terms; k++)
        h += 1.0 / std::pow(double(k), s);
    if (n > exact_terms) {
        if (s == 1.0) {
            h += std::log(double(n) / double(exact_terms));
        } else {
            h += (std::pow(double(n), 1.0 - s) -
                  std::pow(double(exact_terms), 1.0 - s)) / (1.0 - s);
        }
    }
    double target = nextDouble() * h;
    double acc = 0.0;
    for (std::size_t k = 1; k <= exact_terms; k++) {
        acc += 1.0 / std::pow(double(k), s);
        if (acc >= target)
            return k - 1;
    }
    // Landed in the approximated tail: spread uniformly across it.
    return exact_terms + nextBounded(n - exact_terms);
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; i++)
        perm[i] = i;
    for (std::size_t i = n; i > 1; i--) {
        std::size_t j = nextBounded(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

} // namespace stellar
