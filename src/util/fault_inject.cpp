#include "util/fault_inject.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/failure.hpp"
#include "util/logging.hpp"

namespace stellar::util::fault
{

namespace
{

/** An armed spec plus its fire count (for InjectionSpec::maxFires). */
struct ArmedSpec
{
    InjectionSpec spec;
    std::uint64_t fired = 0;
};

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_fired{0};
std::mutex g_mutex;
std::vector<ArmedSpec> g_specs;

thread_local std::uint64_t t_context = kNoContext;

void
fire(const InjectionSpec &spec, const std::string &stage,
     std::uint64_t context)
{
    g_fired.fetch_add(1, std::memory_order_relaxed);
    if (spec.cls == FaultClass::Stall) {
        // A slow checkpoint, not a failing one: burn wall-clock time so
        // deadline watchdogs have something real to catch.
        std::this_thread::sleep_for(
                std::chrono::microseconds(spec.stallMicros));
        return;
    }
    std::string who = context == kNoContext
                              ? std::string("unscoped")
                              : "candidate " + std::to_string(context);
    std::string msg = "injected fault at " + stage + " (" + who + ")";
    switch (spec.cls) {
      case FaultClass::Fatal:
        throw FatalError(msg);
      case FaultClass::Panic:
        throw PanicError(msg);
      case FaultClass::Timeout:
        throw TimeoutError(stage, 0, 0, msg);
      case FaultClass::Budget:
        throw ResourceBudgetError(msg);
      case FaultClass::Stall:
        break; // handled above
    }
}

} // namespace

void
arm(const InjectionSpec &spec)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_specs.push_back(ArmedSpec{spec, 0});
    g_armed.store(true, std::memory_order_release);
}

void
reset()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_specs.clear();
    g_armed.store(false, std::memory_order_release);
}

bool
armed()
{
    return g_armed.load(std::memory_order_acquire);
}

std::uint64_t
firedCount()
{
    return g_fired.load(std::memory_order_relaxed);
}

void
checkpoint(const std::string &stage)
{
    if (!g_armed.load(std::memory_order_acquire))
        return;
    InjectionSpec hit;
    bool matched = false;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        for (auto &armed_spec : g_specs) {
            const InjectionSpec &spec = armed_spec.spec;
            if (!spec.matches(stage, t_context))
                continue;
            // Exhausted one-shot (or N-shot) specs stay armed but
            // silent; the count mutates under the injector lock so
            // concurrent checkpoints race for the remaining shots
            // without double-firing.
            if (spec.maxFires != 0 && armed_spec.fired >= spec.maxFires)
                continue;
            armed_spec.fired++;
            hit = spec;
            matched = true;
            break;
        }
    }
    if (matched)
        fire(hit, stage, t_context);
}

ScopedContext::ScopedContext(std::uint64_t id) : previous_(t_context)
{
    t_context = id;
}

ScopedContext::~ScopedContext()
{
    t_context = previous_;
}

std::uint64_t
currentContext()
{
    return t_context;
}

std::string
corruptMatrixMarket(const std::string &text, MtxCorruption mode)
{
    // Split into lines, keeping the structure: line 0 is the banner,
    // the first non-comment line after it is the size header, and the
    // remainder are entries.
    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);

    std::size_t size_line = lines.size();
    for (std::size_t i = 1; i < lines.size(); i++) {
        if (!lines[i].empty() && lines[i][0] != '%') {
            size_line = i;
            break;
        }
    }
    std::size_t first_entry = size_line + 1;

    switch (mode) {
      case MtxCorruption::TruncateEntries:
        if (first_entry < lines.size())
            lines.resize(lines.size() - 1);
        break;
      case MtxCorruption::BadBanner:
        if (!lines.empty())
            lines[0] = "%%NotMatrixMarket matrix coordinate real general";
        break;
      case MtxCorruption::NonNumericSize:
        if (size_line < lines.size())
            lines[size_line] = "rows cols nnz";
        break;
      case MtxCorruption::OutOfRangeIndex:
        if (first_entry < lines.size())
            lines[first_entry] = "999999 999999 1.0";
        break;
      case MtxCorruption::ShortRow:
        if (first_entry < lines.size()) {
            // Keep only the row coordinate: both the column index and
            // the value go missing.
            std::string &entry = lines[first_entry];
            auto cut = entry.find(' ');
            if (cut != std::string::npos)
                entry = entry.substr(0, cut);
        }
        break;
    }

    std::string out;
    for (const auto &line : lines)
        out += line + "\n";
    return out;
}

} // namespace stellar::util::fault
