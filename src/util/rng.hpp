/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All synthetic workloads (sparse matrix generators, pruned-DNN densities)
 * derive from this generator so experiments are reproducible bit-for-bit
 * across runs and platforms.
 */

#ifndef STELLAR_UTIL_RNG_HPP
#define STELLAR_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace stellar
{

/** A splitmix64-seeded xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5713ac3915ULL);

    /** A uniform 64-bit value. */
    std::uint64_t next();

    /** A uniform value in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** A uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** A uniform double in [0, 1). */
    double nextDouble();

    /** True with the given probability. */
    bool nextBool(double probability);

    /** An approximately normal sample (12-term Irwin-Hall). */
    double nextGaussian(double mean, double stddev);

    /**
     * A Zipf-distributed integer in [0, n) with skew parameter s. Used to
     * model the heavy-tailed row-length distributions of SuiteSparse
     * matrices (Sec VI-C / VI-D workloads).
     */
    std::size_t nextZipf(std::size_t n, double s);

    /** A uniformly shuffled permutation of [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

  private:
    std::uint64_t state_[4];
};

} // namespace stellar

#endif // STELLAR_UTIL_RNG_HPP
