#include "util/memo.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace stellar::util
{

namespace
{

/** Magic first line of a spill file; bump on any layout change. */
constexpr const char *kSpillMagic = "STLRSPL1\n";

std::string
spillFileName(std::uint64_t hash)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx.spill",
                  (unsigned long long)hash);
    return buffer;
}

std::string
checksumHex(std::uint64_t hash)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)hash);
    return buffer;
}

/** Parse the decimal run after `prefix` at `at`; false on mismatch. */
bool
parseSizeLine(const std::string &text, std::size_t &at,
              const char *prefix, std::size_t &value_out)
{
    std::size_t prefix_len = std::char_traits<char>::length(prefix);
    if (text.compare(at, prefix_len, prefix) != 0)
        return false;
    at += prefix_len;
    if (at >= text.size() || text[at] < '0' || text[at] > '9')
        return false;
    std::uint64_t value = 0;
    while (at < text.size() && text[at] >= '0' && text[at] <= '9') {
        value = value * 10 + std::uint64_t(text[at] - '0');
        if (value > (std::uint64_t(1) << 40))
            return false; // absurd length: damaged header
        at++;
    }
    if (at >= text.size() || text[at] != '\n')
        return false;
    at++;
    value_out = std::size_t(value);
    return true;
}

} // namespace

void
MemoCache::setSpill(const std::string &dir,
                    std::uint64_t disk_byte_budget)
{
    std::lock_guard<std::mutex> lock(spill_.mutex);
    spill_.dir = dir;
    spill_.diskBudget = disk_byte_budget;
}

bool
MemoCache::spillEnabled() const
{
    std::lock_guard<std::mutex> lock(spill_.mutex);
    return !spill_.dir.empty();
}

std::string
MemoCache::spillDir() const
{
    std::lock_guard<std::mutex> lock(spill_.mutex);
    return spill_.dir;
}

void
MemoCache::spillStore(const std::string &key,
                      const std::shared_ptr<const void> &payload,
                      const SpillHooks &hooks)
{
    try {
        // Serialize outside the spill mutex: hooks are user code.
        std::string body = hooks.serialize(payload);
        std::string checksum =
                checksumHex(fnv1a(body, fnv1a(key)));

        std::lock_guard<std::mutex> lock(spill_.mutex);
        if (spill_.dir.empty())
            return;
        std::string path =
                spill_.dir + "/" + spillFileName(fnv1a(key));
        std::string temp = path + ".tmp";
        std::string text = kSpillMagic;
        text += "k=" + std::to_string(key.size()) + "\n";
        text += key;
        text += "\np=" + std::to_string(body.size()) + "\n";
        text += body;
        text += "\nc=" + checksum + "\n";
        {
            std::ofstream out(temp,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                return; // best effort: unwritable dir is a no-op
            out << text;
            if (!out.flush()) {
                std::remove(temp.c_str());
                return;
            }
        }
        if (std::rename(temp.c_str(), path.c_str()) != 0) {
            std::remove(temp.c_str());
            return;
        }
        // Index the file for disk-budget accounting; an overwrite of
        // the same path (hash collision, or the same key re-spilled)
        // replaces its slot rather than double-counting.
        auto it = spill_.index.find(path);
        if (it != spill_.index.end()) {
            spill_.diskBytes -= it->second->second;
            spill_.order.erase(it->second);
            spill_.index.erase(it);
        }
        spill_.order.emplace_back(path, std::uint64_t(text.size()));
        spill_.index.emplace(path, std::prev(spill_.order.end()));
        spill_.diskBytes += std::uint64_t(text.size());
        spill_.spills++;
        while (spill_.diskBudget > 0 &&
               spill_.diskBytes > spill_.diskBudget &&
               spill_.order.size() > 1) {
            auto &victim = spill_.order.front();
            std::remove(victim.first.c_str());
            spill_.diskBytes -= victim.second;
            spill_.index.erase(victim.first);
            spill_.order.pop_front();
        }
    } catch (...) {
        // Spilling is strictly best-effort: a failure here must never
        // surface to the insert that triggered the eviction.
    }
}

std::shared_ptr<const void>
MemoCache::spillLoad(const std::string &key, std::uint64_t hash,
                     const SpillHooks &hooks, std::uint64_t &bytes_out)
{
    try {
        std::string text;
        {
            std::lock_guard<std::mutex> lock(spill_.mutex);
            if (spill_.dir.empty())
                return nullptr;
            std::string path =
                    spill_.dir + "/" + spillFileName(hash);
            std::ifstream in(path, std::ios::binary);
            if (!in)
                return nullptr; // never spilled (or already aged out)
            std::ostringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }

        // Validate layout, key identity, and checksum; any damage —
        // truncation, a flipped byte, a hash-collision file for a
        // different key — is silently a miss.
        std::size_t at = 0;
        std::size_t magic_len =
                std::char_traits<char>::length(kSpillMagic);
        if (text.compare(0, magic_len, kSpillMagic) != 0)
            return nullptr;
        at = magic_len;
        std::size_t key_len = 0;
        if (!parseSizeLine(text, at, "k=", key_len))
            return nullptr;
        if (at + key_len > text.size() ||
            text.compare(at, key_len, key) != 0 || key_len != key.size())
            return nullptr;
        at += key_len;
        std::size_t body_len = 0;
        if (at >= text.size() || text[at] != '\n')
            return nullptr;
        at++;
        if (!parseSizeLine(text, at, "p=", body_len))
            return nullptr;
        if (at + body_len > text.size())
            return nullptr;
        std::string body = text.substr(at, body_len);
        at += body_len;
        std::string expected =
                checksumHex(fnv1a(body, fnv1a(key)));
        if (text.compare(at, 3 + expected.size() + 1,
                         "\nc=" + expected + "\n") != 0)
            return nullptr;

        bytes_out = 0;
        auto payload = hooks.deserialize(body, bytes_out);
        if (payload == nullptr)
            return nullptr;
        std::lock_guard<std::mutex> lock(spill_.mutex);
        spill_.reloads++;
        return payload;
    } catch (...) {
        return nullptr; // a throwing deserializer is a plain miss
    }
}

void
MemoCache::spillWipe()
{
    std::lock_guard<std::mutex> lock(spill_.mutex);
    for (const auto &entry : spill_.order)
        std::remove(entry.first.c_str());
    spill_.order.clear();
    spill_.index.clear();
    spill_.diskBytes = 0;
}

} // namespace stellar::util
