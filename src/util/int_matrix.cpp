#include "util/int_matrix.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar
{

IntMatrix::IntMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(std::size_t(rows) * cols, 0)
{
    require(rows >= 0 && cols >= 0, "IntMatrix dimensions must be nonnegative");
}

IntMatrix::IntMatrix(
        std::initializer_list<std::initializer_list<std::int64_t>> rows)
    : rows_(int(rows.size())), cols_(0)
{
    for (const auto &row : rows) {
        if (cols_ == 0)
            cols_ = int(row.size());
        require(int(row.size()) == cols_, "IntMatrix rows must be equal length");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

IntMatrix
IntMatrix::identity(int n)
{
    IntMatrix m(n, n);
    for (int i = 0; i < n; i++)
        m.at(i, i) = 1;
    return m;
}

std::int64_t &
IntMatrix::at(int r, int c)
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "IntMatrix index out of range");
    return data_[std::size_t(r) * cols_ + c];
}

std::int64_t
IntMatrix::at(int r, int c) const
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "IntMatrix index out of range");
    return data_[std::size_t(r) * cols_ + c];
}

IntVec
IntMatrix::row(int r) const
{
    IntVec out(cols_);
    for (int c = 0; c < cols_; c++)
        out[c] = at(r, c);
    return out;
}

IntVec
IntMatrix::col(int c) const
{
    IntVec out(rows_);
    for (int r = 0; r < rows_; r++)
        out[r] = at(r, c);
    return out;
}

IntMatrix
IntMatrix::operator*(const IntMatrix &other) const
{
    require(cols_ == other.rows_, "IntMatrix multiply shape mismatch");
    IntMatrix out(rows_, other.cols_);
    for (int r = 0; r < rows_; r++) {
        for (int k = 0; k < cols_; k++) {
            std::int64_t a = at(r, k);
            if (a == 0)
                continue;
            for (int c = 0; c < other.cols_; c++)
                out.at(r, c) += a * other.at(k, c);
        }
    }
    return out;
}

IntVec
IntMatrix::operator*(const IntVec &v) const
{
    require(int(v.size()) == cols_, "IntMatrix-vector shape mismatch");
    IntVec out(rows_, 0);
    for (int r = 0; r < rows_; r++)
        for (int c = 0; c < cols_; c++)
            out[r] += at(r, c) * v[c];
    return out;
}

IntMatrix
IntMatrix::operator+(const IntMatrix &other) const
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "IntMatrix add shape mismatch");
    IntMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); i++)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

IntMatrix
IntMatrix::operator-(const IntMatrix &other) const
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "IntMatrix subtract shape mismatch");
    IntMatrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); i++)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

IntMatrix
IntMatrix::transpose() const
{
    IntMatrix out(cols_, rows_);
    for (int r = 0; r < rows_; r++)
        for (int c = 0; c < cols_; c++)
            out.at(c, r) = at(r, c);
    return out;
}

std::int64_t
IntMatrix::minorDet(int skip_row, int skip_col) const
{
    IntMatrix sub(rows_ - 1, cols_ - 1);
    int sr = 0;
    for (int r = 0; r < rows_; r++) {
        if (r == skip_row)
            continue;
        int sc = 0;
        for (int c = 0; c < cols_; c++) {
            if (c == skip_col)
                continue;
            sub.at(sr, sc) = at(r, c);
            sc++;
        }
        sr++;
    }
    return sub.determinant();
}

std::int64_t
IntMatrix::determinant() const
{
    require(isSquare(), "determinant requires a square matrix");
    if (rows_ == 0)
        return 1;
    if (rows_ == 1)
        return at(0, 0);
    if (rows_ == 2)
        return at(0, 0) * at(1, 1) - at(0, 1) * at(1, 0);
    std::int64_t det = 0;
    for (int c = 0; c < cols_; c++) {
        if (at(0, c) == 0)
            continue;
        std::int64_t sign = (c % 2 == 0) ? 1 : -1;
        det += sign * at(0, c) * minorDet(0, c);
    }
    return det;
}

bool
IntMatrix::isInvertible() const
{
    return isSquare() && determinant() != 0;
}

FracMatrix
IntMatrix::inverse() const
{
    require(isSquare(), "inverse requires a square matrix");
    std::int64_t det = determinant();
    require(det != 0, "matrix is singular; no inverse exists");
    FracMatrix inv(rows_, cols_);
    // inverse = adjugate / det; adjugate[r][c] = cofactor[c][r].
    for (int r = 0; r < rows_; r++) {
        for (int c = 0; c < cols_; c++) {
            std::int64_t sign = ((r + c) % 2 == 0) ? 1 : -1;
            std::int64_t cof = sign * minorDet(c, r);
            inv.at(r, c) = Fraction(cof, det);
        }
    }
    return inv;
}

std::string
IntMatrix::toString() const
{
    std::ostringstream os;
    os << "[";
    for (int r = 0; r < rows_; r++) {
        os << (r == 0 ? "[" : " [");
        for (int c = 0; c < cols_; c++)
            os << at(r, c) << (c + 1 < cols_ ? ", " : "");
        os << "]" << (r + 1 < rows_ ? "\n" : "");
    }
    os << "]";
    return os.str();
}

FracMatrix::FracMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), data_(std::size_t(rows) * cols)
{
    require(rows >= 0 && cols >= 0,
            "FracMatrix dimensions must be nonnegative");
}

Fraction &
FracMatrix::at(int r, int c)
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "FracMatrix index out of range");
    return data_[std::size_t(r) * cols_ + c];
}

const Fraction &
FracMatrix::at(int r, int c) const
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "FracMatrix index out of range");
    return data_[std::size_t(r) * cols_ + c];
}

FracVec
FracMatrix::operator*(const FracVec &v) const
{
    require(int(v.size()) == cols_, "FracMatrix-vector shape mismatch");
    FracVec out(rows_);
    for (int r = 0; r < rows_; r++)
        for (int c = 0; c < cols_; c++)
            out[r] += at(r, c) * v[c];
    return out;
}

FracVec
FracMatrix::operator*(const IntVec &v) const
{
    FracVec fv(v.begin(), v.end());
    return *this * fv;
}

FracMatrix
FracMatrix::operator*(const FracMatrix &other) const
{
    require(cols_ == other.rows_, "FracMatrix multiply shape mismatch");
    FracMatrix out(rows_, other.cols_);
    for (int r = 0; r < rows_; r++)
        for (int k = 0; k < cols_; k++)
            for (int c = 0; c < other.cols_; c++)
                out.at(r, c) += at(r, k) * other.at(k, c);
    return out;
}

bool
FracMatrix::isIntegral() const
{
    for (const auto &f : data_)
        if (!f.isInteger())
            return false;
    return true;
}

IntMatrix
FracMatrix::toIntMatrix() const
{
    invariant(isIntegral(), "FracMatrix is not integral");
    IntMatrix out(rows_, cols_);
    for (int r = 0; r < rows_; r++)
        for (int c = 0; c < cols_; c++)
            out.at(r, c) = at(r, c).toInteger();
    return out;
}

std::string
FracMatrix::toString() const
{
    std::ostringstream os;
    os << "[";
    for (int r = 0; r < rows_; r++) {
        os << (r == 0 ? "[" : " [");
        for (int c = 0; c < cols_; c++)
            os << at(r, c).toString() << (c + 1 < cols_ ? ", " : "");
        os << "]" << (r + 1 < rows_ ? "\n" : "");
    }
    os << "]";
    return os.str();
}

IntVec
vecSub(const IntVec &a, const IntVec &b)
{
    require(a.size() == b.size(), "vecSub length mismatch");
    IntVec out(a.size());
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] - b[i];
    return out;
}

IntVec
vecAdd(const IntVec &a, const IntVec &b)
{
    require(a.size() == b.size(), "vecAdd length mismatch");
    IntVec out(a.size());
    for (std::size_t i = 0; i < a.size(); i++)
        out[i] = a[i] + b[i];
    return out;
}

std::int64_t
vecL1(const IntVec &v)
{
    std::int64_t sum = 0;
    for (auto x : v)
        sum += x < 0 ? -x : x;
    return sum;
}

bool
vecIsZero(const IntVec &v)
{
    for (auto x : v)
        if (x != 0)
            return false;
    return true;
}

std::string
vecToString(const IntVec &v)
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < v.size(); i++)
        os << v[i] << (i + 1 < v.size() ? ", " : "");
    os << ")";
    return os.str();
}

std::string
vecToString(const FracVec &v)
{
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < v.size(); i++)
        os << v[i].toString() << (i + 1 < v.size() ? ", " : "");
    os << ")";
    return os.str();
}

} // namespace stellar
