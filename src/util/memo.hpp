/**
 * @file
 * Generic sharded, byte-budgeted memoization substrate.
 *
 * MemoCache maps canonical string keys to immutable, type-erased
 * payloads (`shared_ptr<const void>`). It is the storage layer under
 * workloads::Cache; the typed layer owns key construction and payload
 * sizing, this layer owns concurrency, statistics, and eviction.
 *
 * Concurrency: the key's FNV-1a hash selects one of kShardCount
 * independent shards, each a mutex + LRU list + hash map, so parallel
 * sweep workers touching different workloads rarely contend. A lookup
 * or insert holds exactly one shard mutex and never calls user code
 * under it (payload factories run in the caller, outside any lock).
 *
 * Eviction: each shard owns an equal slice of the byte budget and
 * evicts least-recently-used entries when an insert pushes it over.
 * The entry being inserted is never evicted by its own insert (a
 * single over-budget payload stays resident until something displaces
 * it). Eviction drops only the cache's reference — outstanding
 * shared_ptr holders keep the payload alive, so pointers obtained from
 * lookup are stable for as long as the caller holds them.
 *
 * Collisions: the hash only picks the shard; the shard map is keyed by
 * the full canonical string, so two distinct keys can never alias.
 */

#ifndef STELLAR_UTIL_MEMO_HPP
#define STELLAR_UTIL_MEMO_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace stellar::util
{

/** FNV-1a 64-bit constants (same scheme as the RTL golden hashes). */
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/** FNV-1a 64-bit hash of a byte string. */
inline std::uint64_t
fnv1a(std::string_view text, std::uint64_t hash = kFnv1aOffset)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= kFnv1aPrime;
    }
    return hash;
}

/** Aggregate counters across every shard. hits + misses == lookups. */
struct MemoStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;   //!< resident payload bytes
    std::uint64_t entries = 0; //!< resident entry count
};

class MemoCache
{
  public:
    static constexpr std::size_t kShardCount = 16;

    /** `byte_budget` of 0 means unlimited. */
    explicit MemoCache(std::uint64_t byte_budget = 0)
    {
        setByteBudget(byte_budget);
    }

    MemoCache(const MemoCache &) = delete;
    MemoCache &operator=(const MemoCache &) = delete;

    /** Split `byte_budget` evenly across shards; 0 disables eviction.
     *  Existing entries are re-evicted lazily on the next inserts. */
    void
    setByteBudget(std::uint64_t byte_budget)
    {
        std::uint64_t per_shard =
                byte_budget == 0 ? 0
                                 : std::max<std::uint64_t>(
                                           1, byte_budget / kShardCount);
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.byteBudget = per_shard;
        }
    }

    /**
     * Find `key` (whose FNV-1a hash is `hash`); returns the payload and
     * marks the entry most-recently-used, or nullptr on a miss.
     */
    std::shared_ptr<const void>
    lookup(const std::string &key, std::uint64_t hash)
    {
        Shard &shard = shardFor(hash);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.lookups++;
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            shard.misses++;
            return nullptr;
        }
        shard.hits++;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->payload;
    }

    /**
     * Insert `key` -> `payload` (`bytes` is the payload's resident
     * size) and evict LRU entries past the shard budget. If the key is
     * already resident — two threads missed and synthesized
     * concurrently — the incumbent wins and is returned, so every
     * caller shares one payload. Returns the resident payload.
     */
    std::shared_ptr<const void>
    insert(const std::string &key, std::uint64_t hash,
           std::shared_ptr<const void> payload, std::uint64_t bytes)
    {
        Shard &shard = shardFor(hash);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return it->second->payload;
        }
        shard.lru.push_front(Entry{key, std::move(payload), bytes});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
        shard.inserts++;
        while (shard.byteBudget > 0 && shard.bytes > shard.byteBudget &&
               shard.lru.size() > 1) {
            const Entry &victim = shard.lru.back();
            shard.bytes -= victim.bytes;
            shard.map.erase(victim.key);
            shard.lru.pop_back();
            shard.evictions++;
        }
        return shard.lru.front().payload;
    }

    /** Drop every entry (counters are kept). */
    void
    clear()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.bytes = 0;
            shard.map.clear();
            shard.lru.clear();
        }
    }

    /** Reset counters *and* contents (for test isolation). */
    void
    reset()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.bytes = 0;
            shard.map.clear();
            shard.lru.clear();
            shard.lookups = shard.hits = shard.misses = 0;
            shard.inserts = shard.evictions = 0;
        }
    }

    /**
     * Visit every resident entry as fn(key, payload, bytes). Shards are
     * walked in index order and each shard least-recently-used first,
     * so re-inserting a snapshot in visit order reproduces the LRU
     * recency it was taken from. Each shard's mutex is held across its
     * entries; `fn` must not call back into the cache.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto it = shard.lru.rbegin(); it != shard.lru.rend();
                 ++it)
                fn(it->key, it->payload, it->bytes);
        }
    }

    MemoStats
    stats() const
    {
        MemoStats total;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total.lookups += shard.lookups;
            total.hits += shard.hits;
            total.misses += shard.misses;
            total.inserts += shard.inserts;
            total.evictions += shard.evictions;
            total.bytes += shard.bytes;
            total.entries += shard.lru.size();
        }
        return total;
    }

  private:
    struct Entry
    {
        std::string key;
        std::shared_ptr<const void> payload;
        std::uint64_t bytes = 0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; //!< front = most recently used
        std::unordered_map<std::string, std::list<Entry>::iterator> map;
        std::uint64_t byteBudget = 0;
        std::uint64_t bytes = 0;
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
    };

    Shard &
    shardFor(std::uint64_t hash)
    {
        return shards_[hash % kShardCount];
    }

    Shard shards_[kShardCount];
};

} // namespace stellar::util

#endif // STELLAR_UTIL_MEMO_HPP
