/**
 * @file
 * Generic sharded, byte-budgeted memoization substrate.
 *
 * MemoCache maps canonical string keys to immutable, type-erased
 * payloads (`shared_ptr<const void>`). It is the storage layer under
 * workloads::Cache; the typed layer owns key construction and payload
 * sizing, this layer owns concurrency, statistics, and eviction.
 *
 * Concurrency: the key's FNV-1a hash selects one of kShardCount
 * independent shards, each a mutex + LRU list + hash map, so parallel
 * sweep workers touching different workloads rarely contend. A lookup
 * or insert holds exactly one shard mutex and never calls user code
 * under it (payload factories run in the caller, outside any lock).
 *
 * Eviction: each shard owns an equal slice of the byte budget and
 * evicts least-recently-used entries when an insert pushes it over.
 * The entry being inserted is never evicted by its own insert (a
 * single over-budget payload stays resident until something displaces
 * it). Eviction drops only the cache's reference — outstanding
 * shared_ptr holders keep the payload alive, so pointers obtained from
 * lookup are stable for as long as the caller holds them.
 *
 * Collisions: the hash only picks the shard; the shard map is keyed by
 * the full canonical string, so two distinct keys can never alias.
 */

#ifndef STELLAR_UTIL_MEMO_HPP
#define STELLAR_UTIL_MEMO_HPP

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stellar::util
{

/** FNV-1a 64-bit constants (same scheme as the RTL golden hashes). */
inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/** FNV-1a 64-bit hash of a byte string. */
inline std::uint64_t
fnv1a(std::string_view text, std::uint64_t hash = kFnv1aOffset)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= kFnv1aPrime;
    }
    return hash;
}

/** Aggregate counters across every shard. hits + misses == lookups. */
struct MemoStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;   //!< resident payload bytes
    std::uint64_t entries = 0; //!< resident entry count

    /** Disk-spill tier (0 unless setSpill configured a directory). A
     *  reload also counts as a hit (and as an insert, since the entry
     *  re-enters the resident tier); spills track files written. */
    std::uint64_t spills = 0;
    std::uint64_t reloads = 0;
};

/**
 * Type-erased (de)serializers the disk-spill tier uses for one payload
 * family. The typed layer (workloads::Cache) owns the wire format;
 * MemoCache owns files, checksums, and budget. `deserialize` returns
 * the payload and fills `bytes_out` with its resident size. Hooks run
 * outside every shard mutex but must not reenter the cache.
 */
struct SpillHooks
{
    std::function<std::string(const std::shared_ptr<const void> &)>
            serialize;
    std::function<std::shared_ptr<const void>(const std::string &,
                                              std::uint64_t &bytes_out)>
            deserialize;
};

class MemoCache
{
  public:
    static constexpr std::size_t kShardCount = 16;

    /** `byte_budget` of 0 means unlimited. */
    explicit MemoCache(std::uint64_t byte_budget = 0)
    {
        setByteBudget(byte_budget);
    }

    MemoCache(const MemoCache &) = delete;
    MemoCache &operator=(const MemoCache &) = delete;

    /** Split `byte_budget` evenly across shards; 0 disables eviction.
     *  Existing entries are re-evicted lazily on the next inserts. */
    void
    setByteBudget(std::uint64_t byte_budget)
    {
        std::uint64_t per_shard =
                byte_budget == 0 ? 0
                                 : std::max<std::uint64_t>(
                                           1, byte_budget / kShardCount);
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.byteBudget = per_shard;
        }
    }

    /**
     * Configure the optional disk-spill tier: LRU victims whose insert
     * carried SpillHooks serialize to checksummed files under `dir`
     * (oldest spill files are unlinked past `disk_byte_budget`; 0
     * means unbounded), and a lookup miss with hooks re-loads from
     * disk — so an eviction storm degrades to warm-disk instead of
     * re-synthesis. An empty `dir` disables the tier. Corrupt,
     * truncated, or mismatched spill files are silently treated as
     * misses; spilling itself is best-effort and never raises.
     */
    void setSpill(const std::string &dir,
                  std::uint64_t disk_byte_budget = 0);

    /** True when a spill directory is configured. */
    bool spillEnabled() const;

    /** The configured spill directory ("" when disabled). */
    std::string spillDir() const;

    /**
     * Find `key` (whose FNV-1a hash is `hash`); returns the payload and
     * marks the entry most-recently-used, or nullptr on a miss. With
     * `hooks` and a configured spill directory, a resident miss falls
     * through to the disk tier: a valid spill file re-enters the cache
     * (counted as a hit, a reload, and an insert), anything else is a
     * miss. Exactly one of hits/misses is incremented per call.
     */
    std::shared_ptr<const void>
    lookup(const std::string &key, std::uint64_t hash,
           const SpillHooks *hooks = nullptr)
    {
        Shard &shard = shardFor(hash);
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.lookups++;
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                shard.hits++;
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                return it->second->payload;
            }
            if (hooks == nullptr || !hooks->deserialize ||
                !spillEnabled()) {
                shard.misses++;
                return nullptr;
            }
        }
        std::uint64_t bytes = 0;
        auto payload = spillLoad(key, hash, *hooks, bytes);
        if (payload == nullptr) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.misses++;
            return nullptr;
        }
        payload = insert(key, hash, std::move(payload), bytes, hooks);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.hits++;
        return payload;
    }

    /**
     * Insert `key` -> `payload` (`bytes` is the payload's resident
     * size) and evict LRU entries past the shard budget. If the key is
     * already resident — two threads missed and synthesized
     * concurrently — the incumbent wins and is returned, so every
     * caller shares one payload. Returns the resident payload. The
     * entry remembers `hooks`: with a configured spill directory,
     * victims of any later eviction that carry hooks are serialized to
     * spill files (outside the shard mutex, with *their own* hooks —
     * one shard mixes payload types) instead of vanishing.
     */
    std::shared_ptr<const void>
    insert(const std::string &key, std::uint64_t hash,
           std::shared_ptr<const void> payload, std::uint64_t bytes,
           const SpillHooks *hooks = nullptr)
    {
        Shard &shard = shardFor(hash);
        std::vector<Entry> victims;
        std::shared_ptr<const void> resident;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                return it->second->payload;
            }
            shard.lru.push_front(Entry{key, std::move(payload), bytes,
                                       hooks});
            shard.map.emplace(key, shard.lru.begin());
            shard.bytes += bytes;
            shard.inserts++;
            while (shard.byteBudget > 0 &&
                   shard.bytes > shard.byteBudget &&
                   shard.lru.size() > 1) {
                Entry &victim = shard.lru.back();
                shard.bytes -= victim.bytes;
                shard.map.erase(victim.key);
                victims.push_back(std::move(victim));
                shard.lru.pop_back();
                shard.evictions++;
            }
            resident = shard.lru.front().payload;
        }
        if (!victims.empty() && spillEnabled()) {
            for (const Entry &victim : victims)
                if (victim.hooks != nullptr && victim.hooks->serialize)
                    spillStore(victim.key, victim.payload,
                               *victim.hooks);
        }
        return resident;
    }

    /** Drop every entry, resident and spilled (counters are kept). */
    void
    clear()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.bytes = 0;
            shard.map.clear();
            shard.lru.clear();
        }
        spillWipe();
    }

    /** Reset counters *and* contents (for test isolation). */
    void
    reset()
    {
        for (auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.bytes = 0;
            shard.map.clear();
            shard.lru.clear();
            shard.lookups = shard.hits = shard.misses = 0;
            shard.inserts = shard.evictions = 0;
        }
        spillWipe();
        std::lock_guard<std::mutex> lock(spill_.mutex);
        spill_.spills = spill_.reloads = 0;
    }

    /**
     * Visit every resident entry as fn(key, payload, bytes). Shards are
     * walked in index order and each shard least-recently-used first,
     * so re-inserting a snapshot in visit order reproduces the LRU
     * recency it was taken from. Each shard's mutex is held across its
     * entries; `fn` must not call back into the cache.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto it = shard.lru.rbegin(); it != shard.lru.rend();
                 ++it)
                fn(it->key, it->payload, it->bytes);
        }
    }

    MemoStats
    stats() const
    {
        MemoStats total;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total.lookups += shard.lookups;
            total.hits += shard.hits;
            total.misses += shard.misses;
            total.inserts += shard.inserts;
            total.evictions += shard.evictions;
            total.bytes += shard.bytes;
            total.entries += shard.lru.size();
        }
        std::lock_guard<std::mutex> lock(spill_.mutex);
        total.spills = spill_.spills;
        total.reloads = spill_.reloads;
        return total;
    }

  private:
    struct Entry
    {
        std::string key;
        std::shared_ptr<const void> payload;
        std::uint64_t bytes = 0;
        /** The inserter's spill hooks. Victims are serialized with
         *  *their own* hooks — one shard mixes payload types, so using
         *  the evicting caller's hooks would type-confuse the cast. */
        const SpillHooks *hooks = nullptr;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; //!< front = most recently used
        std::unordered_map<std::string, std::list<Entry>::iterator> map;
        std::uint64_t byteBudget = 0;
        std::uint64_t bytes = 0;
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
    };

    /** Disk-spill tier state; one mutex guards config, the file index,
     *  and all spill IO (spill traffic is eviction-rate, not hit-rate,
     *  so serializing it is cheap and keeps torn writes impossible
     *  even before the temp+rename dance). */
    struct SpillState
    {
        mutable std::mutex mutex;
        std::string dir;
        std::uint64_t diskBudget = 0;
        std::uint64_t diskBytes = 0;
        //!< FIFO of (path, size) written this configuration; oldest
        //!< files are unlinked first when over the disk budget.
        std::list<std::pair<std::string, std::uint64_t>> order;
        std::unordered_map<std::string,
                           std::list<std::pair<std::string,
                                               std::uint64_t>>::iterator>
                index;
        std::uint64_t spills = 0;
        std::uint64_t reloads = 0;
    };

    Shard &
    shardFor(std::uint64_t hash)
    {
        return shards_[hash % kShardCount];
    }

    /** Serialize + write one victim (best-effort; never throws). */
    void spillStore(const std::string &key,
                    const std::shared_ptr<const void> &payload,
                    const SpillHooks &hooks);

    /** Read + validate + deserialize one spill file; nullptr on any
     *  damage or mismatch (the caller records a plain miss). */
    std::shared_ptr<const void> spillLoad(const std::string &key,
                                          std::uint64_t hash,
                                          const SpillHooks &hooks,
                                          std::uint64_t &bytes_out);

    /** Unlink every indexed spill file and empty the index. */
    void spillWipe();

    Shard shards_[kShardCount];
    SpillState spill_;
};

} // namespace stellar::util

#endif // STELLAR_UTIL_MEMO_HPP
