/**
 * @file
 * Error-reporting helpers following the gem5 fatal/panic distinction.
 *
 * panic() is for internal invariant violations (a stellar bug); fatal() is
 * for user errors (an invalid specification). Both throw typed exceptions
 * rather than aborting so that library users and tests can recover.
 */

#ifndef STELLAR_UTIL_LOGGING_HPP
#define STELLAR_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace stellar
{

/** Thrown on internal invariant violations (bugs inside stellar). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown on user errors (invalid specifications, bad arguments). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Throw a PanicError with the given message. */
[[noreturn]] void panic(const std::string &msg);

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Require a user-level condition; throws FatalError when violated. */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/** Assert an internal invariant; throws PanicError when violated. */
inline void
invariant(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace stellar

#endif // STELLAR_UTIL_LOGGING_HPP
