#include "util/watchdog.hpp"

namespace stellar::util
{

namespace
{

thread_local Watchdog *t_current = nullptr;

} // namespace

Watchdog *
currentWatchdog()
{
    return t_current;
}

WatchdogScope::WatchdogScope(std::string stage, std::int64_t max_steps)
    : watchdog_(std::move(stage), max_steps), previous_(t_current)
{
    t_current = &watchdog_;
}

WatchdogScope::~WatchdogScope()
{
    t_current = previous_;
}

} // namespace stellar::util
