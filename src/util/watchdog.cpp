#include "util/watchdog.hpp"

namespace stellar::util
{

namespace
{

thread_local Watchdog *t_current = nullptr;
thread_local std::int64_t t_batch_override = 0;

} // namespace

Watchdog *
currentWatchdog()
{
    return t_current;
}

WatchdogScope::WatchdogScope(std::string stage, std::int64_t max_steps,
                             std::int64_t max_millis)
    : watchdog_(std::move(stage), max_steps, max_millis),
      previous_(t_current)
{
    t_current = &watchdog_;
}

WatchdogScope::~WatchdogScope()
{
    t_current = previous_;
}

WatchdogSuspend::WatchdogSuspend() : previous_(t_current)
{
    t_current = nullptr;
}

WatchdogSuspend::~WatchdogSuspend()
{
    t_current = previous_;
}

std::int64_t
watchdogBatchOverride()
{
    return t_batch_override;
}

WatchdogBatchOverride::WatchdogBatchOverride(std::int64_t batch)
    : previous_(t_batch_override)
{
    t_batch_override = batch;
}

WatchdogBatchOverride::~WatchdogBatchOverride()
{
    t_batch_override = previous_;
}

} // namespace stellar::util
