/**
 * @file
 * Deliberate fault injection for robustness testing.
 *
 * The elaboration pipeline and the DSE driver expose named checkpoints
 * (e.g. "generate.elaborate", "dse.evaluate"). Tests arm the global
 * injector with an InjectionSpec naming a checkpoint, a fault class,
 * and the set of candidate contexts to fail; when an armed checkpoint
 * is reached inside a matching context, the injector throws the
 * corresponding exception type. The exploration stack must degrade to
 * a recorded util::Failure of the right kind — never a crash or hang.
 *
 * Determinism: injections match on the *candidate context* (a stable
 * identity such as a DSE enumeration index, installed per-thread via
 * ScopedContext), not on call counts, so which candidates fail is
 * byte-identical across thread counts.
 *
 * The disarmed fast path is one relaxed atomic load, so production
 * builds pay nothing for the instrumentation.
 */

#ifndef STELLAR_UTIL_FAULT_INJECT_HPP
#define STELLAR_UTIL_FAULT_INJECT_HPP

#include <cstdint>
#include <set>
#include <string>

namespace stellar::util::fault
{

/** Context id meaning "no candidate scope installed". */
inline constexpr std::uint64_t kNoContext = ~std::uint64_t(0);

/** Which exception type an armed injection throws. */
enum class FaultClass
{
    Fatal,   //!< FatalError (user-spec failure)
    Panic,   //!< PanicError (internal invariant)
    Timeout, //!< TimeoutError (watchdog expiry)
    Budget,  //!< ResourceBudgetError (resource cap)
    Stall,   //!< no exception: sleep stallMicros at the checkpoint,
             //!< simulating a pathologically slow input so wall-clock
             //!< watchdog deadlines can be exercised deterministically
};

/** One armed injection. */
struct InjectionSpec
{
    std::string stage; //!< checkpoint name to fire at
    FaultClass cls = FaultClass::Panic;

    /** Sleep per matched checkpoint for FaultClass::Stall. */
    std::int64_t stallMicros = 500;

    /** Candidate contexts to fail; empty + allContexts fails every one. */
    std::set<std::uint64_t> contexts;
    bool allContexts = false;

    /**
     * Fire at most this many times (0 = unlimited). A one-shot Stall
     * (maxFires = 1) models a *transient* slowdown: the first matching
     * evaluation blows its wall-clock deadline, a retry runs clean.
     * The count is kept on the armed copy, under the injector's lock.
     */
    std::uint64_t maxFires = 0;

    bool
    matches(const std::string &at, std::uint64_t context) const
    {
        if (at != stage)
            return false;
        return allContexts || contexts.count(context) > 0;
    }
};

/** Arm an injection (adds to the active set). */
void arm(const InjectionSpec &spec);

/** Disarm everything. */
void reset();

/** True when any injection is armed. */
bool armed();

/** Number of times any checkpoint fired an injected fault. */
std::uint64_t firedCount();

/**
 * Declare an instrumented point. Throws per the armed specs when the
 * current thread's context matches; otherwise a near-free no-op.
 */
void checkpoint(const std::string &stage);

/** RAII thread-local candidate identity for checkpoint matching. */
class ScopedContext
{
  public:
    explicit ScopedContext(std::uint64_t id);
    ~ScopedContext();

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;

  private:
    std::uint64_t previous_;
};

/** The current thread's candidate context (kNoContext when unset). */
std::uint64_t currentContext();

/** RAII: disarms all injections on destruction (for tests). */
class ScopedArm
{
  public:
    explicit ScopedArm(const InjectionSpec &spec) { arm(spec); }
    ~ScopedArm() { reset(); }

    ScopedArm(const ScopedArm &) = delete;
    ScopedArm &operator=(const ScopedArm &) = delete;
};

/** Ways corruptMatrixMarket can damage a Matrix Market text. */
enum class MtxCorruption
{
    TruncateEntries, //!< drop the tail of the entry list
    BadBanner,       //!< damage the %%MatrixMarket banner
    NonNumericSize,  //!< replace the size header with garbage
    OutOfRangeIndex, //!< push one entry's coordinates past the bounds
    ShortRow,        //!< strip the value from one real-field entry
};

/**
 * Return a deliberately corrupted copy of a well-formed Matrix Market
 * text, for table-driven malformed-input tests. Parsing the result must
 * raise FatalError with a line number — never misparse silently.
 */
std::string corruptMatrixMarket(const std::string &text,
                                MtxCorruption mode);

} // namespace stellar::util::fault

#endif // STELLAR_UTIL_FAULT_INJECT_HPP
