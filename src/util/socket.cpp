#include "util/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hpp"

namespace stellar::util
{

namespace
{

sockaddr_un
addressFor(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "socket path too long (" + std::to_string(path.size()) +
                    " bytes): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

[[noreturn]] void
failErrno(const std::string &what)
{
    throw FatalError(what + ": " + std::strerror(errno));
}

} // namespace

LocalSocket &
LocalSocket::operator=(LocalSocket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

LocalSocket
LocalSocket::listenOn(const std::string &path, int backlog)
{
    sockaddr_un addr = addressFor(path);
    LocalSocket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket(AF_UNIX)");
    // A leftover socket file makes bind fail with EADDRINUSE, but
    // unlinking blindly would silently hijack a live daemon's socket:
    // clients would be routed to this process with no diagnostic.
    // Probe first — connect() succeeds only if someone is listening;
    // a dead daemon's stale file refuses the connection and is safe
    // to remove.
    {
        LocalSocket probe(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (probe.valid() &&
            ::connect(probe.fd_,
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            throw FatalError("socket path " + path +
                             " already has a live listener; refusing "
                             "to replace it (stop the other daemon or "
                             "use a different --socket path)");
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT)
        failErrno("unlink(" + path + ")");
    if (::bind(sock.fd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        failErrno("bind(" + path + ")");
    if (::listen(sock.fd_, backlog) != 0)
        failErrno("listen(" + path + ")");
    return sock;
}

LocalSocket
LocalSocket::connectTo(const std::string &path)
{
    sockaddr_un addr = addressFor(path);
    LocalSocket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket(AF_UNIX)");
    if (::connect(sock.fd_, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        failErrno("connect(" + path + ")");
    return sock;
}

bool
LocalSocket::waitReadable(int timeout_millis) const
{
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, timeout_millis);
    return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

LocalSocket
LocalSocket::accept() const
{
    return LocalSocket(::accept(fd_, nullptr, nullptr));
}

void
LocalSocket::setTimeouts(int millis) const
{
    timeval tv{};
    tv.tv_sec = millis / 1000;
    tv.tv_usec = (millis % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

SocketReadStatus
LocalSocket::readAll(std::string &out, std::size_t max_bytes) const
{
    char buffer[4096];
    while (true) {
        ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got == 0)
            return SocketReadStatus::Eof;
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return SocketReadStatus::Timeout;
            return SocketReadStatus::Error;
        }
        if (max_bytes != 0 &&
            out.size() + std::size_t(got) > max_bytes) {
            out.append(buffer, max_bytes - out.size());
            return SocketReadStatus::Overflow;
        }
        out.append(buffer, std::size_t(got));
    }
}

void
LocalSocket::drainRead(std::size_t max_bytes) const
{
    char buffer[4096];
    std::size_t drained = 0;
    while (drained < max_bytes) {
        std::size_t want = std::min(sizeof(buffer), max_bytes - drained);
        ssize_t got = ::recv(fd_, buffer, want, 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return; // EOF, timeout, or error: nothing left to absorb
        drained += std::size_t(got);
    }
}

bool
LocalSocket::writeAll(std::string_view data) const
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t wrote = ::send(fd_, data.data() + sent,
                               data.size() - sent, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += std::size_t(wrote);
    }
    return true;
}

void
LocalSocket::shutdownWrite() const
{
    ::shutdown(fd_, SHUT_WR);
}

void
LocalSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace stellar::util
