/**
 * @file
 * Step-budget watchdogs for the interpreter and the cycle-level
 * simulators.
 *
 * A livelocked schedule (or a pathological DSE candidate) must not spin
 * forever inside an exploration worker. A WatchdogScope installs a
 * thread-local step budget; instrumented inner loops call
 * watchdogTick() once per unit of work (an iteration point, a simulated
 * cycle wave, a merge round). When the budget expires the tick throws
 * TimeoutError carrying a diagnostic state dump supplied by the loop
 * (last point executed, queue occupancies), which the DSE isolation
 * layer records as a per-candidate Timeout failure.
 *
 * The thread-local design keeps the plumbing out of every simulator
 * signature: callers that want a budget wrap the call in a scope, and
 * code that never installs one pays a single thread-local load per
 * tick. Scopes nest; the innermost budget applies.
 */

#ifndef STELLAR_UTIL_WATCHDOG_HPP
#define STELLAR_UTIL_WATCHDOG_HPP

#include <cstdint>
#include <string>
#include <utility>

#include "util/failure.hpp"

namespace stellar::util
{

/** A counting step budget; throws TimeoutError when exceeded. */
class Watchdog
{
  public:
    /** `maxSteps` of 0 disables the budget (ticks only count). */
    Watchdog(std::string stage, std::int64_t max_steps)
        : stage_(std::move(stage)), budget_(max_steps)
    {}

    const std::string &stage() const { return stage_; }
    std::int64_t budget() const { return budget_; }
    std::int64_t stepsExecuted() const { return steps_; }
    bool enabled() const { return budget_ > 0; }

    /**
     * Steps left before the budget expires (0 when exhausted). Batched
     * loops use this to charge K points with a single tick and still
     * expire at exactly the same step the per-point tick would.
     */
    std::int64_t
    remaining() const
    {
        return budget_ > steps_ ? budget_ - steps_ : 0;
    }

    /** Charge `steps` units of work; throws TimeoutError on expiry. */
    void
    tick(std::int64_t steps = 1)
    {
        steps_ += steps;
        if (enabled() && steps_ > budget_)
            expire("");
    }

    /**
     * Charge `steps` and, only on expiry, call `dump` for the
     * diagnostic state description carried by the TimeoutError. The
     * dump is never evaluated on the fast path.
     */
    template <typename DumpFn>
    void
    tick(std::int64_t steps, DumpFn &&dump)
    {
        steps_ += steps;
        if (enabled() && steps_ > budget_)
            expire(dump());
    }

  private:
    [[noreturn]] void
    expire(const std::string &diagnostic)
    {
        throw TimeoutError(stage_, steps_, budget_, diagnostic);
    }

    std::string stage_;
    std::int64_t budget_ = 0;
    std::int64_t steps_ = 0;
};

/** The watchdog installed on this thread; nullptr when none. */
Watchdog *currentWatchdog();

/**
 * RAII: installs a thread-local Watchdog for the dynamic extent of the
 * scope and restores the previous one (scopes nest) on destruction.
 */
class WatchdogScope
{
  public:
    WatchdogScope(std::string stage, std::int64_t max_steps);
    ~WatchdogScope();

    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

    Watchdog &watchdog() { return watchdog_; }

  private:
    Watchdog watchdog_;
    Watchdog *previous_;
};

/** Tick the installed watchdog, if any. */
inline void
watchdogTick(std::int64_t steps = 1)
{
    if (Watchdog *dog = currentWatchdog())
        dog->tick(steps);
}

/** Tick with a lazily evaluated diagnostic dump. */
template <typename DumpFn>
inline void
watchdogTick(std::int64_t steps, DumpFn &&dump)
{
    if (Watchdog *dog = currentWatchdog())
        dog->tick(steps, std::forward<DumpFn>(dump));
}

} // namespace stellar::util

#endif // STELLAR_UTIL_WATCHDOG_HPP
