/**
 * @file
 * Step-budget and wall-clock watchdogs for the interpreter and the
 * cycle-level simulators.
 *
 * A livelocked schedule (or a pathological DSE candidate) must not spin
 * forever inside an exploration worker. A WatchdogScope installs a
 * thread-local budget; instrumented inner loops charge it once per unit
 * of work (an iteration point, a simulated cycle wave, a merge round).
 * When the budget expires the charge throws TimeoutError carrying a
 * diagnostic state dump supplied by the loop (last point executed,
 * queue occupancies), which the DSE isolation layer records as a
 * per-candidate Timeout failure.
 *
 * Two budgets can be active on one watchdog:
 *  - a *step* budget, counted exactly, deterministic across hosts;
 *  - a *wall-clock* deadline in milliseconds, checked at batch
 *    boundaries, for untrusted external inputs (SuiteSparse /
 *    MatrixMarket sweeps) whose step counts cannot be bounded ahead
 *    of time.
 *
 * Hot loops charge through a WatchdogBatcher rather than per-step
 * watchdogTick calls: the batcher caches the thread-local lookup once,
 * pre-charges work in batches capped to the remaining step allowance
 * (so expiry lands on exactly the same step, with the same diagnostic,
 * as per-step ticking), checks the wall-clock deadline at each batch
 * boundary, and refunds unconsumed credit on destruction so the step
 * count stays exact for any later loop on the same watchdog. When no
 * watchdog is installed a batcher step is a single null check — no
 * thread-local load, and the diagnostic dump is never evaluated.
 *
 * The thread-local design keeps the plumbing out of every simulator
 * signature: callers that want a budget wrap the call in a scope, and
 * code that never installs one pays almost nothing. Scopes nest; the
 * innermost budget applies.
 */

#ifndef STELLAR_UTIL_WATCHDOG_HPP
#define STELLAR_UTIL_WATCHDOG_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "util/failure.hpp"

namespace stellar::util
{

/** A counting step budget; throws TimeoutError when exceeded. */
class Watchdog
{
  public:
    /**
     * `max_steps` of 0 disables the step budget (ticks only count);
     * `max_millis` of 0 disables the wall-clock deadline. The deadline
     * clock starts at construction.
     */
    Watchdog(std::string stage, std::int64_t max_steps,
             std::int64_t max_millis = 0)
        : stage_(std::move(stage)), budget_(max_steps),
          millisBudget_(max_millis)
    {
        if (millisBudget_ > 0)
            start_ = std::chrono::steady_clock::now();
    }

    const std::string &stage() const { return stage_; }
    std::int64_t budget() const { return budget_; }
    std::int64_t millisBudget() const { return millisBudget_; }
    std::int64_t stepsExecuted() const { return steps_; }
    bool enabled() const { return budget_ > 0; }
    bool deadlineEnabled() const { return millisBudget_ > 0; }

    /**
     * Steps left before the budget expires (0 when exhausted). Batched
     * loops use this to charge K points with a single tick and still
     * expire at exactly the same step the per-point tick would.
     */
    std::int64_t
    remaining() const
    {
        return budget_ > steps_ ? budget_ - steps_ : 0;
    }

    /** Charge `steps` units of work; throws TimeoutError on expiry. */
    void
    tick(std::int64_t steps = 1)
    {
        steps_ += steps;
        if (enabled() && steps_ > budget_)
            expire("");
    }

    /**
     * Charge `steps` and, only on expiry, call `dump` for the
     * diagnostic state description carried by the TimeoutError. The
     * dump is never evaluated on the fast path.
     */
    template <typename DumpFn>
    void
    tick(std::int64_t steps, DumpFn &&dump)
    {
        steps_ += steps;
        if (enabled() && steps_ > budget_)
            expire(dump());
    }

    /**
     * Return `steps` previously over-charged by a batched loop that
     * ended mid-batch, so stepsExecuted() reflects work actually done.
     */
    void
    refund(std::int64_t steps)
    {
        steps_ = std::max<std::int64_t>(0, steps_ - steps);
    }

    /** Milliseconds elapsed since construction (0 with no deadline). */
    std::int64_t
    millisElapsed() const
    {
        if (!deadlineEnabled())
            return 0;
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start_)
                .count();
    }

    /**
     * Throw TimeoutError if the wall-clock deadline has passed,
     * evaluating `dump` only on expiry. Called at batch boundaries —
     * never per step — so the steady_clock read is amortized.
     */
    template <typename DumpFn>
    void
    checkDeadline(DumpFn &&dump)
    {
        if (deadlineEnabled() && millisElapsed() > millisBudget_)
            throw TimeoutError::wallClock(stage_, millisElapsed(),
                                          millisBudget_, steps_, dump());
    }

    /** Deadline check without a diagnostic dump. */
    void
    checkDeadline()
    {
        checkDeadline([]() { return std::string(); });
    }

  private:
    [[noreturn]] void
    expire(const std::string &diagnostic)
    {
        throw TimeoutError(stage_, steps_, budget_, diagnostic);
    }

    std::string stage_;
    std::int64_t budget_ = 0;
    std::int64_t millisBudget_ = 0;
    std::int64_t steps_ = 0;
    std::chrono::steady_clock::time_point start_{};
};

/** The watchdog installed on this thread; nullptr when none. */
Watchdog *currentWatchdog();

/**
 * RAII: installs a thread-local Watchdog for the dynamic extent of the
 * scope and restores the previous one (scopes nest) on destruction.
 */
class WatchdogScope
{
  public:
    WatchdogScope(std::string stage, std::int64_t max_steps,
                  std::int64_t max_millis = 0);
    ~WatchdogScope();

    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

    Watchdog &watchdog() { return watchdog_; }

  private:
    Watchdog watchdog_;
    Watchdog *previous_;
};

/**
 * RAII: uninstalls the current thread's watchdog for the dynamic extent
 * of the scope and restores it on destruction. Used around work done on
 * behalf of *every* consumer — e.g. a workload-cache miss synthesizing
 * a shared input: whether a given sweep point pays synthesis steps must
 * not depend on which point happened to miss first, so the miss charges
 * nobody (exactly like a hit).
 */
class WatchdogSuspend
{
  public:
    WatchdogSuspend();
    ~WatchdogSuspend();

    WatchdogSuspend(const WatchdogSuspend &) = delete;
    WatchdogSuspend &operator=(const WatchdogSuspend &) = delete;

  private:
    Watchdog *previous_;
};

/** Tick the installed watchdog, if any. */
inline void
watchdogTick(std::int64_t steps = 1)
{
    if (Watchdog *dog = currentWatchdog())
        dog->tick(steps);
}

/** Tick with a lazily evaluated diagnostic dump. */
template <typename DumpFn>
inline void
watchdogTick(std::int64_t steps, DumpFn &&dump)
{
    if (Watchdog *dog = currentWatchdog())
        dog->tick(steps, std::forward<DumpFn>(dump));
}

/**
 * Batch size override installed by tests (0 = use the default). With an
 * override of 1 a WatchdogBatcher degenerates to exact per-step
 * ticking, which is the oracle the batched-expiry tests compare
 * against.
 */
std::int64_t watchdogBatchOverride();

/** RAII: overrides the batcher batch size on this thread (for tests). */
class WatchdogBatchOverride
{
  public:
    explicit WatchdogBatchOverride(std::int64_t batch);
    ~WatchdogBatchOverride();

    WatchdogBatchOverride(const WatchdogBatchOverride &) = delete;
    WatchdogBatchOverride &operator=(const WatchdogBatchOverride &) =
            delete;

  private:
    std::int64_t previous_;
};

/**
 * Batched charging of the current thread's watchdog for hot simulator
 * loops. Construct once outside the loop, call step(dump) once per unit
 * of work. Guarantees, enforced by tests/sim_parallel_test.cpp:
 *
 *  - *budget-exact expiry*: an installed step budget expires after
 *    exactly the same number of steps, throwing the same TimeoutError
 *    stage/steps/diagnostic, as per-step watchdogTick(1, dump) would,
 *    because each pre-charged batch is capped to the remaining
 *    allowance and the expiring step is charged alone with its dump;
 *  - *wall-clock deadlines* are checked once per batch boundary;
 *  - *exact accounting*: unconsumed pre-charged credit is refunded on
 *    destruction, so stepsExecuted() equals the work actually done and
 *    later loops on the same watchdog expire at the right step;
 *  - *zero-cost when idle*: with no watchdog installed, step() is one
 *    branch on a cached pointer — no thread-local load and no dump
 *    evaluation. The dump is only ever evaluated on expiry.
 */
class WatchdogBatcher
{
  public:
    /** Points charged per batch (matches IterationSpace's batching). */
    static constexpr std::int64_t kDefaultBatch = 256;

    WatchdogBatcher() : dog_(currentWatchdog()) {}

    ~WatchdogBatcher()
    {
        if (dog_ != nullptr && credit_ > 0)
            dog_->refund(credit_);
    }

    WatchdogBatcher(const WatchdogBatcher &) = delete;
    WatchdogBatcher &operator=(const WatchdogBatcher &) = delete;

    /** True when a watchdog is installed on this thread. */
    bool active() const { return dog_ != nullptr; }

    /** Charge one unit of work; `dump` is evaluated only on expiry. */
    template <typename DumpFn>
    void
    step(DumpFn &&dump)
    {
        if (dog_ == nullptr)
            return;
        if (credit_ == 0)
            refill(std::forward<DumpFn>(dump));
        --credit_;
    }

  private:
    template <typename DumpFn>
    void
    refill(DumpFn &&dump)
    {
        std::int64_t batch = watchdogBatchOverride() > 0
                                     ? watchdogBatchOverride()
                                     : kDefaultBatch;
        if (dog_->enabled()) {
            std::int64_t allowance = dog_->remaining();
            if (allowance == 0) {
                // Expiring step: charge it alone so the TimeoutError
                // carries the per-step-identical step count and dump.
                dog_->tick(1, std::forward<DumpFn>(dump));
            }
            batch = std::min(batch, allowance);
        }
        dog_->checkDeadline(dump);
        dog_->tick(batch);
        credit_ = batch;
    }

    Watchdog *dog_;
    std::int64_t credit_ = 0;
};

} // namespace stellar::util

#endif // STELLAR_UTIL_WATCHDOG_HPP
