#include "util/logging.hpp"

#include <cstdio>

namespace stellar
{

void
panic(const std::string &msg)
{
    throw PanicError("stellar panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("stellar fatal: " + msg);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "stellar warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "stellar info: %s\n", msg.c_str());
}

} // namespace stellar
