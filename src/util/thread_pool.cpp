#include "util/thread_pool.hpp"

#include <algorithm>

namespace stellar::util
{

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; i++)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Discard queued-but-unstarted tasks: their packaged_tasks are
        // destroyed here, which marks their futures broken_promise
        // instead of leaving waiters hung.
        queue_.clear();
    }
    ready_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    ready_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock,
                        [this]() { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task catches the exception and stores it in the
        // future; plain closures from parallelFor do their own capture.
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto first_error = std::make_shared<std::exception_ptr>();
    auto error_mutex = std::make_shared<std::mutex>();

    auto drain = [n, next, first_error, error_mutex, &fn]() {
        for (;;) {
            std::size_t i = next->fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(*error_mutex);
                if (!*first_error)
                    *first_error = std::current_exception();
            }
        }
    };

    std::size_t helpers = std::min(size(), n) - 1;
    std::vector<std::future<void>> futures;
    futures.reserve(helpers);
    for (std::size_t w = 0; w < helpers; w++)
        futures.push_back(submit(drain));
    drain(); // the calling thread participates, so a 1-thread pool (or a
             // pool busy with other work) still makes progress
    for (auto &future : futures)
        future.get();
    if (*first_error)
        std::rethrow_exception(*first_error);
}

} // namespace stellar::util
