#include "util/failure.hpp"

namespace stellar::util
{

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::UserSpec: return "user-spec";
      case FailureKind::InternalPanic: return "internal-panic";
      case FailureKind::ResourceBudget: return "resource-budget";
      case FailureKind::Timeout: return "timeout";
      case FailureKind::Unknown: return "unknown";
    }
    return "unknown";
}

TimeoutError::TimeoutError(const std::string &stage, std::int64_t steps,
                           std::int64_t budget,
                           const std::string &diagnostic)
    : std::runtime_error(
              "stage '" + stage + "' exceeded its watchdog budget (" +
              std::to_string(steps) + " steps, budget " +
              std::to_string(budget) +
              (diagnostic.empty() ? ")" : "); " + diagnostic)),
      stage_(stage), steps_(steps), budget_(budget),
      diagnostic_(diagnostic)
{}

TimeoutError
TimeoutError::wallClock(const std::string &stage, std::int64_t elapsed_ms,
                        std::int64_t budget_ms, std::int64_t steps,
                        const std::string &diagnostic)
{
    TimeoutError error(
            "stage '" + stage + "' exceeded its wall-clock deadline (" +
                    std::to_string(elapsed_ms) + " ms, deadline " +
                    std::to_string(budget_ms) + " ms, " +
                    std::to_string(steps) + " steps)" +
                    (diagnostic.empty() ? "" : "; " + diagnostic),
            stage, steps, diagnostic);
    error.wallClock_ = true;
    error.elapsedMillis_ = elapsed_ms;
    error.millisBudget_ = budget_ms;
    return error;
}

std::string
Failure::toString() const
{
    std::string text = failureKindName(kind);
    if (!stage.empty())
        text += " at " + stage;
    if (!candidate.empty())
        text += " (" + candidate + ")";
    text += ": " + message;
    return text;
}

Failure
classifyException(std::exception_ptr error, const std::string &stage,
                  const std::string &candidate)
{
    Failure failure;
    failure.stage = stage;
    failure.candidate = candidate;
    if (!error) {
        failure.message = "no exception captured";
        return failure;
    }
    try {
        std::rethrow_exception(error);
    } catch (const TimeoutError &err) {
        failure.kind = FailureKind::Timeout;
        if (failure.stage.empty())
            failure.stage = err.stage();
        failure.message = err.what();
    } catch (const ResourceBudgetError &err) {
        failure.kind = FailureKind::ResourceBudget;
        failure.message = err.what();
    } catch (const PanicError &err) {
        failure.kind = FailureKind::InternalPanic;
        failure.message = err.what();
    } catch (const FatalError &err) {
        failure.kind = FailureKind::UserSpec;
        failure.message = err.what();
    } catch (const std::exception &err) {
        failure.kind = FailureKind::Unknown;
        failure.message = err.what();
    } catch (...) {
        failure.kind = FailureKind::Unknown;
        failure.message = "non-standard exception";
    }
    return failure;
}

} // namespace stellar::util
