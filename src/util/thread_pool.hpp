/**
 * @file
 * A fixed-size worker pool for the embarrassingly parallel loops in the
 * framework (candidate evaluation in the DSE driver, per-design sweeps
 * in the benches).
 *
 * Design goals, in order:
 *  - exceptions thrown by a task surface in the caller (via the task's
 *    future, or rethrown by parallelFor/parallelMap after every index
 *    has finished); a task exception NEVER tears down the pool — the
 *    exception is captured before the worker returns to its loop, so
 *    the worker survives and later tasks run normally;
 *  - destruction never hangs: queued-but-unstarted tasks are discarded
 *    (their futures report broken_promise) and running tasks are joined;
 *  - deterministic composition: parallelMap writes each result into the
 *    slot of its index, so callers that reduce in index order get
 *    results independent of scheduling. A throwing index leaves its
 *    slot default-constructed and does not shift any other slot —
 *    parallelMapIsolated exposes exactly which indices threw.
 */

#ifndef STELLAR_UTIL_THREAD_POOL_HPP
#define STELLAR_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace stellar::util
{

/** A fixed worker-count thread pool with exception-propagating futures. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers; 0 means std::thread::hardware_concurrency
     * (at least 1). Workers live until destruction.
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers; queued-but-unstarted tasks are discarded. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a nullary callable; the returned future yields its result
     * or rethrows its exception. Futures of tasks still queued when the
     * pool is destroyed report std::future_error (broken_promise).
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
                std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * Run fn(i) for every i in [0, n). Indices are claimed dynamically
     * but the call only returns once all have finished; the first
     * exception (by index order of discovery) is rethrown.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Evaluate fn(i) for i in [0, n) and collect the results in index
     * order. T must be default-constructible and movable.
     */
    template <typename T, typename F>
    std::vector<T> parallelMap(std::size_t n, F &&fn)
    {
        std::vector<T> results(n);
        parallelFor(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

    /**
     * Like parallelMap, but a throwing index is *isolated* instead of
     * rethrown: `errors` is resized to n and errors[i] holds the
     * exception thrown by index i (nullptr on success, whose result
     * lands in slot i as usual). Every index runs — one failure never
     * skips or reorders the others — and the pool remains usable.
     */
    template <typename T, typename F>
    std::vector<T> parallelMapIsolated(std::size_t n, F &&fn,
                                       std::vector<std::exception_ptr>
                                               &errors)
    {
        errors.assign(n, nullptr);
        std::vector<T> results(n);
        parallelFor(n, [&](std::size_t i) {
            try {
                results[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
        return results;
    }

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace stellar::util

#endif // STELLAR_UTIL_THREAD_POOL_HPP
