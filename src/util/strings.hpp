/**
 * @file
 * Small string helpers shared by the RTL emitter and report printers.
 */

#ifndef STELLAR_UTIL_STRINGS_HPP
#define STELLAR_UTIL_STRINGS_HPP

#include <string>
#include <vector>

namespace stellar
{

/** Join pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &sep);

/** Indent every line of a (possibly multi-line) block by n spaces. */
std::string indent(const std::string &block, int n);

/** True when the text starts with the given prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &text);

/** Sanitize an arbitrary name into a legal Verilog identifier. */
std::string sanitizeIdentifier(const std::string &name);

/** Format a double with the given number of decimal places. */
std::string formatDouble(double value, int decimals);

/** Left-pad to a width (for aligned report tables). */
std::string padLeft(const std::string &text, std::size_t width);

/** Right-pad to a width (for aligned report tables). */
std::string padRight(const std::string &text, std::size_t width);

} // namespace stellar

#endif // STELLAR_UTIL_STRINGS_HPP
