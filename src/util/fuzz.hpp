/**
 * @file
 * Seeded structured fuzzing of the framework's untrusted surfaces.
 *
 * The exploration stack promises that *any* input — a malformed
 * functional spec, a singular transform, a hostile Matrix Market file —
 * either succeeds or degrades to a classified util::Failure; it must
 * never crash, trip a sanitizer, or leak an unclassified exception.
 * This harness generates seeded random inputs across six domains,
 * replays them against generatePipelineIsolated, the transform algebra,
 * the Matrix Market reader + sims, an in-process serve::Server, the
 * streaming transform enumerator (differenced against its serial
 * oracle), and the shard-records codec (valid documents mutilated
 * through the parser and merge) under WatchdogScope budgets, and
 * records every outcome against that invariant. Classification to
 * FailureKind::Unknown is the invariant breach: the offending input is
 * minimized (line-wise, for textual inputs) and dumped as a repro file.
 *
 * Deterministic by construction: iteration i of seed s always replays
 * the same input, so a repro needs only (domain, seed) — the dumped
 * file is a convenience, not the only record.
 *
 * Drivers: examples/stellar_fuzz.cpp (CLI; CI runs it under ASan+UBSan)
 * and tests/fuzz_test.cpp (tier-1 smoke + harness self-tests).
 */

#ifndef STELLAR_UTIL_FUZZ_HPP
#define STELLAR_UTIL_FUZZ_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/failure.hpp"
#include "util/rng.hpp"

namespace stellar::util::fuzz
{

/** Input families the harness can generate. */
enum class FuzzDomain
{
    Spec,         //!< random functional specs + bounds through the pipeline
    Transform,    //!< random space-time transform matrices + probes
    MatrixMarket, //!< corrupted .mtx texts through the reader + sims
    Request,      //!< hostile serve requests through serve::Server
    Enumerate,    //!< hostile enumeration options vs the serial oracle
    Records,      //!< mutilated shard-records docs through parse + merge
};

/** Stable short name ("spec", "transform", "mtx", "request",
 *  "enumerate", "records"). */
const char *fuzzDomainName(FuzzDomain domain);

/** Harness settings. */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::size_t iterations = 1000;

    /** Domains to cycle through (round-robin); empty = all six. */
    std::vector<FuzzDomain> domains;

    /** Watchdog step budget per replay (0 = unlimited). */
    std::int64_t stepBudget = 200000;

    /** Watchdog wall-clock deadline per replay in ms (0 = none). */
    std::int64_t timeBudgetMillis = 0;

    /** Directory for repro dumps of violating inputs; empty = no dumps
     *  (the violation still records the full input text). */
    std::string reproDir;

    /** Line-minimize violating textual inputs before dumping. */
    bool minimize = true;

    /**
     * Test hook: replaces the default MatrixMarket evaluator (parse,
     * convert, simulate) so harness self-tests can plant a deliberate
     * unclassified throw and watch the find -> minimize -> dump path
     * run end to end. Production leaves this unset.
     */
    std::function<void(const std::string &)> mtxOracle;

    /**
     * Test hook for the Request domain: given one request text, return
     * the raw response text. Unset, the harness routes requests through
     * a private in-process serve::Server (shared across the run, so a
     * request that poisons server state surfaces in later iterations).
     */
    std::function<std::string(const std::string &)> requestOracle;
};

/** One input that broke the fuzz invariant (classified Unknown). */
struct FuzzViolation
{
    FuzzDomain domain = FuzzDomain::Spec;
    std::size_t iteration = 0;
    std::uint64_t seed = 0; //!< derived per-iteration seed
    Failure failure;
    std::string input;     //!< offending input text (minimized if enabled)
    std::string reproPath; //!< dump location ("" when reproDir unset)
};

/** Outcome tally of one runFuzz call. */
struct FuzzReport
{
    std::size_t iterations = 0;
    std::size_t succeeded = 0;

    /** Classified failures by FailureKind. Unknown entries are also
     *  recorded as violations — any nonzero count there is a bug. */
    std::array<std::size_t, kFailureKindCount> outcomes{};

    std::vector<FuzzViolation> violations;

    /** The invariant held: no unclassified outcome. */
    bool ok() const { return violations.empty(); }

    /** One-line human summary. */
    std::string toString() const;
};

/** Run the harness. Never throws for input-induced failures; only a
 *  broken harness configuration (e.g. unwritable reproDir) raises. */
FuzzReport runFuzz(const FuzzOptions &options);

/**
 * Greedy delta-debugging line minimizer: repeatedly drop chunks of
 * lines while `still_fails` keeps returning true, ending at a
 * fixed point (or a call cap). Exposed for the harness self-tests.
 */
std::string
minimizeLines(const std::string &input,
              const std::function<bool(const std::string &)> &still_fails);

/**
 * One seeded serve-protocol request text: mostly structured sim / dse /
 * stats requests with occasionally-hostile field values (absurd dims,
 * zero budgets, unknown fields, wrong types), the rest textual attacks
 * on a valid request (byte flips, truncation, garbage, deep nesting,
 * oversize padding). `allow_shutdown` admits `{"command":"shutdown"}`
 * into the mix — the live-daemon soak keeps it out so the target stays
 * up for the whole storm. Shared by the Request fuzz domain and the
 * `stellar_fuzz --soak` driver.
 */
std::string randomServeRequestText(Rng &rng, bool allow_shutdown);

} // namespace stellar::util::fuzz

#endif // STELLAR_UTIL_FUZZ_HPP
