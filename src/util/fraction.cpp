#include "util/fraction.hpp"

#include <limits>

#include "util/logging.hpp"

namespace stellar
{

namespace
{

/** |v| as an unsigned value; well-defined for INT64_MIN (2^63). */
std::uint64_t
magnitude(std::int64_t v)
{
    return v < 0 ? std::uint64_t(0) - std::uint64_t(v) : std::uint64_t(v);
}

std::uint64_t
ugcd(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

constexpr std::uint64_t kInt64MaxU =
        std::uint64_t(std::numeric_limits<std::int64_t>::max());

} // namespace

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    // Unsigned magnitudes: negating INT64_MIN in int64 arithmetic is UB.
    std::uint64_t g = ugcd(magnitude(a), magnitude(b));
    // gcd(INT64_MIN, 0) and gcd(INT64_MIN, INT64_MIN) are 2^63, which
    // has no int64 representation; saturate rather than return a
    // negative "gcd" (the pre-UB-fix wraparound behavior).
    if (g > kInt64MaxU)
        return std::numeric_limits<std::int64_t>::max();
    return std::int64_t(g);
}

Fraction::Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den)
{
    require(den != 0, "Fraction denominator must be nonzero");
    normalize();
}

void
Fraction::normalize()
{
    // All arithmetic on unsigned magnitudes: the textbook
    // negate-then-reduce sequence is UB when num_ or den_ is INT64_MIN.
    const bool negative = (num_ < 0) != (den_ < 0);
    std::uint64_t un = magnitude(num_);
    std::uint64_t ud = magnitude(den_);
    if (un == 0) {
        num_ = 0;
        den_ = 1;
        return;
    }
    std::uint64_t g = ugcd(un, ud);
    un /= g;
    ud /= g;
    // The canonical form needs a positive int64 denominator and an
    // int64 numerator; reduction can leave a magnitude only INT64_MIN
    // itself could carry (e.g. 1/INT64_MIN, INT64_MIN/-1).
    require(ud <= kInt64MaxU,
            "Fraction " + std::to_string(num_) + "/" +
                    std::to_string(den_) +
                    " has no canonical int64 form (denominator overflow)");
    require(un <= kInt64MaxU + (negative ? 1 : 0),
            "Fraction " + std::to_string(num_) + "/" +
                    std::to_string(den_) +
                    " has no canonical int64 form (numerator overflow)");
    den_ = std::int64_t(ud);
    if (!negative)
        num_ = std::int64_t(un);
    else if (un == kInt64MaxU + 1)
        num_ = std::numeric_limits<std::int64_t>::min();
    else
        num_ = -std::int64_t(un);
}

std::int64_t
Fraction::toInteger() const
{
    invariant(den_ == 1, "Fraction " + toString() + " is not an integer");
    return num_;
}

Fraction
Fraction::operator-() const
{
    require(num_ != std::numeric_limits<std::int64_t>::min(),
            "Fraction negation of " + toString() + " overflows int64");
    Fraction r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
}

Fraction
Fraction::operator+(const Fraction &other) const
{
    return Fraction(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Fraction
Fraction::operator-(const Fraction &other) const
{
    return Fraction(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Fraction
Fraction::operator*(const Fraction &other) const
{
    return Fraction(num_ * other.num_, den_ * other.den_);
}

Fraction
Fraction::operator/(const Fraction &other) const
{
    require(other.num_ != 0, "Fraction division by zero");
    return Fraction(num_ * other.den_, den_ * other.num_);
}

Fraction &
Fraction::operator+=(const Fraction &other)
{
    *this = *this + other;
    return *this;
}

Fraction &
Fraction::operator-=(const Fraction &other)
{
    *this = *this - other;
    return *this;
}

Fraction &
Fraction::operator*=(const Fraction &other)
{
    *this = *this * other;
    return *this;
}

Fraction &
Fraction::operator/=(const Fraction &other)
{
    *this = *this / other;
    return *this;
}

std::strong_ordering
Fraction::operator<=>(const Fraction &other) const
{
    // Denominators are positive, so cross-multiplication preserves order.
    std::int64_t lhs = num_ * other.den_;
    std::int64_t rhs = other.num_ * den_;
    return lhs <=> rhs;
}

std::string
Fraction::toString() const
{
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

} // namespace stellar
