#include "util/fraction.hpp"

#include "util/logging.hpp"

namespace stellar
{

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    if (a < 0)
        a = -a;
    if (b < 0)
        b = -b;
    while (b != 0) {
        std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

Fraction::Fraction(std::int64_t num, std::int64_t den) : num_(num), den_(den)
{
    require(den != 0, "Fraction denominator must be nonzero");
    normalize();
}

void
Fraction::normalize()
{
    if (den_ < 0) {
        num_ = -num_;
        den_ = -den_;
    }
    std::int64_t g = gcd64(num_, den_);
    if (g > 1) {
        num_ /= g;
        den_ /= g;
    }
    if (num_ == 0)
        den_ = 1;
}

std::int64_t
Fraction::toInteger() const
{
    invariant(den_ == 1, "Fraction " + toString() + " is not an integer");
    return num_;
}

Fraction
Fraction::operator-() const
{
    Fraction r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
}

Fraction
Fraction::operator+(const Fraction &other) const
{
    return Fraction(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Fraction
Fraction::operator-(const Fraction &other) const
{
    return Fraction(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Fraction
Fraction::operator*(const Fraction &other) const
{
    return Fraction(num_ * other.num_, den_ * other.den_);
}

Fraction
Fraction::operator/(const Fraction &other) const
{
    require(other.num_ != 0, "Fraction division by zero");
    return Fraction(num_ * other.den_, den_ * other.num_);
}

Fraction &
Fraction::operator+=(const Fraction &other)
{
    *this = *this + other;
    return *this;
}

Fraction &
Fraction::operator-=(const Fraction &other)
{
    *this = *this - other;
    return *this;
}

Fraction &
Fraction::operator*=(const Fraction &other)
{
    *this = *this * other;
    return *this;
}

Fraction &
Fraction::operator/=(const Fraction &other)
{
    *this = *this / other;
    return *this;
}

std::strong_ordering
Fraction::operator<=>(const Fraction &other) const
{
    // Denominators are positive, so cross-multiplication preserves order.
    std::int64_t lhs = num_ * other.den_;
    std::int64_t rhs = other.num_ * den_;
    return lhs <=> rhs;
}

std::string
Fraction::toString() const
{
    if (den_ == 1)
        return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
}

} // namespace stellar
