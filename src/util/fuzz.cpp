#include "util/fuzz.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "accel/analytic.hpp"
#include "accel/pipeline.hpp"
#include "accel/records.hpp"
#include "core/accelerator.hpp"
#include "core/spatial_array.hpp"
#include "dataflow/enumerate.hpp"
#include "dataflow/transform.hpp"
#include "func/library.hpp"
#include "model/area.hpp"
#include "model/params.hpp"
#include "model/timing.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/outerspace.hpp"
#include "sparse/matrix.hpp"
#include "sparse/matrix_market.hpp"
#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/watchdog.hpp"

namespace stellar::util::fuzz
{

namespace
{

/** splitmix64-style mix: iteration i of seed s is always the same
 *  input, so (domain, seed) alone reproduces any finding. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t iteration)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (iteration + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Outcome of one replay: success, or a classified failure. */
struct EvalOutcome
{
    bool ok = true;
    Failure failure;
};

IntMatrix
randomMatrix(Rng &rng, int rows, int cols, std::int64_t max_coeff)
{
    IntMatrix matrix(rows, cols);
    for (int r = 0; r < rows; r++)
        for (int c = 0; c < cols; c++)
            matrix.at(r, c) = rng.nextRange(-max_coeff, max_coeff);
    return matrix;
}

func::FunctionalSpec
randomFunctional(Rng &rng, std::string &label)
{
    switch (rng.nextBounded(4)) {
      case 0:
        label = "matmul";
        return func::matmulSpec();
      case 1:
        label = "matadd";
        return func::matAddSpec();
      case 2: {
        std::int64_t kh = rng.nextRange(1, 3);
        std::int64_t kw = rng.nextRange(1, 3);
        label = "conv" + std::to_string(kh) + "x" + std::to_string(kw);
        return func::convSpec(kh, kw);
      }
      default:
        label = "merge";
        return func::mergeSpec();
    }
}

IntVec
randomBounds(Rng &rng, int index_count)
{
    // Mostly well-formed; sometimes the wrong arity, zero, negative, or
    // oversized — exactly the shapes a hostile caller can hand in.
    std::size_t len = std::size_t(index_count);
    if (rng.nextBool(0.1))
        len = std::size_t(rng.nextBounded(7));
    IntVec bounds(len);
    for (auto &bound : bounds) {
        if (rng.nextBool(0.08))
            bound = 0;
        else if (rng.nextBool(0.08))
            bound = rng.nextRange(-4, -1);
        else if (rng.nextBool(0.05))
            bound = rng.nextRange(7, 12);
        else
            bound = rng.nextRange(1, 6);
    }
    return bounds;
}

EvalOutcome
evaluateSpecInput(Rng &rng, const FuzzOptions &options, std::string &input)
{
    std::string label;
    auto functional = randomFunctional(rng, label);
    int indices = functional.numIndices();
    int rows = indices, cols = indices;
    if (rng.nextBool(0.05))
        rows = int(rng.nextBounded(std::uint64_t(indices) + 2));
    if (rng.nextBool(0.05))
        cols = int(rng.nextBounded(std::uint64_t(indices) + 2));
    IntMatrix matrix = randomMatrix(rng, rows, cols, 3);
    IntVec bounds = randomBounds(rng, indices);
    input = "spec " + label + "\nbounds " + vecToString(bounds) +
            "\ntransform\n" + matrix.toString();

    WatchdogScope guard("fuzz.spec", options.stepBudget,
                        options.timeBudgetMillis);
    dataflow::SpaceTimeTransform transform(std::move(matrix), "fuzz");
    core::AcceleratorSpec spec;
    spec.name = "fuzz";
    spec.functional = functional;
    spec.transform = transform;
    spec.elaborationBounds = bounds;
    accel::PipelineSpec pipeline;
    pipeline.name = "fuzz";
    pipeline.stages.push_back(spec);
    auto result = accel::generatePipelineIsolated(pipeline,
                                                  options.stepBudget);
    if (!result.ok()) {
        EvalOutcome outcome;
        outcome.ok = false;
        outcome.failure = result.failures.front().failure;
        return outcome;
    }
    // The generated stages must also survive the analytic models.
    model::AreaParams area_params;
    model::TimingParams timing_params;
    for (const auto &stage : result.pipeline.stages) {
        double area = model::arrayArea(area_params, stage, 8, 8, true);
        auto timing = model::timingOf(timing_params, stage, false);
        if (!(area >= 0.0) || !(timing.fmaxMhz() > 0.0))
            throw std::logic_error(
                    "fuzz property violated: non-physical model output "
                    "(area " + std::to_string(area) + ", fmax " +
                    std::to_string(timing.fmaxMhz()) + " MHz)");
    }
    return {};
}

EvalOutcome
evaluateTransformInput(Rng &rng, const FuzzOptions &options,
                       std::string &input)
{
    int n = 1 + int(rng.nextBounded(4));
    int rows = n, cols = n;
    if (rng.nextBool(0.15))
        rows = int(rng.nextBounded(5));
    if (rng.nextBool(0.15))
        cols = int(rng.nextBounded(5));
    std::int64_t max_coeff = rng.nextBool(0.1) ? 9 : 3;
    IntMatrix matrix = randomMatrix(rng, rows, cols, max_coeff);
    input = "transform\n" + matrix.toString();

    WatchdogScope guard("fuzz.transform", options.stepBudget,
                        options.timeBudgetMillis);
    dataflow::SpaceTimeTransform transform(matrix, "fuzz");
    // Survived validation: the algebra must now be self-consistent.
    // Property breaches throw std::logic_error deliberately — an
    // *unclassified* kind — so they surface as violations, not as
    // silently tolerated "classified" outcomes.
    if (!matrix.isInvertible())
        throw std::logic_error("fuzz property violated: transform "
                               "accepted a singular matrix");
    IntVec point(std::size_t(matrix.cols()));
    for (auto &x : point)
        x = rng.nextRange(-5, 5);
    IntVec space_time = matrix * point;
    auto recovered = transform.invert(space_time);
    if (!recovered.has_value() || *recovered != point)
        throw std::logic_error("fuzz property violated: T^-1(T(x)) != x "
                               "for " + vecToString(point));

    // Analytic-tier oracle: for a square transform whose rank matches
    // one of the library specs, the closed-form probe must agree with
    // the elaborated array *exactly* — equal PE count and schedule
    // length — or flag itself `saturated`. Any silent disagreement is
    // the bug class the DSE's analytic tier cannot tolerate (a wrong
    // closed form would rank the space against phantom designs), so it
    // surfaces as an unclassified violation with a repro.
    int d = transform.dims();
    if (d >= 1 && d <= 4) {
        auto library = [d]() -> std::pair<func::FunctionalSpec,
                                          const char *> {
            switch (d) {
              case 1: return {func::mergeSpec(), "merge"};
              case 2: return {func::matAddSpec(), "matadd"};
              case 3: return {func::matmulSpec(), "matmul"};
              default: return {func::convSpec(2, 2), "conv"};
            }
        };
        auto [functional, label] = library();
        IntVec bounds(std::size_t(d), 0);
        for (auto &bound : bounds)
            bound = rng.nextRange(2, 5);
        input += "oracle " + std::string(label) + " bounds " +
                 vecToString(bounds) + "\n";
        core::IterationSpace space = core::elaborate(functional, bounds);
        auto probe = accel::analyticProbe(transform, bounds, space);
        if (!probe.saturated) {
            core::SpatialArray array = core::applyTransform(space,
                                                            transform);
            if (array.numPes() != probe.pes ||
                array.scheduleLength() != probe.scheduleLength) {
                throw std::logic_error(
                        "fuzz property violated: analytic probe "
                        "disagrees with elaboration (pes " +
                        std::to_string(probe.pes) + " vs " +
                        std::to_string(array.numPes()) + ", steps " +
                        std::to_string(probe.scheduleLength) + " vs " +
                        std::to_string(array.scheduleLength()) + ")");
            }
        }
    }
    return {};
}

/**
 * The Enumerate domain: hostile EnumerateOptions (degenerate and
 * asymmetric coefficient windows, hop lengths from 0 to absurd, limits
 * from 0 to 2^40, broadcast and orbit toggles, every thread count)
 * against two oracles. First, the streamed scan must be byte-identical
 * to the pre-streaming serial oracle — names, matrices, and its own
 * stats accounting. Second, the orbit-canonicalization completeness
 * property: every code the scan skips as non-canonical that *would*
 * pass the filters must decode to a signature some retained canonical
 * representative already yielded — i.e. skipping it lost nothing.
 * Property breaches throw std::logic_error (deliberately unclassified)
 * so they surface as violations with a seeded repro.
 */
EvalOutcome
evaluateEnumerateInput(Rng &rng, const FuzzOptions &options,
                       std::string &input)
{
    std::string label;
    auto functional = randomFunctional(rng, label);
    int n = functional.numIndices();

    dataflow::EnumerateOptions eopt;
    // Window sized so the examine-every-code oracle and the orbit
    // completeness re-scan stay affordable: range^(n^2) caps near 64k.
    std::int64_t max_range = n >= 4 ? 2 : (n == 3 ? 3 : 9);
    std::int64_t range =
            2 + std::int64_t(rng.nextBounded(std::uint64_t(max_range) - 1));
    if (range % 2 == 1 && rng.nextBool(0.6))
        eopt.minCoeff = -(range / 2); // symmetric: sign orbits active
    else
        eopt.minCoeff = rng.nextRange(-range, 1);
    eopt.maxCoeff = eopt.minCoeff + range - 1;
    if (rng.nextBool(0.05))
        eopt.maxCoeff = eopt.minCoeff; // degenerate: must classify
    eopt.maxHopLength = rng.nextBool(0.1) ? rng.nextRange(0, 1 << 20)
                                          : rng.nextRange(1, 4);
    eopt.allowBroadcast = rng.nextBool(0.5);
    eopt.orbitCanonical = !rng.nextBool(0.15);
    static const std::size_t kLimits[] = {0, 1, 2, 7, 100, 4096,
                                          std::size_t(1) << 40};
    eopt.limit = kLimits[rng.nextBounded(std::size(kLimits))];
    eopt.threads = 1 + std::size_t(rng.nextBounded(4));
    input = "enumerate " + label + " coeff [" +
            std::to_string(eopt.minCoeff) + "," +
            std::to_string(eopt.maxCoeff) + "] hop " +
            std::to_string(eopt.maxHopLength) + " limit " +
            std::to_string(eopt.limit) + " threads " +
            std::to_string(eopt.threads) +
            (eopt.allowBroadcast ? "" : " no-broadcast") +
            (eopt.orbitCanonical ? "" : " no-orbit") + "\n";

    WatchdogScope guard("fuzz.enumerate", options.stepBudget,
                        options.timeBudgetMillis);
    auto oracle_opt = eopt;
    oracle_opt.threads = 1;
    auto oracle = dataflow::detail::enumerateTransformsOracle(functional,
                                                              oracle_opt);
    dataflow::EnumerateStats stats;
    auto streamed =
            dataflow::enumerateTransforms(functional, eopt, &stats);
    if (streamed.size() != oracle.size())
        throw std::logic_error(
                "fuzz property violated: streamed scan yielded " +
                std::to_string(streamed.size()) + " transforms, oracle " +
                std::to_string(oracle.size()));
    for (std::size_t i = 0; i < streamed.size(); i++) {
        if (streamed[i].name() != oracle[i].name() ||
            streamed[i].matrix() != oracle[i].matrix())
            throw std::logic_error(
                    "fuzz property violated: streamed transform " +
                    std::to_string(i) + " (" + streamed[i].name() +
                    ") differs from the oracle's (" + oracle[i].name() +
                    ")");
    }
    if (stats.codesExamined != stats.orbitSkipped + stats.decoded ||
        stats.decoded !=
                stats.rejected + stats.duplicates + stats.yielded ||
        stats.yielded != std::int64_t(streamed.size()))
        throw std::logic_error(
                "fuzz property violated: enumeration stats do not "
                "account for the scan (examined " +
                std::to_string(stats.codesExamined) + ", orbit-skipped " +
                std::to_string(stats.orbitSkipped) + ", decoded " +
                std::to_string(stats.decoded) + ", rejected " +
                std::to_string(stats.rejected) + ", duplicates " +
                std::to_string(stats.duplicates) + ", yielded " +
                std::to_string(stats.yielded) + ")");

    // Orbit completeness, checked against the *unlimited* scan so the
    // canonical-signature set is total, over every code in the space.
    std::int64_t total =
            dataflow::detail::codeSpaceSize(functional, eopt);
    if (eopt.orbitCanonical && total <= 70000) {
        auto full = eopt;
        full.threads = 1;
        full.limit = std::size_t(1) << 40;
        std::set<std::vector<std::int64_t>> canonical;
        dataflow::forEachTransform(
                functional, full,
                [&](const dataflow::EnumeratedTransform &item) {
                    canonical.insert(item.signature);
                    return true;
                });
        IntMatrix matrix(0, 0);
        std::vector<std::int64_t> signature;
        for (std::int64_t code = 0; code < total; code++) {
            if (dataflow::detail::codeIsOrbitCanonical(functional, full,
                                                       code))
                continue;
            if (!dataflow::detail::decodeCandidate(functional, full, code,
                                                   &matrix, &signature))
                continue;
            if (!canonical.count(signature))
                throw std::logic_error(
                        "fuzz property violated: orbit-skipped code " +
                        std::to_string(code) +
                        " passes the filters but no retained canonical "
                        "representative shares its signature");
        }
    }
    return {};
}

/**
 * Records domain: scan a tiny sharded sweep into real ShardRecords
 * documents, then attack the codec. A clean round-trip must be exact
 * (serialize(parse(text)) == text) and the full partition must merge;
 * every deterministic corruption mode must be *rejected*; arbitrary
 * byte-level mutilations and merge misuse (a dropped or duplicated
 * shard file) may fail, but only as classified failures — an
 * unclassified throw, or a corruption mode that parses, is the
 * violation. Property breaches throw std::logic_error (deliberately
 * unclassified) so they surface with a seeded repro.
 */
EvalOutcome
evaluateRecordsInput(Rng &rng, const FuzzOptions &options,
                     std::string &input)
{
    accel::ShardConfig config;
    config.dim = 2 + std::int64_t(rng.nextBounded(3));
    config.maxHop = 1 + std::int64_t(rng.nextBounded(2));
    config.maxCoeff = 1;
    config.topK = 1 + std::int64_t(rng.nextBounded(8));
    config.analyticTopK = 1 + std::int64_t(rng.nextBounded(6));
    static const std::int64_t kLimits[] = {1, 2, 7, 100, 4096};
    config.enumLimit = kLimits[rng.nextBounded(std::size(kLimits))];
    if (rng.nextBool(0.3))
        config.maxPes = config.dim * config.dim;
    std::int64_t shard_count = 1 + std::int64_t(rng.nextBounded(3));
    std::int64_t victim = std::int64_t(
            rng.nextBounded(std::uint64_t(shard_count)));
    std::uint64_t attack = rng.nextBounded(10);
    input = "records dim " + std::to_string(config.dim) + " hop " +
            std::to_string(config.maxHop) + " shards " +
            std::to_string(shard_count) + " victim " +
            std::to_string(victim) + " attack " +
            std::to_string(attack) + "\n";

    WatchdogScope guard("fuzz.records", options.stepBudget,
                        options.timeBudgetMillis);
    model::AreaParams area_params;
    model::TimingParams timing_params;
    auto functional = func::matmulSpec();
    IntVec bounds = {config.dim, config.dim, config.dim};
    std::vector<accel::ShardRecords> shards;
    for (std::int64_t i = 0; i < shard_count; i++)
        shards.push_back(accel::scanShard(functional, bounds, config, i,
                                          shard_count, 1, area_params,
                                          timing_params));
    std::string text = accel::serializeShardRecords(
            shards[std::size_t(victim)]);

    auto mergeAll = [&](std::vector<accel::ShardRecords> set) {
        accel::MergeEvalOptions eval;
        eval.threads = 1;
        accel::DseStats stats;
        return accel::mergeShardRecords(std::move(set), functional,
                                        bounds, eval, area_params,
                                        timing_params, &stats);
    };

    if (attack == 0) {
        // Clean path: exact round-trip, and the full partition merges.
        auto parsed = accel::parseShardRecords(text);
        if (accel::serializeShardRecords(parsed) != text)
            throw std::logic_error(
                    "fuzz property violated: shard records round-trip "
                    "is not byte-exact");
        mergeAll(shards);
        return {};
    }
    if (attack <= 5) {
        // Each deterministic corruption mode must be rejected.
        static const accel::RecordsCorruption kModes[] = {
                accel::RecordsCorruption::TruncateTail,
                accel::RecordsCorruption::FlipByte,
                accel::RecordsCorruption::VersionBump,
                accel::RecordsCorruption::ChecksumClobber,
                accel::RecordsCorruption::GarbageHeader,
        };
        auto mode = kModes[attack - 1];
        std::string damaged = accel::corruptShardRecords(text, mode);
        try {
            accel::parseShardRecords(damaged);
        } catch (...) {
            // Rejection is the required outcome — report it classified
            // so an Unknown rejection still surfaces as a violation.
            EvalOutcome outcome;
            outcome.ok = false;
            outcome.failure = classifyException(
                    std::current_exception(), "fuzz.records",
                    "corruption mode " + std::to_string(attack - 1));
            return outcome;
        }
        throw std::logic_error(
                "fuzz property violated: corrupted shard records "
                "(mode " + std::to_string(attack - 1) + ") parsed");
    }
    if (attack == 6 || attack == 7) {
        // Arbitrary mutilation: flip or excise a random span. May
        // still parse (the mutation can land in a string we re-verify
        // by checksum anyway) — it just must not throw unclassified.
        std::size_t at = std::size_t(
                rng.nextBounded(std::uint64_t(text.size())));
        if (attack == 6)
            text[at] = char(text[at] ^ (1 + rng.nextBounded(255)));
        else
            text.erase(at, 1 + std::size_t(rng.nextBounded(64)));
        accel::parseShardRecords(text); // throws classified or succeeds
        return {};
    }
    if (attack == 8 && shard_count > 1) {
        // Merge misuse: drop one shard file — classified rejection.
        auto partial = shards;
        partial.erase(partial.begin() + std::ptrdiff_t(victim));
        mergeAll(std::move(partial));
        throw std::logic_error(
                "fuzz property violated: merge accepted an incomplete "
                "shard set");
    }
    if (shard_count > 1) {
        // Merge misuse: duplicate a shard file — classified rejection.
        auto doubled = shards;
        doubled[std::size_t((victim + 1) % shard_count)] =
                shards[std::size_t(victim)];
        mergeAll(std::move(doubled));
        throw std::logic_error(
                "fuzz property violated: merge accepted a duplicated "
                "shard range");
    }
    mergeAll(shards); // single shard: nothing to misuse; must succeed
    return {};
}

std::string
randomMatrixMarketText(Rng &rng)
{
    sparse::CooMatrix coo;
    coo.rows = std::int64_t(1 + rng.nextBounded(24));
    coo.cols = std::int64_t(1 + rng.nextBounded(24));
    std::size_t entries = std::size_t(rng.nextBounded(40));
    for (std::size_t e = 0; e < entries; e++) {
        sparse::CooEntry entry;
        entry.row = std::int64_t(rng.nextBounded(std::uint64_t(coo.rows)));
        entry.col = std::int64_t(rng.nextBounded(std::uint64_t(coo.cols)));
        entry.value = rng.nextGaussian(0.0, 4.0);
        coo.entries.push_back(entry);
    }
    coo.canonicalize();
    std::ostringstream os;
    sparse::writeMatrixMarket(os, sparse::cooToCsr(coo));
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

/** One structured or raw mutation of a Matrix Market text. */
std::string
mutateMatrixMarketText(Rng &rng, std::string text)
{
    std::uint64_t which = rng.nextBounded(12);
    if (which < 5)
        return fault::corruptMatrixMarket(text,
                                          fault::MtxCorruption(which));
    std::vector<std::string> lines = splitLines(text);
    switch (which) {
      case 5: // flip one byte to a random printable character
        if (!text.empty()) {
            std::size_t at = std::size_t(rng.nextBounded(text.size()));
            text[at] = char(' ' + rng.nextBounded(95));
        }
        return text;
      case 6: { // splice a hostile token into a random line
        static const char *kTokens[] = {
                "nan", "inf", "-inf", "1e308", "-1e308",
                "999999999999999999999", "-7", "0x10", "1.5.5",
        };
        if (lines.empty())
            return text;
        std::size_t at = std::size_t(rng.nextBounded(lines.size()));
        lines[at] += ' ';
        lines[at] += kTokens[rng.nextBounded(std::size(kTokens))];
        return joinLines(lines);
      }
      case 7: // duplicate a line
        if (!lines.empty()) {
            std::size_t at = std::size_t(rng.nextBounded(lines.size()));
            lines.insert(lines.begin() + std::ptrdiff_t(at), lines[at]);
        }
        return joinLines(lines);
      case 8: // delete a line
        if (!lines.empty())
            lines.erase(lines.begin() +
                        std::ptrdiff_t(rng.nextBounded(lines.size())));
        return joinLines(lines);
      case 9: // claim symmetry the entries may not satisfy
        for (auto &line : lines) {
            auto at = line.find("general");
            if (at != std::string::npos) {
                line.replace(at, 7, "symmetric");
                break;
            }
        }
        return joinLines(lines);
      case 10: // truncate mid-byte
        return text.substr(0, rng.nextBounded(text.size() + 1));
      default: // oversized (but representable) size header
        for (std::size_t i = 1; i < lines.size(); i++) {
            if (!lines[i].empty() && lines[i][0] != '%') {
                lines[i] = std::to_string(rng.nextRange(1, 999999)) + " " +
                           std::to_string(rng.nextRange(1, 999999)) + " 2";
                break;
            }
        }
        return joinLines(lines);
    }
}

/** Default MatrixMarket replay: parse, convert, simulate — bounded. */
void
defaultMtxOracle(const std::string &text)
{
    std::istringstream in(text);
    sparse::CsrMatrix csr = sparse::readMatrixMarket(in);
    if (csr.rows() > 4096 || csr.cols() > 4096 || csr.nnz() > 4096)
        return; // parsed fine; skip heavyweight downstream consumption
    auto csc = sparse::csrToCsc(csr);
    if (csc.nnz() != csr.nnz())
        throw std::logic_error("fuzz property violated: csrToCsc changed "
                               "nnz");
    if (csr.rows() == csr.cols() && csr.rows() <= 512 &&
        csr.nnz() <= 512) {
        sim::OuterSpaceConfig config;
        config.multipliers = 16;
        config.mergeLanes = 8;
        config.workGroups = 4;
        auto result = sim::simulateOuterSpace(config, csr);
        if (result.cycles < 0 || result.multiplies < 0)
            throw std::logic_error("fuzz property violated: negative "
                                   "simulated cycle/multiply count");
    }
}

void
evaluateMtxText(const FuzzOptions &options, const std::string &text)
{
    WatchdogScope guard("fuzz.mtx", options.stepBudget,
                        options.timeBudgetMillis);
    if (options.mtxOracle)
        options.mtxOracle(text);
    else
        defaultMtxOracle(text);
}

/** True when `text` still classifies to Unknown (the minimizer oracle). */
bool
mtxStillUnknown(const FuzzOptions &options, const std::string &text)
{
    try {
        evaluateMtxText(options, text);
        return false;
    } catch (...) {
        return classifyException(std::current_exception()).kind ==
               FailureKind::Unknown;
    }
}

/**
 * Bounded private server for the Request domain: hostile requests may
 * *ask* for anything, but parse-time caps and server-side budget clamps
 * keep each admitted one small enough for a single fuzz iteration.
 */
serve::ServeOptions
fuzzServeOptions(const FuzzOptions &options)
{
    serve::ServeOptions sopt;
    sopt.maxStepBudget = options.stepBudget;
    sopt.maxTimeBudgetMillis = options.timeBudgetMillis;
    sopt.limits.maxBytes = 64 << 10;
    sopt.limits.maxDim = 5;
    sopt.limits.maxThreads = 4;
    sopt.limits.maxTopK = 64;
    return sopt;
}

EvalOutcome
evaluateRequestInput(serve::Server &server, const FuzzOptions &options,
                     Rng &rng, std::string &input)
{
    input = randomServeRequestText(rng, /*allow_shutdown=*/false);
    std::string reply = options.requestOracle
                                ? options.requestOracle(input)
                                : server.handleRequestText(input);
    serve::Response response;
    try {
        response = serve::parseResponse(reply);
    } catch (const std::exception &err) {
        // Deliberately unclassified: an unparseable response is itself
        // the invariant breach, so it must surface as a violation.
        throw std::logic_error(
                "fuzz property violated: unparseable serve response (" +
                std::string(err.what()) + ")");
    }
    if (response.status != serve::Status::Error)
        return {}; // ok / overloaded / shutting_down: all well-formed
    EvalOutcome outcome;
    outcome.ok = false;
    outcome.failure = response.failure;
    return outcome;
}

std::string
dumpRepro(const std::string &repro_dir, const FuzzViolation &violation)
{
    std::filesystem::create_directories(repro_dir);
    std::ostringstream name;
    name << "fuzz-" << fuzzDomainName(violation.domain) << "-iter"
         << violation.iteration << "-seed" << std::hex << violation.seed
         << (violation.domain == FuzzDomain::MatrixMarket ? ".mtx"
                                                          : ".txt");
    std::filesystem::path path =
            std::filesystem::path(repro_dir) / name.str();
    std::ofstream out(path);
    require(out.good(),
            "fuzz: cannot open repro file " + path.string());
    // Verbatim: a .mtx repro must reparse byte-for-byte (no metadata
    // header — the banner has to stay on line 1). Domain, iteration,
    // and seed live in the file name and the report.
    out << violation.input;
    require(bool(out.flush()),
            "fuzz: failed writing repro file " + path.string());
    return path.string();
}

} // namespace

const char *
fuzzDomainName(FuzzDomain domain)
{
    switch (domain) {
      case FuzzDomain::Spec: return "spec";
      case FuzzDomain::Transform: return "transform";
      case FuzzDomain::MatrixMarket: return "mtx";
      case FuzzDomain::Request: return "request";
      case FuzzDomain::Enumerate: return "enumerate";
      case FuzzDomain::Records: return "records";
    }
    return "unknown";
}

std::string
randomServeRequestText(Rng &rng, bool allow_shutdown)
{
    auto chooseInt = [&](std::initializer_list<std::int64_t> common,
                         std::initializer_list<std::int64_t> hostile) {
        const auto &list = rng.nextBool(0.2) ? hostile : common;
        auto it = list.begin();
        std::advance(it, std::ptrdiff_t(rng.nextBounded(list.size())));
        return *it;
    };
    auto numField = [&](const char *name, std::int64_t value) {
        return ",\"" + std::string(name) +
               "\":" + std::to_string(value);
    };

    // A structured request first: mostly valid, with hostile values
    // sprinkled in so the schema gauntlet sees realistic near-misses
    // (absurd dims, zero budgets, unknown and wrong-typed fields).
    std::string text;
    std::uint64_t command = rng.nextBounded(10);
    if (allow_shutdown && command == 9) {
        text = "{\"command\":\"shutdown\"}";
    } else if (command >= 7) {
        text = "{\"command\":\"stats\"";
        if (rng.nextBool(0.1))
            text += ",\"threads\":1"; // unknown for stats: must reject
        text += "}";
    } else if (command >= 3) {
        text = "{\"command\":\"dse\"";
        if (rng.nextBool(0.9))
            text += numField("dim",
                             chooseInt({2, 3, 4, 5}, {0, -2, 64, 100000}));
        if (rng.nextBool(0.6))
            text += numField("threads", chooseInt({1, 2, 4}, {0, 999}));
        if (rng.nextBool(0.5))
            text += numField("topk", chooseInt({1, 5, 10}, {0, 1000000}));
        if (rng.nextBool(0.3))
            text += numField("max_pes", chooseInt({0, 64, 4096}, {-5}));
        if (rng.nextBool(0.3))
            text += numField("prepass", chooseInt({0, 4}, {-1, 1000000}));
        if (rng.nextBool(0.5))
            text += numField("step_budget",
                             chooseInt({0, 200000},
                                       {1, -7, 1000000000000000LL,
                                        9223372036854775807LL,
                                        -9223372036854775807LL - 1}));
        if (rng.nextBool(0.4))
            text += numField("time_budget_ms",
                             chooseInt({0, 1000}, {1, -3}));
        if (rng.nextBool(0.25))
            text += ",\"retry_wall_clock\":true";
        if (rng.nextBool(0.2))
            text += ",\"fail_fast\":true";
        if (rng.nextBool(0.2))
            text += ",\"timings\":false";
        if (rng.nextBool(0.08))
            text += ",\"bogus\":1";
        if (rng.nextBool(0.06))
            text += ",\"dim\":\"eight\"";
        text += "}";
    } else {
        text = "{\"command\":\"sim\"";
        if (rng.nextBool(0.9)) {
            static const char *kWorkloads[] = {"scnn", "scnn",
                                               "outerspace", "bogus", ""};
            text += ",\"workload\":\"" +
                    std::string(kWorkloads[rng.nextBounded(
                            std::size(kWorkloads))]) +
                    "\"";
        }
        if (rng.nextBool(0.6))
            text += numField("threads", chooseInt({1, 2, 4}, {0, 999}));
        if (rng.nextBool(0.5))
            text += numField("step_budget",
                             chooseInt({0, 200000}, {1, -7}));
        if (rng.nextBool(0.4))
            text += numField("time_budget_ms",
                             chooseInt({0, 1000}, {1, -3}));
        if (rng.nextBool(0.08))
            text += ",\"dim\":4"; // a dse-only field: must reject
        text += "}";
    }
    if (!rng.nextBool(0.4))
        return text;

    // The rest are textual attacks on the wire format itself.
    switch (rng.nextBounded(7)) {
      case 0: // flip one byte to anything
        if (!text.empty())
            text[rng.nextBounded(text.size())] =
                    char(rng.nextBounded(256));
        return text;
      case 1: // truncate mid-token
        return text.substr(0, rng.nextBounded(text.size() + 1));
      case 2: { // splice a hostile token at a random position
        static const char *kTokens[] = {
                "nan", "1e999", "0x10", "\"", "{", "}", "[", "]", ":",
                ",", "\\u0041", "999999999999999999999999",
                // int64 boundary: INT64_MAX strtod-rounds to exactly
                // 2^63, which the parser must reject, never convert.
                "9223372036854775807", "9223372036854775808",
                "-9223372036854775808", "-9223372036854775809",
        };
        std::size_t at = rng.nextBounded(text.size() + 1);
        return text.substr(0, at) + kTokens[rng.nextBounded(
                                            std::size(kTokens))] +
               text.substr(at);
      }
      case 3: { // raw garbage bytes (including NULs)
        std::string garbage(1 + rng.nextBounded(48), '\0');
        for (auto &c : garbage)
            c = char(rng.nextBounded(256));
        return garbage;
      }
      case 4: // deep nesting (the parser's depth cap)
        return std::string(std::size_t(rng.nextRange(8, 300)), '[');
      case 5: // oversize padding (the wire / parse byte caps)
        return text + std::string(128 << 10, ' ');
      default: // empty or whitespace-only
        return rng.nextBool(0.5)
                       ? std::string()
                       : std::string(1 + rng.nextBounded(8), ' ');
    }
}

std::string
FuzzReport::toString() const
{
    std::ostringstream os;
    os << "fuzz: " << iterations << " iterations, " << succeeded << " ok";
    for (std::size_t k = 0; k < kFailureKindCount; k++)
        os << ", " << outcomes[k] << " "
           << failureKindName(FailureKind(k));
    os << ", " << violations.size()
       << (violations.size() == 1 ? " violation" : " violations");
    return os.str();
}

std::string
minimizeLines(const std::string &input,
              const std::function<bool(const std::string &)> &still_fails)
{
    std::vector<std::string> lines = splitLines(input);
    // Greedy ddmin over line chunks with a hard oracle-call cap, so a
    // pathological oracle can never wedge the harness.
    std::size_t calls_left = 512;
    std::size_t chunk = std::max<std::size_t>(1, lines.size() / 2);
    while (calls_left > 0) {
        bool removed = false;
        for (std::size_t start = 0;
             start < lines.size() && calls_left > 0;) {
            std::size_t len = std::min(chunk, lines.size() - start);
            std::vector<std::string> candidate;
            candidate.reserve(lines.size() - len);
            candidate.insert(candidate.end(), lines.begin(),
                             lines.begin() + std::ptrdiff_t(start));
            candidate.insert(candidate.end(),
                             lines.begin() + std::ptrdiff_t(start + len),
                             lines.end());
            calls_left--;
            if (still_fails(joinLines(candidate))) {
                lines = std::move(candidate);
                removed = true;
            } else {
                start += len;
            }
        }
        if (chunk > 1)
            chunk /= 2;
        else if (!removed)
            break;
    }
    return joinLines(lines);
}

FuzzReport
runFuzz(const FuzzOptions &options)
{
    FuzzOptions opt = options;
    if (opt.domains.empty())
        opt.domains = {FuzzDomain::Spec,      FuzzDomain::Transform,
                       FuzzDomain::MatrixMarket, FuzzDomain::Request,
                       FuzzDomain::Enumerate, FuzzDomain::Records};
    // The Request domain's target: one private in-process server shared
    // across the run (so a state-poisoning request surfaces in later
    // iterations), created lazily on first use.
    std::unique_ptr<serve::Server> server;
    FuzzReport report;
    report.iterations = opt.iterations;
    for (std::size_t i = 0; i < opt.iterations; i++) {
        FuzzDomain domain = opt.domains[i % opt.domains.size()];
        std::uint64_t iter_seed = mixSeed(opt.seed, i);
        Rng rng(iter_seed);
        std::string input;
        EvalOutcome outcome;
        try {
            switch (domain) {
              case FuzzDomain::Spec:
                outcome = evaluateSpecInput(rng, opt, input);
                break;
              case FuzzDomain::Transform:
                outcome = evaluateTransformInput(rng, opt, input);
                break;
              case FuzzDomain::MatrixMarket:
                input = mutateMatrixMarketText(
                        rng, randomMatrixMarketText(rng));
                evaluateMtxText(opt, input);
                break;
              case FuzzDomain::Request:
                if (!server)
                    server = std::make_unique<serve::Server>(
                            fuzzServeOptions(opt));
                outcome = evaluateRequestInput(*server, opt, rng, input);
                break;
              case FuzzDomain::Enumerate:
                outcome = evaluateEnumerateInput(rng, opt, input);
                break;
              case FuzzDomain::Records:
                outcome = evaluateRecordsInput(rng, opt, input);
                break;
            }
        } catch (...) {
            outcome.ok = false;
            outcome.failure = classifyException(
                    std::current_exception(),
                    std::string("fuzz.") + fuzzDomainName(domain),
                    "iter#" + std::to_string(i));
        }
        if (outcome.ok) {
            report.succeeded++;
            continue;
        }
        report.outcomes[std::size_t(outcome.failure.kind)]++;
        if (outcome.failure.kind != FailureKind::Unknown)
            continue; // classified: an acceptable outcome by contract
        FuzzViolation violation;
        violation.domain = domain;
        violation.iteration = i;
        violation.seed = iter_seed;
        violation.failure = outcome.failure;
        violation.input = input;
        if (domain == FuzzDomain::MatrixMarket && opt.minimize &&
            !input.empty())
            violation.input = minimizeLines(
                    input, [&](const std::string &candidate) {
                        return mtxStillUnknown(opt, candidate);
                    });
        if (!opt.reproDir.empty())
            violation.reproPath = dumpRepro(opt.reproDir, violation);
        report.violations.push_back(std::move(violation));
    }
    return report;
}

} // namespace stellar::util::fuzz
