/**
 * @file
 * RAII AF_UNIX stream sockets for the serve daemon.
 *
 * A deliberately small wrapper: listen/connect/accept plus
 * whole-message reads and writes with the hardening the daemon needs —
 * bounded read sizes (a hostile client cannot balloon memory), receive
 * timeouts (a slow-loris client cannot wedge a worker), and
 * MSG_NOSIGNAL sends (a client that disconnects mid-response must not
 * SIGPIPE the process). Message framing is connection-scoped: the
 * client writes one request and shuts down its write side; the server
 * reads to EOF, writes one response, and closes.
 */

#ifndef STELLAR_UTIL_SOCKET_HPP
#define STELLAR_UTIL_SOCKET_HPP

#include <cstddef>
#include <string>
#include <string_view>

namespace stellar::util
{

/** Why a bounded read stopped (Eof is the success case). */
enum class SocketReadStatus
{
    Eof,      //!< peer finished; the message is complete
    Overflow, //!< more bytes arrived than the caller allows
    Timeout,  //!< the receive timeout expired mid-message
    Error,    //!< any other socket error (peer reset, bad fd, ...)
};

/** A connected or listening AF_UNIX stream socket (move-only). */
class LocalSocket
{
  public:
    LocalSocket() = default;
    /** Adopt an already-open descriptor (-1 = invalid). */
    explicit LocalSocket(int fd) : fd_(fd) {}
    ~LocalSocket() { close(); }

    LocalSocket(LocalSocket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    LocalSocket &operator=(LocalSocket &&other) noexcept;
    LocalSocket(const LocalSocket &) = delete;
    LocalSocket &operator=(const LocalSocket &) = delete;

    /**
     * Bind and listen on `path`, unlinking any stale socket file first.
     * Raises FatalError (with errno text) when the path is unusable.
     */
    static LocalSocket listenOn(const std::string &path, int backlog = 64);

    /** Connect to a listening socket; FatalError when nothing answers. */
    static LocalSocket connectTo(const std::string &path);

    /**
     * Wait up to `timeout_millis` for the socket to become readable
     * (for a listener: for a pending connection). False on timeout.
     */
    bool waitReadable(int timeout_millis) const;

    /** Accept one connection; invalid socket on transient failure. */
    LocalSocket accept() const;

    /** Apply SO_RCVTIMEO/SO_SNDTIMEO (0 = no timeout). */
    void setTimeouts(int millis) const;

    /**
     * Append bytes to `out` until EOF, `max_bytes` total (0 =
     * unlimited), a receive timeout, or an error — in that order of
     * precedence as the return value reports it. On Overflow the first
     * `max_bytes` bytes are in `out` and the rest is unread.
     */
    SocketReadStatus readAll(std::string &out, std::size_t max_bytes) const;

    /** Write the whole buffer (MSG_NOSIGNAL); false on any failure. */
    bool writeAll(std::string_view data) const;

    /**
     * Read and discard up to `max_bytes` until EOF, a timeout, or an
     * error. The server calls this before closing a connection whose
     * request it answered *without* reading to EOF (shed, drain,
     * overflow): Linux AF_UNIX turns unread bytes at close into an
     * ECONNRESET for the peer, which would clobber the already-written
     * reply's clean end-of-stream.
     */
    void drainRead(std::size_t max_bytes) const;

    /** Half-close: signal end-of-message to the peer. */
    void shutdownWrite() const;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

  private:
    int fd_ = -1;
};

} // namespace stellar::util

#endif // STELLAR_UTIL_SOCKET_HPP
