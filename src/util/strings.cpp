#include "util/strings.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace stellar
{

std::string
join(const std::vector<std::string> &pieces, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); i++) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
indent(const std::string &block, int n)
{
    std::string pad(std::size_t(n), ' ');
    std::string out;
    std::istringstream is(block);
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (!first)
            out += "\n";
        first = false;
        if (!line.empty())
            out += pad + line;
    }
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    for (auto &ch : out)
        ch = char(std::tolower((unsigned char)ch));
    return out;
}

std::string
sanitizeIdentifier(const std::string &name)
{
    std::string out;
    for (char ch : name) {
        if (std::isalnum((unsigned char)ch) || ch == '_')
            out += ch;
        else
            out += '_';
    }
    if (out.empty() || std::isdigit((unsigned char)out[0]))
        out = "id_" + out;
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
padLeft(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

std::string
padRight(const std::string &text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

} // namespace stellar
