#include "util/stats.hpp"

#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace stellar
{

void
SampleStats::add(double value)
{
    count_++;
    sum_ += value;
    sumSquares_ += value * value;
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

double
SampleStats::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / double(count_);
}

double
SampleStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    double m = mean();
    double var = sumSquares_ / double(count_) - m * m;
    return var < 0.0 ? 0.0 : var;
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

std::string
SampleStats::toString() const
{
    std::ostringstream os;
    os << "n=" << count_ << " mean=" << mean() << " min=" << min_
       << " max=" << max_ << " stddev=" << stddev();
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    require(hi > lo, "Histogram range must be nonempty");
    require(buckets > 0, "Histogram needs at least one bucket");
}

void
Histogram::add(double value)
{
    total_++;
    if (value < lo_) {
        underflow_++;
    } else if (value >= hi_) {
        overflow_++;
    } else {
        double frac = (value - lo_) / (hi_ - lo_);
        auto idx = std::size_t(frac * double(counts_.size()));
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx]++;
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * double(i) / double(counts_.size());
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); i++)
        os << "[" << bucketLo(i) << ", " << bucketLo(i + 1) << "): "
           << counts_[i] << "\n";
    os << "underflow: " << underflow_ << ", overflow: " << overflow_;
    return os.str();
}

} // namespace stellar
