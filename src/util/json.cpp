#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"

namespace stellar::util::json
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, const std::string &what,
           const ParseLimits &limits)
        : text_(text), what_(what), limits_(limits)
    {
    }

    Value
    parse()
    {
        if (limits_.maxBytes != 0 && text_.size() > limits_.maxBytes)
            fail("input exceeds " + std::to_string(limits_.maxBytes) +
                 " bytes (got " + std::to_string(text_.size()) + ")");
        Value value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return value;
    }

  private:
    Value
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        Value value;
        value.offset = pos_;
        char c = text_[pos_];
        switch (c) {
          case '{': parseObject(value); break;
          case '[': parseArray(value); break;
          case '"':
            value.kind = Value::Kind::String;
            value.string = parseString();
            break;
          case 't':
          case 'f':
            value.kind = Value::Kind::Bool;
            value.boolean = parseKeyword();
            break;
          case 'n':
            expectWord("null");
            value.kind = Value::Kind::Null;
            break;
          default:
            // strtod would happily accept "inf"/"nan"/leading "+";
            // require JSON's grammar (a digit or '-') up front so
            // hostile tokens die here with a clean offset.
            if (c == '-' || (c >= '0' && c <= '9')) {
                value.kind = Value::Kind::Number;
                value.number = parseNumber();
            } else {
                fail(std::string("unexpected character '") + c + "'");
            }
        }
        return value;
    }

    void
    parseObject(Value &value)
    {
        enterContainer();
        value.kind = Value::Kind::Object;
        pos_++; // '{'
        skipWs();
        if (peek() == '}') {
            pos_++;
            depth_--;
            return;
        }
        while (true) {
            skipWs();
            std::string key = parseString();
            for (const auto &member : value.object)
                if (member.first == key)
                    fail("duplicate key '" + key + "'");
            expect(':');
            value.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            break;
        }
        expect('}');
        depth_--;
    }

    void
    parseArray(Value &value)
    {
        enterContainer();
        value.kind = Value::Kind::Array;
        pos_++; // '['
        skipWs();
        if (peek() == ']') {
            pos_++;
            depth_--;
            return;
        }
        while (true) {
            value.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            break;
        }
        expect(']');
        depth_--;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              default:
                fail(std::string("unsupported escape '\\") + esc + "'");
            }
        }
    }

    double
    parseNumber()
    {
        // Scan JSON's number grammar first: strtod alone also accepts
        // hex ("0x10"), "inf"/"nan", and leading '+', none of which a
        // serializer of ours emits or a hostile client may smuggle in.
        std::size_t end = pos_;
        auto digits = [&] {
            std::size_t start = end;
            while (end < text_.size() && text_[end] >= '0' &&
                   text_[end] <= '9')
                end++;
            return end > start;
        };
        if (end < text_.size() && text_[end] == '-')
            end++;
        if (!digits())
            fail("expected a number");
        if (end < text_.size() && text_[end] == '.') {
            end++;
            if (!digits())
                fail("expected digits after decimal point");
        }
        if (end < text_.size() &&
            (text_[end] == 'e' || text_[end] == 'E')) {
            end++;
            if (end < text_.size() &&
                (text_[end] == '+' || text_[end] == '-'))
                end++;
            if (!digits())
                fail("expected digits in exponent");
        }
        std::string token = text_.substr(pos_, end - pos_);
        double value = std::strtod(token.c_str(), nullptr);
        if (!std::isfinite(value))
            fail("number is not finite");
        pos_ = end;
        return value;
    }

    bool
    parseKeyword()
    {
        if (text_[pos_] == 't') {
            expectWord("true");
            return true;
        }
        expectWord("false");
        return false;
    }

    void
    expectWord(const char *word)
    {
        for (const char *p = word; *p != '\0'; p++) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected '") + word + "'");
            pos_++;
        }
    }

    void
    enterContainer()
    {
        if (++depth_ > limits_.maxDepth)
            fail("nesting exceeds depth " + std::to_string(limits_.maxDepth));
    }

    char
    peek()
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    void
    expect(char c)
    {
        skipWs();
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw FatalError(what_ + ": " + what + " at byte " +
                         std::to_string(pos_));
    }

    const std::string &text_;
    const std::string &what_;
    const ParseLimits &limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

void
serializeInto(const Value &value, std::string &out)
{
    switch (value.kind) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += value.boolean ? "true" : "false";
        break;
      case Value::Kind::Number:
        out += serializeDouble(value.number);
        break;
      case Value::Kind::String:
        out += quote(value.string);
        break;
      case Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto &item : value.array) {
            if (!first)
                out += ',';
            first = false;
            serializeInto(item, out);
        }
        out += ']';
        break;
      }
      case Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &member : value.object) {
            if (!first)
                out += ',';
            first = false;
            out += quote(member.first);
            out += ':';
            serializeInto(member.second, out);
        }
        out += '}';
        break;
      }
    }
}

} // namespace

const Value *
Value::find(const std::string &key) const
{
    for (const auto &member : object)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

Value
parse(const std::string &text, const std::string &what,
      const ParseLimits &limits)
{
    return Parser(text, what, limits).parse();
}

std::string
serialize(const Value &value)
{
    std::string out;
    serializeInto(value, out);
    return out;
}

std::string
serializeDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

std::string
quote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

std::int64_t
toInt64(const Value &value, const std::string &what)
{
    require(value.isNumber(),
            what + " must be a number (at byte " +
                    std::to_string(value.offset) + ")");
    double d = value.number;
    // 2^63 is exactly representable as a double; INT64_MAX is not, and
    // inputs like "9223372036854775807" strtod-round up to exactly 2^63.
    // The upper bound must therefore be exclusive on 2^63 itself, or the
    // float-to-int conversion below is out of range (undefined behavior).
    // -2^63 is exact and equals INT64_MIN, so the lower bound stays
    // inclusive.
    constexpr double kLimit = 9223372036854775808.0; // 2^63
    require(d == std::floor(d) && d >= -kLimit && d < kLimit,
            what + " must be an integer (at byte " +
                    std::to_string(value.offset) + ")");
    return std::int64_t(d);
}

} // namespace stellar::util::json
