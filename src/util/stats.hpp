/**
 * @file
 * Statistics accumulators used throughout the simulator and benchmarks.
 */

#ifndef STELLAR_UTIL_STATS_HPP
#define STELLAR_UTIL_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace stellar
{

/** Online accumulator for min/max/mean/stddev of a sample stream. */
class SampleStats
{
  public:
    void add(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    std::string toString() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSquares_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double value);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Bucket lower edge. */
    double bucketLo(std::size_t i) const;

    std::string toString() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace stellar

#endif // STELLAR_UTIL_STATS_HPP
