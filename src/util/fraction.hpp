/**
 * @file
 * Exact rational arithmetic.
 *
 * Space-time transform inverses are rational in general (the determinant of
 * a user-supplied transform need not be +/-1), and PE iterator recovery via
 * T^-1 must be exact, so all transform math uses Fraction instead of
 * floating point.
 */

#ifndef STELLAR_UTIL_FRACTION_HPP
#define STELLAR_UTIL_FRACTION_HPP

#include <cstdint>
#include <compare>
#include <string>

namespace stellar
{

/**
 * An exact rational number with a canonical representation: the denominator
 * is always positive and gcd(|num|, den) == 1.
 */
class Fraction
{
  public:
    Fraction() : num_(0), den_(1) {}
    Fraction(std::int64_t value) : num_(value), den_(1) {}
    Fraction(std::int64_t num, std::int64_t den);

    std::int64_t num() const { return num_; }
    std::int64_t den() const { return den_; }

    bool isInteger() const { return den_ == 1; }
    bool isZero() const { return num_ == 0; }

    /** The integer value; panics if the fraction is not integral. */
    std::int64_t toInteger() const;

    double toDouble() const { return double(num_) / double(den_); }

    Fraction operator-() const;
    Fraction operator+(const Fraction &other) const;
    Fraction operator-(const Fraction &other) const;
    Fraction operator*(const Fraction &other) const;
    Fraction operator/(const Fraction &other) const;

    Fraction &operator+=(const Fraction &other);
    Fraction &operator-=(const Fraction &other);
    Fraction &operator*=(const Fraction &other);
    Fraction &operator/=(const Fraction &other);

    bool operator==(const Fraction &other) const = default;
    std::strong_ordering operator<=>(const Fraction &other) const;

    std::string toString() const;

  private:
    void normalize();

    std::int64_t num_;
    std::int64_t den_;
};

/**
 * Greatest common divisor of the absolute values; gcd(0, 0) == 0.
 * Well-defined for INT64_MIN operands (computed on unsigned
 * magnitudes); the one unrepresentable result — gcd 2^63, reachable
 * only from gcd(INT64_MIN, 0) or gcd(INT64_MIN, INT64_MIN) — saturates
 * to INT64_MAX.
 */
std::int64_t gcd64(std::int64_t a, std::int64_t b);

} // namespace stellar

#endif // STELLAR_UTIL_FRACTION_HPP
