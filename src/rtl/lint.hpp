/**
 * @file
 * Structural Verilog lint.
 *
 * Two layers of checking, both used heavily in tests:
 *  - graph checks over a Design (instances reference defined modules, and
 *    connect only real ports of those modules; assignments only target
 *    declared signals);
 *  - text checks over emitted Verilog (balanced module/endmodule and
 *    begin/end, no empty port lists, balanced parentheses).
 */

#ifndef STELLAR_RTL_LINT_HPP
#define STELLAR_RTL_LINT_HPP

#include <string>
#include <vector>

#include "rtl/verilog.hpp"

namespace stellar::rtl
{

/** One lint finding. */
struct LintIssue
{
    std::string module;
    std::string message;
};

/** Check the module graph of a design. Empty result means clean. */
std::vector<LintIssue> lintDesign(const Design &design);

/** Check emitted Verilog text. Empty result means clean. */
std::vector<LintIssue> lintText(const std::string &verilog);

/** Convenience: emit, run both linters, and return all issues. */
std::vector<LintIssue> lintAll(const Design &design);

} // namespace stellar::rtl

#endif // STELLAR_RTL_LINT_HPP
