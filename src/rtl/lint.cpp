#include "rtl/lint.hpp"

#include <cctype>
#include <sstream>

namespace stellar::rtl
{

namespace
{

/** Extract the base identifier from an lvalue/signal expression
 *  (strips bit-selects and concatenation braces). */
std::string
baseIdentifier(const std::string &expr)
{
    std::string out;
    for (char ch : expr) {
        if (std::isalnum((unsigned char)ch) || ch == '_' || ch == '$')
            out += ch;
        else
            break;
    }
    return out;
}

bool
isLiteral(const std::string &expr)
{
    if (expr.empty())
        return false;
    if (std::isdigit((unsigned char)expr[0]))
        return true;
    if (expr[0] == '-' && expr.size() > 1 &&
            std::isdigit((unsigned char)expr[1])) {
        return true;
    }
    return false;
}

} // namespace

std::vector<LintIssue>
lintDesign(const Design &design)
{
    std::vector<LintIssue> issues;
    if (design.top().empty() ||
            design.findModule(design.top()) == nullptr) {
        issues.push_back({"<design>", "top module \"" + design.top() +
                                      "\" is not defined"});
    }
    for (const auto &module : design.modules()) {
        // Assignment targets must be declared.
        for (const auto &assign : module.assigns()) {
            std::string base = baseIdentifier(assign.lhs);
            if (!module.declares(base)) {
                issues.push_back({module.name(),
                                  "assign target " + base +
                                  " is not declared"});
            }
        }
        // Instances must reference defined modules and real ports, and
        // connect declared local signals.
        for (const auto &inst : module.instances()) {
            const Module *target = design.findModule(inst.moduleName);
            if (target == nullptr) {
                issues.push_back({module.name(),
                                  "instance " + inst.instanceName +
                                  " references undefined module " +
                                  inst.moduleName});
                continue;
            }
            for (const auto &conn : inst.connections) {
                bool port_exists = false;
                for (const auto &port : target->ports())
                    if (port.name == conn.port)
                        port_exists = true;
                if (!port_exists) {
                    issues.push_back({module.name(),
                                      "instance " + inst.instanceName +
                                      " connects nonexistent port " +
                                      conn.port});
                }
                std::string base = baseIdentifier(conn.signal);
                if (!isLiteral(conn.signal) && !base.empty() &&
                        !module.declares(base)) {
                    issues.push_back({module.name(),
                                      "instance " + inst.instanceName +
                                      " uses undeclared signal " + base});
                }
                // Width check: a plain (un-sliced) signal must match the
                // port width exactly.
                if (port_exists && !isLiteral(conn.signal) &&
                        base == conn.signal && module.declares(base)) {
                    int port_width = target->widthOf(conn.port);
                    int signal_width = module.widthOf(base);
                    if (port_width > 0 && signal_width > 0 &&
                            port_width != signal_width) {
                        issues.push_back(
                                {module.name(),
                                 "instance " + inst.instanceName +
                                 " connects " + std::to_string(signal_width) +
                                 "-bit " + base + " to " +
                                 std::to_string(port_width) + "-bit port " +
                                 conn.port});
                    }
                }
            }
        }
    }
    return issues;
}

std::vector<LintIssue>
lintText(const std::string &verilog)
{
    std::vector<LintIssue> issues;
    // Strip line comments first so their punctuation is not counted.
    std::ostringstream stripped;
    std::istringstream lines(verilog);
    std::string line;
    while (std::getline(lines, line)) {
        auto pos = line.find("//");
        stripped << (pos == std::string::npos ? line : line.substr(0, pos))
                 << "\n";
    }
    std::istringstream is(stripped.str());
    std::string word;
    long modules = 0, begins = 0, cases = 0;
    long paren_depth = 0;
    while (is >> word) {
        // Strip punctuation glued to keywords for the counting below.
        std::string token = baseIdentifier(word);
        if (token == "module")
            modules++;
        else if (token == "endmodule")
            modules--;
        else if (token == "begin")
            begins++;
        else if (token == "end")
            begins--;
        else if (token == "case" || token == "casez")
            cases++;
        else if (token == "endcase")
            cases--;
        for (char ch : word) {
            if (ch == '(')
                paren_depth++;
            if (ch == ')')
                paren_depth--;
        }
        if (modules < 0 || begins < 0 || cases < 0 || paren_depth < 0)
            break;
    }
    if (modules != 0)
        issues.push_back({"<text>", "unbalanced module/endmodule"});
    if (begins != 0)
        issues.push_back({"<text>", "unbalanced begin/end"});
    if (cases != 0)
        issues.push_back({"<text>", "unbalanced case/endcase"});
    if (paren_depth != 0)
        issues.push_back({"<text>", "unbalanced parentheses"});
    return issues;
}

std::vector<LintIssue>
lintAll(const Design &design)
{
    std::vector<LintIssue> issues = lintDesign(design);
    for (auto &issue : lintText(design.emit()))
        issues.push_back(std::move(issue));
    return issues;
}

} // namespace stellar::rtl
