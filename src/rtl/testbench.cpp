#include "rtl/testbench.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::rtl
{

std::string
addTopTestbench(Design &design, std::int64_t run_cycles)
{
    const Module *top = design.findModule(design.top());
    require(top != nullptr, "design has no top module to test");
    std::string tb_name = "tb_" + top->name();
    Module &tb = design.addModule(tb_name);
    tb.setComment("Auto-generated testbench: clocks the top level for " +
                  std::to_string(run_cycles) + " cycles.");
    tb.addReg("clock", 1);
    tb.addReg("reset", 1);
    tb.addReg("enable", 1);

    Instance dut;
    dut.moduleName = top->name();
    dut.instanceName = "dut";
    for (const auto &port : top->ports()) {
        if (port.name == "clock" || port.name == "reset" ||
                port.name == "enable") {
            dut.connections.push_back({port.name, port.name});
        }
    }
    tb.addInstance(std::move(dut));

    std::ostringstream raw;
    raw << "initial begin\n"
        << "  clock = 0;\n"
        << "  reset = 1;\n"
        << "  enable = 0;\n"
        << "  #20 reset = 0;\n"
        << "  enable = 1;\n"
        << "  #" << (run_cycles * 10) << " $display(\"tb done\");\n"
        << "  $finish;\n"
        << "end\n"
        << "always #5 clock = !clock;";
    tb.addRaw(raw.str());
    return tb_name;
}

std::string
addVectorTestbench(Design &design, const std::string &module_name,
                   const std::vector<TestVector> &vectors)
{
    const Module *target = design.findModule(module_name);
    require(target != nullptr, "no module named " + module_name);
    std::string tb_name = "tb_" + module_name + "_vectors";
    Module &tb = design.addModule(tb_name);
    tb.setComment("Auto-generated self-checking testbench for " +
                  module_name + " (" + std::to_string(vectors.size()) +
                  " vectors).");

    tb.addReg("clock", 1);
    tb.addReg("errors", 32);
    Instance dut;
    dut.moduleName = module_name;
    dut.instanceName = "dut";
    for (const auto &port : target->ports()) {
        if (port.name == "clock") {
            dut.connections.push_back({"clock", "clock"});
            continue;
        }
        if (port.dir == PortDir::Input)
            tb.addReg(port.name, port.width, port.isSigned);
        else
            tb.addWire(port.name, port.width, port.isSigned);
        dut.connections.push_back({port.name, port.name});
    }
    tb.addInstance(std::move(dut));

    std::ostringstream raw;
    raw << "initial begin\n"
        << "  clock = 0;\n"
        << "  errors = 0;\n";
    for (const auto &vector : vectors) {
        for (const auto &[name, value] : vector.inputs)
            raw << "  " << name << " = " << value << ";\n";
        raw << "  #10;\n";
        for (const auto &[name, value] : vector.expected) {
            raw << "  if (" << name << " !== " << value << ") begin\n"
                << "    $display(\"FAIL: " << name << " = %0d, expected "
                << value << "\", " << name << ");\n"
                << "    errors = errors + 1;\n"
                << "  end\n";
        }
    }
    raw << "  if (errors == 0) $display(\"PASS: all "
        << vectors.size() << " vectors\");\n"
        << "  $finish;\n"
        << "end\n"
        << "always #5 clock = !clock;";
    tb.addRaw(raw.str());
    return tb_name;
}

} // namespace stellar::rtl
