#include "rtl/verilog.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace stellar::rtl
{

namespace
{

std::string
rangeOf(int width)
{
    if (width <= 1)
        return "";
    return "[" + std::to_string(width - 1) + ":0] ";
}

} // namespace

void
Module::addPort(PortDir dir, const std::string &name, int width,
                bool is_signed)
{
    require(!declares(name), "duplicate signal " + name + " in " + name_);
    ports_.push_back(Port{dir, name, width, is_signed});
}

void
Module::addWire(const std::string &name, int width, bool is_signed)
{
    require(!declares(name), "duplicate signal " + name + " in " + name_);
    wires_.push_back(Wire{name, width, is_signed});
}

void
Module::addReg(const std::string &name, int width, bool is_signed)
{
    require(!declares(name), "duplicate signal " + name + " in " + name_);
    regs_.push_back(Reg{name, width, is_signed});
}

void
Module::addMemory(const std::string &name, int width, std::int64_t depth)
{
    require(!declares(name), "duplicate signal " + name + " in " + name_);
    memories_.push_back(Memory{name, width, depth});
}

void
Module::addAssign(const std::string &lhs, const std::string &rhs)
{
    assigns_.push_back(Assign{lhs, rhs});
}

void
Module::addInstance(Instance instance)
{
    instances_.push_back(std::move(instance));
}

void
Module::addAlways(const std::string &body)
{
    always_.push_back(body);
}

void
Module::addRaw(const std::string &text)
{
    raws_.push_back(text);
}

bool
Module::declares(const std::string &name) const
{
    for (const auto &port : ports_)
        if (port.name == name)
            return true;
    for (const auto &wire : wires_)
        if (wire.name == name)
            return true;
    for (const auto &reg : regs_)
        if (reg.name == name)
            return true;
    for (const auto &memory : memories_)
        if (memory.name == name)
            return true;
    return false;
}

int
Module::widthOf(const std::string &name) const
{
    for (const auto &port : ports_)
        if (port.name == name)
            return port.width;
    for (const auto &wire : wires_)
        if (wire.name == name)
            return wire.width;
    for (const auto &reg : regs_)
        if (reg.name == name)
            return reg.width;
    for (const auto &memory : memories_)
        if (memory.name == name)
            return memory.width;
    return -1;
}

std::string
Module::emit() const
{
    std::ostringstream os;
    if (!comment_.empty()) {
        std::istringstream lines(comment_);
        std::string line;
        while (std::getline(lines, line))
            os << "// " << line << "\n";
    }
    os << "module " << name_ << " (\n";
    for (std::size_t i = 0; i < ports_.size(); i++) {
        const auto &port = ports_[i];
        os << "    " << (port.dir == PortDir::Input ? "input  " : "output ")
           << (port.isSigned ? "signed " : "") << rangeOf(port.width)
           << port.name << (i + 1 < ports_.size() ? "," : "") << "\n";
    }
    os << ");\n";
    for (const auto &wire : wires_) {
        os << "  wire " << (wire.isSigned ? "signed " : "")
           << rangeOf(wire.width) << wire.name << ";\n";
    }
    for (const auto &reg : regs_) {
        os << "  reg " << (reg.isSigned ? "signed " : "")
           << rangeOf(reg.width) << reg.name << ";\n";
    }
    for (const auto &memory : memories_) {
        os << "  reg " << rangeOf(memory.width) << memory.name << " [0:"
           << (memory.depth - 1) << "];\n";
    }
    for (const auto &assign : assigns_)
        os << "  assign " << assign.lhs << " = " << assign.rhs << ";\n";
    for (const auto &inst : instances_) {
        os << "  " << inst.moduleName << " " << inst.instanceName << " (\n";
        for (std::size_t i = 0; i < inst.connections.size(); i++) {
            const auto &conn = inst.connections[i];
            os << "    ." << conn.port << "(" << conn.signal << ")"
               << (i + 1 < inst.connections.size() ? "," : "") << "\n";
        }
        os << "  );\n";
    }
    for (const auto &body : always_) {
        os << "  always @(posedge clock) begin\n";
        os << indent(body, 4) << "\n";
        os << "  end\n";
    }
    for (const auto &raw : raws_)
        os << indent(raw, 2) << "\n";
    os << "endmodule\n";
    return os.str();
}

Module &
Design::addModule(const std::string &name)
{
    require(findModule(name) == nullptr, "duplicate module " + name);
    modules_.emplace_back(name);
    return modules_.back();
}

Module *
Design::findModule(const std::string &name)
{
    for (auto &module : modules_)
        if (module.name() == name)
            return &module;
    return nullptr;
}

const Module *
Design::findModule(const std::string &name) const
{
    for (const auto &module : modules_)
        if (module.name() == name)
            return &module;
    return nullptr;
}

std::string
Design::emit() const
{
    std::ostringstream os;
    os << "// Generated by stellar (C++ reproduction of the Stellar\n"
       << "// accelerator design framework, MICRO 2024).\n\n";
    for (const auto &module : modules_)
        os << module.emit() << "\n";
    return os.str();
}

void
Design::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    require(out.good(), "cannot open " + path + " for writing");
    out << emit();
    require(out.good(), "failed writing Verilog to " + path);
}

} // namespace stellar::rtl
