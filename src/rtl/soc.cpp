#include "rtl/soc.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::rtl
{

namespace
{

/** A 5-stage in-order RISC-V host CPU stub with a RoCC-style custom
 *  command port for the Table II instructions. */
void
buildHostCpu(Design &design, const std::string &name, int bus_bits)
{
    Module &cpu = design.addModule(name);
    cpu.setComment("In-order RISC-V host CPU (Rocket-class stub): fetches "
                   "from the bus and\nissues Table II custom instructions "
                   "over the RoCC command channel.");
    cpu.addPort(PortDir::Input, "clock", 1);
    cpu.addPort(PortDir::Input, "reset", 1);
    cpu.addPort(PortDir::Output, "rocc_cmd_valid", 1);
    cpu.addPort(PortDir::Output, "rocc_cmd_inst", 32);
    cpu.addPort(PortDir::Output, "rocc_cmd_rs1", 64);
    cpu.addPort(PortDir::Output, "rocc_cmd_rs2", 64);
    cpu.addPort(PortDir::Input, "rocc_busy", 1);
    cpu.addPort(PortDir::Output, "bus_req_valid", 1);
    cpu.addPort(PortDir::Output, "bus_req_addr", 40);
    cpu.addPort(PortDir::Input, "bus_resp_valid", 1);
    cpu.addPort(PortDir::Input, "bus_resp_data", bus_bits);

    cpu.addReg("pc", 40);
    cpu.addReg("cmd_valid_r", 1);
    cpu.addReg("cmd_inst_r", 32);
    cpu.addReg("cmd_rs1_r", 64);
    cpu.addReg("cmd_rs2_r", 64);
    cpu.addAssign("rocc_cmd_valid", "cmd_valid_r");
    cpu.addAssign("rocc_cmd_inst", "cmd_inst_r");
    cpu.addAssign("rocc_cmd_rs1", "cmd_rs1_r");
    cpu.addAssign("rocc_cmd_rs2", "cmd_rs2_r");
    cpu.addAssign("bus_req_valid", "!reset");
    cpu.addAssign("bus_req_addr", "pc");
    cpu.addAlways("if (reset) begin\n"
                  "  pc <= 0;\n"
                  "  cmd_valid_r <= 0;\n"
                  "  cmd_inst_r <= 0;\n"
                  "  cmd_rs1_r <= 0;\n"
                  "  cmd_rs2_r <= 0;\n"
                  "end else begin\n"
                  "  if (bus_resp_valid) begin\n"
                  "    pc <= pc + 4;\n"
                  "    cmd_inst_r <= bus_resp_data[31:0];\n"
                  "    cmd_valid_r <= !rocc_busy;\n"
                  "  end\n"
                  "end");
}

/** A shared L2 cache stub: tag + data arrays with a simple lookup. */
void
buildL2(Design &design, const std::string &name, std::int64_t bytes,
        int bus_bits)
{
    Module &l2 = design.addModule(name);
    l2.setComment("Shared L2 cache: CPU and accelerator both hit the "
                  "same banked arrays\n(Section IV-F: Chipyard provisions "
                  "the shared outer memory).");
    l2.addPort(PortDir::Input, "clock", 1);
    l2.addPort(PortDir::Input, "reset", 1);
    for (const char *side : {"cpu", "accel"}) {
        std::string s(side);
        l2.addPort(PortDir::Input, s + "_req_valid", 1);
        l2.addPort(PortDir::Input, s + "_req_addr", 40);
        l2.addPort(PortDir::Output, s + "_resp_valid", 1);
        l2.addPort(PortDir::Output, s + "_resp_data", bus_bits);
    }
    std::int64_t lines = std::max<std::int64_t>(bytes / (bus_bits / 8), 1);
    l2.addMemory("data_array", bus_bits, lines);
    l2.addMemory("tag_array", 24, lines);
    for (const char *side : {"cpu", "accel"}) {
        std::string s(side);
        l2.addReg(s + "_resp_valid_r", 1);
        l2.addReg(s + "_resp_data_r", bus_bits);
        l2.addAssign(s + "_resp_valid", s + "_resp_valid_r");
        l2.addAssign(s + "_resp_data", s + "_resp_data_r");
    }
    l2.addAlways("cpu_resp_valid_r <= cpu_req_valid;\n"
                 "cpu_resp_data_r <= data_array[cpu_req_addr[15:4]];\n"
                 "accel_resp_valid_r <= accel_req_valid;\n"
                 "accel_resp_data_r <= data_array[accel_req_addr[15:4]];");
}

} // namespace

std::string
assembleSoc(Design &design, const SocOptions &options)
{
    const Module *accel_top = design.findModule(design.top());
    require(accel_top != nullptr, "design needs an accelerator top first");
    std::string base = design.top();

    std::string l2_name = base + "_l2";
    buildL2(design, l2_name, options.l2Bytes, options.busDataBits);
    std::string cpu_name;
    if (options.includeHostCpu) {
        cpu_name = base + "_host_cpu";
        buildHostCpu(design, cpu_name, options.busDataBits);
    }

    std::string soc_name = "stellar_soc";
    Module &soc = design.addModule(soc_name);
    soc.setComment("Full SoC: accelerator tile + host CPU + shared L2 "
                   "(Fig 1's rightmost output).");
    soc.addPort(PortDir::Input, "clock", 1);
    soc.addPort(PortDir::Input, "reset", 1);
    soc.addPort(PortDir::Input, "enable", 1);
    soc.addWire("cpu_req_valid", 1);
    soc.addWire("cpu_req_addr", 40);
    soc.addWire("cpu_resp_valid", 1);
    soc.addWire("cpu_resp_data", options.busDataBits);
    soc.addWire("rocc_cmd_valid", 1);
    soc.addWire("rocc_cmd_inst", 32);
    soc.addWire("rocc_cmd_rs1", 64);
    soc.addWire("rocc_cmd_rs2", 64);

    {
        Instance inst;
        inst.moduleName = base;
        inst.instanceName = "accel_tile";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"enable", "enable"});
        soc.addInstance(std::move(inst));
    }
    {
        Instance inst;
        inst.moduleName = l2_name;
        inst.instanceName = "l2";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"cpu_req_valid", "cpu_req_valid"});
        inst.connections.push_back({"cpu_req_addr", "cpu_req_addr"});
        inst.connections.push_back({"cpu_resp_valid", "cpu_resp_valid"});
        inst.connections.push_back({"cpu_resp_data", "cpu_resp_data"});
        inst.connections.push_back({"accel_req_valid", "enable"});
        inst.connections.push_back({"accel_req_addr", "cpu_req_addr"});
        soc.addInstance(std::move(inst));
    }
    if (!cpu_name.empty()) {
        Instance inst;
        inst.moduleName = cpu_name;
        inst.instanceName = "host_cpu";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"rocc_cmd_valid", "rocc_cmd_valid"});
        inst.connections.push_back({"rocc_cmd_inst", "rocc_cmd_inst"});
        inst.connections.push_back({"rocc_cmd_rs1", "rocc_cmd_rs1"});
        inst.connections.push_back({"rocc_cmd_rs2", "rocc_cmd_rs2"});
        inst.connections.push_back({"rocc_busy", "enable"});
        inst.connections.push_back({"bus_req_valid", "cpu_req_valid"});
        inst.connections.push_back({"bus_req_addr", "cpu_req_addr"});
        inst.connections.push_back({"bus_resp_valid", "cpu_resp_valid"});
        inst.connections.push_back({"bus_resp_data", "cpu_resp_data"});
        soc.addInstance(std::move(inst));
    }
    design.setTop(soc_name);
    return soc_name;
}

} // namespace stellar::rtl
