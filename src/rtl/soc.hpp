/**
 * @file
 * SoC assembly (the Chipyard-style integration of Section IV-F / VII).
 *
 * Stellar outputs full SoCs: the generated accelerator tile plus an
 * optional in-order RISC-V host CPU, a shared L2 cache, and a system
 * bus tying them to the DRAM controller. The CPU issues the Table II
 * custom instructions over the RoCC-style command channel.
 */

#ifndef STELLAR_RTL_SOC_HPP
#define STELLAR_RTL_SOC_HPP

#include <string>

#include "rtl/verilog.hpp"

namespace stellar::rtl
{

/** SoC assembly options. */
struct SocOptions
{
    bool includeHostCpu = true;
    std::int64_t l2Bytes = 512 * 1024;
    int busDataBits = 128;
};

/**
 * Wrap an accelerator design (whose top was produced by lowerToVerilog)
 * into an SoC: adds host-CPU, L2, and bus modules plus an `stellar_soc_*`
 * top that instantiates everything. Returns the new top name; the
 * design's top is updated to it.
 */
std::string assembleSoc(Design &design, const SocOptions &options = {});

} // namespace stellar::rtl

#endif // STELLAR_RTL_SOC_HPP
