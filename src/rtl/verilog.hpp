/**
 * @file
 * A lightweight structural Verilog representation and emitter.
 *
 * The Stellar compiler lowers its optimized IR onto hardware templates and
 * prints synthesizable Verilog (Fig 7, right side). This module provides
 * the Module/Port/Wire/Instance graph those templates are built from, and
 * the text emitter. The companion lint (rtl/lint.hpp) checks both the
 * graph and the emitted text for structural well-formedness.
 */

#ifndef STELLAR_RTL_VERILOG_HPP
#define STELLAR_RTL_VERILOG_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace stellar::rtl
{

/** Signal direction of a module port. */
enum class PortDir { Input, Output };

/** A module port. Width 1 ports are plain wires; wider ports are vectors. */
struct Port
{
    PortDir dir = PortDir::Input;
    std::string name;
    int width = 1;
    bool isSigned = false;
};

/** An internal wire (continuous assignment target). */
struct Wire
{
    std::string name;
    int width = 1;
    bool isSigned = false;
};

/** An internal register (always-block target). */
struct Reg
{
    std::string name;
    int width = 1;
    bool isSigned = false;
};

/** An internal memory array: reg [w-1:0] name [0:depth-1]. */
struct Memory
{
    std::string name;
    int width = 1;
    std::int64_t depth = 1;
};

/** One port connection of an instance: .port(signal). */
struct Connection
{
    std::string port;
    std::string signal;
};

/** A module instantiation. */
struct Instance
{
    std::string moduleName;
    std::string instanceName;
    std::vector<Connection> connections;
};

/** A continuous assignment: assign lhs = rhs. */
struct Assign
{
    std::string lhs;
    std::string rhs;
};

/** One Verilog module. */
class Module
{
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void addPort(PortDir dir, const std::string &name, int width,
                 bool is_signed = false);
    void addWire(const std::string &name, int width, bool is_signed = false);
    void addReg(const std::string &name, int width, bool is_signed = false);
    void addMemory(const std::string &name, int width, std::int64_t depth);
    void addAssign(const std::string &lhs, const std::string &rhs);
    void addInstance(Instance instance);

    /**
     * Add a clocked always-block. `body` holds statements using
     * non-blocking assignments; it is emitted inside
     * "always @(posedge clock) begin ... end".
     */
    void addAlways(const std::string &body);

    /**
     * Add raw Verilog text emitted verbatim inside the module (initial
     * blocks, clock generators). Used by the testbench generator; the
     * text must keep begin/end balanced for the lint to pass.
     */
    void addRaw(const std::string &text);

    /** Free-form comment emitted above the module body. */
    void setComment(const std::string &comment) { comment_ = comment; }

    const std::vector<Port> &ports() const { return ports_; }
    const std::vector<Wire> &wires() const { return wires_; }
    const std::vector<Reg> &regs() const { return regs_; }
    const std::vector<Memory> &memories() const { return memories_; }
    const std::vector<Assign> &assigns() const { return assigns_; }
    const std::vector<Instance> &instances() const { return instances_; }
    const std::vector<std::string> &alwaysBlocks() const { return always_; }
    const std::vector<std::string> &rawBlocks() const { return raws_; }

    /** True when the module declares a signal of this name. */
    bool declares(const std::string &name) const;

    /** Width of a declared signal; -1 when not declared. */
    int widthOf(const std::string &name) const;

    /** Render this module as Verilog text. */
    std::string emit() const;

  private:
    std::string name_;
    std::string comment_;
    std::vector<Port> ports_;
    std::vector<Wire> wires_;
    std::vector<Reg> regs_;
    std::vector<Memory> memories_;
    std::vector<Assign> assigns_;
    std::vector<Instance> instances_;
    std::vector<std::string> always_;
    std::vector<std::string> raws_;
};

/** A complete design: a set of modules with one designated top. */
class Design
{
  public:
    /**
     * Add a module and return a stable reference to it. Modules are
     * stored in a deque precisely so references survive later
     * additions (template builders add helper modules mid-build).
     */
    Module &addModule(const std::string &name);

    const std::deque<Module> &modules() const { return modules_; }
    Module *findModule(const std::string &name);
    const Module *findModule(const std::string &name) const;

    void setTop(const std::string &name) { top_ = name; }
    const std::string &top() const { return top_; }

    /** Render the whole design as one Verilog source file. */
    std::string emit() const;

    /** Write the emitted Verilog to a file; fatal on IO errors. */
    void writeFile(const std::string &path) const;

  private:
    std::deque<Module> modules_;
    std::string top_;
};

} // namespace stellar::rtl

#endif // STELLAR_RTL_VERILOG_HPP
