/**
 * @file
 * RTL generation: lowering a GeneratedAccelerator onto Verilog templates
 * (Fig 7 right half; Fig 11 PE template).
 *
 * The produced design contains:
 *  - one PE module with the Fig 11 structure (time counter, iterator
 *    recovery through T^-1, IO request generation, user-defined logic
 *    translated from the functional assignments);
 *  - a spatial-array module instantiating one PE per physical position
 *    and wiring the surviving PE-to-PE connections through pipeline
 *    registers;
 *  - one register-file module per external tensor, matching the regfile
 *    kind chosen by the optimizer (Fig 14);
 *  - one memory-buffer module per private buffer, with the per-axis
 *    pipeline stages of Fig 12;
 *  - a DMA and a top-level module tying everything together.
 */

#ifndef STELLAR_RTL_GENERATE_HPP
#define STELLAR_RTL_GENERATE_HPP

#include "core/accelerator.hpp"
#include "rtl/verilog.hpp"

namespace stellar::rtl
{

/** Tunable parameters of the RTL backend. */
struct RtlOptions
{
    int dataWidth = 32;
    int coordWidth = 16;
    int dmaMaxInflight = 1;
};

/** Lower a generated accelerator to a Verilog design. */
Design lowerToVerilog(const core::GeneratedAccelerator &accel,
                      const RtlOptions &options = {});

/** Count always-block flip-flop assignments in a design (for models). */
std::int64_t countRegisters(const Design &design);

} // namespace stellar::rtl

#endif // STELLAR_RTL_GENERATE_HPP
