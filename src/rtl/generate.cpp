#include "rtl/generate.hpp"

#include <map>
#include <set>
#include <sstream>

#include "func/simplify.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace stellar::rtl
{

namespace
{

using core::GeneratedAccelerator;
using core::PruneReason;
using func::ExprOp;
using func::ExprPtr;
using func::TensorKind;

/** How a variable is realized inside a PE. */
enum class VarRole
{
    Flowing,     //!< arrives on in_<v>, leaves on out_<v>
    Stationary,  //!< lives in an internal accumulator register
    PerPointIo,  //!< read/written through per-point regfile ports
    Combinational, //!< a pure wire (no recurrence at all)
};

struct VarInfo
{
    VarRole role = VarRole::Combinational;
    int bundleSize = 1;
    IntVec spaceDelta;
    std::int64_t registers = 0;
};

std::string
sig(const std::string &tensor_name, VarRole role, bool as_output)
{
    std::string base = sanitizeIdentifier(tensor_name);
    switch (role) {
      case VarRole::Flowing:
        return (as_output ? "out_" : "in_") + base;
      case VarRole::Stationary:
        return "acc_" + base;
      case VarRole::PerPointIo:
        return (as_output ? "io_" : "io_") + base +
               (as_output ? "_wr" : "_rd");
      case VarRole::Combinational:
        return "val_" + base;
    }
    return base;
}

/** Classify every intermediate variable of the accelerator. */
std::map<int, VarInfo>
classifyVariables(const GeneratedAccelerator &accel)
{
    std::map<int, VarInfo> info;
    const auto &spec = accel.spec.functional;
    const auto &space = accel.iterSpace;
    for (int t = 0; t < spec.numTensors(); t++) {
        if (spec.tensorKind(t) != TensorKind::Intermediate)
            continue;
        VarInfo vi;
        bool pruned = false;
        for (const auto &conn : space.conns())
            if (conn.tensor == t && !conn.alive())
                pruned = true;
        const auto *alive = space.aliveConnFor(t);
        if (alive != nullptr) {
            auto delta = accel.spec.transform.deltaOf(alive->diff);
            vi.spaceDelta = delta.space;
            vi.registers = delta.time;
            vi.bundleSize = alive->bundled ? alive->bundleSize : 1;
            vi.role = vecIsZero(delta.space) ? VarRole::Stationary
                                             : VarRole::Flowing;
        } else if (pruned) {
            vi.role = VarRole::PerPointIo;
        } else {
            vi.role = VarRole::Combinational;
        }
        info[t] = vi;
    }
    return info;
}

/** Translate an RHS expression tree into a Verilog expression. */
std::string
exprToVerilog(const ExprPtr &node, const func::FunctionalSpec &spec,
              const std::map<int, VarInfo> &vars)
{
    invariant(node != nullptr, "null expr in RTL lowering");
    auto operand = [&](std::size_t i) {
        return exprToVerilog(node->operands[i], spec, vars);
    };
    auto bin = [&](const char *op) {
        return "(" + operand(0) + " " + op + " " + operand(1) + ")";
    };
    switch (node->op) {
      case ExprOp::Constant: {
        std::ostringstream os;
        os << std::int64_t(node->value);
        return os.str();
      }
      case ExprOp::Access: {
        auto it = vars.find(node->tensor);
        if (it != vars.end())
            return sig(spec.tensorNames()[std::size_t(node->tensor)],
                       it->second.role, /*as_output=*/false);
        // External (input tensor) access: arrives on a head port.
        return "in_" +
               sanitizeIdentifier(
                       spec.tensorNames()[std::size_t(node->tensor)]) +
               "_head";
      }
      case ExprOp::Indirect:
        // Data-dependent lookups are serviced by the regfile; the PE sees
        // the response on a head port (Section III-A merging support).
        return "in_" +
               sanitizeIdentifier(
                       spec.tensorNames()[std::size_t(node->tensor)]) +
               "_head";
      case ExprOp::Add: return bin("+");
      case ExprOp::Sub: return bin("-");
      case ExprOp::Mul: return bin("*");
      case ExprOp::Div: return bin("/");
      case ExprOp::Min:
        return "((" + operand(0) + " < " + operand(1) + ") ? " +
               operand(0) + " : " + operand(1) + ")";
      case ExprOp::Max:
        return "((" + operand(0) + " < " + operand(1) + ") ? " +
               operand(1) + " : " + operand(0) + ")";
      case ExprOp::Eq: return bin("==");
      case ExprOp::Ne: return bin("!=");
      case ExprOp::Lt: return bin("<");
      case ExprOp::Le: return bin("<=");
      case ExprOp::And: return bin("&&");
      case ExprOp::Or: return bin("||");
      case ExprOp::Not: return "(!" + operand(0) + ")";
      case ExprOp::Select:
        return "(" + operand(0) + " ? " + operand(1) + " : " + operand(2) +
               ")";
    }
    panic("unhandled op in RTL lowering");
}

/** Collect the external tensors referenced by an expression. */
void
collectExternalHeads(const ExprPtr &node, const func::FunctionalSpec &spec,
                     std::set<int> &out)
{
    if (!node)
        return;
    if ((node->op == ExprOp::Access || node->op == ExprOp::Indirect) &&
            spec.tensorKind(node->tensor) == TensorKind::Input) {
        out.insert(node->tensor);
    }
    for (const auto &child : node->operands)
        collectExternalHeads(child, spec, out);
}

bool
lhsHasHalo(const func::Assignment &assign)
{
    for (const auto &coord : assign.lhs.coords)
        if (coord.kind == func::IndexExpr::Kind::LowerHalo)
            return true;
    return false;
}

/** Build the PE module (Fig 11). */
void
buildPeModule(Design &design, const GeneratedAccelerator &accel,
              const std::map<int, VarInfo> &vars, const RtlOptions &opt,
              const std::string &pe_name)
{
    const auto &spec = accel.spec.functional;
    const auto &transform = accel.spec.transform;
    Module &pe = design.addModule(pe_name);
    pe.setComment("Stellar PE (Fig 11): time counter, iterator recovery "
                  "via T^-1, IO request\ngeneration, and user-defined "
                  "logic lowered from the functional spec.");

    pe.addPort(PortDir::Input, "clock", 1);
    pe.addPort(PortDir::Input, "reset", 1);
    pe.addPort(PortDir::Input, "enable", 1);
    for (int axis = 0; axis < transform.spaceDims(); axis++) {
        pe.addPort(PortDir::Input, "pos_" + std::to_string(axis),
                   opt.coordWidth, true);
    }

    // Variable data ports / registers.
    std::set<int> heads;
    for (const auto &assign : spec.assignments())
        if (!lhsHasHalo(assign))
            collectExternalHeads(assign.rhs.node(), spec, heads);
    for (const auto &[t, vi] : vars) {
        std::string name =
                sanitizeIdentifier(spec.tensorNames()[std::size_t(t)]);
        int width = opt.dataWidth * vi.bundleSize;
        switch (vi.role) {
          case VarRole::Flowing:
            pe.addPort(PortDir::Input, "in_" + name, width, true);
            pe.addPort(PortDir::Output, "out_" + name, width, true);
            pe.addReg("out_" + name + "_r", width, true);
            pe.addAssign("out_" + name, "out_" + name + "_r");
            break;
          case VarRole::Stationary:
            pe.addReg("acc_" + name, width, true);
            pe.addPort(PortDir::Output, "out_" + name, width, true);
            pe.addAssign("out_" + name, "acc_" + name);
            // The recurrence still needs the incoming halo value.
            pe.addPort(PortDir::Input, "in_" + name, width, true);
            break;
          case VarRole::PerPointIo:
            pe.addPort(PortDir::Input, "io_" + name + "_rd", width, true);
            pe.addPort(PortDir::Output, "io_" + name + "_wr", width, true);
            pe.addReg("io_" + name + "_wr_r", width, true);
            pe.addAssign("io_" + name + "_wr", "io_" + name + "_wr_r");
            break;
          case VarRole::Combinational:
            pe.addWire("val_" + name, width, true);
            pe.addPort(PortDir::Output, "out_" + name, width, true);
            pe.addAssign("out_" + name, "val_" + name);
            break;
        }
    }
    for (int t : heads) {
        std::string name =
                sanitizeIdentifier(spec.tensorNames()[std::size_t(t)]);
        if (!pe.declares("in_" + name + "_head"))
            pe.addPort(PortDir::Input, "in_" + name + "_head",
                       opt.dataWidth, true);
    }

    // Time counter and iterator recovery (multiply by T^-1; the adjugate
    // is divided by the determinant, which is exact on lattice points).
    pe.addReg("time_counter", opt.coordWidth, true);
    pe.addAlways("if (reset) begin\n"
                 "  time_counter <= 0;\n"
                 "end else if (enable) begin\n"
                 "  time_counter <= time_counter + 1;\n"
                 "end");
    const auto &inv = transform.inverse();
    std::int64_t det = transform.matrix().determinant();
    for (int idx = 0; idx < spec.numIndices(); idx++) {
        std::string it_name =
                "it_" + sanitizeIdentifier(
                                spec.indexNames()[std::size_t(idx)]);
        pe.addWire(it_name, opt.coordWidth, true);
        std::ostringstream rhs;
        rhs << "(";
        for (int d = 0; d < transform.dims(); d++) {
            // inverse entry = adjugate / det; emit adjugate * signal.
            Fraction entry = inv.at(idx, d) * Fraction(det);
            std::int64_t coeff = entry.toInteger();
            if (d > 0)
                rhs << " + ";
            std::string source = d + 1 < transform.dims()
                                         ? "pos_" + std::to_string(d)
                                         : std::string("time_counter");
            rhs << coeff << " * " << source;
        }
        rhs << ") / " << det;
        pe.addAssign(it_name, rhs.str());
    }

    // IO request generation: output-valid when the boundary iterator hits
    // its last interior value.
    for (const auto &binding : spec.outputBindings()) {
        auto it = vars.find(binding.intermediate);
        if (it == vars.end() || binding.boundaryIndex < 0)
            continue;
        std::string valid =
                "out_" +
                sanitizeIdentifier(spec.tensorNames()[std::size_t(
                        binding.intermediate)]) +
                "_valid";
        if (pe.declares(valid))
            continue;
        pe.addPort(PortDir::Output, valid, 1);
        std::string it_name =
                "it_" + sanitizeIdentifier(spec.indexNames()[std::size_t(
                                binding.boundaryIndex)]);
        std::int64_t edge = accel.iterSpace.bounds()[std::size_t(
                                    binding.boundaryIndex)] - 1;
        pe.addAssign(valid, "(" + it_name + " == " + std::to_string(edge) +
                            ")");
    }

    // User-defined logic: every non-halo intermediate assignment.
    std::ostringstream body;
    body << "if (reset) begin\n";
    for (const auto &[t, vi] : vars) {
        std::string name =
                sanitizeIdentifier(spec.tensorNames()[std::size_t(t)]);
        if (vi.role == VarRole::Stationary)
            body << "  acc_" << name << " <= 0;\n";
        if (vi.role == VarRole::Flowing)
            body << "  out_" << name << "_r <= 0;\n";
        if (vi.role == VarRole::PerPointIo)
            body << "  io_" << name << "_wr_r <= 0;\n";
    }
    body << "end else if (enable) begin\n";
    for (const auto &assign : spec.assignments()) {
        if (lhsHasHalo(assign))
            continue;
        if (spec.tensorKind(assign.lhs.tensor) != TensorKind::Intermediate)
            continue;
        auto it = vars.find(assign.lhs.tensor);
        if (it == vars.end())
            continue;
        const auto &vi = it->second;
        std::string rhs = exprToVerilog(
                func::simplify(assign.rhs.node()), spec, vars);
        std::string name = sanitizeIdentifier(
                spec.tensorNames()[std::size_t(assign.lhs.tensor)]);
        switch (vi.role) {
          case VarRole::Flowing:
            body << "  out_" << name << "_r <= " << rhs << ";\n";
            break;
          case VarRole::Stationary:
            body << "  acc_" << name << " <= " << rhs << ";\n";
            break;
          case VarRole::PerPointIo:
            body << "  io_" << name << "_wr_r <= " << rhs << ";\n";
            break;
          case VarRole::Combinational:
            // handled below with a continuous assignment
            break;
        }
    }
    body << "end";
    pe.addAlways(body.str());

    for (const auto &assign : spec.assignments()) {
        if (lhsHasHalo(assign))
            continue;
        auto it = vars.find(assign.lhs.tensor);
        if (it == vars.end() || it->second.role != VarRole::Combinational)
            continue;
        std::string name = sanitizeIdentifier(
                spec.tensorNames()[std::size_t(assign.lhs.tensor)]);
        pe.addAssign("val_" + name,
                     exprToVerilog(func::simplify(assign.rhs.node()),
                                   spec, vars));
    }
}

/** Build a shift/pipeline register module of the given width and depth. */
std::string
pipeRegModule(Design &design, int width, std::int64_t depth)
{
    std::string name = "stellar_pipereg_w" + std::to_string(width) + "_d" +
                       std::to_string(depth);
    if (design.findModule(name) != nullptr)
        return name;
    Module &m = design.addModule(name);
    m.addPort(PortDir::Input, "clock", 1);
    m.addPort(PortDir::Input, "in_data", width, true);
    m.addPort(PortDir::Output, "out_data", width, true);
    std::ostringstream body;
    for (std::int64_t s = 0; s < depth; s++)
        m.addReg("stage" + std::to_string(s), width, true);
    body << "stage0 <= in_data;\n";
    for (std::int64_t s = 1; s < depth; s++)
        body << "stage" << s << " <= stage" << (s - 1) << ";\n";
    m.addAlways(body.str());
    m.addAssign("out_data", "stage" + std::to_string(depth - 1));
    return name;
}

std::string
posKey(const IntVec &pos)
{
    std::string out;
    for (auto p : pos) {
        out += "_";
        out += (p < 0 ? "m" + std::to_string(-p) : std::to_string(p));
    }
    return out;
}

/** Build the spatial-array module instantiating PEs and wiring conns. */
void
buildArrayModule(Design &design, const GeneratedAccelerator &accel,
                 const std::map<int, VarInfo> &vars, const RtlOptions &opt,
                 const std::string &pe_name, const std::string &array_name)
{
    const auto &spec = accel.spec.functional;
    Module &array = design.addModule(array_name);
    array.setComment("Spatial array (Fig 9c): one PE per physical "
                     "position; surviving PE-to-PE\nconns wired through "
                     "pipeline registers; pruned conns surface as "
                     "regfile ports.");
    array.addPort(PortDir::Input, "clock", 1);
    array.addPort(PortDir::Input, "reset", 1);
    array.addPort(PortDir::Input, "enable", 1);

    const Module *pe_module = design.findModule(pe_name);
    invariant(pe_module != nullptr, "PE module must exist before array");

    std::set<IntVec> positions;
    for (const auto &pe : accel.array.pes())
        positions.insert(pe.position);

    // Declare inter-PE wires: for each flowing variable and each PE with
    // an in-array source, one wire (possibly through pipeline registers).
    struct WirePlan
    {
        int tensor;
        IntVec src, dst;
        std::string wireName;
        std::int64_t registers;
        int width;
    };
    std::vector<WirePlan> wire_plans;
    for (const auto &[t, vi] : vars) {
        if (vi.role != VarRole::Flowing)
            continue;
        std::string name =
                sanitizeIdentifier(spec.tensorNames()[std::size_t(t)]);
        int width = opt.dataWidth * vi.bundleSize;
        for (const auto &pos : positions) {
            IntVec dst = vecAdd(pos, vi.spaceDelta);
            if (!positions.count(dst))
                continue;
            WirePlan plan;
            plan.tensor = t;
            plan.src = pos;
            plan.dst = dst;
            plan.registers = vi.registers;
            plan.width = width;
            plan.wireName = "w_" + name + posKey(pos) + "_to" + posKey(dst);
            array.addWire(plan.wireName, width, true);
            if (plan.registers > 0) {
                array.addWire(plan.wireName + "_q", width, true);
            }
            wire_plans.push_back(plan);
        }
    }

    // Boundary/per-point ports on the array.
    auto add_array_port = [&](PortDir dir, const std::string &name,
                              int width) {
        if (!array.declares(name))
            array.addPort(dir, name, width, true);
    };

    // Instantiate every PE.
    for (const auto &pe : accel.array.pes()) {
        Instance inst;
        inst.moduleName = pe_name;
        inst.instanceName = "pe" + posKey(pe.position);
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"enable", "enable"});
        for (int axis = 0; axis < accel.spec.transform.spaceDims(); axis++) {
            inst.connections.push_back(
                    {"pos_" + std::to_string(axis),
                     std::to_string(pe.position[std::size_t(axis)])});
        }
        for (const auto &[t, vi] : vars) {
            std::string name =
                    sanitizeIdentifier(spec.tensorNames()[std::size_t(t)]);
            int width = opt.dataWidth * vi.bundleSize;
            switch (vi.role) {
              case VarRole::Flowing: {
                // Output side: wire toward the downstream PE, or an array
                // output port at the far edge.
                IntVec dst = vecAdd(pe.position, vi.spaceDelta);
                std::string out_sig;
                if (positions.count(dst)) {
                    out_sig = "w_" + name + posKey(pe.position) + "_to" +
                              posKey(dst);
                } else {
                    out_sig = "rf_" + name + "_out" + posKey(pe.position);
                    add_array_port(PortDir::Output, out_sig, width);
                }
                inst.connections.push_back({"out_" + name, out_sig});
                // Input side: wire from the upstream PE (past its pipe
                // registers), or an array input port at the near edge.
                IntVec src = vecSub(pe.position, vi.spaceDelta);
                std::string in_sig;
                if (positions.count(src)) {
                    in_sig = "w_" + name + posKey(src) + "_to" +
                             posKey(pe.position);
                    if (vi.registers > 0)
                        in_sig += "_q";
                } else {
                    in_sig = "rf_" + name + "_in" + posKey(pe.position);
                    add_array_port(PortDir::Input, in_sig, width);
                }
                inst.connections.push_back({"in_" + name, in_sig});
                break;
              }
              case VarRole::Stationary: {
                std::string out_sig =
                        "rf_" + name + "_out" + posKey(pe.position);
                add_array_port(PortDir::Output, out_sig, width);
                inst.connections.push_back({"out_" + name, out_sig});
                std::string in_sig =
                        "rf_" + name + "_in" + posKey(pe.position);
                add_array_port(PortDir::Input, in_sig, width);
                inst.connections.push_back({"in_" + name, in_sig});
                break;
              }
              case VarRole::PerPointIo: {
                std::string rd = "io_" + name + "_rd" + posKey(pe.position);
                std::string wr = "io_" + name + "_wr" + posKey(pe.position);
                add_array_port(PortDir::Input, rd, width);
                add_array_port(PortDir::Output, wr, width);
                inst.connections.push_back({"io_" + name + "_rd", rd});
                inst.connections.push_back({"io_" + name + "_wr", wr});
                break;
              }
              case VarRole::Combinational: {
                std::string out_sig =
                        "rf_" + name + "_out" + posKey(pe.position);
                add_array_port(PortDir::Output, out_sig, width);
                inst.connections.push_back({"out_" + name, out_sig});
                break;
              }
            }
        }
        // Head ports for data-dependent accesses.
        for (const auto &port : pe_module->ports()) {
            if (port.name.size() > 5 &&
                    port.name.substr(port.name.size() - 5) == "_head") {
                std::string head =
                        port.name + posKey(pe.position);
                add_array_port(PortDir::Input, head, port.width);
                inst.connections.push_back({port.name, head});
            }
            if (port.name.size() > 6 &&
                    port.name.substr(port.name.size() - 6) == "_valid") {
                std::string valid = port.name + posKey(pe.position);
                add_array_port(PortDir::Output, valid, 1);
                inst.connections.push_back({port.name, valid});
            }
        }
        array.addInstance(std::move(inst));
    }

    // Pipeline registers on registered wires.
    for (const auto &plan : wire_plans) {
        if (plan.registers == 0)
            continue;
        std::string module =
                pipeRegModule(design, plan.width, plan.registers);
        Instance inst;
        inst.moduleName = module;
        inst.instanceName = "pipe_" + plan.wireName;
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"in_data", plan.wireName});
        inst.connections.push_back({"out_data", plan.wireName + "_q"});
        array.addInstance(std::move(inst));
    }
}

/** Build a register-file module for one regfile plan (Fig 14). */
void
buildRegfileModule(Design &design, const core::RegfilePlan &plan,
                   const RtlOptions &opt, const std::string &name)
{
    Module &rf = design.addModule(name);
    rf.setComment("Register file (" +
                  core::regfileKindName(plan.config.kind) +
                  ", Fig 14) for tensor " + plan.tensorName + ".");
    rf.addPort(PortDir::Input, "clock", 1);
    rf.addPort(PortDir::Input, "reset", 1);
    std::int64_t entries = std::max<std::int64_t>(plan.config.entries, 1);
    for (std::int64_t e = 0; e < entries; e++)
        rf.addReg("entry_data_" + std::to_string(e), opt.dataWidth, true);

    std::int64_t in_ports = std::max<std::int64_t>(plan.config.inPorts, 1);
    std::int64_t out_ports =
            std::max<std::int64_t>(plan.config.outPorts, 1);
    switch (plan.config.kind) {
      case core::RegfileKind::FeedForward: {
        // Parallel shift-register lanes: port p shifts every
        // in_ports-th entry, so the file accepts/drains inPorts
        // elements per cycle with no searching (Fig 14c).
        for (std::int64_t p = 0; p < in_ports; p++)
            rf.addPort(PortDir::Input, "wr_data_" + std::to_string(p),
                       opt.dataWidth, true);
        for (std::int64_t p = 0; p < out_ports; p++)
            rf.addPort(PortDir::Output, "rd_data_" + std::to_string(p),
                       opt.dataWidth, true);
        std::ostringstream body;
        for (std::int64_t e = 0; e < entries; e++) {
            if (e < in_ports)
                body << "entry_data_" << e << " <= wr_data_" << e
                     << ";\n";
            else
                body << "entry_data_" << e << " <= entry_data_"
                     << (e - in_ports) << ";\n";
        }
        rf.addAlways(body.str());
        for (std::int64_t p = 0; p < out_ports; p++) {
            std::int64_t tail = entries - 1 - (p % entries);
            rf.addAssign("rd_data_" + std::to_string(p),
                         "entry_data_" + std::to_string(tail));
        }
        break;
      }
      case core::RegfileKind::Transposing: {
        // Shift chain with a selectable exit edge (one mux per entry).
        rf.addPort(PortDir::Input, "wr_data", opt.dataWidth, true);
        rf.addPort(PortDir::Input, "transpose", 1);
        rf.addPort(PortDir::Output, "rd_data", opt.dataWidth, true);
        std::ostringstream body;
        body << "entry_data_0 <= wr_data;\n";
        for (std::int64_t e = 1; e < entries; e++)
            body << "entry_data_" << e << " <= entry_data_" << (e - 1)
                 << ";\n";
        rf.addAlways(body.str());
        rf.addAssign("rd_data",
                     "transpose ? entry_data_0 : entry_data_" +
                     std::to_string(entries - 1));
        break;
      }
      case core::RegfileKind::EdgeIO:
      case core::RegfileKind::FullyAssociative: {
        // Coordinate-searched entries; the searched set is the whole file
        // (fully associative) or one edge (edge IO).
        rf.addPort(PortDir::Input, "wr_data", opt.dataWidth, true);
        rf.addPort(PortDir::Input, "wr_coord", opt.coordWidth, true);
        rf.addPort(PortDir::Input, "rd_coord", opt.coordWidth, true);
        rf.addPort(PortDir::Output, "rd_data", opt.dataWidth, true);
        std::int64_t searched =
                plan.config.kind == core::RegfileKind::FullyAssociative
                        ? entries
                        : std::max<std::int64_t>(
                                  plan.config.comparators /
                                          std::max<std::int64_t>(
                                                  plan.config.inPorts +
                                                          plan.config
                                                                  .outPorts,
                                                  1),
                                  1);
        searched = std::min(searched, entries);
        for (std::int64_t e = 0; e < entries; e++)
            rf.addReg("entry_coord_" + std::to_string(e), opt.coordWidth,
                      true);
        std::ostringstream body;
        body << "entry_data_0 <= wr_data;\n"
             << "entry_coord_0 <= wr_coord;\n";
        rf.addAlways(body.str());
        // Build a comparator chain: rd_data is the entry whose coord
        // matches rd_coord.
        std::string expr = "0";
        for (std::int64_t e = searched; e > 0; e--) {
            expr = "((entry_coord_" + std::to_string(e - 1) +
                   " == rd_coord) ? entry_data_" + std::to_string(e - 1) +
                   " : " + expr + ")";
        }
        rf.addAssign("rd_data", expr);
        break;
      }
    }
}

/** Build a memory-buffer module with per-axis stages (Fig 12). */
void
buildBufferModule(Design &design, const mem::MemBufferSpec &buffer,
                  const RtlOptions &opt, const std::string &name)
{
    auto stages = mem::planPipeline(buffer, /*for_reads=*/true);
    Module &buf = design.addModule(name);
    buf.setComment("Private memory buffer (Fig 12): one pipeline stage "
                   "per fibertree axis of\nformat " +
                   buffer.format.toString() + ".");
    buf.addPort(PortDir::Input, "clock", 1);
    buf.addPort(PortDir::Input, "reset", 1);
    buf.addPort(PortDir::Input, "req_valid", 1);
    buf.addPort(PortDir::Input, "req_addr", 32);
    buf.addPort(PortDir::Output, "resp_valid", 1);
    buf.addPort(PortDir::Output, "resp_data", opt.dataWidth, true);

    std::int64_t words = std::max<std::int64_t>(
            buffer.capacityBytes / (opt.dataWidth / 8), 1);
    buf.addMemory("data_sram", opt.dataWidth, words);
    for (const auto &stage : stages)
        for (const auto &sram : stage.metadataSrams)
            buf.addMemory(sanitizeIdentifier(sram), 32,
                          std::max<std::int64_t>(words / 4, 1));

    // Request pipeline: a valid/address pair per stage.
    std::ostringstream body;
    int total = 0;
    for (const auto &stage : stages)
        total += stage.latency;
    for (int s = 0; s < total; s++) {
        buf.addReg("stage" + std::to_string(s) + "_valid", 1);
        buf.addReg("stage" + std::to_string(s) + "_addr", 32);
    }
    body << "stage0_valid <= req_valid;\n"
         << "stage0_addr <= req_addr;\n";
    for (int s = 1; s < total; s++) {
        body << "stage" << s << "_valid <= stage" << (s - 1)
             << "_valid;\n";
        body << "stage" << s << "_addr <= stage" << (s - 1) << "_addr;\n";
    }
    buf.addReg("resp_data_r", opt.dataWidth, true);
    body << "resp_data_r <= data_sram[stage" << (total - 1) << "_addr];\n";
    buf.addAlways(body.str());
    buf.addAssign("resp_valid", "stage" + std::to_string(total - 1) +
                                "_valid");
    buf.addAssign("resp_data", "resp_data_r");
}

/** Build a load-balancer module (Section IV-E): monitors regfile
 *  occupancy and applies space-time biases (Eq. 2) to idle PEs. */
void
buildBalancerModule(Design &design, const GeneratedAccelerator &accel,
                    const RtlOptions &opt, const std::string &name)
{
    const auto &balancing = accel.spec.balancing;
    Module &lb = design.addModule(name);
    lb.setComment("Load balancer (Section IV-E): monitors regfile inputs "
                  "and, when target\niterations would idle, applies the "
                  "space-time bias of Eq. 2 so re-targeted\nPEs behave "
                  "as if located elsewhere in the array.");
    lb.addPort(PortDir::Input, "clock", 1);
    lb.addPort(PortDir::Input, "reset", 1);
    lb.addPort(PortDir::Input, "target_idle", 1);
    lb.addPort(PortDir::Output, "bias_valid", 1);

    int num_indices = accel.spec.functional.numIndices();
    for (int shift_id = 0; shift_id < int(balancing.shifts().size());
            shift_id++) {
        IntVec bias = balancing.shifts()[std::size_t(shift_id)]
                              .biasVector(num_indices);
        for (int idx = 0; idx < num_indices; idx++) {
            std::string port = "bias" + std::to_string(shift_id) + "_" +
                               sanitizeIdentifier(
                                       accel.spec.functional.indexNames()
                                               [std::size_t(idx)]);
            lb.addPort(PortDir::Output, port, opt.coordWidth, true);
            // The bias values are elaboration-time constants (Eq. 2's
            // b vector); the balancer gates when they apply.
            lb.addAssign(port, std::to_string(bias[std::size_t(idx)]));
        }
    }
    lb.addReg("bias_valid_r", 1);
    lb.addAssign("bias_valid", "bias_valid_r");
    lb.addAlways("if (reset) begin\n"
                 "  bias_valid_r <= 0;\n"
                 "end else begin\n"
                 "  bias_valid_r <= target_idle;\n"
                 "end");
}

/** Build the DMA module (Section VI-C's bottleneck lives here). */
void
buildDmaModule(Design &design, const RtlOptions &opt,
               const std::string &name)
{
    Module &dma = design.addModule(name);
    dma.setComment("DMA: issues up to " +
                   std::to_string(opt.dmaMaxInflight) +
                   " independent DRAM requests per cycle\n(Section VI-C: "
                   "1 for the default DMA, 16 for the scatter-tolerant "
                   "variant).");
    dma.addPort(PortDir::Input, "clock", 1);
    dma.addPort(PortDir::Input, "reset", 1);
    dma.addPort(PortDir::Input, "start", 1);
    dma.addPort(PortDir::Output, "busy", 1);
    for (int r = 0; r < opt.dmaMaxInflight; r++) {
        dma.addPort(PortDir::Output, "mem_req_valid_" + std::to_string(r),
                    1);
        dma.addPort(PortDir::Output, "mem_req_addr_" + std::to_string(r),
                    40);
        dma.addPort(PortDir::Input, "mem_resp_valid_" + std::to_string(r),
                    1);
        dma.addPort(PortDir::Input, "mem_resp_data_" + std::to_string(r),
                    opt.dataWidth, true);
        dma.addReg("req_addr_r_" + std::to_string(r), 40);
        dma.addReg("req_valid_r_" + std::to_string(r), 1);
        dma.addAssign("mem_req_valid_" + std::to_string(r),
                      "req_valid_r_" + std::to_string(r));
        dma.addAssign("mem_req_addr_" + std::to_string(r),
                      "req_addr_r_" + std::to_string(r));
    }
    dma.addReg("busy_r", 1);
    dma.addAssign("busy", "busy_r");
    std::ostringstream body;
    body << "if (reset) begin\n  busy_r <= 0;\n";
    for (int r = 0; r < opt.dmaMaxInflight; r++)
        body << "  req_valid_r_" << r << " <= 0;\n"
             << "  req_addr_r_" << r << " <= 0;\n";
    body << "end else begin\n  busy_r <= start;\n";
    for (int r = 0; r < opt.dmaMaxInflight; r++)
        body << "  req_valid_r_" << r << " <= start;\n"
             << "  req_addr_r_" << r << " <= req_addr_r_" << r << " + "
             << opt.dmaMaxInflight * (opt.dataWidth / 8) << ";\n";
    body << "end";
    dma.addAlways(body.str());
}

} // namespace

Design
lowerToVerilog(const core::GeneratedAccelerator &accel,
               const RtlOptions &options)
{
    Design design;
    auto vars = classifyVariables(accel);
    std::string base = sanitizeIdentifier(accel.spec.name.empty()
                                                  ? accel.spec.functional.name()
                                                  : accel.spec.name);
    std::string pe_name = "stellar_pe_" + base;
    std::string array_name = "stellar_array_" + base;

    buildPeModule(design, accel, vars, options, pe_name);
    buildArrayModule(design, accel, vars, options, pe_name, array_name);

    std::vector<std::string> regfile_names;
    for (const auto &plan : accel.regfiles) {
        std::string name = "stellar_rf_" + base + "_" +
                           sanitizeIdentifier(plan.tensorName);
        buildRegfileModule(design, plan, options, name);
        regfile_names.push_back(name);
    }

    std::vector<std::string> buffer_names;
    for (const auto &buffer : accel.spec.buffers) {
        std::string name = "stellar_mem_" + base + "_" +
                           sanitizeIdentifier(buffer.name);
        buildBufferModule(design, buffer, options, name);
        buffer_names.push_back(name);
    }

    std::string dma_name = "stellar_dma_" + base;
    buildDmaModule(design, options, dma_name);

    std::string balancer_name;
    if (!accel.spec.balancing.empty()) {
        balancer_name = "stellar_balancer_" + base;
        buildBalancerModule(design, accel, options, balancer_name);
    }

    // Top level: instantiate the array, regfiles, buffers, and DMA.
    std::string top_name = "stellar_top_" + base;
    Module &top = design.addModule(top_name);
    top.setComment("Stellar-generated SoC tile for accelerator \"" +
                   accel.spec.name + "\".");
    top.addPort(PortDir::Input, "clock", 1);
    top.addPort(PortDir::Input, "reset", 1);
    top.addPort(PortDir::Input, "enable", 1);

    {
        Instance inst;
        inst.moduleName = array_name;
        inst.instanceName = "array";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"enable", "enable"});
        top.addInstance(std::move(inst));
    }
    for (const auto &name : regfile_names) {
        Instance inst;
        inst.moduleName = name;
        inst.instanceName = "rf_" + name.substr(name.rfind('_') + 1);
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        top.addInstance(std::move(inst));
    }
    for (const auto &name : buffer_names) {
        Instance inst;
        inst.moduleName = name;
        inst.instanceName = "mem_" + name.substr(name.rfind('_') + 1);
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        top.addInstance(std::move(inst));
    }
    {
        Instance inst;
        inst.moduleName = dma_name;
        inst.instanceName = "dma";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"start", "enable"});
        top.addInstance(std::move(inst));
    }
    if (!balancer_name.empty()) {
        Instance inst;
        inst.moduleName = balancer_name;
        inst.instanceName = "balancer";
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        top.addInstance(std::move(inst));
    }
    design.setTop(top_name);
    return design;
}

namespace
{

std::int64_t
countRegistersIn(const Design &design, const Module &module)
{
    std::int64_t total = 0;
    for (const auto &reg : module.regs())
        total += reg.width;
    for (const auto &inst : module.instances()) {
        const Module *child = design.findModule(inst.moduleName);
        if (child != nullptr)
            total += countRegistersIn(design, *child);
    }
    return total;
}

} // namespace

std::int64_t
countRegisters(const Design &design)
{
    const Module *top = design.findModule(design.top());
    if (top == nullptr)
        return 0;
    return countRegistersIn(design, *top);
}

} // namespace stellar::rtl
