/**
 * @file
 * Verilog testbench generation.
 *
 * For a generated design, emit a self-checking testbench module that
 * clocks the top level, drives reset/enable, and (for PE modules)
 * applies stimulus/expected-response vectors computed by the schedule
 * executor. The testbench is plain Verilog-2001 so the emitted design
 * can be handed to any simulator; inside this repo the same vectors are
 * checked natively by the schedule executor, keeping the two in sync.
 */

#ifndef STELLAR_RTL_TESTBENCH_HPP
#define STELLAR_RTL_TESTBENCH_HPP

#include <string>
#include <vector>

#include "rtl/verilog.hpp"

namespace stellar::rtl
{

/** One stimulus/response vector for a module port set. */
struct TestVector
{
    std::vector<std::pair<std::string, std::int64_t>> inputs;
    std::vector<std::pair<std::string, std::int64_t>> expected;
};

/**
 * Build a testbench module for the design's top level: clock/reset
 * generation, an enable pulse, and a cycle-count watchdog. Returns the
 * testbench module name.
 */
std::string addTopTestbench(Design &design, std::int64_t run_cycles);

/**
 * Build a self-checking testbench for one module with explicit vectors:
 * each vector applies its inputs, waits one clock, and $display-checks
 * the expected outputs. Returns the testbench module name.
 */
std::string addVectorTestbench(Design &design,
                               const std::string &module_name,
                               const std::vector<TestVector> &vectors);

} // namespace stellar::rtl

#endif // STELLAR_RTL_TESTBENCH_HPP
