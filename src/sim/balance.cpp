#include "sim/balance.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace stellar::sim
{

BalanceResult
simulateRowWaves(const std::vector<std::int64_t> &row_work, int rows,
                 bool balanced)
{
    require(rows > 0, "array must have rows");
    BalanceResult result;
    for (auto w : row_work)
        result.work += w;

    std::size_t waves = (row_work.size() + std::size_t(rows) - 1) /
                        std::size_t(rows);
    if (!balanced) {
        // Each wave runs for its longest row.
        for (std::size_t wave = 0; wave < waves; wave++) {
            std::int64_t longest = 0;
            for (int r = 0; r < rows; r++) {
                std::size_t idx = wave * std::size_t(rows) + std::size_t(r);
                if (idx < row_work.size())
                    longest = std::max(longest, row_work[idx]);
            }
            result.cycles += longest;
        }
    } else {
        // Adjacent-wave sharing: physical row r accumulates the work of
        // logical rows r, r + rows, r + 2*rows, ... and rows only wait
        // for each other at the very end (the shift happens whenever a
        // row would idle, Listing 3). Each applied shift is counted.
        std::vector<std::int64_t> lane_total(std::size_t(rows), 0);
        for (std::size_t idx = 0; idx < row_work.size(); idx++) {
            lane_total[idx % std::size_t(rows)] += row_work[idx];
            if (idx >= std::size_t(rows) && row_work[idx] > 0)
                result.shiftsApplied++;
        }
        result.cycles = *std::max_element(lane_total.begin(),
                                          lane_total.end());
    }
    result.cycles = std::max<std::int64_t>(result.cycles, 1);
    result.utilization =
            double(result.work) / (double(result.cycles) * double(rows));
    return result;
}

BalanceResult
simulatePerPe(const std::vector<std::int64_t> &row_work, int rows)
{
    require(rows > 0, "array must have rows");
    BalanceResult result;
    for (auto w : row_work)
        result.work += w;
    // A global work queue: greedy longest-processing-time assignment, the
    // upper bound of what per-PE balancing can achieve.
    std::vector<std::int64_t> sorted = row_work;
    std::sort(sorted.rbegin(), sorted.rend());
    std::vector<std::int64_t> lanes(std::size_t(rows), 0);
    for (auto w : sorted) {
        auto lane = std::min_element(lanes.begin(), lanes.end());
        *lane += w;
        if (w > 0)
            result.shiftsApplied++;
    }
    result.cycles = std::max<std::int64_t>(
            *std::max_element(lanes.begin(), lanes.end()), 1);
    result.utilization =
            double(result.work) / (double(result.cycles) * double(rows));
    return result;
}

} // namespace stellar::sim
