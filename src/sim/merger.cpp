#include "sim/merger.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

namespace
{

/** Output fiber lengths of merging a pair, keyed by row id. */
std::map<std::int64_t, std::int64_t>
mergedRowLengths(const sparse::PartialMatrix &a,
                 const sparse::PartialMatrix &b)
{
    // The merged fiber length is bounded by the sum of the inputs; exact
    // lengths require coordinate comparison, so merge coordinate sets.
    std::map<std::int64_t, const sparse::Fiber *> a_rows, b_rows;
    for (std::size_t f = 0; f < a.rowIds.size(); f++)
        a_rows[a.rowIds[f]] = &a.rowFibers[f];
    for (std::size_t f = 0; f < b.rowIds.size(); f++)
        b_rows[b.rowIds[f]] = &b.rowFibers[f];

    std::map<std::int64_t, std::int64_t> lengths;
    for (const auto &[row, fiber] : a_rows) {
        auto it = b_rows.find(row);
        if (it == b_rows.end()) {
            lengths[row] = fiber->size();
        } else {
            lengths[row] =
                    sparse::mergeFibers(*fiber, *it->second).size();
        }
    }
    for (const auto &[row, fiber] : b_rows)
        if (!a_rows.count(row))
            lengths[row] = fiber->size();
    return lengths;
}

} // namespace

MergerResult
mergePairRowPartitioned(const MergerConfig &config,
                        const sparse::PartialMatrix &a,
                        const sparse::PartialMatrix &b)
{
    auto lengths = mergedRowLengths(a, b);
    MergerResult result;
    // Rows are handed to the least-loaded lane in arrival order (the
    // hardware cannot sort by length ahead of time); each lane emits one
    // element per cycle plus a startup bubble per fiber.
    std::vector<std::int64_t> lane_busy(std::size_t(config.lanes), 0);
    for (const auto &[row, len] : lengths) {
        result.mergedElements += len;
        auto lane = std::min_element(lane_busy.begin(), lane_busy.end());
        *lane += len + config.laneStartup;
    }
    result.cycles = *std::max_element(lane_busy.begin(), lane_busy.end());
    result.cycles = std::max<std::int64_t>(result.cycles, 1);
    return result;
}

MergerResult
mergePairFlattened(const MergerConfig &config,
                   const sparse::PartialMatrix &a,
                   const sparse::PartialMatrix &b)
{
    auto lengths = mergedRowLengths(a, b);
    MergerResult result;
    for (const auto &[row, len] : lengths)
        result.mergedElements += len;
    // The flattened fiber pops up to `throughput` elements every cycle
    // regardless of row boundaries (Fig 19b).
    result.cycles = (result.mergedElements + config.throughput - 1) /
                    config.throughput;
    result.cycles = std::max<std::int64_t>(result.cycles, 1);
    return result;
}

sparse::PartialMatrix
mergePartialPair(const sparse::PartialMatrix &a,
                 const sparse::PartialMatrix &b)
{
    std::map<std::int64_t, sparse::Fiber> rows;
    for (std::size_t f = 0; f < a.rowIds.size(); f++)
        rows[a.rowIds[f]] = a.rowFibers[f];
    for (std::size_t f = 0; f < b.rowIds.size(); f++) {
        auto it = rows.find(b.rowIds[f]);
        if (it == rows.end())
            rows[b.rowIds[f]] = b.rowFibers[f];
        else
            it->second = sparse::mergeFibers(it->second, b.rowFibers[f]);
    }
    sparse::PartialMatrix merged;
    for (auto &[row, fiber] : rows) {
        merged.rowIds.push_back(row);
        merged.rowFibers.push_back(std::move(fiber));
    }
    return merged;
}

MergerResult
runMergeSchedule(const MergerConfig &config, MergerKind kind,
                 std::vector<sparse::PartialMatrix> partials)
{
    MergerResult total;
    if (partials.size() <= 1)
        return total;
    // SpArch's execution order: merge neighbouring partial matrices
    // pairwise, round after round, until one remains.
    util::WatchdogBatcher dog; // one step per merged pair, batched
    while (partials.size() > 1) {
        std::vector<sparse::PartialMatrix> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            if (util::fault::armed())
                util::fault::checkpoint("sim.merger.pair");
            dog.step([&]() {
                return "merge round with " +
                       std::to_string(partials.size()) +
                       " partial matrices, pair at " +
                       std::to_string(i) + ", " +
                       std::to_string(total.mergedElements) +
                       " elements merged so far";
            });
            MergerResult pair =
                    kind == MergerKind::RowPartitioned
                            ? mergePairRowPartitioned(config, partials[i],
                                                      partials[i + 1])
                            : mergePairFlattened(config, partials[i],
                                                 partials[i + 1]);
            total.cycles += pair.cycles;
            total.mergedElements += pair.mergedElements;
            next.push_back(
                    mergePartialPair(partials[i], partials[i + 1]));
        }
        if (partials.size() % 2 == 1)
            next.push_back(std::move(partials.back()));
        partials = std::move(next);
    }
    return total;
}

MergerResult
runHierarchicalMerge(const MergerConfig &config,
                     const std::vector<sparse::PartialMatrix> &partials,
                     int ways)
{
    require(ways >= 2, "hierarchical merge needs at least 2 ways");
    MergerResult total;
    if (partials.empty())
        return total;
    int levels = 0;
    for (int span = 1; span < ways; span *= 2)
        levels++;

    // Process the partial stream in groups of `ways`. Each group flows
    // through the pipelined tree: output elements emerge at the
    // flattened throughput once the tree fills.
    std::size_t group_start = 0;
    util::WatchdogBatcher dog; // one step per merge-tree group
    while (group_start < partials.size()) {
        if (util::fault::armed())
            util::fault::checkpoint("sim.merger.group");
        dog.step([&]() {
            return "hierarchical merge group at " +
                   std::to_string(group_start) + "/" +
                   std::to_string(partials.size());
        });
        std::size_t group_end =
                std::min(group_start + std::size_t(ways), partials.size());
        // Functionally merge the group to get the output element count.
        sparse::PartialMatrix merged = partials[group_start];
        for (std::size_t i = group_start + 1; i < group_end; i++)
            merged = mergePartialPair(merged, partials[i]);
        std::int64_t elements = merged.totalElements();
        total.mergedElements += elements;
        total.cycles += (elements + config.throughput - 1) /
                        config.throughput +
                        levels; // pipeline fill
        group_start = group_end;
    }
    return total;
}

} // namespace stellar::sim
