#include "sim/outerspace.hpp"

#include <algorithm>
#include <string>

#include "sim/balance.hpp"

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

double
OuterSpaceResult::gflops(double freq_ghz) const
{
    if (cycles == 0)
        return 0.0;
    double seconds = double(cycles) / (freq_ghz * 1e9);
    return 2.0 * double(multiplies) / seconds / 1e9;
}

OuterSpaceResult
simulateOuterSpace(const OuterSpaceConfig &config,
                   const sparse::CsrMatrix &a)
{
    OuterSpaceResult result;
    result.multiplies = sparse::spgemmMultiplies(a, a);

    // Column nonzero counts of A (the CSC view used by the outer product).
    std::vector<std::int64_t> col_nnz(std::size_t(a.cols()), 0);
    for (auto c : a.colIdx())
        col_nnz[std::size_t(c)]++;

    // Every nonzero A(i, k) produces one partial-sum fiber of length
    // rowNnz(k), stored as a scattered vector reached through a pointer.
    const std::int64_t elem_bytes = 12; // 8B value + 4B coordinate
    std::vector<TransferChunk> scatter;
    scatter.reserve(std::size_t(a.nnz()));
    for (std::int64_t k = 0; k < a.cols(); k++) {
        std::int64_t fiber_len = a.rowNnz(std::min(k, a.rows() - 1));
        if (fiber_len == 0 || col_nnz[std::size_t(k)] == 0)
            continue;
        for (std::int64_t f = 0; f < col_nnz[std::size_t(k)]; f++) {
            TransferChunk chunk;
            chunk.bytes = fiber_len * elem_bytes;
            chunk.pointerChased = true;
            scatter.push_back(chunk);
        }
    }

    // ---- Multiply phase ----
    DramModel multiply_dram(config.dram);
    // Stream A in twice (CSC for the left operand, CSR for the right).
    std::int64_t a_bytes = a.nnz() * 12 + (a.rows() + 1) * 8;
    auto a_read = simulateStream(config.dma, multiply_dram, 2 * a_bytes);
    // Scatter the partial vectors out (pointer-chased writes).
    auto scatter_out =
            simulateTransfer(config.dma, multiply_dram, scatter,
                             a_read.cycles);
    std::int64_t multiply_mem = a_read.cycles + scatter_out.cycles;
    // Compute side: columns of A are outer-product work items distributed
    // across the PE groups; imbalanced columns strand groups unless the
    // Listing 3-style balancer shifts work between waves (Fig 6).
    std::vector<std::int64_t> column_work;
    util::WatchdogBatcher dog; // one step per outer-product column
    for (std::int64_t k = 0; k < a.cols(); k++) {
        if (util::fault::armed())
            util::fault::checkpoint("sim.outerspace.column");
        dog.step([&]() {
            return "outerspace column " + std::to_string(k) + "/" +
                   std::to_string(a.cols()) + ", " +
                   std::to_string(scatter.size()) +
                   " scattered fibers queued";
        });
        std::int64_t products =
                col_nnz[std::size_t(k)] * a.rowNnz(std::min(k, a.rows() - 1));
        if (products > 0)
            column_work.push_back(
                    (products + config.multipliers / config.workGroups - 1) /
                    std::max(config.multipliers / config.workGroups, 1));
    }
    auto balance = simulateRowWaves(column_work, config.workGroups,
                                    config.loadBalanced);
    std::int64_t multiply_compute = balance.cycles;
    result.balancerShifts = balance.shiftsApplied;
    result.multiplyUtilization = balance.utilization;
    result.multiplyPhaseCycles = std::max(multiply_mem, multiply_compute);
    result.pointerRequests += std::int64_t(scatter.size());
    result.pointerStallCycles += scatter_out.pointerStallCycles;
    result.dramBytes += multiply_dram.bytesTransferred();

    // ---- Merge phase ----
    DramModel merge_dram(config.dram);
    // Gather the scattered partial vectors back (pointer-chased reads).
    auto gather = simulateTransfer(config.dma, merge_dram, scatter);
    // Write the final merged matrix out as a stream. Use the partial
    // element count as an upper bound on the result size.
    auto write_out = simulateStream(config.dma, merge_dram,
                                    result.multiplies * elem_bytes,
                                    gather.cycles);
    std::int64_t merge_mem = gather.cycles + write_out.cycles;
    // Merge lanes consume one element per lane per cycle; imbalanced
    // fibers leave some lanes idle (~20% on the matrices studied).
    std::int64_t merge_compute = std::int64_t(
            1.2 * double(result.multiplies) / double(config.mergeLanes));
    result.mergePhaseCycles = std::max(merge_mem, merge_compute);
    result.pointerRequests += std::int64_t(scatter.size());
    result.pointerStallCycles += gather.pointerStallCycles;
    result.dramBytes += merge_dram.bytesTransferred();

    result.cycles = result.multiplyPhaseCycles + result.mergePhaseCycles;
    return result;
}

} // namespace stellar::sim
