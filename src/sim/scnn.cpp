#include "sim/scnn.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

namespace
{

/** Approximate binomial sample via the RNG's Gaussian. */
std::int64_t
sampleCount(Rng &rng, std::int64_t trials, double p)
{
    if (trials <= 0)
        return 0;
    double mean = double(trials) * p;
    double stddev = std::sqrt(std::max(mean * (1.0 - p), 0.0));
    auto n = std::int64_t(std::llround(rng.nextGaussian(mean, stddev)));
    return std::clamp<std::int64_t>(n, 0, trials);
}

} // namespace

ScnnResult
simulateScnnLayer(const ScnnConfig &config, const ScnnLayer &layer,
                  std::uint64_t seed)
{
    require(layer.inChannels > 0 && layer.outChannels > 0,
            "layer must have channels");
    Rng rng(seed * 0x9e3779b9ULL + std::uint64_t(layer.inChannels));
    ScnnResult result;

    int pes = config.peRows * config.peCols;
    // Input activations are tiled planar-wise: each PE owns a patch of
    // every input channel's feature map.
    std::int64_t fmap = layer.outSize * layer.outSize;
    std::int64_t acts_per_pe =
            std::max<std::int64_t>(1, fmap / pes);

    std::int64_t weights_per_channel = layer.outChannels * layer.kernel *
                                       layer.kernel;

    util::WatchdogBatcher dog; // one step per input channel, batched
    for (std::int64_t c = 0; c < layer.inChannels; c++) {
        if (util::fault::armed())
            util::fault::checkpoint("sim.scnn.channel");
        dog.step([&]() {
            return "scnn channel " + std::to_string(c) + "/" +
                   std::to_string(layer.inChannels) + ", " +
                   std::to_string(result.cycles) + " cycles so far";
        });
        // Weights for this input channel are broadcast to every PE.
        std::int64_t nnz_w =
                sampleCount(rng, weights_per_channel, layer.weightDensity);
        if (nnz_w == 0)
            continue;
        std::int64_t w_vectors = (nnz_w + config.mulF - 1) / config.mulF;

        std::int64_t slowest = 0;
        for (int pe = 0; pe < pes; pe++) {
            std::int64_t nnz_a = sampleCount(rng, acts_per_pe,
                                             layer.activationDensity);
            std::int64_t a_vectors =
                    (nnz_a + config.mulI - 1) / config.mulI;
            std::int64_t pe_cycles = w_vectors * a_vectors;
            slowest = std::max(slowest, pe_cycles);
            result.multiplies += nnz_w * nnz_a;
        }
        // Accumulator-bank conflicts stretch the group.
        slowest = std::int64_t(double(slowest) *
                               (1.0 + config.bankConflictRate));
        // All PEs synchronize at the channel boundary; the Stellar design
        // additionally drains its regfile pipeline (global stall epoch).
        if (config.stellarGenerated) {
            slowest = std::int64_t(double(slowest) *
                                   (1.0 + config.stellarSyncFraction));
            slowest += config.stellarGroupDrain;
        }
        result.cycles += slowest;
    }

    double peak = double(pes) * double(config.mulF) * double(config.mulI);
    result.utilization = result.cycles == 0
                                 ? 0.0
                                 : double(result.multiplies) /
                                           (double(result.cycles) * peak);
    return result;
}

} // namespace stellar::sim
