#include "sim/dram.hpp"

#include <algorithm>
#include <string>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

std::int64_t
DramModel::outstanding(std::int64_t now) const
{
    while (!inflight_.empty() && inflight_.top() <= now)
        inflight_.pop();
    return std::int64_t(inflight_.size());
}

bool
DramModel::canAccept(std::int64_t now) const
{
    return outstanding(now) < config_.maxOutstanding;
}

std::int64_t
DramModel::issue(std::int64_t now, std::int64_t bytes)
{
    require(bytes > 0, "DRAM request must move at least one byte");
    std::int64_t charged = std::max(bytes, config_.minBurstBytes);
    std::int64_t start = std::max(now, bwCursor_);
    std::int64_t occupancy =
            (charged + config_.bytesPerCycle - 1) / config_.bytesPerCycle;
    bwCursor_ = start + occupancy;
    bytesTransferred_ += bytes;
    std::int64_t completion = bwCursor_ + config_.latency;
    inflight_.push(completion);
    return completion;
}

TransferResult
simulateTransfer(const DmaConfig &dma, DramModel &dram,
                 const std::vector<TransferChunk> &chunks,
                 std::int64_t start_cycle)
{
    TransferResult result;
    std::int64_t now = start_cycle;

    // Chunks whose pointer load has been issued, keyed by the cycle the
    // pointer value arrives.
    struct PendingData
    {
        std::int64_t readyAt;
        std::int64_t bytes;
    };
    std::vector<PendingData> pending;
    std::size_t next_chunk = 0;
    std::int64_t last_completion = start_cycle;

    auto all_done = [&]() {
        return next_chunk >= chunks.size() && pending.empty();
    };

    // One watchdog step per simulated wave, batched: a transfer that
    // stops making progress (livelocked arbitration, a DRAM that never
    // accepts) expires the budget with its queue state instead of
    // spinning forever.
    util::WatchdogBatcher dog;
    while (!all_done()) {
        if (util::fault::armed())
            util::fault::checkpoint("sim.dram.wave");
        dog.step([&]() {
            return "dram transfer at cycle " + std::to_string(now) +
                   ", chunk " + std::to_string(next_chunk) + "/" +
                   std::to_string(chunks.size()) + ", " +
                   std::to_string(pending.size()) +
                   " pointer loads pending, " +
                   std::to_string(dram.outstanding(now)) +
                   " requests outstanding";
        });
        int issued_this_cycle = 0;
        bool stalled_on_pointer = false;
        while (issued_this_cycle < dma.reqsPerCycle) {
            if (!dram.canAccept(now))
                break;
            // Prefer dependent data requests whose pointers have arrived.
            auto ready = pending.end();
            for (auto it = pending.begin(); it != pending.end(); ++it)
                if (it->readyAt <= now &&
                        (ready == pending.end() ||
                         it->readyAt < ready->readyAt)) {
                    ready = it;
                }
            if (ready != pending.end()) {
                std::int64_t done = dram.issue(now, ready->bytes);
                last_completion = std::max(last_completion, done);
                result.requests++;
                result.bytes += ready->bytes;
                pending.erase(ready);
                issued_this_cycle++;
                continue;
            }
            if (next_chunk < chunks.size()) {
                if (chunks[next_chunk].pointerChased &&
                        std::int64_t(pending.size()) >=
                                dma.pointerContexts) {
                    // All pointer contexts are occupied: stall until a
                    // pointer returns and its data request issues.
                    stalled_on_pointer = true;
                    break;
                }
                const auto &chunk = chunks[next_chunk++];
                if (chunk.pointerChased) {
                    // Load the 8-byte pointer first; the data request
                    // becomes issueable when the pointer returns.
                    std::int64_t ptr_done = dram.issue(now, 8);
                    result.requests++;
                    result.bytes += 8;
                    pending.push_back(PendingData{ptr_done, chunk.bytes});
                } else {
                    std::int64_t done = dram.issue(now, chunk.bytes);
                    last_completion = std::max(last_completion, done);
                    result.requests++;
                    result.bytes += chunk.bytes;
                }
                issued_this_cycle++;
                continue;
            }
            // Nothing issueable: waiting on pointer returns.
            if (!pending.empty())
                stalled_on_pointer = true;
            break;
        }
        if (stalled_on_pointer)
            result.pointerStallCycles++;
        now++;
        // Fast-forward across long waits so the loop stays cheap.
        if (issued_this_cycle == 0 && !all_done()) {
            std::int64_t skip_to = now;
            if (!pending.empty()) {
                std::int64_t earliest = pending.front().readyAt;
                for (const auto &p : pending)
                    earliest = std::min(earliest, p.readyAt);
                skip_to = std::max(skip_to, std::min(earliest,
                                                     last_completion));
            } else {
                skip_to = std::max(skip_to, dram.bandwidthCursor());
            }
            if (skip_to > now) {
                result.pointerStallCycles +=
                        pending.empty() ? 0 : skip_to - now;
                now = skip_to;
            }
        }
    }
    result.cycles = std::max(last_completion, now) - start_cycle;
    return result;
}

TransferResult
simulateStream(const DmaConfig &dma, DramModel &dram, std::int64_t bytes,
               std::int64_t start_cycle)
{
    // Split into DRAM-burst-sized chunks.
    std::vector<TransferChunk> chunks;
    std::int64_t burst = dram.config().minBurstBytes;
    for (std::int64_t off = 0; off < bytes; off += burst) {
        TransferChunk chunk;
        chunk.bytes = std::min(burst, bytes - off);
        chunks.push_back(chunk);
    }
    return simulateTransfer(dma, dram, chunks, start_cycle);
}

} // namespace stellar::sim
