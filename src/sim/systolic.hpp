/**
 * @file
 * Cycle-level model of a weight-stationary systolic matmul accelerator
 * (the Gemmini-like design of Section VI-A/VI-B).
 *
 * The handwritten and Stellar-generated designs run the same tiled
 * schedule; they differ in the micro-architectural overheads the paper
 * measures:
 *  - the handwritten design's centralized loop unroller overlaps weight
 *    preloads with compute almost perfectly;
 *  - the Stellar-generated design inserts global start/stall epochs and
 *    time-counter resets at tile boundaries (Section VI-B: the global
 *    signals that start and stall all PEs simultaneously), costing a few
 *    cycles per tile and landing utilization near 90% of handwritten.
 */

#ifndef STELLAR_SIM_SYSTOLIC_HPP
#define STELLAR_SIM_SYSTOLIC_HPP

#include <cstdint>

#include "sim/dram.hpp"

namespace stellar::sim
{

/** Configuration of the systolic accelerator. */
struct SystolicConfig
{
    int rows = 16;
    int cols = 16;
    bool stellarGenerated = false;

    /** Extra cycles per tile for the Stellar global start/stall epoch. */
    int stellarTileOverhead = 12;

    /** Handwritten per-tile bookkeeping (mostly hidden by overlap). */
    int handwrittenTileOverhead = 2;

    /** Scratchpad read/write width per cycle (elements). */
    int spadLanes = 16;

    DramConfig dram;
    DmaConfig dma;
};

/** Result of simulating one matmul layer. */
struct SystolicResult
{
    std::int64_t computeCycles = 0;
    std::int64_t memoryCycles = 0;
    std::int64_t cycles = 0; //!< max of overlap-aware compute and memory
    std::int64_t macs = 0;
    double utilization = 0.0;

    std::int64_t dramBytes = 0;
    std::int64_t spadReadBytes = 0;
    std::int64_t spadWriteBytes = 0;
    std::int64_t regfileBytes = 0;
};

/** Simulate C(MxN) = A(MxK) * B(KxN) with 8-bit inputs. */
SystolicResult simulateSystolicMatmul(const SystolicConfig &config,
                                      std::int64_t m, std::int64_t n,
                                      std::int64_t k);

/**
 * Simulate the same matmul with A in N:M structured-sparse form on an
 * OptimisticSkip array (Fig 5): the reduction dimension contracts to
 * k * keep_n / group_m while the bundled B wires deliver group_m
 * candidates per cycle; a small per-tile mux-settling overhead applies.
 */
SystolicResult simulateStructuredSparseMatmul(const SystolicConfig &config,
                                              std::int64_t m,
                                              std::int64_t n,
                                              std::int64_t k, int keep_n,
                                              int group_m);

} // namespace stellar::sim

#endif // STELLAR_SIM_SYSTOLIC_HPP
