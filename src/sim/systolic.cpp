#include "sim/systolic.hpp"

#include <algorithm>
#include <string>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

SystolicResult
simulateSystolicMatmul(const SystolicConfig &config, std::int64_t m,
                       std::int64_t n, std::int64_t k)
{
    require(m > 0 && n > 0 && k > 0, "matmul dims must be positive");
    SystolicResult result;
    result.macs = m * n * k;

    auto ceil_div = [](std::int64_t a, std::int64_t b) {
        return (a + b - 1) / b;
    };
    std::int64_t tiles_k = ceil_div(k, config.rows);
    std::int64_t tiles_n = ceil_div(n, config.cols);
    std::int64_t tiles_m = ceil_div(m, 512); // output-row strip mining

    // Weight-stationary schedule: for each (k, n) weight tile, stream the
    // A rows through. The handwritten design double-buffers weights so the
    // preload is hidden; both designs pay the array fill/drain skew once
    // per tile wave.
    std::int64_t per_tile_overhead =
            config.stellarGenerated ? config.stellarTileOverhead
                                    : config.handwrittenTileOverhead;
    std::int64_t compute = 0;
    util::WatchdogBatcher dog; // one step per weight tile, batched
    for (std::int64_t tk = 0; tk < tiles_k; tk++) {
        for (std::int64_t tn = 0; tn < tiles_n; tn++) {
            if (util::fault::armed())
                util::fault::checkpoint("sim.systolic.tile");
            dog.step([&]() {
                return "systolic tile (" + std::to_string(tk) + ", " +
                       std::to_string(tn) + ") of " +
                       std::to_string(tiles_k) + "x" +
                       std::to_string(tiles_n);
            });
            std::int64_t rows_streamed = m;
            std::int64_t fill_drain = config.rows + config.cols;
            std::int64_t preload =
                    config.stellarGenerated ? config.rows / 2 : 0;
            compute += rows_streamed + fill_drain + preload +
                       per_tile_overhead * tiles_m;
        }
    }
    result.computeCycles = compute;

    // Memory side: partial sums accumulate in the on-chip accumulator,
    // so C is written once; A is re-streamed per group of N tiles that
    // fit the accumulator (strip-mined); B is streamed once.
    std::int64_t a_restreams = std::min<std::int64_t>(tiles_n, 4);
    std::int64_t a_bytes = m * k * 1 * a_restreams;
    std::int64_t b_bytes = k * n * 1;
    std::int64_t c_bytes = m * n * 4;
    DramModel dram(config.dram);
    auto traffic = simulateStream(config.dma, dram,
                                  a_bytes + b_bytes + c_bytes);
    result.memoryCycles = traffic.cycles;
    result.dramBytes = traffic.bytes;

    // Compute and memory overlap through double buffering; the longer
    // side dominates, with a small serialization tail.
    result.cycles = std::max(result.computeCycles, result.memoryCycles) +
                    std::min(result.computeCycles, result.memoryCycles) / 16;

    double peak = double(config.rows) * double(config.cols);
    result.utilization =
            double(result.macs) / (double(result.cycles) * peak);

    result.spadReadBytes = a_bytes + b_bytes + c_bytes / 2;
    result.spadWriteBytes = a_bytes + b_bytes + c_bytes / 2;
    result.regfileBytes =
            (config.stellarGenerated ? 4 : 1) * (a_bytes + b_bytes);
    return result;
}

SystolicResult
simulateStructuredSparseMatmul(const SystolicConfig &config, std::int64_t m,
                               std::int64_t n, std::int64_t k, int keep_n,
                               int group_m)
{
    require(group_m > 0 && keep_n > 0 && keep_n <= group_m,
            "invalid N:M parameters");
    require(k % group_m == 0, "k must be a multiple of M");
    // The compressed reduction walks only the kept weights.
    std::int64_t k_compressed = k * keep_n / group_m;
    auto result = simulateSystolicMatmul(config, m, n, k_compressed);
    // Useful MACs are counted against the kept weights only, but the
    // selector muxes settle once per weight group per tile wave.
    std::int64_t groups = k / group_m;
    result.cycles += groups; // one settling bubble per group
    // B traffic is NOT compressed: the bundles carry all group_m
    // candidate operands (Fig 5).
    result.dramBytes += k * n - k_compressed * n;
    double peak = double(config.rows) * double(config.cols);
    result.utilization = double(result.macs) /
                         (double(result.cycles) * peak);
    return result;
}

} // namespace stellar::sim
