/**
 * @file
 * Cycle-level models of the partial-matrix mergers of Section VI-D
 * (Figs 18 and 19).
 *
 * Row-partitioned mergers (GAMMA-style, Fig 19a) assign each row fiber of
 * a partial-matrix pair to one of L lanes; each lane emits one merged
 * element per cycle, so imbalanced row lengths strand lanes. Flattened
 * mergers (SpArch-style, Fig 19b) treat the pair as one flattened fiber
 * and pop up to T elements per cycle regardless of row boundaries.
 *
 * Both mergers process the same SpArch-order merge schedule: partial
 * matrices produced by consecutive outer products are merged pairwise in
 * rounds until one matrix remains.
 */

#ifndef STELLAR_SIM_MERGER_HPP
#define STELLAR_SIM_MERGER_HPP

#include <cstdint>
#include <vector>

#include "sparse/spgemm.hpp"

namespace stellar::sim
{

/** Merger configurations of Section VI-D. */
struct MergerConfig
{
    /** Row-partitioned lanes (the paper generates 32). */
    int lanes = 32;

    /** Flattened throughput in elements/cycle (SpArch uses 16). */
    int throughput = 16;

    /** Per-fiber startup cycles on a row-partitioned lane. */
    int laneStartup = 2;
};

/** Result of one merge run. */
struct MergerResult
{
    std::int64_t cycles = 0;
    std::int64_t mergedElements = 0;

    double
    elementsPerCycle() const
    {
        return cycles == 0 ? 0.0
                           : double(mergedElements) / double(cycles);
    }
};

/** Merge one pair of partial matrices on a row-partitioned merger. */
MergerResult mergePairRowPartitioned(const MergerConfig &config,
                                     const sparse::PartialMatrix &a,
                                     const sparse::PartialMatrix &b);

/** Merge one pair of partial matrices on a flattened merger. */
MergerResult mergePairFlattened(const MergerConfig &config,
                                const sparse::PartialMatrix &a,
                                const sparse::PartialMatrix &b);

/** Functionally merge two partial matrices (golden reference). */
sparse::PartialMatrix mergePartialPair(const sparse::PartialMatrix &a,
                                       const sparse::PartialMatrix &b);

/** Which merger micro-architecture to simulate. */
enum class MergerKind { RowPartitioned, Flattened };

/**
 * Run the full SpArch-order pairwise merge schedule over the partial
 * matrices of one SpGEMM, accumulating cycles and emitted elements.
 */
MergerResult runMergeSchedule(const MergerConfig &config, MergerKind kind,
                              std::vector<sparse::PartialMatrix> partials);

/**
 * SpArch's hierarchical merge tree (Section IV-F): up to `ways` partial
 * matrices are merged at once through a pipelined tree of flattened
 * comparator stages. All levels run concurrently, so a W-way merge of E
 * total elements costs about E/throughput cycles plus the tree's fill
 * latency — far fewer passes than pairwise merging, paid for with the
 * 13x area of Section IV-F.
 */
MergerResult runHierarchicalMerge(const MergerConfig &config,
                                  const std::vector<sparse::PartialMatrix>
                                          &partials,
                                  int ways);

} // namespace stellar::sim

#endif // STELLAR_SIM_MERGER_HPP
