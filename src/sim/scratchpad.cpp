#include "sim/scratchpad.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace stellar::sim
{

ScratchpadResult
simulateScratchpadReads(const mem::MemBufferSpec &spec,
                        const ScratchpadConfig &config,
                        std::int64_t num_requests, std::uint64_t seed)
{
    require(num_requests >= 0, "negative request count");
    require(config.requestsPerCycle > 0, "need a positive request rate");
    auto stages = mem::planPipeline(spec, /*for_reads=*/true);
    ScratchpadResult result;
    result.requests = num_requests;
    if (num_requests == 0)
        return result;

    Rng rng(seed ^ 0x5c7a7c4dULL);
    int banks = std::max(spec.banks, 1);

    // Steady-state model: the pipeline accepts up to requestsPerCycle
    // requests per cycle; a metadata miss or a bank conflict holds the
    // front of the pipe for its penalty.
    std::int64_t cycles = mem::pipelineLatency(stages); // fill
    std::int64_t issued = 0;
    std::vector<std::int64_t> bank_busy(std::size_t(banks), -1);
    std::int64_t now = 0;
    while (issued < num_requests) {
        int accepted = 0;
        bool stalled = false;
        while (accepted < config.requestsPerCycle &&
                issued < num_requests) {
            // Bank check: the data access goes to a random bank.
            auto bank = std::size_t(rng.nextBounded(std::uint64_t(banks)));
            if (bank_busy[bank] >= now) {
                result.bankConflictStalls++;
                stalled = true;
                break;
            }
            bank_busy[bank] = now;
            // Metadata misses on sparse axes.
            for (const auto &stage : stages) {
                if (stage.metadataLookup &&
                        rng.nextBool(config.metadataMissRate)) {
                    result.metadataStalls += config.metadataMissPenalty;
                    now += config.metadataMissPenalty;
                }
            }
            issued++;
            accepted++;
        }
        (void)stalled;
        now++;
    }
    result.cycles = cycles + now;
    return result;
}

} // namespace stellar::sim
