/**
 * @file
 * Cycle-level model of a private memory buffer's read pipeline (Fig 12).
 *
 * Requests stream through one stage per fibertree axis. Dense stages are
 * pure address arithmetic; compressed/bitvector/linked-list stages
 * perform metadata SRAM lookups that occasionally miss their row buffer
 * and stall. Bank conflicts serialize simultaneous accesses that land in
 * the same bank. This is the distributed-address-generator behaviour
 * whose area Table III prices and whose scalability Section VI-B
 * credits for Stellar's higher Fmax.
 */

#ifndef STELLAR_SIM_SCRATCHPAD_HPP
#define STELLAR_SIM_SCRATCHPAD_HPP

#include <cstdint>

#include "mem/buffer_spec.hpp"
#include "util/rng.hpp"

namespace stellar::sim
{

/** Behavioural knobs of the scratchpad model. */
struct ScratchpadConfig
{
    /** Probability a metadata lookup leaves the stage's row buffer and
     *  pays an extra SRAM access. */
    double metadataMissRate = 0.15;

    /** Extra cycles per metadata miss. */
    int metadataMissPenalty = 2;

    /** Requests arriving per cycle (the consuming array's appetite). */
    int requestsPerCycle = 1;
};

/** Result of streaming requests through the buffer pipeline. */
struct ScratchpadResult
{
    std::int64_t cycles = 0;
    std::int64_t requests = 0;
    std::int64_t metadataStalls = 0;
    std::int64_t bankConflictStalls = 0;

    double
    throughput() const
    {
        return cycles == 0 ? 0.0 : double(requests) / double(cycles);
    }
};

/**
 * Stream `num_requests` read requests through the buffer's pipeline.
 * Addresses are modeled as a random stream for bank-conflict purposes;
 * deterministic per seed.
 */
ScratchpadResult simulateScratchpadReads(const mem::MemBufferSpec &spec,
                                         const ScratchpadConfig &config,
                                         std::int64_t num_requests,
                                         std::uint64_t seed);

} // namespace stellar::sim

#endif // STELLAR_SIM_SCRATCHPAD_HPP
