/**
 * @file
 * Cycle-level model of an SCNN-like sparse CNN accelerator (Fig 15).
 *
 * SCNN distributes input-activation tiles across an 8x8 PE array; each PE
 * has a 4x4 multiplier array computing the cartesian product of 4 sparse
 * weights and 4 sparse activations per cycle. Utilization is lost to
 *  - fragmentation: per-cycle nonzero groups that do not fill the 4x4
 *    array (ceil effects on F=4, I=4 vectors);
 *  - accumulator-bank conflicts in the scatter crossbar;
 *  - cross-PE imbalance: all PEs synchronize at input-channel boundaries,
 *    so the slowest PE gates the group.
 * The Stellar-generated variant additionally drains its regfile pipeline
 * at channel-group boundaries (Section VI-B's global start/stall epochs),
 * landing it at 83-94% of the handwritten design (Fig 15).
 */

#ifndef STELLAR_SIM_SCNN_HPP
#define STELLAR_SIM_SCNN_HPP

#include <cstdint>

#include "util/rng.hpp"

namespace stellar::sim
{

/** SCNN array configuration. */
struct ScnnConfig
{
    int peRows = 8;
    int peCols = 8;
    int mulF = 4; //!< weights per cycle per PE
    int mulI = 4; //!< activations per cycle per PE
    bool stellarGenerated = false;

    /** Pipeline-drain cycles per input-channel group (Stellar only). */
    int stellarGroupDrain = 30;

    /** Fractional slowdown of every group from the global start/stall
     *  skew across the 64-PE array (Stellar only). */
    double stellarSyncFraction = 0.06;

    /** Probability a cartesian-product output bank-conflicts. */
    double bankConflictRate = 0.08;
};

/** One convolution layer with measured sparsity. */
struct ScnnLayer
{
    const char *name = "";
    std::int64_t inChannels = 0;
    std::int64_t outChannels = 0;
    std::int64_t kernel = 0;     //!< square kernel size
    std::int64_t outSize = 0;    //!< square output feature-map size
    double weightDensity = 1.0;
    double activationDensity = 1.0;
};

/** Result of simulating one layer. */
struct ScnnResult
{
    std::int64_t cycles = 0;
    std::int64_t multiplies = 0; //!< useful (nonzero x nonzero) products
    double utilization = 0.0;    //!< multiplies / (cycles * peak rate)
};

/** Simulate one layer; deterministic per (layer, seed). */
ScnnResult simulateScnnLayer(const ScnnConfig &config,
                             const ScnnLayer &layer, std::uint64_t seed);

} // namespace stellar::sim

#endif // STELLAR_SIM_SCNN_HPP
