/**
 * @file
 * Cycle-level model of an OuterSPACE-like outer-product SpGEMM
 * accelerator (Section VI-C, Fig 16b).
 *
 * Execution has two phases:
 *  - multiply: stream A (CSC) and B (CSR) in, compute outer products,
 *    and *scatter* partial-sum vectors to DRAM. Each scattered vector is
 *    reached through a pointer that must itself be read from DRAM first.
 *  - merge: *gather* the scattered partial vectors back (pointer loads
 *    again), merge them, and write the final CSR result.
 *
 * The pointer traffic is under 10% of total bytes but, through the DMA's
 * new-request rate limit, dominated the initial Stellar-generated
 * accelerator's runtime (1.42 GFLOP/s vs the paper's 2.9); raising the
 * DMA to 16 independent requests per cycle recovered 2.1 GFLOP/s.
 */

#ifndef STELLAR_SIM_OUTERSPACE_HPP
#define STELLAR_SIM_OUTERSPACE_HPP

#include <cstdint>

#include "sim/dram.hpp"
#include "sparse/matrix.hpp"
#include "sparse/spgemm.hpp"

namespace stellar::sim
{

/** OuterSPACE-like accelerator configuration. */
struct OuterSpaceConfig
{
    int multipliers = 256;    //!< parallel multiply lanes
    int mergeLanes = 64;      //!< merge-phase lanes
    double freqGhz = 1.5;     //!< OuterSPACE's clock

    /** Work groups the multiply phase schedules across (PE tiles). */
    int workGroups = 16;

    /** Listing 3-style adjacent-wave work sharing between the groups
     *  (Fig 6). Off, every wave waits for its slowest group. */
    bool loadBalanced = true;

    /** HBM-class memory, as in the OuterSPACE evaluation. */
    OuterSpaceConfig() { dram.bytesPerCycle = 56; }

    DramConfig dram;
    DmaConfig dma;            //!< reqsPerCycle = 1 default, 16 improved
};

/** Result of one SpGEMM run. */
struct OuterSpaceResult
{
    std::int64_t multiplyPhaseCycles = 0;
    std::int64_t mergePhaseCycles = 0;
    std::int64_t cycles = 0;
    std::int64_t multiplies = 0;
    std::int64_t dramBytes = 0;
    std::int64_t pointerRequests = 0;
    std::int64_t pointerStallCycles = 0;
    std::int64_t balancerShifts = 0; //!< runtime space-time biases applied
    double multiplyUtilization = 0.0;

    /** 2 * multiplies / time (the paper's Fig 16b metric). */
    double gflops(double freq_ghz) const;
};

/** Simulate C = A * A (the squaring workload OuterSPACE reports). */
OuterSpaceResult simulateOuterSpace(const OuterSpaceConfig &config,
                                    const sparse::CsrMatrix &a);

} // namespace stellar::sim

#endif // STELLAR_SIM_OUTERSPACE_HPP
