/**
 * @file
 * Load-balancer simulation (Section III-D / IV-E, Fig 6).
 *
 * Models the sparse input-stationary matmul array of Fig 4 executing an
 * imbalanced B matrix: array row k processes the nonzeros of B's row k.
 * Without balancing, every wave of rows waits for its longest member.
 * With a Listing 3-style shift, idle rows apply a space-time bias
 * (Eq. 2) and take work from the *next* wave's corresponding row.
 */

#ifndef STELLAR_SIM_BALANCE_HPP
#define STELLAR_SIM_BALANCE_HPP

#include <cstdint>
#include <vector>

#include "balance/shift.hpp"

namespace stellar::sim
{

/** Result of one load-balanced execution. */
struct BalanceResult
{
    std::int64_t cycles = 0;
    std::int64_t work = 0;       //!< total useful operations
    double utilization = 0.0;    //!< work / (cycles * rows)
    std::int64_t shiftsApplied = 0; //!< runtime space-time biases applied
};

/**
 * Execute `row_work[k]` units of work on an array with `rows` physical
 * rows. Rows are processed in waves of `rows` consecutive work items.
 * When `balanced` is set, a row that finishes its wave early steals the
 * matching row of the next wave (adjacent-wave sharing, Fig 6).
 */
BalanceResult simulateRowWaves(const std::vector<std::int64_t> &row_work,
                               int rows, bool balanced);

/**
 * Fine-grained variant (Listing 4 / Fig 10b): any idle lane may take
 * work from the global queue, at the cost of the pruned-conn hardware.
 */
BalanceResult simulatePerPe(const std::vector<std::int64_t> &row_work,
                            int rows);

} // namespace stellar::sim

#endif // STELLAR_SIM_BALANCE_HPP
