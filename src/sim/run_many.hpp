/**
 * @file
 * Parallel driver for independent simulation points.
 *
 * Every figure bench sweeps the same shape of loop: N independent
 * workload points (network layers, SuiteSparse matrices, sweep
 * configurations), each simulated in isolation, reduced in index order
 * into a printed table. runMany evaluates the points on a
 * util::ThreadPool and returns results slotted by index, so any
 * reduction that walks the vector front to back is byte-identical to
 * the serial loop at every thread count (tests/sim_parallel_test.cpp
 * holds every simulator and a figure-style reduction to that).
 *
 * Watchdogs: if the calling thread has a WatchdogScope installed, each
 * point runs under a *fresh* scope with the same stage, step budget,
 * and wall-clock deadline — on the caller's thread and on workers
 * alike. Budgets are therefore per-point in both modes, which is what
 * makes expiry behavior independent of the thread count (a shared
 * serial budget would expire at a point that depends on how much the
 * earlier points consumed, which no parallel schedule could
 * reproduce).
 *
 * Failures: every point runs to completion even if another throws —
 * in the serial path and the pool path (ThreadPool::parallelMapIsolated)
 * alike — and the lowest-index exception is rethrown afterwards, so
 * the surfaced error is identical at any thread count and a throwing
 * point never skips the per-point scope (and watchdog-credit refund)
 * of the points after it.
 */

#ifndef STELLAR_SIM_RUN_MANY_HPP
#define STELLAR_SIM_RUN_MANY_HPP

#include <cstddef>
#include <exception>
#include <string>
#include <type_traits>
#include <vector>

#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace stellar::sim
{

/**
 * Evaluate fn(i) for i in [0, n) on `threads` workers (<= 1 runs on the
 * calling thread; 0 is reserved for "hardware concurrency" to match
 * DseOptions::threads) and return the results in index order. T must be
 * default-constructible and movable.
 */
template <typename Fn>
auto
runMany(std::size_t n, std::size_t threads, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using T = std::invoke_result_t<Fn &, std::size_t>;

    // Clone the ambient watchdog configuration (if any) around every
    // point, so budgets are per-point and thread-count-independent.
    bool scoped = false;
    std::string stage;
    std::int64_t step_budget = 0, millis_budget = 0;
    if (util::Watchdog *dog = util::currentWatchdog()) {
        scoped = true;
        stage = dog->stage();
        step_budget = dog->budget();
        millis_budget = dog->millisBudget();
    }
    auto run_one = [&](std::size_t i) -> T {
        if (scoped) {
            util::WatchdogScope scope(stage, step_budget, millis_budget);
            return fn(i);
        }
        return fn(i);
    };

    if (threads == 1 || n <= 1) {
        std::vector<T> results(n);
        std::exception_ptr first_error;
        for (std::size_t i = 0; i < n; i++) {
            try {
                results[i] = run_one(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return results;
    }

    util::ThreadPool pool(threads);
    std::vector<std::exception_ptr> errors;
    std::vector<T> results =
            pool.parallelMapIsolated<T>(n, run_one, errors);
    for (const auto &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

} // namespace stellar::sim

#endif // STELLAR_SIM_RUN_MANY_HPP
