/**
 * @file
 * DRAM and DMA models (Section VI-C).
 *
 * The DRAM model charges every request a fixed access latency plus
 * bandwidth occupancy, with a bounded number of requests in flight. The
 * DMA issues up to `reqsPerCycle` *new* requests per cycle — the paper's
 * default Stellar DMA issues one, and the scatter-tolerant variant
 * sixteen; pointer-chased transfers (OuterSPACE partial-sum vectors)
 * must load a pointer before the dependent data request can issue, which
 * is exactly the control dependency that bottlenecked the initial
 * Stellar-generated OuterSPACE.
 */

#ifndef STELLAR_SIM_DRAM_HPP
#define STELLAR_SIM_DRAM_HPP

#include <cstdint>
#include <queue>
#include <vector>

namespace stellar::sim
{

/** DRAM timing parameters. */
struct DramConfig
{
    std::int64_t latency = 100;        //!< cycles from issue to data
    std::int64_t bytesPerCycle = 32;   //!< sustained bandwidth
    std::int64_t maxOutstanding = 64;  //!< in-flight request cap
    std::int64_t minBurstBytes = 64;   //!< a short read still burns a burst
};

/** A latency/bandwidth/occupancy DRAM model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig config) : config_(config) {}

    const DramConfig &config() const { return config_; }

    /** Requests still in flight at the given cycle. */
    std::int64_t outstanding(std::int64_t now) const;

    bool canAccept(std::int64_t now) const;

    /**
     * Issue a request at cycle `now`; returns its completion cycle.
     * Bandwidth is charged for at least one burst.
     */
    std::int64_t issue(std::int64_t now, std::int64_t bytes);

    /** Total bytes transferred so far. */
    std::int64_t bytesTransferred() const { return bytesTransferred_; }

    /** Earliest cycle at which new bandwidth is available. */
    std::int64_t bandwidthCursor() const { return bwCursor_; }

  private:
    DramConfig config_;
    std::int64_t bwCursor_ = 0;
    std::int64_t bytesTransferred_ = 0;
    mutable std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                                std::greater<>> inflight_;
};

/** DMA issue-rate configuration. */
struct DmaConfig
{
    int reqsPerCycle = 1;  //!< new independent requests per cycle

    /**
     * In-flight pointer-load contexts: how many pointer-chased transfers
     * the DMA can track between issuing a pointer load and issuing its
     * dependent data request. The paper's default DMA tracks few; the
     * 16-requests-per-cycle variant tracks 16x as many "independent"
     * requests, which is what recovers memory-level parallelism for
     * scattered accesses (Section VI-C).
     */
    int pointerContexts = 10;

    std::int64_t maxOutstanding = 64;

    /** A DMA issuing R requests/cycle with proportional contexts. */
    static DmaConfig
    withRate(int reqs_per_cycle)
    {
        DmaConfig config;
        config.reqsPerCycle = reqs_per_cycle;
        config.pointerContexts = 10 * reqs_per_cycle;
        return config;
    }
};

/** One DMA transfer chunk. */
struct TransferChunk
{
    std::int64_t bytes = 0;

    /** Pointer-chased: an 8-byte pointer load must complete before the
     *  data request can issue. */
    bool pointerChased = false;
};

/** Result of a simulated DMA transfer. */
struct TransferResult
{
    std::int64_t cycles = 0;
    std::int64_t requests = 0;
    std::int64_t bytes = 0;
    std::int64_t pointerStallCycles = 0;
};

/**
 * Cycle-accurate simulation of a DMA moving the given chunks through
 * DRAM. Chunks are independent of each other; within a pointer-chased
 * chunk the data request depends on its pointer load.
 */
TransferResult simulateTransfer(const DmaConfig &dma, DramModel &dram,
                                const std::vector<TransferChunk> &chunks,
                                std::int64_t start_cycle = 0);

/** Convenience: a contiguous streaming transfer of `bytes`. */
TransferResult simulateStream(const DmaConfig &dma, DramModel &dram,
                              std::int64_t bytes,
                              std::int64_t start_cycle = 0);

} // namespace stellar::sim

#endif // STELLAR_SIM_DRAM_HPP
