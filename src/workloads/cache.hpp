/**
 * @file
 * Process-wide memoization of synthesized workloads.
 *
 * Every figure/ablation bench and sim::runMany sweep feeds the same
 * synthesized inputs (SuiteSparse-profile CSR matrices, outer-product
 * partials, N:M structured tensors, DNN layer tables) to many design
 * points; before this cache each point re-synthesized them from
 * scratch. workloads::Cache memoizes the synthesis behind a canonical
 * WorkloadKey so a sweep pays for each distinct workload once,
 * regardless of thread count or sweep width.
 *
 * Contract (held by tests/cache_test.cpp):
 *  - *identity*: generators are deterministic per (parameters, seed),
 *    so a cached payload is byte-identical to a fresh synthesis, and
 *    every converted bench prints byte-identical output with the cache
 *    on, off (`STELLAR_WORKLOAD_CACHE=0` / `--no-cache`), and at any
 *    thread count;
 *  - *no aliasing*: keys collide only if their canonical strings are
 *    equal — the FNV-1a hash only picks a shard (util/memo.hpp);
 *  - *pointer stability*: payloads are immutable `shared_ptr<const T>`;
 *    eviction drops the cache's reference only, never a holder's;
 *  - *watchdog neutrality*: a miss synthesizes under WatchdogSuspend,
 *    so ambient per-point budgets charge identically on hit, miss, and
 *    disabled paths.
 *
 * Fault checkpoints `cache.lookup` / `cache.insert` let the injection
 * harness exercise miss and eviction races.
 */

#ifndef STELLAR_WORKLOADS_CACHE_HPP
#define STELLAR_WORKLOADS_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/scnn.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/structured.hpp"
#include "sparse/suitesparse.hpp"
#include "util/fault_inject.hpp"
#include "util/memo.hpp"
#include "util/watchdog.hpp"
#include "workloads/resnet.hpp"

namespace stellar::workloads
{

/**
 * Canonical identity of one synthesized workload: generator kind, every
 * shape/density parameter in builder order, and the seed. Doubles are
 * rendered hexfloat so distinct values never round together. Names and
 * string values must not contain '|' or '=' (the canonical-form
 * separators); the generators' fixed parameter names and profile names
 * satisfy this by construction.
 */
struct WorkloadKey
{
    std::string kind;
    std::vector<std::pair<std::string, std::string>> params;
    std::uint64_t seed = 0;

    explicit WorkloadKey(std::string kind_name, std::uint64_t seed_ = 0)
        : kind(std::move(kind_name)), seed(seed_)
    {
    }

    WorkloadKey &set(const std::string &name, const std::string &value);
    WorkloadKey &set(const std::string &name, std::int64_t value);
    WorkloadKey &set(const std::string &name, int value);
    WorkloadKey &set(const std::string &name, double value);

    /** The full cache key: kind, seed, then `name=value` pairs. */
    std::string canonical() const;

    /** FNV-1a 64 of canonical() (shard selection + diagnostics). */
    std::uint64_t hash() const;
};

/** Snapshot of cache counters. hits + misses == lookups always. */
struct CacheStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
    std::uint64_t entries = 0;

    /** Disk-spill tier counters (0 unless Cache::setSpill configured a
     *  directory). A reload is also counted as a hit. */
    std::uint64_t spills = 0;
    std::uint64_t reloads = 0;

    double
    hitRate() const
    {
        return lookups == 0 ? 0.0 : double(hits) / double(lookups);
    }
};

/**
 * The memoization layer. Use Cache::global() (shared across every
 * sweep in the process); standalone instances exist for tests.
 */
class Cache
{
  public:
    /** Default byte budget: generous for the reproduction sweeps but
     *  bounded, so long-lived processes cannot grow without limit. */
    static constexpr std::uint64_t kDefaultByteBudget = 256ull << 20;

    /** Budget value meaning "never evict". */
    static constexpr std::uint64_t kUnlimitedByteBudget = ~0ull;

    /**
     * A zero byte budget is a real (degenerate) configuration: nothing
     * is ever resident, every lookup is a counted miss, and every call
     * synthesizes privately — unlike setEnabled(false), the counters
     * still run, so tests can assert lookups == misses exactly.
     */
    explicit Cache(std::uint64_t byte_budget = kDefaultByteBudget)
        : memo_(byte_budget == kUnlimitedByteBudget ? 0 : byte_budget),
          zeroBudget_(byte_budget == 0)
    {
    }

    /** The process-wide instance. Honors STELLAR_WORKLOAD_CACHE=0. */
    static Cache &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Change the byte budget. 0 switches to the zero-residency mode
     *  (and drops current contents); kUnlimitedByteBudget disables
     *  eviction. */
    void
    setByteBudget(std::uint64_t bytes)
    {
        zeroBudget_.store(bytes == 0, std::memory_order_relaxed);
        memo_.setByteBudget(bytes == kUnlimitedByteBudget ? 0 : bytes);
        if (bytes == 0)
            memo_.clear();
    }

    void clear() { memo_.clear(); }

    /** Clear contents *and* counters (test isolation). */
    void reset() { memo_.reset(); }

    /**
     * Configure the disk-spill tier (util::MemoCache::setSpill): LRU
     * victims of spill-aware workloads serialize to checksummed files
     * under `dir` and reload on miss, so an eviction storm degrades to
     * warm-disk instead of re-synthesis. Empty `dir` disables;
     * `disk_byte_budget` of 0 leaves the directory unbounded. Corrupt
     * spill files are silently re-synthesized (treated as misses).
     */
    void
    setSpill(const std::string &dir, std::uint64_t disk_byte_budget = 0)
    {
        {
            std::lock_guard<std::mutex> lock(spillConfigMutex_);
            spillDir_ = dir;
            spillDiskBudget_ = disk_byte_budget;
        }
        memo_.setSpill(dir, disk_byte_budget);
    }

    /** The configured spill directory ("" when disabled). */
    std::string
    spillDir() const
    {
        std::lock_guard<std::mutex> lock(spillConfigMutex_);
        return spillDir_;
    }

    /** The configured spill disk budget (0 = unbounded). */
    std::uint64_t
    spillDiskBudget() const
    {
        std::lock_guard<std::mutex> lock(spillConfigMutex_);
        return spillDiskBudget_;
    }

    CacheStats
    stats() const
    {
        util::MemoStats m = memo_.stats();
        CacheStats s;
        s.lookups = m.lookups;
        s.hits = m.hits;
        s.misses = m.misses;
        s.evictions = m.evictions;
        s.bytes = m.bytes;
        s.entries = m.entries;
        s.spills = m.spills;
        s.reloads = m.reloads;
        return s;
    }

    /**
     * Return the cached payload for `key`, or synthesize it with
     * `make` (sized by `bytes_of`) and share it. With the cache
     * disabled every call synthesizes privately. The factory runs
     * outside all cache locks and under WatchdogSuspend. Workloads
     * that pass `spill` hooks participate in the disk-spill tier when
     * one is configured (setSpill): their LRU victims serialize to
     * disk and reload on miss instead of re-synthesizing.
     */
    template <typename T, typename MakeFn, typename BytesFn>
    std::shared_ptr<const T>
    getOrCreate(const WorkloadKey &key, MakeFn &&make, BytesFn &&bytes_of,
                const util::SpillHooks *spill = nullptr)
    {
        if (!enabled()) {
            util::WatchdogSuspend suspend;
            return std::make_shared<T>(make());
        }
        const std::string canonical = key.canonical();
        const std::uint64_t hash = util::fnv1a(canonical);
        util::fault::checkpoint("cache.lookup");
        if (auto resident = memo_.lookup(canonical, hash, spill))
            return std::static_pointer_cast<const T>(resident);
        std::shared_ptr<T> made;
        {
            // The miss synthesizes on behalf of every future consumer;
            // which sweep point misses first depends on the schedule,
            // so the ambient per-point budget is charged for none of it.
            util::WatchdogSuspend suspend;
            made = std::make_shared<T>(make());
        }
        if (zeroBudget_.load(std::memory_order_relaxed))
            return made; // zero residency: counted miss, never inserted
        util::fault::checkpoint("cache.insert");
        auto resident = memo_.insert(canonical, hash,
                                     std::shared_ptr<const void>(made),
                                     bytes_of(*made), spill);
        return std::static_pointer_cast<const T>(resident);
    }

  private:
    util::MemoCache memo_;
    std::atomic<bool> enabled_{true};
    std::atomic<bool> zeroBudget_{false};
    mutable std::mutex spillConfigMutex_;
    std::string spillDir_;
    std::uint64_t spillDiskBudget_ = 0;
};

/**
 * Decide cache enablement from a STELLAR_WORKLOAD_CACHE value. Only the
 * exact string "0" disables; nullptr (unset) and any other value —
 * including garbage like "", "00", "false", "off" — leave the cache
 * enabled, so a typo degrades to the safe default instead of silently
 * changing sweep behavior.
 */
bool cacheEnabledFromEnv(const char *value);

/** Key for a SuiteSparse-profile synthesis (all profile fields + seed). */
WorkloadKey suiteSparseKey(const sparse::MatrixProfile &profile,
                           std::uint64_t seed);

/** synthesize(profile, seed), memoized. */
std::shared_ptr<const sparse::CsrMatrix>
cachedSuiteSparse(const sparse::MatrixProfile &profile, std::uint64_t seed);

/** outerProductPartials(csrToCsc(m), m) of the synthesized matrix,
 *  memoized (the matrix itself is cached as its own entry). */
std::shared_ptr<const std::vector<sparse::PartialMatrix>>
cachedOuterPartials(const sparse::MatrixProfile &profile,
                    std::uint64_t seed);

/** generateStructured over a fresh Rng(seed), memoized. */
std::shared_ptr<const sparse::StructuredMatrix>
cachedStructured(std::int64_t rows, std::int64_t cols, int keep_n,
                 int group_m, std::uint64_t seed);

/** The pruned-AlexNet conv layer table (Fig 15 workload), memoized. */
std::shared_ptr<const std::vector<sim::ScnnLayer>> cachedAlexnetLayers();

/** ResNet50 matmul layers, full or representative subset, memoized. */
std::shared_ptr<const std::vector<MatmulLayer>>
cachedResnetLayers(bool representative);

/**
 * Spill (de)serializers for the three heavy synthesized payload
 * families (exact binary round-trip — a reloaded payload is
 * bit-identical to a fresh synthesis, which is what keeps bench stdout
 * byte-identical warm-disk vs. cold). Layer tables are cheap to
 * rebuild and deliberately have no hooks.
 */
const util::SpillHooks &csrSpillHooks();
const util::SpillHooks &partialsSpillHooks();
const util::SpillHooks &structuredSpillHooks();

/** One dseStatsReport-style summary line (no trailing newline). */
std::string cacheStatsReport(const CacheStats &stats);

/** The same counters as a compact JSON object (the serve daemon's
 *  stats endpoint embeds this). */
std::string cacheStatsJson(const CacheStats &stats);

} // namespace stellar::workloads

#endif // STELLAR_WORKLOADS_CACHE_HPP
