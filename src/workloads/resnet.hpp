/**
 * @file
 * ResNet50 layer shapes (Fig 16a / Fig 17 workload).
 *
 * Each convolution is lowered to the im2col matmul the Gemmini-like
 * accelerator executes: M = output pixels, K = kernel volume,
 * N = output channels, at batch size 1.
 */

#ifndef STELLAR_WORKLOADS_RESNET_HPP
#define STELLAR_WORKLOADS_RESNET_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace stellar::workloads
{

/** One layer lowered to a matmul. */
struct MatmulLayer
{
    std::string name;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;

    std::int64_t macs() const { return m * n * k; }
};

/** Every conv (plus the final FC) of ResNet50 at batch 1. */
const std::vector<MatmulLayer> &resnet50Layers();

/** A representative per-stage subset used for per-layer figures. */
std::vector<MatmulLayer> resnet50Representative();

} // namespace stellar::workloads

#endif // STELLAR_WORKLOADS_RESNET_HPP
