/**
 * @file
 * Pruned AlexNet layers with SCNN-style sparsity (Fig 15 workload).
 *
 * Weight densities follow the Han et al. pruned AlexNet that SCNN was
 * evaluated on (conv1 kept dense-ish, conv2-5 pruned to ~35-40%);
 * activation densities approximate the post-ReLU statistics SCNN
 * reports. Both are documented approximations: the figure's claim is
 * about *relative* PE utilization of handwritten vs generated hardware,
 * which depends only on these statistics.
 */

#ifndef STELLAR_WORKLOADS_ALEXNET_HPP
#define STELLAR_WORKLOADS_ALEXNET_HPP

#include <vector>

#include "sim/scnn.hpp"

namespace stellar::workloads
{

/** The five convolution layers of pruned AlexNet. */
const std::vector<sim::ScnnLayer> &alexnetConvLayers();

} // namespace stellar::workloads

#endif // STELLAR_WORKLOADS_ALEXNET_HPP
