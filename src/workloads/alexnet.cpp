#include "workloads/alexnet.hpp"

namespace stellar::workloads
{

const std::vector<sim::ScnnLayer> &
alexnetConvLayers()
{
    static const std::vector<sim::ScnnLayer> layers = {
        // name, inC, outC, kernel, outSize, weightDensity, actDensity
        {"conv1", 3, 96, 11, 55, 0.84, 1.00},
        {"conv2", 96, 256, 5, 27, 0.38, 0.49},
        {"conv3", 256, 384, 3, 13, 0.35, 0.39},
        {"conv4", 384, 384, 3, 13, 0.37, 0.43},
        {"conv5", 384, 256, 3, 13, 0.37, 0.44},
    };
    return layers;
}

} // namespace stellar::workloads
