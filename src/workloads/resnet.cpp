#include "workloads/resnet.hpp"

namespace stellar::workloads
{

namespace
{

std::vector<MatmulLayer>
buildResnet50()
{
    std::vector<MatmulLayer> layers;
    // Stem: 7x7/2 conv, 3 -> 64 channels, 224 -> 112.
    layers.push_back({"conv1", 112 * 112, 64, 7 * 7 * 3});

    struct Stage
    {
        const char *name;
        int blocks;
        std::int64_t width;    // bottleneck width
        std::int64_t spatial;  // output feature-map side
    };
    const Stage stages[] = {
        {"conv2", 3, 64, 56},
        {"conv3", 4, 128, 28},
        {"conv4", 6, 256, 14},
        {"conv5", 3, 512, 7},
    };

    std::int64_t in_channels = 64;
    for (const auto &stage : stages) {
        for (int block = 1; block <= stage.blocks; block++) {
            std::string base = std::string(stage.name) + "_" +
                               std::to_string(block);
            std::int64_t m = stage.spatial * stage.spatial;
            // 1x1 reduce.
            layers.push_back({base + "_1x1a", m, stage.width, in_channels});
            // 3x3.
            layers.push_back(
                    {base + "_3x3", m, stage.width, 9 * stage.width});
            // 1x1 expand.
            layers.push_back(
                    {base + "_1x1b", m, 4 * stage.width, stage.width});
            if (block == 1) {
                // Projection shortcut.
                layers.push_back({base + "_proj", m, 4 * stage.width,
                                  in_channels});
            }
            in_channels = 4 * stage.width;
        }
    }
    layers.push_back({"fc1000", 1, 1000, 2048});
    return layers;
}

} // namespace

const std::vector<MatmulLayer> &
resnet50Layers()
{
    static const std::vector<MatmulLayer> layers = buildResnet50();
    return layers;
}

std::vector<MatmulLayer>
resnet50Representative()
{
    std::vector<MatmulLayer> subset;
    for (const auto &layer : resnet50Layers()) {
        if (layer.name == "conv1" || layer.name == "conv2_1_3x3" ||
                layer.name == "conv3_2_1x1a" || layer.name == "conv3_4_3x3" ||
                layer.name == "conv4_3_3x3" || layer.name == "conv4_6_1x1b" ||
                layer.name == "conv5_1_3x3" || layer.name == "conv5_3_1x1b" ||
                layer.name == "fc1000") {
            subset.push_back(layer);
        }
    }
    return subset;
}

} // namespace stellar::workloads
