#include "workloads/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sparse/matrix.hpp"
#include "util/strings.hpp"
#include "workloads/alexnet.hpp"

namespace stellar::workloads
{

namespace
{

/** Exact hexfloat rendering, so 0.35 and 0.35000000001 never alias. */
std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

std::uint64_t
vectorBytes(std::size_t count, std::size_t element)
{
    return std::uint64_t(count) * std::uint64_t(element);
}

std::uint64_t
csrBytes(const sparse::CsrMatrix &m)
{
    return sizeof(sparse::CsrMatrix) +
           vectorBytes(m.rowPtr().size(), sizeof(std::int64_t)) +
           vectorBytes(m.colIdx().size(), sizeof(std::int64_t)) +
           vectorBytes(m.values().size(), sizeof(double));
}

std::uint64_t
partialsBytes(const std::vector<sparse::PartialMatrix> &partials)
{
    std::uint64_t bytes = vectorBytes(partials.size(),
                                      sizeof(sparse::PartialMatrix));
    for (const auto &partial : partials) {
        bytes += vectorBytes(partial.rowIds.size(), sizeof(std::int64_t));
        bytes += vectorBytes(partial.rowFibers.size(),
                             sizeof(sparse::Fiber));
        for (const auto &fiber : partial.rowFibers) {
            bytes += vectorBytes(fiber.coords.size(),
                                 sizeof(std::int64_t));
            bytes += vectorBytes(fiber.values.size(), sizeof(double));
        }
    }
    return bytes;
}

std::uint64_t
structuredBytes(const sparse::StructuredMatrix &m)
{
    return sizeof(sparse::StructuredMatrix) +
           vectorBytes(m.values.size(), sizeof(double)) +
           vectorBytes(m.selectors.size(), sizeof(std::uint8_t));
}

} // namespace

WorkloadKey &
WorkloadKey::set(const std::string &name, const std::string &value)
{
    params.emplace_back(name, value);
    return *this;
}

WorkloadKey &
WorkloadKey::set(const std::string &name, std::int64_t value)
{
    return set(name, std::to_string(value));
}

WorkloadKey &
WorkloadKey::set(const std::string &name, int value)
{
    return set(name, std::to_string(value));
}

WorkloadKey &
WorkloadKey::set(const std::string &name, double value)
{
    return set(name, hexDouble(value));
}

std::string
WorkloadKey::canonical() const
{
    std::string text = kind;
    text += "|seed=";
    text += std::to_string(seed);
    for (const auto &[name, value] : params) {
        text += '|';
        text += name;
        text += '=';
        text += value;
    }
    return text;
}

std::uint64_t
WorkloadKey::hash() const
{
    return util::fnv1a(canonical());
}

bool
cacheEnabledFromEnv(const char *value)
{
    if (value == nullptr)
        return true;
    return !(value[0] == '0' && value[1] == '\0');
}

Cache &
Cache::global()
{
    // Leaked intentionally: sweep workers may hold payloads at exit.
    static Cache *cache = [] {
        auto *instance = new Cache();
        instance->setEnabled(
                cacheEnabledFromEnv(std::getenv("STELLAR_WORKLOAD_CACHE")));
        return instance;
    }();
    return *cache;
}

WorkloadKey
suiteSparseKey(const sparse::MatrixProfile &profile, std::uint64_t seed)
{
    WorkloadKey key("suitesparse", seed);
    key.set("name", profile.name)
            .set("rows", profile.rows)
            .set("cols", profile.cols)
            .set("nnz", profile.nnz)
            .set("pattern", int(profile.pattern))
            .set("rowSkew", profile.rowSkew);
    return key;
}

std::shared_ptr<const sparse::CsrMatrix>
cachedSuiteSparse(const sparse::MatrixProfile &profile, std::uint64_t seed)
{
    return Cache::global().getOrCreate<sparse::CsrMatrix>(
            suiteSparseKey(profile, seed),
            [&] { return sparse::synthesize(profile, seed); }, csrBytes);
}

std::shared_ptr<const std::vector<sparse::PartialMatrix>>
cachedOuterPartials(const sparse::MatrixProfile &profile,
                    std::uint64_t seed)
{
    WorkloadKey key = suiteSparseKey(profile, seed);
    key.kind = "outer-partials";
    return Cache::global().getOrCreate<std::vector<sparse::PartialMatrix>>(
            key,
            [&] {
                auto matrix = cachedSuiteSparse(profile, seed);
                return sparse::outerProductPartials(
                        sparse::csrToCsc(*matrix), *matrix);
            },
            partialsBytes);
}

std::shared_ptr<const sparse::StructuredMatrix>
cachedStructured(std::int64_t rows, std::int64_t cols, int keep_n,
                 int group_m, std::uint64_t seed)
{
    WorkloadKey key("structured-nm", seed);
    key.set("rows", rows)
            .set("cols", cols)
            .set("keepN", keep_n)
            .set("groupM", group_m);
    return Cache::global().getOrCreate<sparse::StructuredMatrix>(
            key,
            [&] {
                Rng rng(seed);
                return sparse::generateStructured(rng, rows, cols, keep_n,
                                                  group_m);
            },
            structuredBytes);
}

std::shared_ptr<const std::vector<sim::ScnnLayer>>
cachedAlexnetLayers()
{
    WorkloadKey key("alexnet-conv");
    return Cache::global().getOrCreate<std::vector<sim::ScnnLayer>>(
            key, [] { return alexnetConvLayers(); },
            [](const std::vector<sim::ScnnLayer> &layers) {
                return vectorBytes(layers.size(), sizeof(sim::ScnnLayer));
            });
}

std::shared_ptr<const std::vector<MatmulLayer>>
cachedResnetLayers(bool representative)
{
    WorkloadKey key("resnet50");
    key.set("subset", representative ? "representative" : "full");
    return Cache::global().getOrCreate<std::vector<MatmulLayer>>(
            key,
            [&] {
                return representative ? resnet50Representative()
                                      : resnet50Layers();
            },
            [](const std::vector<MatmulLayer> &layers) {
                std::uint64_t bytes =
                        vectorBytes(layers.size(), sizeof(MatmulLayer));
                for (const auto &layer : layers)
                    bytes += layer.name.size();
                return bytes;
            });
}

std::string
cacheStatsReport(const CacheStats &stats)
{
    std::ostringstream os;
    os << "workload cache: " << stats.lookups << " lookups ("
       << stats.hits << " hits, " << stats.misses << " misses, "
       << formatDouble(stats.hitRate() * 100.0, 1) << "% hit rate), "
       << stats.entries << " entries, "
       << formatDouble(double(stats.bytes) / 1024.0, 1)
       << " KiB resident, " << stats.evictions << " evictions";
    return os.str();
}

std::string
cacheStatsJson(const CacheStats &stats)
{
    std::string out = "{";
    out += "\"lookups\":" + std::to_string(stats.lookups);
    out += ",\"hits\":" + std::to_string(stats.hits);
    out += ",\"misses\":" + std::to_string(stats.misses);
    out += ",\"evictions\":" + std::to_string(stats.evictions);
    out += ",\"bytes\":" + std::to_string(stats.bytes);
    out += ",\"entries\":" + std::to_string(stats.entries);
    out += "}";
    return out;
}

} // namespace stellar::workloads
