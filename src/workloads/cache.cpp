#include "workloads/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sparse/matrix.hpp"
#include "util/strings.hpp"
#include "workloads/alexnet.hpp"

namespace stellar::workloads
{

namespace
{

/** Exact hexfloat rendering, so 0.35 and 0.35000000001 never alias. */
std::string
hexDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

std::uint64_t
vectorBytes(std::size_t count, std::size_t element)
{
    return std::uint64_t(count) * std::uint64_t(element);
}

std::uint64_t
csrBytes(const sparse::CsrMatrix &m)
{
    return sizeof(sparse::CsrMatrix) +
           vectorBytes(m.rowPtr().size(), sizeof(std::int64_t)) +
           vectorBytes(m.colIdx().size(), sizeof(std::int64_t)) +
           vectorBytes(m.values().size(), sizeof(double));
}

std::uint64_t
partialsBytes(const std::vector<sparse::PartialMatrix> &partials)
{
    std::uint64_t bytes = vectorBytes(partials.size(),
                                      sizeof(sparse::PartialMatrix));
    for (const auto &partial : partials) {
        bytes += vectorBytes(partial.rowIds.size(), sizeof(std::int64_t));
        bytes += vectorBytes(partial.rowFibers.size(),
                             sizeof(sparse::Fiber));
        for (const auto &fiber : partial.rowFibers) {
            bytes += vectorBytes(fiber.coords.size(),
                                 sizeof(std::int64_t));
            bytes += vectorBytes(fiber.values.size(), sizeof(double));
        }
    }
    return bytes;
}

std::uint64_t
structuredBytes(const sparse::StructuredMatrix &m)
{
    return sizeof(sparse::StructuredMatrix) +
           vectorBytes(m.values.size(), sizeof(double)) +
           vectorBytes(m.selectors.size(), sizeof(std::uint8_t));
}

// --- spill wire format -------------------------------------------------
//
// Little-endian fixed-width fields via memcpy (one platform, exact
// round-trip; doubles pass through their bit patterns untouched, so a
// reloaded payload is bit-identical to the synthesis it spilled from).
// Readers bounds-check every field and throw FatalError on damage —
// MemoCache::spillLoad catches anything and records a plain miss.

void
putU64(std::string &out, std::uint64_t value)
{
    char bytes[8];
    for (int i = 0; i < 8; i++)
        bytes[i] = char((value >> (8 * i)) & 0xff);
    out.append(bytes, 8);
}

void
putI64(std::string &out, std::int64_t value)
{
    putU64(out, std::uint64_t(value));
}

std::uint64_t
getU64(const std::string &text, std::size_t &at)
{
    if (at + 8 > text.size())
        throw FatalError("workload spill: truncated payload");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; i++)
        value |= std::uint64_t(std::uint8_t(text[at + std::size_t(i)]))
                 << (8 * i);
    at += 8;
    return value;
}

std::int64_t
getI64(const std::string &text, std::size_t &at)
{
    return std::int64_t(getU64(text, at));
}

/** Length guard: a damaged count must die by diagnostic, not by a
 *  multi-terabyte allocation. `element` is a lower bound on the bytes
 *  each element still to be read must occupy. */
std::size_t
getCount(const std::string &text, std::size_t &at, std::size_t element)
{
    std::uint64_t count = getU64(text, at);
    std::uint64_t remaining = text.size() - at;
    if (element == 0)
        element = 1;
    if (count > remaining / element)
        throw FatalError("workload spill: implausible element count");
    return std::size_t(count);
}

void
putI64Vec(std::string &out, const std::vector<std::int64_t> &values)
{
    putU64(out, values.size());
    for (std::int64_t value : values)
        putI64(out, value);
}

std::vector<std::int64_t>
getI64Vec(const std::string &text, std::size_t &at)
{
    std::size_t count = getCount(text, at, 8);
    std::vector<std::int64_t> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        values.push_back(getI64(text, at));
    return values;
}

void
putDoubleVec(std::string &out, const std::vector<double> &values)
{
    putU64(out, values.size());
    for (double value : values) {
        std::uint64_t bits;
        std::memcpy(&bits, &value, 8);
        putU64(out, bits);
    }
}

std::vector<double>
getDoubleVec(const std::string &text, std::size_t &at)
{
    std::size_t count = getCount(text, at, 8);
    std::vector<double> values;
    values.reserve(count);
    for (std::size_t i = 0; i < count; i++) {
        std::uint64_t bits = getU64(text, at);
        double value;
        std::memcpy(&value, &bits, 8);
        values.push_back(value);
    }
    return values;
}

void
expectTag(const std::string &text, std::size_t &at, const char *tag)
{
    std::size_t len = std::char_traits<char>::length(tag);
    if (text.compare(at, len, tag) != 0)
        throw FatalError("workload spill: wrong payload tag");
    at += len;
}

void
expectEnd(const std::string &text, std::size_t at)
{
    if (at != text.size())
        throw FatalError("workload spill: trailing bytes");
}

} // namespace

WorkloadKey &
WorkloadKey::set(const std::string &name, const std::string &value)
{
    params.emplace_back(name, value);
    return *this;
}

WorkloadKey &
WorkloadKey::set(const std::string &name, std::int64_t value)
{
    return set(name, std::to_string(value));
}

WorkloadKey &
WorkloadKey::set(const std::string &name, int value)
{
    return set(name, std::to_string(value));
}

WorkloadKey &
WorkloadKey::set(const std::string &name, double value)
{
    return set(name, hexDouble(value));
}

std::string
WorkloadKey::canonical() const
{
    std::string text = kind;
    text += "|seed=";
    text += std::to_string(seed);
    for (const auto &[name, value] : params) {
        text += '|';
        text += name;
        text += '=';
        text += value;
    }
    return text;
}

std::uint64_t
WorkloadKey::hash() const
{
    return util::fnv1a(canonical());
}

bool
cacheEnabledFromEnv(const char *value)
{
    if (value == nullptr)
        return true;
    return !(value[0] == '0' && value[1] == '\0');
}

Cache &
Cache::global()
{
    // Leaked intentionally: sweep workers may hold payloads at exit.
    static Cache *cache = [] {
        auto *instance = new Cache();
        instance->setEnabled(
                cacheEnabledFromEnv(std::getenv("STELLAR_WORKLOAD_CACHE")));
        return instance;
    }();
    return *cache;
}

const util::SpillHooks &
csrSpillHooks()
{
    static const util::SpillHooks hooks = {
            [](const std::shared_ptr<const void> &payload) {
                const auto &m = *std::static_pointer_cast<
                        const sparse::CsrMatrix>(payload);
                std::string out = "CSR1";
                putI64(out, m.rows());
                putI64(out, m.cols());
                putI64Vec(out, m.rowPtr());
                putI64Vec(out, m.colIdx());
                putDoubleVec(out, m.values());
                return out;
            },
            [](const std::string &body, std::uint64_t &bytes_out)
                    -> std::shared_ptr<const void> {
                std::size_t at = 0;
                expectTag(body, at, "CSR1");
                std::int64_t rows = getI64(body, at);
                std::int64_t cols = getI64(body, at);
                auto row_ptr = getI64Vec(body, at);
                auto col_idx = getI64Vec(body, at);
                auto values = getDoubleVec(body, at);
                expectEnd(body, at);
                // The constructor re-validates shape invariants; a
                // damaged-but-parseable body dies there, classified.
                auto matrix = std::make_shared<const sparse::CsrMatrix>(
                        rows, cols, std::move(row_ptr),
                        std::move(col_idx), std::move(values));
                bytes_out = csrBytes(*matrix);
                return matrix;
            },
    };
    return hooks;
}

const util::SpillHooks &
partialsSpillHooks()
{
    static const util::SpillHooks hooks = {
            [](const std::shared_ptr<const void> &payload) {
                const auto &partials = *std::static_pointer_cast<
                        const std::vector<sparse::PartialMatrix>>(
                        payload);
                std::string out = "PRT1";
                putU64(out, partials.size());
                for (const auto &partial : partials) {
                    putI64Vec(out, partial.rowIds);
                    putU64(out, partial.rowFibers.size());
                    for (const auto &fiber : partial.rowFibers) {
                        putI64Vec(out, fiber.coords);
                        putDoubleVec(out, fiber.values);
                    }
                }
                return out;
            },
            [](const std::string &body, std::uint64_t &bytes_out)
                    -> std::shared_ptr<const void> {
                std::size_t at = 0;
                expectTag(body, at, "PRT1");
                std::size_t count = getCount(body, at, 16);
                auto partials = std::make_shared<
                        std::vector<sparse::PartialMatrix>>();
                partials->reserve(count);
                for (std::size_t i = 0; i < count; i++) {
                    sparse::PartialMatrix partial;
                    partial.rowIds = getI64Vec(body, at);
                    std::size_t fibers = getCount(body, at, 16);
                    partial.rowFibers.reserve(fibers);
                    for (std::size_t f = 0; f < fibers; f++) {
                        sparse::Fiber fiber;
                        fiber.coords = getI64Vec(body, at);
                        fiber.values = getDoubleVec(body, at);
                        partial.rowFibers.push_back(std::move(fiber));
                    }
                    partials->push_back(std::move(partial));
                }
                expectEnd(body, at);
                bytes_out = partialsBytes(*partials);
                return std::shared_ptr<
                        const std::vector<sparse::PartialMatrix>>(
                        std::move(partials));
            },
    };
    return hooks;
}

const util::SpillHooks &
structuredSpillHooks()
{
    static const util::SpillHooks hooks = {
            [](const std::shared_ptr<const void> &payload) {
                const auto &m = *std::static_pointer_cast<
                        const sparse::StructuredMatrix>(payload);
                std::string out = "STM1";
                putI64(out, m.rows);
                putI64(out, m.cols);
                putI64(out, m.keepN);
                putI64(out, m.groupM);
                putDoubleVec(out, m.values);
                putU64(out, m.selectors.size());
                out.append(reinterpret_cast<const char *>(
                                   m.selectors.data()),
                           m.selectors.size());
                return out;
            },
            [](const std::string &body, std::uint64_t &bytes_out)
                    -> std::shared_ptr<const void> {
                std::size_t at = 0;
                expectTag(body, at, "STM1");
                auto matrix =
                        std::make_shared<sparse::StructuredMatrix>();
                matrix->rows = getI64(body, at);
                matrix->cols = getI64(body, at);
                matrix->keepN = int(getI64(body, at));
                matrix->groupM = int(getI64(body, at));
                matrix->values = getDoubleVec(body, at);
                std::size_t selectors = getCount(body, at, 1);
                matrix->selectors.assign(
                        reinterpret_cast<const std::uint8_t *>(
                                body.data() + at),
                        reinterpret_cast<const std::uint8_t *>(
                                body.data() + at + selectors));
                at += selectors;
                expectEnd(body, at);
                bytes_out = structuredBytes(*matrix);
                return std::shared_ptr<const sparse::StructuredMatrix>(
                        std::move(matrix));
            },
    };
    return hooks;
}

WorkloadKey
suiteSparseKey(const sparse::MatrixProfile &profile, std::uint64_t seed)
{
    WorkloadKey key("suitesparse", seed);
    key.set("name", profile.name)
            .set("rows", profile.rows)
            .set("cols", profile.cols)
            .set("nnz", profile.nnz)
            .set("pattern", int(profile.pattern))
            .set("rowSkew", profile.rowSkew);
    return key;
}

std::shared_ptr<const sparse::CsrMatrix>
cachedSuiteSparse(const sparse::MatrixProfile &profile, std::uint64_t seed)
{
    return Cache::global().getOrCreate<sparse::CsrMatrix>(
            suiteSparseKey(profile, seed),
            [&] { return sparse::synthesize(profile, seed); }, csrBytes,
            &csrSpillHooks());
}

std::shared_ptr<const std::vector<sparse::PartialMatrix>>
cachedOuterPartials(const sparse::MatrixProfile &profile,
                    std::uint64_t seed)
{
    WorkloadKey key = suiteSparseKey(profile, seed);
    key.kind = "outer-partials";
    return Cache::global().getOrCreate<std::vector<sparse::PartialMatrix>>(
            key,
            [&] {
                auto matrix = cachedSuiteSparse(profile, seed);
                return sparse::outerProductPartials(
                        sparse::csrToCsc(*matrix), *matrix);
            },
            partialsBytes, &partialsSpillHooks());
}

std::shared_ptr<const sparse::StructuredMatrix>
cachedStructured(std::int64_t rows, std::int64_t cols, int keep_n,
                 int group_m, std::uint64_t seed)
{
    WorkloadKey key("structured-nm", seed);
    key.set("rows", rows)
            .set("cols", cols)
            .set("keepN", keep_n)
            .set("groupM", group_m);
    return Cache::global().getOrCreate<sparse::StructuredMatrix>(
            key,
            [&] {
                Rng rng(seed);
                return sparse::generateStructured(rng, rows, cols, keep_n,
                                                  group_m);
            },
            structuredBytes, &structuredSpillHooks());
}

std::shared_ptr<const std::vector<sim::ScnnLayer>>
cachedAlexnetLayers()
{
    WorkloadKey key("alexnet-conv");
    return Cache::global().getOrCreate<std::vector<sim::ScnnLayer>>(
            key, [] { return alexnetConvLayers(); },
            [](const std::vector<sim::ScnnLayer> &layers) {
                return vectorBytes(layers.size(), sizeof(sim::ScnnLayer));
            });
}

std::shared_ptr<const std::vector<MatmulLayer>>
cachedResnetLayers(bool representative)
{
    WorkloadKey key("resnet50");
    key.set("subset", representative ? "representative" : "full");
    return Cache::global().getOrCreate<std::vector<MatmulLayer>>(
            key,
            [&] {
                return representative ? resnet50Representative()
                                      : resnet50Layers();
            },
            [](const std::vector<MatmulLayer> &layers) {
                std::uint64_t bytes =
                        vectorBytes(layers.size(), sizeof(MatmulLayer));
                for (const auto &layer : layers)
                    bytes += layer.name.size();
                return bytes;
            });
}

std::string
cacheStatsReport(const CacheStats &stats)
{
    std::ostringstream os;
    os << "workload cache: " << stats.lookups << " lookups ("
       << stats.hits << " hits, " << stats.misses << " misses, "
       << formatDouble(stats.hitRate() * 100.0, 1) << "% hit rate), "
       << stats.entries << " entries, "
       << formatDouble(double(stats.bytes) / 1024.0, 1)
       << " KiB resident, " << stats.evictions << " evictions";
    if (stats.spills > 0 || stats.reloads > 0)
        os << ", " << stats.spills << " spilled, " << stats.reloads
           << " reloaded";
    return os.str();
}

std::string
cacheStatsJson(const CacheStats &stats)
{
    std::string out = "{";
    out += "\"lookups\":" + std::to_string(stats.lookups);
    out += ",\"hits\":" + std::to_string(stats.hits);
    out += ",\"misses\":" + std::to_string(stats.misses);
    out += ",\"evictions\":" + std::to_string(stats.evictions);
    out += ",\"bytes\":" + std::to_string(stats.bytes);
    out += ",\"entries\":" + std::to_string(stats.entries);
    out += ",\"spills\":" + std::to_string(stats.spills);
    out += ",\"reloads\":" + std::to_string(stats.reloads);
    out += "}";
    return out;
}

} // namespace stellar::workloads
