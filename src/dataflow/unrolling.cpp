#include "dataflow/unrolling.hpp"

#include <algorithm>
#include <set>

#include "util/logging.hpp"

namespace stellar::dataflow
{

SpaceTimeTransform
fromUnrolling(const UnrollingChoice &choice, int num_indices)
{
    require(int(choice.spatialIterators.size()) == num_indices - 1,
            "an unrolling choice must spatially unroll all but one "
            "iterator (lower-dimensional arrays use bound-1 axes)");
    require(choice.temporalIterators.size() == 1,
            "exactly one temporal iterator is supported");

    std::set<int> seen;
    IntMatrix m(num_indices, num_indices);
    for (std::size_t axis = 0; axis < choice.spatialIterators.size();
            axis++) {
        int iterator = choice.spatialIterators[axis];
        require(iterator >= 0 && iterator < num_indices,
                "unknown iterator in unrolling choice");
        require(seen.insert(iterator).second,
                "iterator unrolled twice");
        m.at(int(axis), iterator) = 1;
    }
    int temporal = choice.temporalIterators[0];
    require(temporal >= 0 && temporal < num_indices,
            "unknown temporal iterator");
    require(seen.insert(temporal).second,
            "temporal iterator is also spatial");
    m.at(num_indices - 1, temporal) = 1;
    return SpaceTimeTransform(std::move(m), "unrolled");
}

bool
isExpressibleAsUnrolling(const SpaceTimeTransform &transform)
{
    // Every spatial axis must select exactly one iterator (up to sign),
    // and no iterator may appear on two axes.
    std::set<int> used;
    const auto &m = transform.matrix();
    for (int axis = 0; axis + 1 < m.rows(); axis++) {
        int selected = -1;
        for (int col = 0; col < m.cols(); col++) {
            std::int64_t v = m.at(axis, col);
            if (v == 0)
                continue;
            if (v != 1 && v != -1)
                return false; // scaled axes are not unrolling choices
            if (selected != -1)
                return false; // axis mixes two iterators
            selected = col;
        }
        if (selected == -1)
            return false; // degenerate axis
        if (!used.insert(selected).second)
            return false;
    }
    return true;
}

std::vector<UnrollingChoice>
allUnrollingChoices(int num_indices, int max_spatial)
{
    require(num_indices >= 2, "need at least two iterators");
    std::vector<UnrollingChoice> choices;
    // Pick the single temporal iterator, then order the rest spatially.
    for (int temporal = 0; temporal < num_indices; temporal++) {
        std::vector<int> spatial;
        for (int it = 0; it < num_indices; it++)
            if (it != temporal)
                spatial.push_back(it);
        if (int(spatial.size()) > max_spatial)
            continue;
        std::sort(spatial.begin(), spatial.end());
        do {
            UnrollingChoice choice;
            choice.spatialIterators = spatial;
            choice.temporalIterators = {temporal};
            choices.push_back(choice);
        } while (std::next_permutation(spatial.begin(), spatial.end()));
    }
    return choices;
}

} // namespace stellar::dataflow
