/**
 * @file
 * Automated dataflow enumeration — the design-space-exploration side of
 * "an automated design framework".
 *
 * Because a dataflow is just an invertible integer matrix (Section
 * III-B), the space of dataflows for a given functional spec can be
 * enumerated mechanically: all matrices with entries in a small range,
 * filtered to invertible and causal ones, deduplicated by the
 * space-time displacements they induce on the spec's recurrences (two
 * transforms that move every operand identically generate the same
 * array up to relabeling).
 *
 * The enumerator is a *stream*: `TransformStream` / `forEachTransform`
 * yield `(code, matrix, signature)` survivors in code order without
 * materializing the whole transform vector, so a DSE tier can score
 * candidates as the scan produces them with O(K) live state. Most
 * coefficient codes are sign/permutation-orbit duplicates of a smaller
 * code; the scan rejects those from coefficient structure alone (before
 * decode) and jumps whole non-canonical regions in O(1). See
 * docs/PARALLEL_DSE.md for the byte-identity contract and the orbit
 * argument.
 */

#ifndef STELLAR_DATAFLOW_ENUMERATE_HPP
#define STELLAR_DATAFLOW_ENUMERATE_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dataflow/transform.hpp"
#include "func/spec.hpp"

namespace stellar::dataflow
{

/** Constraints on the enumeration. */
struct EnumerateOptions
{
    std::int64_t minCoeff = -1;
    std::int64_t maxCoeff = 1;

    /** Reject dataflows where any operand moves more than this many PEs
     *  per hop (long wires; congestion). */
    std::int64_t maxHopLength = 2;

    /** Reject dataflows with combinational chains when false. */
    bool allowBroadcast = true;

    /** Cap on results (the space grows as (range)^(n^2)). */
    std::size_t limit = 4096;

    /**
     * Worker threads for the coefficient-code scan: 0 = hardware
     * concurrency, 1 = serial. The scan walks a deterministic chunk
     * schedule (independent of the thread count) and merges chunks in
     * code order, so the stream — matrices, dedup decisions, names, and
     * stats — is byte-identical to the serial scan at every thread
     * count, including `limit` early exit. (Small scans run serially
     * regardless.)
     */
    std::size_t threads = 0;

    /**
     * Skip coefficient codes that cannot be the smallest member of
     * their sign/permutation orbit. Negating or permuting *spatial*
     * rows of a transform preserves invertibility, causality, hop
     * length, and the dedup signature, so every non-canonical code that
     * would survive the filters is a signature duplicate of a smaller
     * canonical code — skipping it never changes the output, only
     * `EnumerateStats::orbitSkipped`. Sign canonicalization requires a
     * symmetric coefficient range (minCoeff == -maxCoeff); asymmetric
     * ranges canonicalize by row permutation only.
     */
    bool orbitCanonical = true;

    /**
     * Restrict the scan to shard `shardIndex` of `shardCount` equal
     * contiguous slices of the coefficient-code space (the same
     * `total*i/N` split the sharded oracle uses). `shardCount == 0`
     * means unsharded; `shardCount == 1` is byte-identical to
     * unsharded. Stats are range-relative: `codesTotal` stays the full
     * space, the other counters cover only this shard's slice, so
     * shard record files can be folded back into the single-process
     * accounting (src/accel/records.hpp).
     */
    std::int64_t shardIndex = 0;
    std::int64_t shardCount = 0;
};

/** Accounting for one enumeration scan (serial semantics at any thread
 *  count). Invariants: codesExamined == orbitSkipped + decoded and
 *  decoded == rejected + duplicates + yielded. */
struct EnumerateStats
{
    std::int64_t codesTotal = 0;    //!< range^(n^2), the full space
    std::int64_t codesExamined = 0; //!< codes covered before the stop
    std::int64_t orbitSkipped = 0;  //!< skipped without decoding
    std::int64_t decoded = 0;       //!< decoded and filtered
    std::int64_t rejected = 0;      //!< failed invertibility/causality/hops
    std::int64_t duplicates = 0;    //!< filtered by signature dedup
    std::int64_t yielded = 0;       //!< survivors produced
};

/** One survivor of the coefficient-code scan. */
struct EnumeratedTransform
{
    std::int64_t code = 0;  //!< the coefficient code it decodes from
    std::size_t index = 0;  //!< 0-based yield order (the "enumerated-N" N)
    SpaceTimeTransform transform;
    std::vector<std::int64_t> signature;

    /**
     * Serial-equivalent scan accounting through this survivor's code
     * (range-relative when sharded). A consumer that stops at this
     * yield — or a merge tool folding shard record files — can
     * reconstruct exactly the stats the serial scan would report here.
     * Invariant: examinedAfter == decodedAfter + orbit-skipped codes
     * and decodedAfter == rejectedAfter + duplicatesAfter + yields.
     */
    std::int64_t examinedAfter = 0;
    std::int64_t decodedAfter = 0;
    std::int64_t rejectedAfter = 0;
    std::int64_t duplicatesAfter = 0;
};

/**
 * Pull-style streaming enumerator. `next` yields survivors in code
 * order, byte-identical to the serial scan at any `threads`, without
 * materializing the transform vector. `stats()` is valid once `next`
 * has returned false (exhaustion or `limit`) or after `stop()`.
 */
class TransformStream
{
  public:
    TransformStream(const func::FunctionalSpec &spec,
                    const EnumerateOptions &options);
    ~TransformStream();
    TransformStream(TransformStream &&) noexcept;
    TransformStream &operator=(TransformStream &&) noexcept;

    /** Produce the next survivor; false when done (stats finalized). */
    bool next(EnumeratedTransform &out);

    /** Abandon the scan, finalizing stats at the last yielded code. */
    void stop();

    const EnumerateStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Return false from the sink to stop the scan early. */
using TransformSink = std::function<bool(const EnumeratedTransform &)>;

/**
 * Push-style wrapper over TransformStream: invoke `sink` for each
 * survivor in code order. When `stats` is non-null it receives the
 * scan accounting (serial semantics at any thread count).
 */
void forEachTransform(const func::FunctionalSpec &spec,
                      const EnumerateOptions &options,
                      const TransformSink &sink,
                      EnumerateStats *stats = nullptr);

/**
 * Enumerate causal, invertible space-time transforms for a functional
 * spec, deduplicated by their recurrence displacement signatures.
 * Materializing wrapper over the stream; keeps the historical cap on
 * spaces too large to materialize.
 */
std::vector<SpaceTimeTransform> enumerateTransforms(
        const func::FunctionalSpec &spec, const EnumerateOptions &options,
        EnumerateStats *stats = nullptr);

namespace detail
{

/**
 * The pre-streaming enumerator (serial early-exit scan + sharded scan),
 * kept verbatim as the differential oracle for the stream. Ignores
 * `options.orbitCanonical`; examines every code.
 */
std::vector<SpaceTimeTransform> enumerateTransformsOracle(
        const func::FunctionalSpec &spec, const EnumerateOptions &options);

/**
 * True when `code` is the canonical representative of its
 * sign/permutation orbit under `options` (always true when orbit
 * canonicalization is inactive for this spec/options combination).
 */
bool codeIsOrbitCanonical(const func::FunctionalSpec &spec,
                          const EnumerateOptions &options,
                          std::int64_t code);

/**
 * Decode one coefficient code and run the per-candidate filters.
 * Returns true when the code survives; fills `matrix`/`signature` when
 * non-null. Exposed for the fuzz harness's orbit oracle.
 */
bool decodeCandidate(const func::FunctionalSpec &spec,
                     const EnumerateOptions &options, std::int64_t code,
                     IntMatrix *matrix,
                     std::vector<std::int64_t> *signature);

/** range^(n^2) for this spec/options; fatal above the streaming cap. */
std::int64_t codeSpaceSize(const func::FunctionalSpec &spec,
                           const EnumerateOptions &options);

} // namespace detail

} // namespace stellar::dataflow

#endif // STELLAR_DATAFLOW_ENUMERATE_HPP
