/**
 * @file
 * Automated dataflow enumeration — the design-space-exploration side of
 * "an automated design framework".
 *
 * Because a dataflow is just an invertible integer matrix (Section
 * III-B), the space of dataflows for a given functional spec can be
 * enumerated mechanically: all matrices with entries in a small range,
 * filtered to invertible and causal ones, deduplicated by the
 * space-time displacements they induce on the spec's recurrences (two
 * transforms that move every operand identically generate the same
 * array up to relabeling).
 */

#ifndef STELLAR_DATAFLOW_ENUMERATE_HPP
#define STELLAR_DATAFLOW_ENUMERATE_HPP

#include <cstdint>
#include <vector>

#include "dataflow/transform.hpp"
#include "func/spec.hpp"

namespace stellar::dataflow
{

/** Constraints on the enumeration. */
struct EnumerateOptions
{
    std::int64_t minCoeff = -1;
    std::int64_t maxCoeff = 1;

    /** Reject dataflows where any operand moves more than this many PEs
     *  per hop (long wires; congestion). */
    std::int64_t maxHopLength = 2;

    /** Reject dataflows with combinational chains when false. */
    bool allowBroadcast = true;

    /** Cap on results (the space grows as (range)^(n^2)). */
    std::size_t limit = 4096;

    /**
     * Worker threads for the coefficient-code scan: 0 = hardware
     * concurrency, 1 = serial. The scan is sharded by contiguous code
     * ranges and the shards are merged in code order, so the output
     * vector — matrices, dedup decisions, and names — is byte-identical
     * to the serial scan at every thread count. (Small scans run
     * serially regardless; with a small `limit` the sharded scan may
     * inspect codes the serial early-exit would skip.)
     */
    std::size_t threads = 0;
};

/**
 * Enumerate causal, invertible space-time transforms for a functional
 * spec, deduplicated by their recurrence displacement signatures.
 */
std::vector<SpaceTimeTransform> enumerateTransforms(
        const func::FunctionalSpec &spec, const EnumerateOptions &options);

} // namespace stellar::dataflow

#endif // STELLAR_DATAFLOW_ENUMERATE_HPP
