#include "dataflow/transform.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::dataflow
{

SpaceTimeTransform::SpaceTimeTransform(IntMatrix matrix, std::string name)
    : matrix_(std::move(matrix)), name_(std::move(name))
{
    require(matrix_.isSquare(), "space-time transform must be square");
    require(matrix_.isInvertible(),
            "space-time transform must be invertible");
    inverse_ = matrix_.inverse();
}

IntVec
SpaceTimeTransform::apply(const IntVec &point) const
{
    return matrix_ * point;
}

IntVec
SpaceTimeTransform::spaceOf(const IntVec &point) const
{
    IntVec st = apply(point);
    st.pop_back();
    return st;
}

std::int64_t
SpaceTimeTransform::timeOf(const IntVec &point) const
{
    return apply(point).back();
}

std::optional<IntVec>
SpaceTimeTransform::invert(const IntVec &space_time) const
{
    FracVec solution = inverse_ * space_time;
    IntVec point(solution.size());
    for (std::size_t i = 0; i < solution.size(); i++) {
        if (!solution[i].isInteger())
            return std::nullopt;
        point[i] = solution[i].toInteger();
    }
    return point;
}

SpaceTimeDelta
SpaceTimeTransform::deltaOf(const IntVec &recurrence_diff) const
{
    IntVec st = matrix_ * recurrence_diff;
    SpaceTimeDelta delta;
    delta.time = st.back();
    st.pop_back();
    delta.space = std::move(st);
    return delta;
}

bool
SpaceTimeTransform::isCausalFor(const func::FunctionalSpec &spec) const
{
    for (const auto &rec : spec.recurrences()) {
        if (vecIsZero(rec.diff))
            continue;
        if (deltaOf(rec.diff).time < 0)
            return false;
    }
    return true;
}

std::int64_t
SpaceTimeTransform::pipelineDepth(const IntVec &recurrence_diff) const
{
    return deltaOf(recurrence_diff).time;
}

std::string
SpaceTimeTransform::toString() const
{
    std::ostringstream os;
    os << "SpaceTimeTransform";
    if (!name_.empty())
        os << " \"" << name_ << "\"";
    os << "\n" << matrix_.toString();
    return os.str();
}

namespace dataflows
{

SpaceTimeTransform
inputStationary()
{
    // (i, j, k) -> (x, y, t) = (k, j, i + k). B(k, j) stays at PE (k, j);
    // A streams combinationally along j; partial sums (diff (0,0,1)) move
    // with (dx, dy, dt) = (1, 0, 1): vertically down, one register per hop.
    return SpaceTimeTransform(
            IntMatrix{{0, 0, 1}, {0, 1, 0}, {1, 0, 1}}, "input-stationary");
}

SpaceTimeTransform
outputStationary()
{
    // (i, j, k) -> (x, y, t) = (i, j, i + j + k). C(i, j) accumulates in
    // place at PE (i, j); A moves right and B moves down, one register per
    // hop each.
    return SpaceTimeTransform(
            IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}, "output-stationary");
}

SpaceTimeTransform
hexagonal()
{
    // All three iterators spatially unrolled onto a 2-D plane (det = 3):
    // each variable moves along a distinct hexagonal direction with short
    // wires, as in Bekakos et al.
    return SpaceTimeTransform(
            IntMatrix{{1, 0, -1}, {0, 1, -1}, {1, 1, 1}}, "hexagonal");
}

SpaceTimeTransform
inputStationaryPipelined(std::int64_t extra_time)
{
    // Adding j to the time row inserts `extra_time` pipeline registers
    // along the horizontal (A-streaming) axis of the input-stationary
    // array: Fig 3's more/less aggressively pipelined variants.
    IntMatrix m{{0, 0, 1}, {0, 1, 0}, {1, extra_time, 1}};
    return SpaceTimeTransform(std::move(m),
            "input-stationary-pipelined-" + std::to_string(extra_time));
}

} // namespace dataflows

} // namespace stellar::dataflow
