/**
 * @file
 * Space-time transforms (Section III-B).
 *
 * A dataflow is a linear transformation T from the tensor iteration space
 * to physical space-time: T * (i, j, k)^T = (x, y, t)^T. The last row of T
 * is the time axis; the remaining rows are spatial axes. T must be
 * invertible so PEs can recover their tensor iterators from their physical
 * coordinates and time counter (Fig 11), and it must be causal: every
 * uniform recurrence must move data forward (or sideways) in time.
 */

#ifndef STELLAR_DATAFLOW_TRANSFORM_HPP
#define STELLAR_DATAFLOW_TRANSFORM_HPP

#include <optional>
#include <string>
#include <vector>

#include "func/spec.hpp"
#include "util/int_matrix.hpp"

namespace stellar::dataflow
{

/** The space-time displacement of a recurrence under a transform. */
struct SpaceTimeDelta
{
    IntVec space;       //!< per-spatial-axis displacement
    std::int64_t time;  //!< timestep displacement (pipeline depth)
};

/**
 * An invertible space-time transform. The wrapped matrix is square with
 * one row per physical dimension; by convention the final row maps to
 * time and the others to space.
 */
class SpaceTimeTransform
{
  public:
    SpaceTimeTransform() = default;
    explicit SpaceTimeTransform(IntMatrix matrix, std::string name = "");

    const IntMatrix &matrix() const { return matrix_; }
    const std::string &name() const { return name_; }

    int dims() const { return matrix_.rows(); }
    int spaceDims() const { return matrix_.rows() - 1; }

    /** Apply T to an iteration-space point; returns (space..., time). */
    IntVec apply(const IntVec &point) const;

    /** The spatial part of apply(). */
    IntVec spaceOf(const IntVec &point) const;

    /** The time part of apply(). */
    std::int64_t timeOf(const IntVec &point) const;

    /** Exact inverse, used inside PEs to recover tensor iterators. */
    const FracMatrix &inverse() const { return inverse_; }

    /**
     * Recover the iteration-space point from space-time coordinates;
     * nullopt when the rational solution is not integral (the space-time
     * position corresponds to no iteration point).
     */
    std::optional<IntVec> invert(const IntVec &space_time) const;

    /** The space/time displacement induced on a recurrence direction. */
    SpaceTimeDelta deltaOf(const IntVec &recurrence_diff) const;

    /**
     * Causality check: every recurrence of the spec must have time
     * displacement >= 0 under this transform. A zero time displacement is
     * legal but means combinational (same-cycle) chaining; see
     * pipelineDepth().
     */
    bool isCausalFor(const func::FunctionalSpec &spec) const;

    /**
     * The pipeline depth (registers per hop) of a recurrence direction:
     * its time displacement. Fig 3's pipelining strategies differ exactly
     * in these values.
     */
    std::int64_t pipelineDepth(const IntVec &recurrence_diff) const;

    std::string toString() const;

  private:
    IntMatrix matrix_;
    FracMatrix inverse_;
    std::string name_;
};

/**
 * Named dataflows for the 3-index matmul iteration space (i, j, k), as in
 * Fig 2. All map onto a 2-D spatial array.
 */
namespace dataflows
{

/** Fig 2a: input(B)-stationary; partial sums travel down the array. */
SpaceTimeTransform inputStationary();

/** Fig 2b: output-stationary; A and B stream through, C stays in place. */
SpaceTimeTransform outputStationary();

/** Fig 2c: hexagonal; all three iterators unrolled onto a 2-D plane. */
SpaceTimeTransform hexagonal();

/**
 * Fig 3: variants of the input-stationary array with different pipelining
 * aggressiveness, produced by changing the time row of T. `extra_time`
 * adds registers along the j axis: 0 = combinational broadcast of A,
 * 1 = one register per hop, 2 = two registers per hop.
 */
SpaceTimeTransform inputStationaryPipelined(std::int64_t extra_time);

} // namespace dataflows

} // namespace stellar::dataflow

#endif // STELLAR_DATAFLOW_TRANSFORM_HPP
