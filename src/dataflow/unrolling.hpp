/**
 * @file
 * Unrolling-style dataflow classification (Section III-B's superset
 * claim).
 *
 * Prior dense frameworks describe dataflows by choosing which tensor
 * iterators are *spatially unrolled* and which are *temporally unrolled*
 * (Interstellar-style). Every such choice corresponds to a permutation-
 * structured space-time transform, so Stellar's transform language
 * covers all of them; the converse fails — e.g. the hexagonal dataflow
 * of Fig 2c maps all three iterators onto a 2-D plane, which no
 * unrolling assignment can express. Both directions are implemented
 * here and checked in tests.
 */

#ifndef STELLAR_DATAFLOW_UNROLLING_HPP
#define STELLAR_DATAFLOW_UNROLLING_HPP

#include <vector>

#include "dataflow/transform.hpp"

namespace stellar::dataflow
{

/** An Interstellar-style dataflow: which iterators unroll spatially (in
 *  order of spatial axes) and which run temporally. */
struct UnrollingChoice
{
    std::vector<int> spatialIterators;
    std::vector<int> temporalIterators;
};

/**
 * Build the space-time transform equivalent to an unrolling choice:
 * spatial iterator s_a becomes spatial axis a; the time row runs the
 * temporal iterators sequentially, skewed by the spatial ones so data
 * still arrives in causal order.
 */
SpaceTimeTransform fromUnrolling(const UnrollingChoice &choice,
                                 int num_indices);

/**
 * True when the transform is expressible as an unrolling choice: each
 * spatial axis must be (up to sign) a single-iterator selector. The
 * hexagonal dataflow returns false — the superset is strict.
 */
bool isExpressibleAsUnrolling(const SpaceTimeTransform &transform);

/** Every unrolling choice of the given iteration space (each iterator
 *  assigned spatial or temporal, at least one temporal). */
std::vector<UnrollingChoice> allUnrollingChoices(int num_indices,
                                                 int max_spatial);

} // namespace stellar::dataflow

#endif // STELLAR_DATAFLOW_UNROLLING_HPP
