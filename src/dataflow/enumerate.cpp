#include "dataflow/enumerate.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace stellar::dataflow
{

namespace
{

/** Below this many codes the sharded scan is not worth a pool. */
constexpr std::int64_t kShardThreshold = 4096;

/** A code that survived decode, invertibility, and causality checks. */
struct RawCandidate
{
    IntMatrix matrix;
    std::vector<std::int64_t> signature;
};

/**
 * Decode one coefficient code and run the per-candidate filters;
 * nullopt when rejected. Both the serial and the sharded scan call
 * this, which is what keeps their outputs byte-identical.
 */
std::optional<RawCandidate>
candidateAt(std::int64_t code, int n, std::int64_t min_coeff,
            std::int64_t range,
            const std::vector<func::Recurrence> &recurrences,
            const EnumerateOptions &options)
{
    IntMatrix m(n, n);
    std::int64_t rest = code;
    for (int r = 0; r < n; r++) {
        for (int c = 0; c < n; c++) {
            m.at(r, c) = min_coeff + rest % range;
            rest /= range;
        }
    }
    if (!m.isInvertible())
        return std::nullopt;

    // Causality + wiring constraints over the recurrences.
    std::vector<IntVec> displacements;
    for (const auto &rec : recurrences) {
        IntVec st = m * rec.diff;
        std::int64_t dt = st.back();
        if (dt < 0 || (dt == 0 && !options.allowBroadcast))
            return std::nullopt;
        std::int64_t hops = 0;
        for (std::size_t axis = 0; axis + 1 < st.size(); axis++)
            hops += st[axis] < 0 ? -st[axis] : st[axis];
        if (hops > options.maxHopLength)
            return std::nullopt;
        displacements.push_back(std::move(st));
    }

    // Canonical signature modulo spatial-axis permutation and
    // reflection: per-axis columns of |displacement|, sorted, plus
    // the time displacements.
    RawCandidate candidate;
    candidate.matrix = std::move(m);
    if (!displacements.empty()) {
        std::size_t dims = displacements[0].size();
        std::vector<IntVec> columns;
        for (std::size_t axis = 0; axis + 1 < dims; axis++) {
            IntVec column;
            for (const auto &st : displacements) {
                std::int64_t v = st[axis];
                column.push_back(v < 0 ? -v : v);
            }
            columns.push_back(std::move(column));
        }
        std::sort(columns.begin(), columns.end());
        for (const auto &column : columns)
            candidate.signature.insert(candidate.signature.end(),
                                       column.begin(), column.end());
        for (const auto &st : displacements)
            candidate.signature.push_back(st.back());
    }
    return candidate;
}

} // namespace

std::vector<SpaceTimeTransform>
enumerateTransforms(const func::FunctionalSpec &spec,
                    const EnumerateOptions &options)
{
    int n = spec.numIndices();
    require(n >= 1 && n <= 4,
            "transform enumeration supports 1 to 4 iterators");
    std::int64_t range = options.maxCoeff - options.minCoeff + 1;
    require(range >= 2, "coefficient range must span at least two values");

    auto recurrences = spec.recurrences();

    std::int64_t cells = std::int64_t(n) * n;
    std::int64_t total = 1;
    for (std::int64_t c = 0; c < cells; c++) {
        total *= range;
        if (total > 100000000) {
            fatal("transform enumeration space too large; narrow the "
                  "coefficient range");
        }
    }

    std::size_t threads = options.threads;
    if (threads == 0)
        threads = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());

    std::vector<SpaceTimeTransform> found;
    std::set<std::vector<std::int64_t>> signatures;

    if (threads <= 1 || total < kShardThreshold) {
        // Serial scan, with the early exit the sharded path cannot take.
        for (std::int64_t code = 0; code < total; code++) {
            auto candidate = candidateAt(code, n, options.minCoeff, range,
                                         recurrences, options);
            if (!candidate)
                continue;
            if (!signatures.insert(candidate->signature).second)
                continue; // same displacement structure as before
            found.emplace_back(std::move(candidate->matrix),
                               "enumerated-" +
                                       std::to_string(found.size()));
            if (found.size() >= options.limit)
                break;
        }
        return found;
    }

    // Sharded scan: contiguous code ranges, one survivor list per
    // shard. Each shard dedups locally (keeping the first code of every
    // signature, exactly what the global merge would keep), then the
    // merge walks shards in code order against the global signature
    // set, so names, dedup winners, and the result vector match the
    // serial scan byte for byte.
    std::size_t shard_count =
            std::size_t(std::min<std::int64_t>(std::int64_t(threads) * 8,
                                               total));
    util::ThreadPool pool(threads);
    auto shards = pool.parallelMap<std::vector<RawCandidate>>(
            shard_count, [&](std::size_t shard) {
                std::int64_t lo = total * std::int64_t(shard) /
                                  std::int64_t(shard_count);
                std::int64_t hi = total * (std::int64_t(shard) + 1) /
                                  std::int64_t(shard_count);
                std::vector<RawCandidate> survivors;
                std::set<std::vector<std::int64_t>> local;
                for (std::int64_t code = lo; code < hi; code++) {
                    auto candidate = candidateAt(code, n, options.minCoeff,
                                                 range, recurrences,
                                                 options);
                    if (!candidate)
                        continue;
                    if (!local.insert(candidate->signature).second)
                        continue;
                    survivors.push_back(std::move(*candidate));
                }
                return survivors;
            });

    for (auto &shard : shards) {
        for (auto &candidate : shard) {
            if (!signatures.insert(candidate.signature).second)
                continue;
            found.emplace_back(std::move(candidate.matrix),
                               "enumerated-" +
                                       std::to_string(found.size()));
            if (found.size() >= options.limit)
                return found;
        }
    }
    return found;
}

} // namespace stellar::dataflow
