#include "dataflow/enumerate.hpp"

#include <algorithm>
#include <set>

#include "util/logging.hpp"

namespace stellar::dataflow
{

std::vector<SpaceTimeTransform>
enumerateTransforms(const func::FunctionalSpec &spec,
                    const EnumerateOptions &options)
{
    int n = spec.numIndices();
    require(n >= 1 && n <= 4,
            "transform enumeration supports 1 to 4 iterators");
    std::int64_t range = options.maxCoeff - options.minCoeff + 1;
    require(range >= 2, "coefficient range must span at least two values");

    auto recurrences = spec.recurrences();

    std::vector<SpaceTimeTransform> found;
    std::set<std::vector<std::int64_t>> signatures;

    std::int64_t cells = std::int64_t(n) * n;
    std::int64_t total = 1;
    for (std::int64_t c = 0; c < cells; c++) {
        total *= range;
        if (total > 100000000) {
            fatal("transform enumeration space too large; narrow the "
                  "coefficient range");
        }
    }

    for (std::int64_t code = 0; code < total; code++) {
        IntMatrix m(n, n);
        std::int64_t rest = code;
        for (int r = 0; r < n; r++) {
            for (int c = 0; c < n; c++) {
                m.at(r, c) = options.minCoeff + rest % range;
                rest /= range;
            }
        }
        if (!m.isInvertible())
            continue;

        // Causality + wiring constraints over the recurrences.
        bool ok = true;
        std::vector<IntVec> displacements;
        for (const auto &rec : recurrences) {
            IntVec st = m * rec.diff;
            std::int64_t dt = st.back();
            if (dt < 0 || (dt == 0 && !options.allowBroadcast)) {
                ok = false;
                break;
            }
            std::int64_t hops = 0;
            for (std::size_t axis = 0; axis + 1 < st.size(); axis++)
                hops += st[axis] < 0 ? -st[axis] : st[axis];
            if (hops > options.maxHopLength) {
                ok = false;
                break;
            }
            displacements.push_back(std::move(st));
        }
        if (!ok)
            continue;

        // Canonical signature modulo spatial-axis permutation and
        // reflection: per-axis columns of |displacement|, sorted, plus
        // the time displacements.
        std::vector<std::int64_t> signature;
        if (!displacements.empty()) {
            std::size_t dims = displacements[0].size();
            std::vector<IntVec> columns;
            for (std::size_t axis = 0; axis + 1 < dims; axis++) {
                IntVec column;
                for (const auto &st : displacements) {
                    std::int64_t v = st[axis];
                    column.push_back(v < 0 ? -v : v);
                }
                columns.push_back(std::move(column));
            }
            std::sort(columns.begin(), columns.end());
            for (const auto &column : columns)
                signature.insert(signature.end(), column.begin(),
                                 column.end());
            for (const auto &st : displacements)
                signature.push_back(st.back());
        }
        if (!signatures.insert(signature).second)
            continue; // same displacement structure as a previous find

        found.emplace_back(std::move(m),
                           "enumerated-" + std::to_string(found.size()));
        if (found.size() >= options.limit)
            break;
    }
    return found;
}

} // namespace stellar::dataflow
