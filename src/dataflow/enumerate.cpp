#include "dataflow/enumerate.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <future>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace stellar::dataflow
{

namespace
{

/** Below this many codes the sharded scan is not worth a pool. */
constexpr std::int64_t kShardThreshold = 4096;

int
checkedIndices(const func::FunctionalSpec &spec)
{
    int n = spec.numIndices();
    require(n >= 1 && n <= 4,
            "transform enumeration supports 1 to 4 iterators");
    return n;
}

/** Historical cap for the materializing enumerateTransforms(). */
constexpr std::int64_t kMaxMaterializedCodes = 100000000;

/** Hard cap on the streaming scan (keeps code arithmetic in int64). */
constexpr std::int64_t kMaxStreamCodes = 2000000000;

/** A code that survived decode, invertibility, and causality checks. */
struct RawCandidate
{
    IntMatrix matrix;
    std::vector<std::int64_t> signature;
};

/**
 * Decode one coefficient code and run the per-candidate filters;
 * nullopt when rejected. The oracle's serial and sharded scans both
 * call this, which is what keeps their outputs byte-identical.
 */
std::optional<RawCandidate>
candidateAt(std::int64_t code, int n, std::int64_t min_coeff,
            std::int64_t range,
            const std::vector<func::Recurrence> &recurrences,
            const EnumerateOptions &options)
{
    IntMatrix m(n, n);
    std::int64_t rest = code;
    for (int r = 0; r < n; r++) {
        for (int c = 0; c < n; c++) {
            m.at(r, c) = min_coeff + rest % range;
            rest /= range;
        }
    }
    if (!m.isInvertible())
        return std::nullopt;

    // Causality + wiring constraints over the recurrences.
    std::vector<IntVec> displacements;
    for (const auto &rec : recurrences) {
        IntVec st = m * rec.diff;
        std::int64_t dt = st.back();
        if (dt < 0 || (dt == 0 && !options.allowBroadcast))
            return std::nullopt;
        std::int64_t hops = 0;
        for (std::size_t axis = 0; axis + 1 < st.size(); axis++)
            hops += st[axis] < 0 ? -st[axis] : st[axis];
        if (hops > options.maxHopLength)
            return std::nullopt;
        displacements.push_back(std::move(st));
    }

    // Canonical signature modulo spatial-axis permutation and
    // reflection: per-axis columns of |displacement|, sorted, plus
    // the time displacements.
    RawCandidate candidate;
    candidate.matrix = std::move(m);
    if (!displacements.empty()) {
        std::size_t dims = displacements[0].size();
        std::vector<IntVec> columns;
        for (std::size_t axis = 0; axis + 1 < dims; axis++) {
            IntVec column;
            for (const auto &st : displacements) {
                std::int64_t v = st[axis];
                column.push_back(v < 0 ? -v : v);
            }
            columns.push_back(std::move(column));
        }
        std::sort(columns.begin(), columns.end());
        for (const auto &column : columns)
            candidate.signature.insert(candidate.signature.end(),
                                       column.begin(), column.end());
        for (const auto &st : displacements)
            candidate.signature.push_back(st.back());
    }
    return candidate;
}

/**
 * Derived scan geometry. A code is the mixed-radix encoding of the
 * matrix cells (row 0 least significant, the time row most
 * significant), so each row occupies one base-`rowBlock` digit:
 *
 *   code = t * B^m + sum_r s[r] * B^r,  B = range^n, m = n - 1,
 *
 * with s[r] the spatial-row blocks and t the time-row block. The orbit
 * group (negate/permute spatial rows) acts purely on the multiset
 * {s[r]}: negating a row maps its block b -> (B-1) - b when the
 * coefficient range is symmetric, permuting rows permutes blocks. The
 * orbit's minimal code therefore has every spatial block <= `cap` and
 * the blocks non-increasing from row 0 up (smallest values at the
 * largest weights) — which is a test on raw coefficient structure, no
 * decode needed, and lets the scan jump whole non-canonical regions.
 */
struct Geometry
{
    int n = 0;
    std::int64_t minCoeff = 0;
    std::int64_t range = 0;
    std::int64_t total = 0;    //!< range^(n^2)
    std::int64_t rowBlock = 0; //!< range^n (one row's digit base)
    int spatialRows = 0;       //!< n - 1
    bool canonical = false;    //!< orbit skipping active
    std::int64_t cap = 0;      //!< max canonical spatial block value
};

Geometry
geometryFor(int n, const EnumerateOptions &options)
{
    Geometry g;
    g.n = n;
    g.minCoeff = options.minCoeff;
    require(options.minCoeff < options.maxCoeff,
            "coefficient range must span at least two values");
    // Overflow-safe span: real span fits in uint64 whenever min < max.
    std::uint64_t span = std::uint64_t(options.maxCoeff) -
                         std::uint64_t(options.minCoeff);
    if (span >= std::uint64_t(kMaxStreamCodes)) {
        fatal("transform enumeration space too large; narrow the "
              "coefficient range");
    }
    g.range = std::int64_t(span) + 1;

    std::int64_t cells = std::int64_t(n) * n;
    g.total = 1;
    for (std::int64_t c = 0; c < cells; c++) {
        if (g.total > kMaxStreamCodes / g.range) {
            fatal("transform enumeration space too large; narrow the "
                  "coefficient range");
        }
        g.total *= g.range;
    }
    g.rowBlock = 1;
    for (int r = 0; r < n; r++)
        g.rowBlock *= g.range;

    g.spatialRows = n - 1;
    bool symmetric = options.minCoeff == -options.maxCoeff;
    // Sign flips need a symmetric range; permutations need >= 2 spatial
    // rows. With neither, every code is its own orbit.
    g.canonical = options.orbitCanonical && g.spatialRows >= 1 &&
                  (symmetric || g.spatialRows >= 2);
    g.cap = (g.canonical && symmetric) ? (g.rowBlock - 1) / 2
                                       : g.rowBlock - 1;
    return g;
}

/**
 * The smallest orbit-canonical code >= `code` (total when exhausted).
 * Canonical means every spatial block <= cap and, most-significant
 * spatial digit first, the blocks are non-decreasing.
 */
std::int64_t
nextCanonical(const Geometry &g, std::int64_t code)
{
    if (!g.canonical)
        return code;
    const int m = g.spatialRows;
    const std::int64_t B = g.rowBlock;

    // w[i] = spatial block at significance rank i (w[0] most
    // significant = row m-1's block).
    std::int64_t rest = code;
    std::array<std::int64_t, 4> w{};
    for (int r = 0; r < m; r++) {
        w[std::size_t(m - 1 - r)] = rest % B;
        rest /= B;
    }
    std::int64_t t = rest;

    std::int64_t floor_v = 0;
    int bad = -1;
    bool over_cap = false;
    for (int i = 0; i < m; i++) {
        std::int64_t v = w[std::size_t(i)];
        if (v > g.cap) {
            bad = i;
            over_cap = true;
            break;
        }
        if (v < floor_v) {
            bad = i;
            break;
        }
        floor_v = v;
    }
    if (bad < 0)
        return code;

    if (!over_cap) {
        // Raise position `bad` to the running floor; the minimal valid
        // suffix repeats that value.
        for (int j = bad; j < m; j++)
            w[std::size_t(j)] = floor_v;
    } else {
        // Position `bad` exceeded the cap: increment the deepest prior
        // position that can absorb a carry, minimal suffix after it.
        int p = bad - 1;
        while (p >= 0 && w[std::size_t(p)] + 1 > g.cap)
            p--;
        if (p < 0) {
            t++;
            if (t >= B)
                return g.total; // exhausted
            for (int j = 0; j < m; j++)
                w[std::size_t(j)] = 0;
        } else {
            w[std::size_t(p)]++;
            for (int j = p + 1; j < m; j++)
                w[std::size_t(j)] = w[std::size_t(p)];
        }
    }

    std::int64_t out = t;
    for (int i = 0; i < m; i++)
        out = out * B + w[std::size_t(i)];
    return out;
}

/**
 * Per-chunk scan scratch. Decodes into a flat cell array, computes the
 * determinant in closed form (n <= 4), and builds signatures into
 * reused buffers — the hot loop allocates only for survivors.
 */
struct Scanner
{
    const Geometry &g;
    const std::vector<func::Recurrence> &recurrences;
    const EnumerateOptions &options;
    std::array<std::int64_t, 16> cells{};
    std::vector<IntVec> columns;       //!< per-spatial-axis |st|, reused
    std::vector<std::int64_t> times;   //!< per-recurrence dt, reused
    std::vector<std::int64_t> signature;

    Scanner(const Geometry &geometry,
            const std::vector<func::Recurrence> &recs,
            const EnumerateOptions &opts)
        : g(geometry), recurrences(recs), options(opts)
    {
        columns.assign(std::size_t(g.n - 1 > 0 ? g.n - 1 : 0),
                       IntVec(recs.size(), 0));
        times.assign(recs.size(), 0);
    }

    /** Decode + filter `code`; true when it survives (signature set). */
    bool decode(std::int64_t code)
    {
        const int n = g.n;
        std::int64_t rest = code;
        for (int cell = 0; cell < n * n; cell++) {
            cells[std::size_t(cell)] = g.minCoeff + rest % g.range;
            rest /= g.range;
        }
        if (determinant() == 0)
            return false;

        const std::size_t recs = recurrences.size();
        for (std::size_t k = 0; k < recs; k++) {
            const auto &diff = recurrences[k].diff;
            std::int64_t dt = 0;
            std::int64_t hops = 0;
            for (int r = 0; r < n; r++) {
                const std::int64_t *row =
                        cells.data() + std::size_t(r) * std::size_t(n);
                std::int64_t v = 0;
                for (int c = 0; c < n; c++)
                    v += row[c] * diff[std::size_t(c)];
                if (r == n - 1) {
                    dt = v;
                } else {
                    std::int64_t av = v < 0 ? -v : v;
                    columns[std::size_t(r)][k] = av;
                    hops += av;
                }
            }
            if (dt < 0 || (dt == 0 && !options.allowBroadcast))
                return false;
            if (hops > options.maxHopLength)
                return false;
            times[k] = dt;
        }

        signature.clear();
        if (recs != 0) {
            std::sort(columns.begin(), columns.end());
            for (const auto &column : columns)
                signature.insert(signature.end(), column.begin(),
                                 column.end());
            signature.insert(signature.end(), times.begin(), times.end());
        }
        return true;
    }

    IntMatrix materialize() const
    {
        IntMatrix m(g.n, g.n);
        for (int r = 0; r < g.n; r++)
            for (int c = 0; c < g.n; c++)
                m.at(r, c) = cells[std::size_t(r) * std::size_t(g.n) +
                                   std::size_t(c)];
        return m;
    }

  private:
    std::int64_t determinant() const
    {
        const std::int64_t *a = cells.data();
        switch (g.n) {
        case 1:
            return a[0];
        case 2:
            return a[0] * a[3] - a[1] * a[2];
        case 3:
            return a[0] * (a[4] * a[8] - a[5] * a[7]) -
                   a[1] * (a[3] * a[8] - a[5] * a[6]) +
                   a[2] * (a[3] * a[7] - a[4] * a[6]);
        default: {
            auto det3 = [&](int c1, int c2, int c3) {
                return a[4 + c1] * (a[8 + c2] * a[12 + c3] -
                                    a[8 + c3] * a[12 + c2]) -
                       a[4 + c2] * (a[8 + c1] * a[12 + c3] -
                                    a[8 + c3] * a[12 + c1]) +
                       a[4 + c3] * (a[8 + c1] * a[12 + c2] -
                                    a[8 + c2] * a[12 + c1]);
            };
            return a[0] * det3(1, 2, 3) - a[1] * det3(0, 2, 3) +
                   a[2] * det3(0, 1, 3) - a[3] * det3(0, 1, 2);
        }
        }
    }
};

/**
 * One chunk-local survivor. The `*After` counters snapshot the chunk's
 * accounting through this survivor's code, so a `limit` stop can report
 * exactly the stats the serial scan would have at that code.
 */
struct ChunkSurvivor
{
    std::int64_t code = 0;
    IntMatrix matrix;
    std::vector<std::int64_t> signature;
    std::int64_t examinedAfter = 0; //!< codes of this chunk covered
    std::int64_t decodedAfter = 0;
    std::int64_t rejectedAfter = 0;
    std::int64_t duplicatesAfter = 0;
};

struct ChunkResult
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t decoded = 0;
    std::int64_t rejected = 0;
    std::int64_t duplicates = 0; //!< chunk-local signature duplicates
    std::vector<ChunkSurvivor> survivors;
};

/**
 * Scan [lo, hi), skipping non-canonical codes, dedup-ing locally by
 * signature (keeping the first code of each — exactly what the global
 * in-order merge keeps).
 */
ChunkResult
scanChunk(Scanner &scanner, const Geometry &g, std::int64_t lo,
          std::int64_t hi)
{
    ChunkResult res;
    res.lo = lo;
    res.hi = hi;
    std::set<std::vector<std::int64_t>> local;
    std::int64_t code = nextCanonical(g, lo);
    while (code < hi) {
        res.decoded++;
        if (scanner.decode(code)) {
            if (local.insert(scanner.signature).second) {
                ChunkSurvivor s;
                s.code = code;
                s.matrix = scanner.materialize();
                s.signature = scanner.signature;
                s.examinedAfter = code - lo + 1;
                s.decodedAfter = res.decoded;
                s.rejectedAfter = res.rejected;
                s.duplicatesAfter = res.duplicates;
                res.survivors.push_back(std::move(s));
            } else {
                res.duplicates++;
            }
        } else {
            res.rejected++;
        }
        if (code + 1 >= hi)
            break;
        code = nextCanonical(g, code + 1);
    }
    return res;
}

/**
 * Deterministic chunk schedule, independent of the thread count: early
 * chunks are small so tiny `limit`s stop after near-serial work, later
 * chunks grow geometrically to amortize merge overhead.
 */
std::vector<std::pair<std::int64_t, std::int64_t>>
chunkBounds(std::int64_t total)
{
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    std::int64_t lo = 0;
    std::int64_t size = kShardThreshold;
    while (lo < total) {
        std::int64_t hi = std::min(total, lo + size);
        out.emplace_back(lo, hi);
        lo = hi;
        size = std::min<std::int64_t>(size * 2, std::int64_t(1) << 21);
    }
    if (out.empty())
        out.emplace_back(0, 0);
    return out;
}

/**
 * Chunk schedule restricted to the options' shard slice: the bounds of
 * `chunkBounds(hi - lo)` shifted by `lo`, where [lo, hi) is slice
 * `shardIndex` of `shardCount` equal contiguous pieces of the full
 * space — the same `total*i/N` arithmetic as the sharded oracle, so
 * the N slices partition [0, total) exactly. The scan itself needs no
 * other change: `nextCanonical` works from any starting code.
 */
std::vector<std::pair<std::int64_t, std::int64_t>>
shardChunkBounds(const Geometry &g, const EnumerateOptions &options)
{
    if (options.shardCount <= 0)
        return chunkBounds(g.total);
    require(options.shardIndex >= 0 &&
                    options.shardIndex < options.shardCount,
            "enumeration shard index out of range");
    std::int64_t lo = g.total * options.shardIndex / options.shardCount;
    std::int64_t hi =
            g.total * (options.shardIndex + 1) / options.shardCount;
    auto out = chunkBounds(hi - lo);
    for (auto &bounds : out) {
        bounds.first += lo;
        bounds.second += lo;
    }
    return out;
}

} // namespace

struct TransformStream::Impl
{
    EnumerateOptions options;
    Geometry g;
    std::vector<func::Recurrence> recurrences;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    std::size_t nextToIssue = 0;
    std::size_t window = 0;
    Scanner scanner; //!< serial-path scratch

    ChunkResult current;
    std::size_t cursor = 0;
    bool haveCurrent = false;
    bool done = false;

    std::set<std::vector<std::int64_t>> signatures;
    // Totals over fully consumed chunks; merge-level duplicates are
    // tracked separately because they belong to the consuming walk.
    std::int64_t priorExamined = 0;
    std::int64_t priorDecoded = 0;
    std::int64_t priorRejected = 0;
    std::int64_t priorDuplicates = 0;
    std::int64_t mergeDuplicates = 0;
    // Serial-equivalent accounting at the last yielded code, for
    // `limit`/stop() finalization.
    std::int64_t lastExamined = 0;
    std::int64_t lastDecoded = 0;
    std::int64_t lastRejected = 0;
    std::int64_t lastDuplicates = 0;
    EnumerateStats stats;

    std::deque<std::future<ChunkResult>> inflight;
    // Declared last: destroyed first, so worker tasks referencing the
    // members above are joined/discarded before those members die.
    std::unique_ptr<util::ThreadPool> pool;

    Impl(const func::FunctionalSpec &spec, const EnumerateOptions &opts)
        : options(opts),
          g(geometryFor(checkedIndices(spec), opts)),
          recurrences(spec.recurrences()),
          chunks(shardChunkBounds(g, opts)),
          scanner(g, recurrences, options)
    {
        stats.codesTotal = g.total;
        std::size_t threads = options.threads;
        if (threads == 0)
            threads = std::max<std::size_t>(
                    1, std::thread::hardware_concurrency());
        if (threads > 1 && chunks.size() > 1) {
            window = threads * 2 + 2;
            pool = std::make_unique<util::ThreadPool>(threads);
        }
    }

    void issueChunk()
    {
        auto bounds = chunks[nextToIssue++];
        inflight.push_back(pool->submit([this, bounds]() {
            Scanner local(g, recurrences, options);
            return scanChunk(local, g, bounds.first, bounds.second);
        }));
    }

    bool fetchNextChunk()
    {
        if (pool) {
            while (inflight.size() < window && nextToIssue < chunks.size())
                issueChunk();
            if (inflight.empty())
                return false;
            current = inflight.front().get();
            inflight.pop_front();
            while (inflight.size() < window && nextToIssue < chunks.size())
                issueChunk();
        } else {
            if (nextToIssue >= chunks.size())
                return false;
            auto bounds = chunks[nextToIssue++];
            current = scanChunk(scanner, g, bounds.first, bounds.second);
        }
        cursor = 0;
        haveCurrent = true;
        return true;
    }

    void finalizeAtLastYield()
    {
        stats.codesExamined = lastExamined;
        stats.decoded = lastDecoded;
        stats.rejected = lastRejected;
        stats.duplicates = lastDuplicates;
        stats.orbitSkipped = stats.codesExamined - stats.decoded;
        done = true;
    }

    bool next(EnumeratedTransform &out)
    {
        if (done)
            return false;
        for (;;) {
            while (haveCurrent && cursor < current.survivors.size()) {
                ChunkSurvivor &s = current.survivors[cursor++];
                if (!signatures.insert(s.signature).second) {
                    mergeDuplicates++;
                    continue;
                }
                out.code = s.code;
                out.index = std::size_t(stats.yielded);
                out.signature = s.signature;
                out.transform = SpaceTimeTransform(
                        std::move(s.matrix),
                        "enumerated-" + std::to_string(out.index));
                stats.yielded++;
                lastExamined = priorExamined + s.examinedAfter;
                lastDecoded = priorDecoded + s.decodedAfter;
                lastRejected = priorRejected + s.rejectedAfter;
                lastDuplicates = priorDuplicates + s.duplicatesAfter +
                                 mergeDuplicates;
                out.examinedAfter = lastExamined;
                out.decodedAfter = lastDecoded;
                out.rejectedAfter = lastRejected;
                out.duplicatesAfter = lastDuplicates;
                if (std::uint64_t(stats.yielded) >=
                    std::uint64_t(options.limit))
                    finalizeAtLastYield();
                return true;
            }
            if (haveCurrent) {
                priorExamined += current.hi - current.lo;
                priorDecoded += current.decoded;
                priorRejected += current.rejected;
                priorDuplicates += current.duplicates;
                haveCurrent = false;
            }
            if (!fetchNextChunk()) {
                stats.codesExamined = priorExamined;
                stats.decoded = priorDecoded;
                stats.rejected = priorRejected;
                stats.duplicates = priorDuplicates + mergeDuplicates;
                stats.orbitSkipped = stats.codesExamined - stats.decoded;
                done = true;
                return false;
            }
        }
    }

    void stop()
    {
        if (done)
            return;
        if (stats.yielded > 0) {
            finalizeAtLastYield();
        } else {
            stats.codesExamined = 0;
            stats.orbitSkipped = 0;
            stats.decoded = 0;
            stats.rejected = 0;
            stats.duplicates = 0;
            done = true;
        }
    }
};

TransformStream::TransformStream(const func::FunctionalSpec &spec,
                                 const EnumerateOptions &options)
    : impl_(std::make_unique<Impl>(spec, options))
{
}

TransformStream::~TransformStream() = default;
TransformStream::TransformStream(TransformStream &&) noexcept = default;
TransformStream &
TransformStream::operator=(TransformStream &&) noexcept = default;

bool
TransformStream::next(EnumeratedTransform &out)
{
    return impl_->next(out);
}

void
TransformStream::stop()
{
    impl_->stop();
}

const EnumerateStats &
TransformStream::stats() const
{
    return impl_->stats;
}

void
forEachTransform(const func::FunctionalSpec &spec,
                 const EnumerateOptions &options, const TransformSink &sink,
                 EnumerateStats *stats)
{
    TransformStream stream(spec, options);
    EnumeratedTransform item;
    while (stream.next(item)) {
        if (!sink(item)) {
            stream.stop();
            break;
        }
    }
    if (stats)
        *stats = stream.stats();
}

std::vector<SpaceTimeTransform>
enumerateTransforms(const func::FunctionalSpec &spec,
                    const EnumerateOptions &options, EnumerateStats *stats)
{
    if (detail::codeSpaceSize(spec, options) > kMaxMaterializedCodes) {
        fatal("transform enumeration space too large; narrow the "
              "coefficient range");
    }
    std::vector<SpaceTimeTransform> found;
    forEachTransform(
            spec, options,
            [&](const EnumeratedTransform &item) {
                found.push_back(item.transform);
                return true;
            },
            stats);
    return found;
}

namespace detail
{

std::vector<SpaceTimeTransform>
enumerateTransformsOracle(const func::FunctionalSpec &spec,
                          const EnumerateOptions &options)
{
    int n = spec.numIndices();
    require(n >= 1 && n <= 4,
            "transform enumeration supports 1 to 4 iterators");
    std::int64_t range = options.maxCoeff - options.minCoeff + 1;
    require(range >= 2, "coefficient range must span at least two values");

    auto recurrences = spec.recurrences();

    std::int64_t cells = std::int64_t(n) * n;
    std::int64_t total = 1;
    for (std::int64_t c = 0; c < cells; c++) {
        total *= range;
        if (total > kMaxMaterializedCodes) {
            fatal("transform enumeration space too large; narrow the "
                  "coefficient range");
        }
    }

    std::size_t threads = options.threads;
    if (threads == 0)
        threads = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());

    std::vector<SpaceTimeTransform> found;
    std::set<std::vector<std::int64_t>> signatures;

    if (threads <= 1 || total < kShardThreshold) {
        // Serial scan, with the early exit the sharded path cannot take.
        for (std::int64_t code = 0; code < total; code++) {
            auto candidate = candidateAt(code, n, options.minCoeff, range,
                                         recurrences, options);
            if (!candidate)
                continue;
            if (!signatures.insert(candidate->signature).second)
                continue; // same displacement structure as before
            found.emplace_back(std::move(candidate->matrix),
                               "enumerated-" +
                                       std::to_string(found.size()));
            if (found.size() >= options.limit)
                break;
        }
        return found;
    }

    // Sharded scan: contiguous code ranges, one survivor list per
    // shard. Each shard dedups locally (keeping the first code of every
    // signature, exactly what the global merge would keep), then the
    // merge walks shards in code order against the global signature
    // set, so names, dedup winners, and the result vector match the
    // serial scan byte for byte.
    std::size_t shard_count =
            std::size_t(std::min<std::int64_t>(std::int64_t(threads) * 8,
                                               total));
    util::ThreadPool pool(threads);
    auto shards = pool.parallelMap<std::vector<RawCandidate>>(
            shard_count, [&](std::size_t shard) {
                std::int64_t lo = total * std::int64_t(shard) /
                                  std::int64_t(shard_count);
                std::int64_t hi = total * (std::int64_t(shard) + 1) /
                                  std::int64_t(shard_count);
                std::vector<RawCandidate> survivors;
                std::set<std::vector<std::int64_t>> local;
                for (std::int64_t code = lo; code < hi; code++) {
                    auto candidate = candidateAt(code, n, options.minCoeff,
                                                 range, recurrences,
                                                 options);
                    if (!candidate)
                        continue;
                    if (!local.insert(candidate->signature).second)
                        continue;
                    survivors.push_back(std::move(*candidate));
                }
                return survivors;
            });

    for (auto &shard : shards) {
        for (auto &candidate : shard) {
            if (!signatures.insert(candidate.signature).second)
                continue;
            found.emplace_back(std::move(candidate.matrix),
                               "enumerated-" +
                                       std::to_string(found.size()));
            if (found.size() >= options.limit)
                return found;
        }
    }
    return found;
}

bool
codeIsOrbitCanonical(const func::FunctionalSpec &spec,
                     const EnumerateOptions &options, std::int64_t code)
{
    Geometry g = geometryFor(checkedIndices(spec),
                             options);
    return nextCanonical(g, code) == code;
}

bool
decodeCandidate(const func::FunctionalSpec &spec,
                const EnumerateOptions &options, std::int64_t code,
                IntMatrix *matrix, std::vector<std::int64_t> *signature)
{
    Geometry g = geometryFor(checkedIndices(spec),
                             options);
    auto recurrences = spec.recurrences();
    Scanner scanner(g, recurrences, options);
    if (!scanner.decode(code))
        return false;
    if (matrix)
        *matrix = scanner.materialize();
    if (signature)
        *signature = scanner.signature;
    return true;
}

std::int64_t
codeSpaceSize(const func::FunctionalSpec &spec,
              const EnumerateOptions &options)
{
    return geometryFor(checkedIndices(spec), options)
            .total;
}

} // namespace detail

} // namespace stellar::dataflow
