/**
 * @file
 * Canonical functional specifications used throughout the paper.
 */

#ifndef STELLAR_FUNC_LIBRARY_HPP
#define STELLAR_FUNC_LIBRARY_HPP

#include "func/spec.hpp"

namespace stellar::func
{

/**
 * Listing 1: the matrix-multiplication specification
 *
 *   a(i, j.lowerBound, k) := A(i, k)
 *   b(i.lowerBound, j, k) := B(k, j)
 *   c(i, j, k.lowerBound) := 0
 *   a(i, j, k) := a(i, j-1, k)
 *   b(i, j, k) := b(i-1, j, k)
 *   c(i, j, k) := c(i, j, k-1) + a(i, j-1, k) * b(i-1, j, k)
 *   C(i, j)   := c(i, j, k.upperBound)
 */
FunctionalSpec matmulSpec();

/**
 * A two-way sorted-fiber merge used by the sparse-merger accelerators of
 * Section VI-D: two sorted coordinate/value streams are combined into one
 * sorted stream, summing values with equal coordinates. Expressed with
 * min/select data-dependent operations over stream heads.
 */
FunctionalSpec mergeSpec();

/** Element-wise matrix addition (simple two-operand reference spec). */
FunctionalSpec matAddSpec();

/**
 * A 2-D convolution over iterators (oh, ow, oc, ic) with the kernel
 * window unrolled into the reduction expression:
 *
 *   o(oh, ow, oc, ic) := o(oh, ow, oc, ic-1)
 *                      + sum_{kh, kw} W(oc, ic, kh, kw) * I(oh+kh, ow+kw, ic)
 *   O(oh, ow, oc)     := o(oh, ow, oc, ic.upperBound)
 *
 * This exercises iteration spaces beyond three indices (the SCNN- and
 * Gemmini-class convolution workloads of Section VI-A) while keeping
 * the reduction a single uniform recurrence along ic.
 */
FunctionalSpec convSpec(std::int64_t kernel_h, std::int64_t kernel_w);

} // namespace stellar::func

#endif // STELLAR_FUNC_LIBRARY_HPP
