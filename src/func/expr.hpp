/**
 * @file
 * Expression trees for Stellar's functional specification language
 * (Section III-A of the paper).
 *
 * A FunctionalSpec (see func/spec.hpp) is a set of assignments in a pure,
 * mutation-free "tensor iteration space". The right-hand sides of those
 * assignments are the Expr trees defined here: constants, tensor accesses,
 * arithmetic, comparisons, selects, and data-dependent (indirect) accesses
 * used by merging/sorting accelerators.
 */

#ifndef STELLAR_FUNC_EXPR_HPP
#define STELLAR_FUNC_EXPR_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stellar::func
{

/**
 * A coordinate expression inside a tensor access.
 *
 * Coordinates are normally affine in the tensor iterators (e.g. "j - 1").
 * Two special marker kinds implement the paper's boundary notation:
 *
 *  - LowerHalo ("x.lowerBound" on an LHS) denotes the halo position just
 *    *before* the iteration domain (coordinate -1), where external inputs
 *    enter the array.
 *  - UpperEdge ("x.upperBound" on an RHS) denotes the *last interior*
 *    position (coordinate bound-1), where outputs leave the array.
 *
 * With the iteration domain fixed to [0, bound) per index, this convention
 * makes Listing 1 of the paper compute an M*N*K matmul with exactly M*N*K
 * multiply-accumulates.
 */
struct IndexExpr
{
    enum class Kind { Affine, LowerHalo, UpperEdge };

    Kind kind = Kind::Affine;

    /** Index the marker applies to (halo kinds only). */
    int boundIndex = -1;

    /** Affine form: sum of coeffs[indexId] * index + constant. */
    std::map<int, std::int64_t> coeffs;
    std::int64_t constant = 0;

    bool isAffine() const { return kind == Kind::Affine; }

    /** True when this is exactly one iterator with coefficient 1. */
    bool isPlainIndex() const;

    /** The iterator id for a plain index; -1 otherwise. */
    int plainIndex() const;

    /** Evaluate given concrete iterator values and per-index bounds. */
    std::int64_t evaluate(const std::vector<std::int64_t> &index_values,
                          const std::vector<std::int64_t> &bounds) const;

    std::string toString(const std::vector<std::string> &index_names) const;

    bool operator==(const IndexExpr &other) const = default;
};

/** Make an affine IndexExpr that is just one iterator. */
IndexExpr makeIndexExpr(int index_id);

/** Make a constant IndexExpr. */
IndexExpr makeConstExpr(std::int64_t value);

class ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/** Operation kinds for expression-tree nodes. */
enum class ExprOp
{
    Constant,   //!< literal value
    Access,     //!< tensor access with affine coordinates
    Indirect,   //!< tensor access with a data-dependent coordinate
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Eq,
    Ne,
    Lt,
    Le,
    And,
    Or,
    Not,
    Select,     //!< operands: {cond, then, else}
};

/** A single node of an expression tree. Nodes are immutable once built. */
class ExprNode
{
  public:
    ExprOp op = ExprOp::Constant;

    /** Literal value (Constant nodes). */
    double value = 0.0;

    /** Tensor id (Access/Indirect nodes). */
    int tensor = -1;

    /** Coordinates (Access nodes; Indirect nodes use these where affine). */
    std::vector<IndexExpr> coords;

    /**
     * For Indirect nodes: which coordinate position is data-dependent; the
     * dependent coordinate value is operands[0].
     */
    int indirectPos = -1;

    std::vector<ExprPtr> operands;
};

/**
 * A lightweight value wrapper over ExprPtr so users can write natural
 * arithmetic: a(i, j - 1, k) * b(i - 1, j, k) + c(i, j, k - 1).
 */
class Expr
{
  public:
    Expr() = default;
    Expr(double constant);
    Expr(int constant);
    explicit Expr(ExprPtr node) : node_(std::move(node)) {}

    const ExprPtr &node() const { return node_; }
    bool valid() const { return node_ != nullptr; }

    Expr operator+(const Expr &other) const;
    Expr operator-(const Expr &other) const;
    Expr operator*(const Expr &other) const;
    Expr operator/(const Expr &other) const;
    Expr operator==(const Expr &other) const;
    Expr operator!=(const Expr &other) const;
    Expr operator<(const Expr &other) const;
    Expr operator<=(const Expr &other) const;
    Expr operator&&(const Expr &other) const;
    Expr operator||(const Expr &other) const;
    Expr operator!() const;

  private:
    ExprPtr node_;
};

Expr exprMin(const Expr &a, const Expr &b);
Expr exprMax(const Expr &a, const Expr &b);
Expr exprSelect(const Expr &cond, const Expr &then_val, const Expr &else_val);

/** Build a binary node. */
Expr makeBinary(ExprOp op, const Expr &a, const Expr &b);

/** Collect all Access/Indirect nodes reachable from an expression. */
void collectAccesses(const ExprPtr &node, std::vector<ExprPtr> &out);

/** Render to a debug string. */
std::string exprToString(const ExprPtr &node,
                         const std::vector<std::string> &tensor_names,
                         const std::vector<std::string> &index_names);

} // namespace stellar::func

#endif // STELLAR_FUNC_EXPR_HPP
