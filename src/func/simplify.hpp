/**
 * @file
 * Algebraic simplification of expression trees.
 *
 * The compiler runs these peephole rules before lowering user-defined
 * logic to hardware (Fig 11's "User-Defined Logic" block): constant
 * folding, additive/multiplicative identities, and select-on-constant
 * collapsing. Rules preserve exact semantics for the integer-valued
 * constants specs use.
 */

#ifndef STELLAR_FUNC_SIMPLIFY_HPP
#define STELLAR_FUNC_SIMPLIFY_HPP

#include "func/expr.hpp"

namespace stellar::func
{

/** Recursively simplify an expression tree. Returns a new tree (shares
 *  unchanged subtrees with the input). */
ExprPtr simplify(const ExprPtr &node);

/** Convenience wrapper for the Expr value type. */
Expr simplify(const Expr &expr);

/** Count the operation nodes of a tree (for cost metrics and tests). */
int exprOpCount(const ExprPtr &node);

} // namespace stellar::func

#endif // STELLAR_FUNC_SIMPLIFY_HPP
