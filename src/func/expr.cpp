#include "func/expr.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::func
{

bool
IndexExpr::isPlainIndex() const
{
    return kind == Kind::Affine && constant == 0 && coeffs.size() == 1 &&
           coeffs.begin()->second == 1;
}

int
IndexExpr::plainIndex() const
{
    return isPlainIndex() ? coeffs.begin()->first : -1;
}

std::int64_t
IndexExpr::evaluate(const std::vector<std::int64_t> &index_values,
                    const std::vector<std::int64_t> &bounds) const
{
    switch (kind) {
      case Kind::LowerHalo:
        return -1;
      case Kind::UpperEdge:
        invariant(boundIndex >= 0 && boundIndex < int(bounds.size()),
                  "UpperEdge marker references unknown index");
        return bounds[std::size_t(boundIndex)] - 1;
      case Kind::Affine:
        break;
    }
    std::int64_t v = constant;
    for (const auto &[id, coeff] : coeffs) {
        invariant(id >= 0 && id < int(index_values.size()),
                  "IndexExpr references unknown index");
        v += coeff * index_values[std::size_t(id)];
    }
    return v;
}

std::string
IndexExpr::toString(const std::vector<std::string> &index_names) const
{
    auto name = [&](int id) {
        if (id >= 0 && id < int(index_names.size()))
            return index_names[std::size_t(id)];
        return std::string("idx") + std::to_string(id);
    };
    if (kind == Kind::LowerHalo)
        return name(boundIndex) + ".lowerBound";
    if (kind == Kind::UpperEdge)
        return name(boundIndex) + ".upperBound";
    std::ostringstream os;
    bool first = true;
    for (const auto &[id, coeff] : coeffs) {
        if (coeff == 0)
            continue;
        if (!first)
            os << (coeff > 0 ? " + " : " - ");
        else if (coeff < 0)
            os << "-";
        std::int64_t mag = coeff < 0 ? -coeff : coeff;
        if (mag != 1)
            os << mag << "*";
        os << name(id);
        first = false;
    }
    if (constant != 0 || first) {
        if (!first)
            os << (constant >= 0 ? " + " : " - ");
        os << (constant < 0 && !first ? -constant : constant);
    }
    return os.str();
}

IndexExpr
makeIndexExpr(int index_id)
{
    IndexExpr e;
    e.coeffs[index_id] = 1;
    return e;
}

IndexExpr
makeConstExpr(std::int64_t value)
{
    IndexExpr e;
    e.constant = value;
    return e;
}

Expr::Expr(double constant)
{
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Constant;
    node->value = constant;
    node_ = std::move(node);
}

Expr::Expr(int constant) : Expr(double(constant)) {}

Expr
makeBinary(ExprOp op, const Expr &a, const Expr &b)
{
    invariant(a.valid() && b.valid(), "binary expr on invalid operand");
    auto node = std::make_shared<ExprNode>();
    node->op = op;
    node->operands = {a.node(), b.node()};
    return Expr(std::move(node));
}

Expr Expr::operator+(const Expr &o) const { return makeBinary(ExprOp::Add, *this, o); }
Expr Expr::operator-(const Expr &o) const { return makeBinary(ExprOp::Sub, *this, o); }
Expr Expr::operator*(const Expr &o) const { return makeBinary(ExprOp::Mul, *this, o); }
Expr Expr::operator/(const Expr &o) const { return makeBinary(ExprOp::Div, *this, o); }
Expr Expr::operator==(const Expr &o) const { return makeBinary(ExprOp::Eq, *this, o); }
Expr Expr::operator!=(const Expr &o) const { return makeBinary(ExprOp::Ne, *this, o); }
Expr Expr::operator<(const Expr &o) const { return makeBinary(ExprOp::Lt, *this, o); }
Expr Expr::operator<=(const Expr &o) const { return makeBinary(ExprOp::Le, *this, o); }
Expr Expr::operator&&(const Expr &o) const { return makeBinary(ExprOp::And, *this, o); }
Expr Expr::operator||(const Expr &o) const { return makeBinary(ExprOp::Or, *this, o); }

Expr
Expr::operator!() const
{
    invariant(valid(), "not-expr on invalid operand");
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Not;
    node->operands = {node_};
    return Expr(std::move(node));
}

Expr
exprMin(const Expr &a, const Expr &b)
{
    return makeBinary(ExprOp::Min, a, b);
}

Expr
exprMax(const Expr &a, const Expr &b)
{
    return makeBinary(ExprOp::Max, a, b);
}

Expr
exprSelect(const Expr &cond, const Expr &then_val, const Expr &else_val)
{
    invariant(cond.valid() && then_val.valid() && else_val.valid(),
              "select expr on invalid operand");
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Select;
    node->operands = {cond.node(), then_val.node(), else_val.node()};
    return Expr(std::move(node));
}

void
collectAccesses(const ExprPtr &node, std::vector<ExprPtr> &out)
{
    if (!node)
        return;
    if (node->op == ExprOp::Access || node->op == ExprOp::Indirect)
        out.push_back(node);
    for (const auto &child : node->operands)
        collectAccesses(child, out);
}

std::string
exprToString(const ExprPtr &node,
             const std::vector<std::string> &tensor_names,
             const std::vector<std::string> &index_names)
{
    if (!node)
        return "<null>";
    auto tensor_name = [&](int id) {
        if (id >= 0 && id < int(tensor_names.size()))
            return tensor_names[std::size_t(id)];
        return std::string("t") + std::to_string(id);
    };
    auto bin = [&](const char *sym) {
        return "(" + exprToString(node->operands[0], tensor_names, index_names)
             + " " + sym + " "
             + exprToString(node->operands[1], tensor_names, index_names)
             + ")";
    };
    switch (node->op) {
      case ExprOp::Constant: {
        std::ostringstream os;
        os << node->value;
        return os.str();
      }
      case ExprOp::Access:
      case ExprOp::Indirect: {
        std::string s = tensor_name(node->tensor) + "(";
        for (std::size_t i = 0; i < node->coords.size(); i++) {
            if (i > 0)
                s += ", ";
            if (node->op == ExprOp::Indirect &&
                    int(i) == node->indirectPos) {
                s += "[" + exprToString(node->operands[0], tensor_names,
                                        index_names) + "]";
            } else {
                s += node->coords[i].toString(index_names);
            }
        }
        return s + ")";
      }
      case ExprOp::Add: return bin("+");
      case ExprOp::Sub: return bin("-");
      case ExprOp::Mul: return bin("*");
      case ExprOp::Div: return bin("/");
      case ExprOp::Min: return "min" + bin(",");
      case ExprOp::Max: return "max" + bin(",");
      case ExprOp::Eq: return bin("==");
      case ExprOp::Ne: return bin("!=");
      case ExprOp::Lt: return bin("<");
      case ExprOp::Le: return bin("<=");
      case ExprOp::And: return bin("&&");
      case ExprOp::Or: return bin("||");
      case ExprOp::Not:
        return "!" + exprToString(node->operands[0], tensor_names,
                                  index_names);
      case ExprOp::Select:
        return "select(" +
            exprToString(node->operands[0], tensor_names, index_names) +
            ", " +
            exprToString(node->operands[1], tensor_names, index_names) +
            ", " +
            exprToString(node->operands[2], tensor_names, index_names) + ")";
    }
    return "<unknown>";
}

} // namespace stellar::func
