#include "func/spec.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::func
{

IndexExpr
Index::lowerBound() const
{
    IndexExpr e;
    e.kind = IndexExpr::Kind::LowerHalo;
    e.boundIndex = id_;
    return e;
}

IndexExpr
Index::upperBound() const
{
    IndexExpr e;
    e.kind = IndexExpr::Kind::UpperEdge;
    e.boundIndex = id_;
    return e;
}

IndexExpr
operator+(const Index &idx, std::int64_t c)
{
    IndexExpr e = makeIndexExpr(idx.id());
    e.constant = c;
    return e;
}

IndexExpr
operator-(const Index &idx, std::int64_t c)
{
    return idx + (-c);
}

IndexExpr
operator*(std::int64_t c, const Index &idx)
{
    IndexExpr e;
    e.coeffs[idx.id()] = c;
    return e;
}

Expr
Access::toExpr() const
{
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Access;
    node->tensor = tensor;
    node->coords = coords;
    return Expr(std::move(node));
}

Expr
TensorHandle::indirect(const std::vector<IndexExpr> &coords, int pos,
                       const Expr &dynamic_coord) const
{
    require(pos >= 0 && pos < int(coords.size()),
            "indirect coordinate position out of range");
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Indirect;
    node->tensor = id_;
    node->coords = coords;
    node->indirectPos = pos;
    node->operands = {dynamic_coord.node()};
    return Expr(std::move(node));
}

Index
FunctionalSpec::index(const std::string &name)
{
    int id = int(indexNames_.size());
    indexNames_.push_back(name);
    return Index(id, this);
}

TensorHandle
FunctionalSpec::input(const std::string &name, int rank)
{
    int id = int(tensorNames_.size());
    tensorNames_.push_back(name);
    tensorKinds_.push_back(TensorKind::Input);
    tensorRanks_.push_back(rank);
    return TensorHandle(id, this);
}

TensorHandle
FunctionalSpec::output(const std::string &name, int rank)
{
    int id = int(tensorNames_.size());
    tensorNames_.push_back(name);
    tensorKinds_.push_back(TensorKind::Output);
    tensorRanks_.push_back(rank);
    return TensorHandle(id, this);
}

TensorHandle
FunctionalSpec::intermediate(const std::string &name)
{
    int id = int(tensorNames_.size());
    tensorNames_.push_back(name);
    tensorKinds_.push_back(TensorKind::Intermediate);
    tensorRanks_.push_back(-1); // rank == numIndices, resolved lazily
    return TensorHandle(id, this);
}

void
FunctionalSpec::define(const Access &lhs, const Expr &rhs)
{
    require(lhs.tensor >= 0 && lhs.tensor < numTensors(),
            "assignment LHS references unknown tensor");
    require(rhs.valid(), "assignment RHS is empty");
    assignments_.push_back(Assignment{lhs, rhs});
}

TensorKind
FunctionalSpec::tensorKind(int id) const
{
    require(id >= 0 && id < numTensors(), "unknown tensor id");
    return tensorKinds_[std::size_t(id)];
}

int
FunctionalSpec::tensorRank(int id) const
{
    require(id >= 0 && id < numTensors(), "unknown tensor id");
    int rank = tensorRanks_[std::size_t(id)];
    return rank < 0 ? numIndices() : rank;
}

int
FunctionalSpec::tensorIdByName(const std::string &name) const
{
    for (int id = 0; id < numTensors(); id++)
        if (tensorNames_[std::size_t(id)] == name)
            return id;
    fatal("no tensor named " + name + " in spec " + name_);
}

void
FunctionalSpec::validate() const
{
    require(numIndices() > 0, "spec has no iterators");
    require(!assignments_.empty(), "spec has no assignments");
    bool has_output = false;
    for (const auto &assign : assignments_) {
        int rank = tensorRank(assign.lhs.tensor);
        require(int(assign.lhs.coords.size()) == rank,
                "LHS access rank mismatch for tensor " +
                tensorNames_[std::size_t(assign.lhs.tensor)]);
        if (tensorKind(assign.lhs.tensor) == TensorKind::Output)
            has_output = true;
        std::vector<ExprPtr> accesses;
        collectAccesses(assign.rhs.node(), accesses);
        for (const auto &acc : accesses) {
            require(acc->tensor >= 0 && acc->tensor < numTensors(),
                    "RHS access references unknown tensor");
            require(int(acc->coords.size()) == tensorRank(acc->tensor),
                    "RHS access rank mismatch for tensor " +
                    tensorNames_[std::size_t(acc->tensor)]);
            require(tensorKind(acc->tensor) != TensorKind::Output,
                    "RHS must not read output tensors");
        }
    }
    require(has_output, "spec never writes an output tensor");
}

std::vector<Recurrence>
FunctionalSpec::recurrences() const
{
    std::vector<Recurrence> out;
    for (const auto &assign : assignments_) {
        if (tensorKind(assign.lhs.tensor) != TensorKind::Intermediate)
            continue;
        // The LHS must be the full, plain iterator tuple (v(i, j, k)).
        bool plain_lhs = int(assign.lhs.coords.size()) == numIndices();
        for (int p = 0; plain_lhs && p < numIndices(); p++)
            plain_lhs = assign.lhs.coords[std::size_t(p)].plainIndex() == p;
        if (!plain_lhs)
            continue;
        // Find a self-reference on the RHS.
        std::vector<ExprPtr> accesses;
        collectAccesses(assign.rhs.node(), accesses);
        for (const auto &acc : accesses) {
            if (acc->tensor != assign.lhs.tensor ||
                    acc->op != ExprOp::Access) {
                continue;
            }
            IntVec diff(std::size_t(numIndices()), 0);
            bool uniform = true;
            for (int p = 0; p < numIndices(); p++) {
                const auto &coord = acc->coords[std::size_t(p)];
                if (!coord.isAffine()) {
                    uniform = false;
                    break;
                }
                // Expect coord == index_p + c; diff_p = -c.
                auto coeffs = coord.coeffs;
                auto it = coeffs.find(p);
                if (it == coeffs.end() || it->second != 1 ||
                        coeffs.size() != 1) {
                    uniform = false;
                    break;
                }
                diff[std::size_t(p)] = -coord.constant;
            }
            if (uniform)
                out.push_back(Recurrence{assign.lhs.tensor, diff});
        }
    }
    return out;
}

std::optional<IntVec>
FunctionalSpec::recurrenceDiff(int tensor) const
{
    for (const auto &rec : recurrences())
        if (rec.tensor == tensor && !vecIsZero(rec.diff))
            return rec.diff;
    return std::nullopt;
}

std::set<int>
FunctionalSpec::identityIndices(int tensor) const
{
    std::set<int> identity;
    auto add_plain_indices = [&](const std::vector<IndexExpr> &coords) {
        for (const auto &coord : coords)
            if (coord.isAffine())
                for (const auto &[id, coeff] : coord.coeffs)
                    if (coeff != 0)
                        identity.insert(id);
    };
    for (const auto &binding : inputBindings())
        if (binding.intermediate == tensor)
            add_plain_indices(binding.externalCoords);
    for (const auto &binding : outputBindings())
        if (binding.intermediate == tensor)
            add_plain_indices(binding.externalCoords);
    return identity;
}

std::vector<IoBinding>
FunctionalSpec::inputBindings() const
{
    std::vector<IoBinding> out;
    for (const auto &assign : assignments_) {
        if (tensorKind(assign.lhs.tensor) != TensorKind::Intermediate)
            continue;
        // Init assignments have a LowerHalo marker on the LHS...
        int boundary = -1;
        for (const auto &coord : assign.lhs.coords)
            if (coord.kind == IndexExpr::Kind::LowerHalo)
                boundary = coord.boundIndex;
        if (boundary < 0)
            continue;
        // ...and an Input-tensor access (possibly the whole RHS) feeding it.
        std::vector<ExprPtr> accesses;
        collectAccesses(assign.rhs.node(), accesses);
        for (const auto &acc : accesses) {
            if (tensorKind(acc->tensor) != TensorKind::Input)
                continue;
            IoBinding binding;
            binding.intermediate = assign.lhs.tensor;
            binding.external = acc->tensor;
            binding.externalCoords = acc->coords;
            binding.boundaryIndex = boundary;
            out.push_back(binding);
        }
    }
    return out;
}

std::vector<IoBinding>
FunctionalSpec::outputBindings() const
{
    std::vector<IoBinding> out;
    for (const auto &assign : assignments_) {
        if (tensorKind(assign.lhs.tensor) != TensorKind::Output)
            continue;
        std::vector<ExprPtr> accesses;
        collectAccesses(assign.rhs.node(), accesses);
        for (const auto &acc : accesses) {
            if (tensorKind(acc->tensor) != TensorKind::Intermediate)
                continue;
            IoBinding binding;
            binding.intermediate = acc->tensor;
            binding.external = assign.lhs.tensor;
            binding.externalCoords = assign.lhs.coords;
            for (const auto &coord : acc->coords)
                if (coord.kind == IndexExpr::Kind::UpperEdge)
                    binding.boundaryIndex = coord.boundIndex;
            out.push_back(binding);
        }
    }
    return out;
}

std::string
FunctionalSpec::toString() const
{
    std::ostringstream os;
    os << "spec " << name_ << " over (";
    for (int i = 0; i < numIndices(); i++)
        os << indexNames_[std::size_t(i)] << (i + 1 < numIndices() ? ", " : "");
    os << ")\n";
    for (const auto &assign : assignments_) {
        os << "  " << tensorNames_[std::size_t(assign.lhs.tensor)] << "(";
        for (std::size_t i = 0; i < assign.lhs.coords.size(); i++) {
            if (i > 0)
                os << ", ";
            os << assign.lhs.coords[i].toString(indexNames_);
        }
        os << ") := "
           << exprToString(assign.rhs.node(), tensorNames_, indexNames_)
           << "\n";
    }
    return os.str();
}

} // namespace stellar::func
