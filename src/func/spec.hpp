/**
 * @file
 * Functional specifications (Section III-A).
 *
 * A FunctionalSpec declares tensor iterators, input/output tensors,
 * intermediate variables, and a set of pure assignments that define how
 * outputs are computed from inputs. It deliberately says nothing about
 * time, space, sparsity, or memory layout; those concerns are specified
 * separately (Sections III-B through III-E) and combined by the compiler
 * in src/core.
 */

#ifndef STELLAR_FUNC_SPEC_HPP
#define STELLAR_FUNC_SPEC_HPP

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "func/expr.hpp"
#include "util/int_matrix.hpp"

namespace stellar::func
{

class FunctionalSpec;

/** A tensor iterator handle (e.g. i, j, k in Listing 1). */
class Index
{
  public:
    Index() = default;
    Index(int id, FunctionalSpec *spec) : id_(id), spec_(spec) {}

    int id() const { return id_; }

    /** LHS marker: the halo position before the domain (coordinate -1). */
    IndexExpr lowerBound() const;

    /** RHS marker: the last interior position (coordinate bound-1). */
    IndexExpr upperBound() const;

    operator IndexExpr() const { return makeIndexExpr(id_); }

  private:
    int id_ = -1;
    FunctionalSpec *spec_ = nullptr;
};

IndexExpr operator+(const Index &idx, std::int64_t c);
IndexExpr operator-(const Index &idx, std::int64_t c);
IndexExpr operator*(std::int64_t c, const Index &idx);

/** What role a tensor plays in the specification. */
enum class TensorKind { Input, Output, Intermediate };

/** A single tensor access: tensor id plus one coordinate per dimension. */
struct Access
{
    int tensor = -1;
    std::vector<IndexExpr> coords;

    /** Convert to an expression-tree node for use on an RHS. */
    Expr toExpr() const;
    operator Expr() const { return toExpr(); }
};

/** A tensor handle; calling it builds an Access. */
class TensorHandle
{
  public:
    TensorHandle() = default;
    TensorHandle(int id, FunctionalSpec *spec) : id_(id), spec_(spec) {}

    int id() const { return id_; }

    template <typename... Args>
    Access
    operator()(Args &&...args) const
    {
        Access a;
        a.tensor = id_;
        (a.coords.push_back(toIndexExpr(std::forward<Args>(args))), ...);
        return a;
    }

    /**
     * Build a data-dependent access: the coordinate at position pos is the
     * runtime value of dynamic_coord rather than an affine function of the
     * iterators. Used by merging/sorting specifications.
     */
    Expr indirect(const std::vector<IndexExpr> &coords, int pos,
                  const Expr &dynamic_coord) const;

  private:
    static IndexExpr toIndexExpr(const IndexExpr &e) { return e; }
    static IndexExpr toIndexExpr(const Index &i) { return IndexExpr(i); }
    static IndexExpr toIndexExpr(std::int64_t c) { return makeConstExpr(c); }
    static IndexExpr toIndexExpr(int c) { return makeConstExpr(c); }

    int id_ = -1;
    FunctionalSpec *spec_ = nullptr;
};

/** One pure assignment: lhs := rhs. */
struct Assignment
{
    Access lhs;
    Expr rhs;
};

/**
 * A uniform recurrence extracted from an assignment: intermediate tensor
 * `tensor`'s value at point p is derived from its value at point p - diff.
 */
struct Recurrence
{
    int tensor = -1;
    IntVec diff;  //!< one entry per iterator, lhs minus rhs coordinates
};

/** The input or output tensor bound to an intermediate variable. */
struct IoBinding
{
    int intermediate = -1;   //!< intermediate tensor id
    int external = -1;       //!< Input/Output tensor id
    std::vector<IndexExpr> externalCoords; //!< coords of the external access
    int boundaryIndex = -1;  //!< iterator carrying the halo/edge marker
};

/**
 * A full functional specification. Create iterators and tensors through the
 * factory methods, then add assignments with define().
 */
class FunctionalSpec
{
  public:
    explicit FunctionalSpec(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Declare a new iterator. Iterators are ordered by creation. */
    Index index(const std::string &name);

    /** Declare an external input tensor of the given rank. */
    TensorHandle input(const std::string &name, int rank);

    /** Declare an external output tensor of the given rank. */
    TensorHandle output(const std::string &name, int rank);

    /**
     * Declare an intermediate variable. Its rank is always the number of
     * iterators that end up declared on the spec.
     */
    TensorHandle intermediate(const std::string &name);

    /** Add an assignment lhs := rhs. Assignment order matters: at any
     *  point of the iteration space, the first assignment whose boundary
     *  markers match provides the definition. */
    void define(const Access &lhs, const Expr &rhs);

    int numIndices() const { return int(indexNames_.size()); }
    int numTensors() const { return int(tensorNames_.size()); }

    const std::vector<std::string> &indexNames() const { return indexNames_; }
    const std::vector<std::string> &tensorNames() const { return tensorNames_; }
    TensorKind tensorKind(int id) const;
    int tensorRank(int id) const;
    int tensorIdByName(const std::string &name) const;

    const std::vector<Assignment> &assignments() const { return assignments_; }

    /** Check internal consistency; throws FatalError on bad specs. */
    void validate() const;

    /**
     * Extract uniform recurrences: assignments of the form
     * v(i, j, k) := f(..., v(i, j, k - 1), ...). These define the
     * data-movement directions of each variable (Section IV-B).
     */
    std::vector<Recurrence> recurrences() const;

    /** The recurrence difference vector for one intermediate, if any. */
    std::optional<IntVec> recurrenceDiff(int tensor) const;

    /**
     * The identity indices of an intermediate: the iterators that determine
     * *which logical value* the variable carries. For a fed from A(i, k)
     * these are {i, k}; for c drained into C(i, j) they are {i, j}. Used by
     * the sparsity-driven connection pruning of Section IV-B.
     */
    std::set<int> identityIndices(int tensor) const;

    /** Bindings from input tensors into intermediates. */
    std::vector<IoBinding> inputBindings() const;

    /** Bindings from intermediates out to output tensors. */
    std::vector<IoBinding> outputBindings() const;

    std::string toString() const;

  private:
    friend class Index;

    std::string name_;
    std::vector<std::string> indexNames_;
    std::vector<std::string> tensorNames_;
    std::vector<TensorKind> tensorKinds_;
    std::vector<int> tensorRanks_;
    std::vector<Assignment> assignments_;
};

} // namespace stellar::func

#endif // STELLAR_FUNC_SPEC_HPP
