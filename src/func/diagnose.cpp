#include "func/diagnose.hpp"

#include <set>
#include <sstream>

namespace stellar::func
{

std::vector<Diagnostic>
diagnose(const FunctionalSpec &spec)
{
    std::vector<Diagnostic> findings;
    auto warn = [&](const std::string &message) {
        findings.push_back({Diagnostic::Severity::Warning, message});
    };
    auto note = [&](const std::string &message) {
        findings.push_back({Diagnostic::Severity::Note, message});
    };

    // Usage scans.
    std::set<int> tensors_read, tensors_written, indices_used;
    for (const auto &assign : spec.assignments()) {
        tensors_written.insert(assign.lhs.tensor);
        for (const auto &coord : assign.lhs.coords) {
            for (const auto &[id, coeff] : coord.coeffs)
                if (coeff != 0)
                    indices_used.insert(id);
            if (coord.boundIndex >= 0)
                indices_used.insert(coord.boundIndex);
        }
        std::vector<ExprPtr> accesses;
        collectAccesses(assign.rhs.node(), accesses);
        for (const auto &access : accesses) {
            tensors_read.insert(access->tensor);
            for (const auto &coord : access->coords) {
                for (const auto &[id, coeff] : coord.coeffs)
                    if (coeff != 0)
                        indices_used.insert(id);
                if (coord.boundIndex >= 0)
                    indices_used.insert(coord.boundIndex);
            }
        }
    }

    for (int t = 0; t < spec.numTensors(); t++) {
        const auto &name = spec.tensorNames()[std::size_t(t)];
        switch (spec.tensorKind(t)) {
          case TensorKind::Input:
            if (!tensors_read.count(t))
                warn("input tensor " + name + " is never read");
            break;
          case TensorKind::Output:
            // validate() already requires at least one output write; an
            // individual silent output is still worth flagging.
            if (!tensors_written.count(t))
                warn("output tensor " + name + " is never written");
            break;
          case TensorKind::Intermediate:
            if (!tensors_written.count(t))
                warn("intermediate " + name + " is never defined");
            else if (!tensors_read.count(t))
                warn("intermediate " + name +
                     " never reaches an output (dead computation)");
            break;
        }
    }

    for (int idx = 0; idx < spec.numIndices(); idx++) {
        if (!indices_used.count(idx)) {
            warn("iterator " + spec.indexNames()[std::size_t(idx)] +
                 " is never used");
        }
    }

    // Recurrence health.
    std::set<int> tensors_with_recurrence;
    for (const auto &rec : spec.recurrences()) {
        tensors_with_recurrence.insert(rec.tensor);
        bool forward = true;
        for (auto d : rec.diff) {
            if (d > 0)
                break;
            if (d < 0) {
                forward = false;
                break;
            }
        }
        if (!forward) {
            warn("recurrence of " +
                 spec.tensorNames()[std::size_t(rec.tensor)] +
                 " moves lexicographically backward; the reference "
                 "interpreter and schedule executor cannot order it");
        }
    }
    for (int t = 0; t < spec.numTensors(); t++) {
        if (spec.tensorKind(t) != TensorKind::Intermediate)
            continue;
        if (tensors_written.count(t) && tensors_read.count(t) &&
                !tensors_with_recurrence.count(t)) {
            note("intermediate " + spec.tensorNames()[std::size_t(t)] +
                 " has no uniform recurrence: it will not form PE-to-PE "
                 "connections and falls back to per-point IO");
        }
    }
    return findings;
}

std::string
diagnosticsToString(const std::vector<Diagnostic> &findings)
{
    std::ostringstream os;
    for (const auto &finding : findings) {
        os << (finding.severity == Diagnostic::Severity::Warning
                       ? "warning: "
                       : "note: ")
           << finding.message << "\n";
    }
    return os.str();
}

} // namespace stellar::func
