#include "func/simplify.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace stellar::func
{

namespace
{

bool
isConst(const ExprPtr &node, double value)
{
    return node && node->op == ExprOp::Constant && node->value == value;
}

bool
isAnyConst(const ExprPtr &node)
{
    return node && node->op == ExprOp::Constant;
}

ExprPtr
makeConst(double value)
{
    auto node = std::make_shared<ExprNode>();
    node->op = ExprOp::Constant;
    node->value = value;
    return node;
}

} // namespace

ExprPtr
simplify(const ExprPtr &node)
{
    if (!node)
        return node;
    // Simplify children first.
    auto copy = std::make_shared<ExprNode>(*node);
    bool changed = false;
    for (auto &child : copy->operands) {
        ExprPtr simplified = simplify(child);
        if (simplified != child) {
            child = simplified;
            changed = true;
        }
    }
    const ExprPtr current = changed ? ExprPtr(copy) : node;
    const auto &ops = current->operands;

    auto lhs = ops.size() > 0 ? ops[0] : nullptr;
    auto rhs = ops.size() > 1 ? ops[1] : nullptr;

    switch (current->op) {
      case ExprOp::Add:
        if (isConst(lhs, 0.0))
            return rhs;
        if (isConst(rhs, 0.0))
            return lhs;
        if (isAnyConst(lhs) && isAnyConst(rhs))
            return makeConst(lhs->value + rhs->value);
        break;
      case ExprOp::Sub:
        if (isConst(rhs, 0.0))
            return lhs;
        if (isAnyConst(lhs) && isAnyConst(rhs))
            return makeConst(lhs->value - rhs->value);
        break;
      case ExprOp::Mul:
        if (isConst(lhs, 1.0))
            return rhs;
        if (isConst(rhs, 1.0))
            return lhs;
        if (isConst(lhs, 0.0) || isConst(rhs, 0.0))
            return makeConst(0.0);
        if (isAnyConst(lhs) && isAnyConst(rhs))
            return makeConst(lhs->value * rhs->value);
        break;
      case ExprOp::Div:
        if (isConst(rhs, 1.0))
            return lhs;
        break;
      case ExprOp::And:
        if (isConst(lhs, 0.0) || isConst(rhs, 0.0))
            return makeConst(0.0);
        if (isAnyConst(lhs) && lhs->value != 0.0)
            return rhs;
        if (isAnyConst(rhs) && rhs->value != 0.0)
            return lhs;
        break;
      case ExprOp::Or:
        if (isConst(lhs, 0.0))
            return rhs;
        if (isConst(rhs, 0.0))
            return lhs;
        break;
      case ExprOp::Not:
        if (isAnyConst(lhs))
            return makeConst(lhs->value == 0.0 ? 1.0 : 0.0);
        break;
      case ExprOp::Select:
        if (isAnyConst(lhs))
            return lhs->value != 0.0 ? ops[1] : ops[2];
        break;
      case ExprOp::Min:
      case ExprOp::Max:
        if (isAnyConst(lhs) && isAnyConst(rhs)) {
            double lo = std::min(lhs->value, rhs->value);
            double hi = std::max(lhs->value, rhs->value);
            return makeConst(current->op == ExprOp::Min ? lo : hi);
        }
        break;
      case ExprOp::Eq:
      case ExprOp::Ne:
      case ExprOp::Lt:
      case ExprOp::Le:
        if (isAnyConst(lhs) && isAnyConst(rhs)) {
            bool truth = false;
            switch (current->op) {
              case ExprOp::Eq: truth = lhs->value == rhs->value; break;
              case ExprOp::Ne: truth = lhs->value != rhs->value; break;
              case ExprOp::Lt: truth = lhs->value < rhs->value; break;
              case ExprOp::Le: truth = lhs->value <= rhs->value; break;
              default: break;
            }
            return makeConst(truth ? 1.0 : 0.0);
        }
        break;
      default:
        break;
    }
    return current;
}

Expr
simplify(const Expr &expr)
{
    return Expr(simplify(expr.node()));
}

int
exprOpCount(const ExprPtr &node)
{
    if (!node)
        return 0;
    int count = 1;
    for (const auto &child : node->operands)
        count += exprOpCount(child);
    return count;
}

} // namespace stellar::func
