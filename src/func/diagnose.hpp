/**
 * @file
 * Specification diagnostics.
 *
 * validate() rejects ill-formed specs; diagnose() goes further and
 * surfaces the *suspicious but legal* patterns that usually indicate a
 * mis-specified accelerator: declared-but-unused tensors or iterators,
 * intermediates that never reach an output, non-uniform recurrences
 * (which fall back to worst-case regfile hardware), and recurrences the
 * reference interpreter cannot order.
 */

#ifndef STELLAR_FUNC_DIAGNOSE_HPP
#define STELLAR_FUNC_DIAGNOSE_HPP

#include <string>
#include <vector>

#include "func/spec.hpp"

namespace stellar::func
{

/** One advisory finding. */
struct Diagnostic
{
    enum class Severity { Warning, Note };

    Severity severity = Severity::Warning;
    std::string message;
};

/** Analyze a spec; empty result means nothing suspicious. */
std::vector<Diagnostic> diagnose(const FunctionalSpec &spec);

/** Render findings one per line. */
std::string diagnosticsToString(const std::vector<Diagnostic> &findings);

} // namespace stellar::func

#endif // STELLAR_FUNC_DIAGNOSE_HPP
