#include "func/library.hpp"

namespace stellar::func
{

FunctionalSpec
matmulSpec()
{
    FunctionalSpec spec("matmul");
    Index i = spec.index("i");
    Index j = spec.index("j");
    Index k = spec.index("k");

    TensorHandle A = spec.input("A", 2);
    TensorHandle B = spec.input("B", 2);
    TensorHandle C = spec.output("C", 2);

    TensorHandle a = spec.intermediate("a");
    TensorHandle b = spec.intermediate("b");
    TensorHandle c = spec.intermediate("c");

    // Inputs.
    spec.define(a(i, j.lowerBound(), k), A(i, k));
    spec.define(b(i.lowerBound(), j, k), B(k, j));
    spec.define(c(i, j, k.lowerBound()), Expr(0));
    // Intermediate calculations.
    spec.define(a(i, j, k), a(i, j - 1, k));
    spec.define(b(i, j, k), b(i - 1, j, k));
    spec.define(c(i, j, k),
                Expr(c(i, j, k - 1)) +
                Expr(a(i, j - 1, k)) * Expr(b(i - 1, j, k)));
    // Outputs.
    spec.define(C(i, j), c(i, j, k.upperBound()));
    return spec;
}

FunctionalSpec
mergeSpec()
{
    // Two sorted input fibers (coordinate and value streams) are merged
    // into a single sorted output. Iterator n walks output positions;
    // intermediate cursors la/lb track how far each input has been
    // consumed. The min/select structure is the data-dependent part that
    // Section III-A calls out as necessary for sparse pre/post-processing.
    FunctionalSpec spec("merge");
    Index n = spec.index("n");

    TensorHandle ACoord = spec.input("ACoord", 1);
    TensorHandle AVal = spec.input("AVal", 1);
    TensorHandle BCoord = spec.input("BCoord", 1);
    TensorHandle BVal = spec.input("BVal", 1);
    TensorHandle OutCoord = spec.output("OutCoord", 1);
    TensorHandle OutVal = spec.output("OutVal", 1);

    TensorHandle la = spec.intermediate("la");
    TensorHandle lb = spec.intermediate("lb");
    TensorHandle oc = spec.intermediate("oc");
    TensorHandle ov = spec.intermediate("ov");

    // Cursors start at zero and advance by how many heads were consumed.
    spec.define(la(n.lowerBound()), Expr(0));
    spec.define(lb(n.lowerBound()), Expr(0));

    // Heads of each stream, looked up with data-dependent coordinates.
    Expr head_a_coord = ACoord.indirect({makeIndexExpr(n.id())}, 0,
                                        Expr(la(n - 1)));
    Expr head_b_coord = BCoord.indirect({makeIndexExpr(n.id())}, 0,
                                        Expr(lb(n - 1)));
    Expr head_a_val = AVal.indirect({makeIndexExpr(n.id())}, 0,
                                    Expr(la(n - 1)));
    Expr head_b_val = BVal.indirect({makeIndexExpr(n.id())}, 0,
                                    Expr(lb(n - 1)));

    Expr take_a = head_a_coord <= head_b_coord;
    Expr take_b = head_b_coord <= head_a_coord;

    spec.define(oc(n), exprMin(head_a_coord, head_b_coord));
    spec.define(ov(n),
                exprSelect(take_a && take_b, head_a_val + head_b_val,
                           exprSelect(take_a, head_a_val, head_b_val)));
    spec.define(la(n), Expr(la(n - 1)) + exprSelect(take_a, Expr(1), Expr(0)));
    spec.define(lb(n), Expr(lb(n - 1)) + exprSelect(take_b, Expr(1), Expr(0)));

    spec.define(OutCoord(n), oc(n));
    spec.define(OutVal(n), ov(n));
    return spec;
}

FunctionalSpec
convSpec(std::int64_t kernel_h, std::int64_t kernel_w)
{
    FunctionalSpec spec("conv" + std::to_string(kernel_h) + "x" +
                        std::to_string(kernel_w));
    Index oh = spec.index("oh");
    Index ow = spec.index("ow");
    Index oc = spec.index("oc");
    Index ic = spec.index("ic");

    TensorHandle I = spec.input("I", 3);
    TensorHandle W = spec.input("W", 4);
    TensorHandle O = spec.output("O", 3);
    TensorHandle o = spec.intermediate("o");

    spec.define(o(oh, ow, oc, ic.lowerBound()), Expr(0));

    // Accumulate over input channels; the kernel window is unrolled into
    // the right-hand side so the recurrence stays uniform along ic.
    Expr window;
    for (std::int64_t kh = 0; kh < kernel_h; kh++) {
        for (std::int64_t kw = 0; kw < kernel_w; kw++) {
            Expr tap = Expr(W(oc, ic, kh, kw)) *
                       Expr(I(oh + kh, ow + kw, ic));
            window = window.valid() ? window + tap : tap;
        }
    }
    spec.define(o(oh, ow, oc, ic), Expr(o(oh, ow, oc, ic - 1)) + window);
    spec.define(O(oh, ow, oc), o(oh, ow, oc, ic.upperBound()));
    return spec;
}

FunctionalSpec
matAddSpec()
{
    FunctionalSpec spec("matadd");
    Index i = spec.index("i");
    Index j = spec.index("j");

    TensorHandle A = spec.input("A", 2);
    TensorHandle B = spec.input("B", 2);
    TensorHandle C = spec.output("C", 2);
    TensorHandle c = spec.intermediate("c");

    spec.define(c(i, j), Expr(A(i, j)) + Expr(B(i, j)));
    spec.define(C(i, j), c(i, j));
    return spec;
}

} // namespace stellar::func
