/**
 * @file
 * The compiler's central IR: the IterationSpace (Section IV-B, Fig 9).
 *
 * An IterationSpace is the set of Points of the tensor iteration space
 * together with Point2PointConns (data dependencies between points) and
 * IOConns (input/output requests to external register files). It starts
 * as a purely functional object (Fig 9a), has its connections pruned by
 * the sparsity and load-balancing specifications (Fig 9b), and is finally
 * mapped through the space-time transform into a physical spatial array
 * (Fig 9c, src/core/spatial_array.hpp).
 *
 * Connections are stored as per-variable *direction classes* rather than
 * per-point instances: a class (tensor v, diff d) stands for the conn
 * from every point p - d into p. Per-point enumeration is derived on
 * demand, which keeps the IR small for large arrays.
 */

#ifndef STELLAR_CORE_ITERATION_SPACE_HPP
#define STELLAR_CORE_ITERATION_SPACE_HPP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "func/spec.hpp"
#include "util/int_matrix.hpp"
#include "util/watchdog.hpp"

namespace stellar::core
{

/** Why a Point2PointConn class was removed (for reports and tests). */
enum class PruneReason
{
    NotPruned,
    Sparsity,       //!< expanded-coordinate difference became symbolic
    LoadBalancing,  //!< per-PE balancing may re-target the destination
};

/**
 * A class of point-to-point connections: variable `tensor` flows from
 * point p - diff into point p, for every interior p where p - diff is
 * also interior.
 */
struct Point2PointConn
{
    int tensor = -1;
    IntVec diff;
    PruneReason pruned = PruneReason::NotPruned;

    /** OptimisticSkip widens the conn into a bundle instead of pruning. */
    bool bundled = false;
    int bundleSize = 1;

    bool alive() const { return pruned == PruneReason::NotPruned; }
};

/** A class of IO connections between points and external register files. */
struct IOConn
{
    int tensor = -1;          //!< intermediate variable
    int externalTensor = -1;  //!< bound Input/Output tensor (-1 if none)
    bool isInput = true;

    /**
     * Boundary IO fires where the iterator `boundaryIndex` is at its
     * first (inputs) or last (outputs) interior value. Per-point IO —
     * created when a conn class is pruned — fires at *every* point.
     */
    bool perPoint = false;
    int boundaryIndex = -1;

    std::vector<func::IndexExpr> externalCoords;
};

/** The IR for one spatial array. */
class IterationSpace
{
  public:
    /** Points charged to the watchdog per batched tick. */
    static constexpr std::int64_t kWatchdogBatch = 256;

    IterationSpace(const func::FunctionalSpec &spec, IntVec bounds);

    const func::FunctionalSpec &spec() const { return spec_; }
    const IntVec &bounds() const { return bounds_; }
    int numIndices() const { return int(bounds_.size()); }

    /** Total interior points (product of bounds). */
    std::int64_t numPoints() const;

    /** Call fn for every interior point, in lexicographic order. */
    void forEachPoint(const std::function<void(const IntVec &)> &fn) const;

    /**
     * Raw-callable overload of forEachPoint: lambdas bind here without
     * the std::function type-erasure cost, and the watchdog is charged
     * in batches of kWatchdogBatch points instead of one tick per
     * point. Batching is budget-exact: an installed budget expires
     * after exactly the same number of visited points as the per-point
     * tick, with the same diagnostic dump, because each batch is capped
     * to the budget's remaining steps.
     */
    template <typename Fn>
    void
    forEachPoint(Fn &&fn) const
    {
        util::Watchdog *dog = util::currentWatchdog();
        IntVec point(bounds_.size(), 0);
        std::int64_t left = numPoints();
        while (left > 0) {
            std::int64_t batch = std::min(kWatchdogBatch, left);
            if (dog != nullptr) {
                // Wall-clock deadlines are checked once per batch, like
                // the simulators' WatchdogBatcher boundaries.
                dog->checkDeadline([&]() {
                    return "iteration-space walk, last point " +
                           vecToString(point) + " of bounds " +
                           vecToString(bounds_);
                });
                if (dog->enabled()) {
                    std::int64_t allowance = dog->remaining();
                    if (allowance == 0) {
                        // Expiring step: charge it with the diagnostic
                        // the per-point walk would have produced.
                        dog->tick(1, [&]() {
                            return "iteration-space walk, last point " +
                                   vecToString(point) + " of bounds " +
                                   vecToString(bounds_);
                        });
                    }
                    batch = std::min(batch, allowance);
                }
                // Pre-charge the whole batch; it never expires because
                // the batch is capped to the remaining allowance.
                dog->tick(batch);
            }
            for (std::int64_t i = 0; i < batch; i++) {
                fn(point);
                int axis = int(bounds_.size()) - 1;
                while (axis >= 0) {
                    if (++point[std::size_t(axis)] <
                        bounds_[std::size_t(axis)])
                        break;
                    point[std::size_t(axis)] = 0;
                    axis--;
                }
            }
            left -= batch;
        }
    }

    bool isInterior(const IntVec &point) const;

    std::vector<Point2PointConn> &conns() { return conns_; }
    const std::vector<Point2PointConn> &conns() const { return conns_; }

    std::vector<IOConn> &ioConns() { return ioConns_; }
    const std::vector<IOConn> &ioConns() const { return ioConns_; }

    /** Surviving (unpruned) conn classes. */
    std::vector<Point2PointConn> aliveConns() const;

    /** The conn class for a variable, if it survived pruning. */
    const Point2PointConn *aliveConnFor(int tensor) const;

    /** Count per-point conn instances of one class (for area/wiring). */
    std::int64_t connInstances(const Point2PointConn &conn) const;

    /** Total per-point instances across alive conn classes. */
    std::int64_t totalConnInstances() const;

    /** Number of per-point IO requests a given IOConn class makes. */
    std::int64_t ioInstances(const IOConn &io) const;

    std::string toString() const;

  private:
    /** Owned copy, so an IterationSpace never outlives its spec. */
    func::FunctionalSpec spec_;
    IntVec bounds_;
    std::vector<Point2PointConn> conns_;
    std::vector<IOConn> ioConns_;
};

/**
 * Build the initial, dense IterationSpace of a functional specification
 * (Fig 9a): conn classes from the spec's uniform recurrences and boundary
 * IOConns from its input/output bindings.
 */
IterationSpace elaborate(const func::FunctionalSpec &spec,
                         const IntVec &bounds);

} // namespace stellar::core

#endif // STELLAR_CORE_ITERATION_SPACE_HPP
