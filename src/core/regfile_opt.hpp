/**
 * @file
 * Register-file optimization passes (Section IV-D, Fig 14).
 *
 * The baseline regfile is fully associative: every port sees every entry
 * and outputs search all coordinates. The optimizer compares the order in
 * which a producer (memory buffer) fills the regfile with the order in
 * which the consumer (spatial array) drains it, and selects progressively
 * cheaper structures:
 *
 *   FeedForward      — producer and consumer orders match exactly: a pure
 *                      shift-register chain, no comparators (Fig 14c).
 *   Transposing      — orders match after swapping two coordinate axes:
 *                      entry/exit edges are chosen to transpose (Fig 14d).
 *   EdgeIO           — same population, different order, but IO can be
 *                      restricted to regfile edges (Fig 14b).
 *   FullyAssociative — the worst-case fallback (Fig 14a).
 *
 * Passes run in order of decreasing efficiency, exactly as described in
 * the paper, falling back when a pass's precondition fails.
 */

#ifndef STELLAR_CORE_REGFILE_OPT_HPP
#define STELLAR_CORE_REGFILE_OPT_HPP

#include <cstdint>
#include <string>

#include "mem/access_order.hpp"

namespace stellar::core
{

/** The regfile structures of Fig 14, most efficient first. */
enum class RegfileKind
{
    FeedForward,
    Transposing,
    EdgeIO,
    FullyAssociative,
};

std::string regfileKindName(RegfileKind kind);

/** The chosen regfile micro-architecture and its resource counts. */
struct RegfileConfig
{
    RegfileKind kind = RegfileKind::FullyAssociative;
    std::int64_t entries = 0;
    std::int64_t inPorts = 0;
    std::int64_t outPorts = 0;

    /** Coordinate comparators (the dominant area cost; Section VI-D). */
    std::int64_t comparators = 0;

    /** Entry-to-port muxes. */
    std::int64_t muxes = 0;
};

/**
 * Run the optimization passes for the regfile buffering one tensor
 * between a producer and a consumer. `entries` is the number of live
 * elements the regfile must hold (typically the tile size).
 */
RegfileConfig optimizeRegfile(const mem::AccessOrder &producer,
                              const mem::AccessOrder &consumer,
                              std::int64_t entries);

/** Resource counts for a given kind (used by the area model and tests). */
RegfileConfig configForKind(RegfileKind kind, std::int64_t entries,
                            std::int64_t in_ports, std::int64_t out_ports);

} // namespace stellar::core

#endif // STELLAR_CORE_REGFILE_OPT_HPP
