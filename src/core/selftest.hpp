/**
 * @file
 * Generated-design self-test.
 *
 * For any generated accelerator, build random inputs covering exactly
 * the input-tensor coordinates the design reads, execute the space-time
 * schedule, and compare every output tensor against the functional
 * golden model. This is the check a user runs after composing their own
 * five-axis specification: if the dataflow, sparsity, or balancing
 * choices had broken the functionality, the outputs would differ.
 */

#ifndef STELLAR_CORE_SELFTEST_HPP
#define STELLAR_CORE_SELFTEST_HPP

#include <cstdint>
#include <string>

#include "core/accelerator.hpp"
#include "core/interpreter.hpp"

namespace stellar::core
{

/** Outcome of one self-test run. */
struct SelfTestResult
{
    bool passed = false;
    std::int64_t outputsChecked = 0;
    std::string failure; //!< empty when passed

    /** PE utilization observed while executing the schedule. */
    double utilization = 0.0;
};

/**
 * Run the self-test with deterministic random inputs. Specs that use
 * data-dependent (Indirect) accesses need hand-built inputs and are
 * rejected with a FatalError.
 */
SelfTestResult selfTest(const GeneratedAccelerator &accel,
                        std::uint64_t seed);

/**
 * Random inputs covering every coordinate the design's assignments
 * read from each Input tensor (exposed for tests and custom drivers).
 */
TensorSet randomInputsFor(const GeneratedAccelerator &accel,
                          std::uint64_t seed);

} // namespace stellar::core

#endif // STELLAR_CORE_SELFTEST_HPP
