/**
 * @file
 * Schedule execution: run a generated accelerator's space-time schedule
 * cycle by cycle and check it against the functional golden model.
 *
 * Every iteration point executes at the time the space-time transform
 * assigns it (Fig 9c). Points are processed in increasing timestep
 * order; combinational (zero-time-displacement) chains within a cycle
 * are ordered along their spatial direction, exactly as signals ripple
 * through an unpipelined broadcast wire. Executing in schedule order —
 * rather than the interpreter's lexicographic order — validates that
 * the dataflow is causal in practice and yields per-cycle PE activity,
 * the utilization statistic the evaluation reports.
 */

#ifndef STELLAR_CORE_SCHEDULE_HPP
#define STELLAR_CORE_SCHEDULE_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "core/accelerator.hpp"
#include "core/interpreter.hpp"

namespace stellar::core
{

/** Result of executing a schedule. */
struct ScheduleResult
{
    TensorSet tensors;

    std::int64_t cycles = 0;
    std::int64_t numPes = 0;

    /** Active PEs per timestep (schedule-relative). */
    std::vector<std::int64_t> activePerCycle;

    /** Mean fraction of PEs active per cycle. */
    double utilization() const;

    /** Peak PEs active in any single cycle. */
    std::int64_t peakActive() const;
};

/**
 * Execute the accelerator's schedule over the given inputs. Throws
 * FatalError if the schedule ever reads a value that has not been
 * produced yet (a causality violation the generator should have
 * rejected).
 */
ScheduleResult executeSchedule(const GeneratedAccelerator &accel,
                               const TensorSet &inputs);

} // namespace stellar::core

#endif // STELLAR_CORE_SCHEDULE_HPP
