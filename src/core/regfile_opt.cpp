#include "core/regfile_opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace stellar::core
{

std::string
regfileKindName(RegfileKind kind)
{
    switch (kind) {
      case RegfileKind::FeedForward: return "feed-forward";
      case RegfileKind::Transposing: return "transposing";
      case RegfileKind::EdgeIO: return "edge-io";
      case RegfileKind::FullyAssociative: return "fully-associative";
    }
    return "unknown";
}

RegfileConfig
configForKind(RegfileKind kind, std::int64_t entries, std::int64_t in_ports,
              std::int64_t out_ports)
{
    RegfileConfig config;
    config.kind = kind;
    config.entries = entries;
    config.inPorts = in_ports;
    config.outPorts = out_ports;
    switch (kind) {
      case RegfileKind::FeedForward:
        // Pure shift registers: each output port observes exactly one
        // entry; no searching at all (Fig 14c).
        config.comparators = 0;
        config.muxes = 0;
        break;
      case RegfileKind::Transposing:
        // Shift registers with selectable entry/exit edges (Fig 14d):
        // one 2-way mux per entry, still no comparators.
        config.comparators = 0;
        config.muxes = entries;
        break;
      case RegfileKind::EdgeIO: {
        // Ports only at the edges: each port searches one edge's worth of
        // entries (~sqrt for a square layout) instead of all of them.
        auto edge = std::int64_t(std::ceil(std::sqrt(double(entries))));
        config.comparators = edge * (in_ports + out_ports);
        config.muxes = edge * out_ports;
        break;
      }
      case RegfileKind::FullyAssociative:
        // Every port searches every entry (Fig 14a).
        config.comparators = entries * (in_ports + out_ports);
        config.muxes = entries * out_ports;
        break;
    }
    return config;
}

namespace
{

/** True when the consumer's per-step groups are monotone along an axis,
 *  which lets IO be restricted to the regfile edge on that axis. */
bool
monotoneAlongSomeAxis(const mem::AccessOrder &consumer)
{
    if (consumer.steps() == 0)
        return true;
    std::size_t dims = 0;
    for (std::size_t t = 0; t < consumer.steps(); t++)
        if (!consumer.step(t).empty())
            dims = consumer.step(t)[0].size();
    for (std::size_t axis = 0; axis < dims; axis++) {
        bool monotone = true;
        std::int64_t last_min = std::numeric_limits<std::int64_t>::min();
        for (std::size_t t = 0; t < consumer.steps() && monotone; t++) {
            const auto &group = consumer.step(t);
            if (group.empty())
                continue;
            std::int64_t group_min = group[0][axis];
            std::int64_t group_max = group[0][axis];
            for (const auto &coord : group) {
                group_min = std::min(group_min, coord[axis]);
                group_max = std::max(group_max, coord[axis]);
            }
            if (group_min < last_min)
                monotone = false;
            last_min = std::max(last_min, group_min);
        }
        if (monotone)
            return true;
    }
    return false;
}

} // namespace

RegfileConfig
optimizeRegfile(const mem::AccessOrder &producer,
                const mem::AccessOrder &consumer, std::int64_t entries)
{
    auto in_ports = std::int64_t(producer.maxPerStep());
    auto out_ports = std::int64_t(consumer.maxPerStep());
    in_ports = std::max<std::int64_t>(in_ports, 1);
    out_ports = std::max<std::int64_t>(out_ports, 1);

    // Pass 1: inputs always leave in exactly the order they entered.
    if (producer == consumer) {
        return configForKind(RegfileKind::FeedForward, entries, in_ports,
                             out_ports);
    }

    // Pass 2: the orders match after a coordinate transposition.
    std::size_t dims = 0;
    for (std::size_t t = 0; t < producer.steps() && dims == 0; t++)
        if (!producer.step(t).empty())
            dims = producer.step(t)[0].size();
    for (std::size_t a = 0; a < dims; a++) {
        for (std::size_t b = a + 1; b < dims; b++) {
            if (consumer.isTransposeOf(producer, int(a), int(b))) {
                return configForKind(RegfileKind::Transposing, entries,
                                     in_ports, out_ports);
            }
        }
    }

    // Pass 3: same elements, and consumption is monotone along an axis,
    // so IO can be confined to the regfile edges.
    if (producer.samePopulation(consumer) &&
            monotoneAlongSomeAxis(consumer)) {
        return configForKind(RegfileKind::EdgeIO, entries, in_ports,
                             out_ports);
    }

    // Fallback: the baseline fully-associative design.
    return configForKind(RegfileKind::FullyAssociative, entries, in_ports,
                         out_ports);
}

} // namespace stellar::core
