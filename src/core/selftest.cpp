#include "core/selftest.hpp"

#include <cmath>
#include <sstream>

#include "core/schedule.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace stellar::core
{

TensorSet
randomInputsFor(const GeneratedAccelerator &accel, std::uint64_t seed)
{
    const auto &spec = accel.spec.functional;
    const auto &bounds = accel.iterSpace.bounds();
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x53ULL);

    // Collect every coordinate each Input tensor is read at, across all
    // assignments and all interior points.
    TensorSet inputs;
    std::vector<func::ExprPtr> accesses;
    for (const auto &assign : spec.assignments())
        func::collectAccesses(assign.rhs.node(), accesses);
    for (const auto &access : accesses) {
        if (spec.tensorKind(access->tensor) != func::TensorKind::Input)
            continue;
        require(access->op != func::ExprOp::Indirect,
                "self-test cannot synthesize inputs for data-dependent "
                "accesses; provide inputs manually");
    }
    accel.iterSpace.forEachPoint([&](const IntVec &point) {
        for (const auto &access : accesses) {
            if (spec.tensorKind(access->tensor) !=
                    func::TensorKind::Input) {
                continue;
            }
            IntVec coords;
            for (const auto &expr : access->coords)
                coords.push_back(expr.evaluate(point, bounds));
            auto &data = inputs[access->tensor];
            if (!data.count(coords))
                data[coords] = double(rng.nextRange(-4, 4));
        }
    });
    return inputs;
}

SelfTestResult
selfTest(const GeneratedAccelerator &accel, std::uint64_t seed)
{
    const auto &spec = accel.spec.functional;
    SelfTestResult result;
    auto inputs = randomInputsFor(accel, seed);

    auto golden = evaluateSpec(spec, accel.iterSpace.bounds(), inputs);
    auto schedule = executeSchedule(accel, inputs);
    result.utilization = schedule.utilization();

    for (int t = 0; t < spec.numTensors(); t++) {
        if (spec.tensorKind(t) != func::TensorKind::Output)
            continue;
        auto golden_it = golden.find(t);
        auto sched_it = schedule.tensors.find(t);
        const TensorData empty;
        const TensorData &expect =
                golden_it == golden.end() ? empty : golden_it->second;
        const TensorData &actual =
                sched_it == schedule.tensors.end() ? empty
                                                   : sched_it->second;
        for (const auto &[coords, value] : expect) {
            result.outputsChecked++;
            double got = tensorAt(actual, coords);
            if (std::abs(got - value) > 1e-9) {
                std::ostringstream os;
                os << spec.tensorNames()[std::size_t(t)]
                   << vecToString(coords) << " = " << got << ", expected "
                   << value;
                result.failure = os.str();
                result.passed = false;
                return result;
            }
        }
    }
    result.passed = true;
    return result;
}

} // namespace stellar::core
