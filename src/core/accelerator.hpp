/**
 * @file
 * The five-axis accelerator specification and the generation driver.
 *
 * An AcceleratorSpec bundles the five independently-specified design
 * concerns of Section III: functionality, dataflow, sparse data
 * structures, load balancing, and private memory buffers. generate()
 * runs the compiler pipeline of Fig 7: elaborate the IterationSpace,
 * prune its connections, apply the space-time transform, and run the
 * regfile optimization passes. The result feeds the RTL backend
 * (src/rtl), the cost models (src/model), and the simulator (src/sim).
 */

#ifndef STELLAR_CORE_ACCELERATOR_HPP
#define STELLAR_CORE_ACCELERATOR_HPP

#include <optional>
#include <string>
#include <vector>

#include "balance/shift.hpp"
#include "core/iteration_space.hpp"
#include "core/prune.hpp"
#include "core/regfile_opt.hpp"
#include "core/spatial_array.hpp"
#include "dataflow/transform.hpp"
#include "func/diagnose.hpp"
#include "func/spec.hpp"
#include "mem/buffer_spec.hpp"
#include "sparsity/skip.hpp"

namespace stellar::core
{

/** The complete, five-axis specification of one accelerator. */
struct AcceleratorSpec
{
    std::string name;
    func::FunctionalSpec functional{"unnamed"};
    dataflow::SpaceTimeTransform transform;
    sparsity::SparsitySpec sparsity;
    balance::BalanceSpec balancing;
    std::vector<mem::MemBufferSpec> buffers;

    /** Concrete iterator bounds the hardware is elaborated for. */
    IntVec elaborationBounds;
};

/** The regfile generated for one external tensor. */
struct RegfilePlan
{
    int externalTensor = -1;
    std::string tensorName;
    RegfileConfig config;
};

/** Everything the compiler produced for one accelerator. */
struct GeneratedAccelerator
{
    AcceleratorSpec spec;
    IterationSpace iterSpace;   //!< post-pruning (Fig 9b)
    SpatialArray array;         //!< post-transform (Fig 9c)
    std::vector<RegfilePlan> regfiles;
    std::vector<PruneDecision> pruneLog;

    /** Advisory findings from func::diagnose on the functional spec. */
    std::vector<func::Diagnostic> diagnostics;

    /** The regfile plan for a tensor by name; nullptr when absent. */
    const RegfilePlan *regfileFor(const std::string &tensor) const;
};

/** Run the full generation pipeline of Fig 7. */
GeneratedAccelerator generate(const AcceleratorSpec &spec);

} // namespace stellar::core

#endif // STELLAR_CORE_ACCELERATOR_HPP
