/**
 * @file
 * Physical spatial arrays (Section IV-B, Figs 9c and 11).
 *
 * Applying the space-time transform to a pruned IterationSpace folds its
 * Points onto processing elements: every distinct spatial coordinate is a
 * PE, and Points mapping to the same PE become different timesteps of
 * that PE. Surviving conn classes become PE-to-PE wires with as many
 * pipeline registers as their time displacement; IOConns become regfile
 * ports on the PEs where they fire.
 */

#ifndef STELLAR_CORE_SPATIAL_ARRAY_HPP
#define STELLAR_CORE_SPATIAL_ARRAY_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/iteration_space.hpp"
#include "dataflow/transform.hpp"
#include "mem/access_order.hpp"

namespace stellar::core
{

/** One processing element of the generated array (Fig 11). */
struct ProcessingElement
{
    IntVec position;

    /** How many iteration points fold onto this PE (time-multiplexing). */
    std::int64_t foldedPoints = 0;

    /** First and last timestep at which this PE is active. */
    std::int64_t firstTime = 0;
    std::int64_t lastTime = 0;
};

/** A physical wire class between adjacent PEs. */
struct PeWire
{
    int tensor = -1;
    IntVec spaceDelta;          //!< displacement between source and dest PE
    std::int64_t registers = 0; //!< pipeline registers on the wire (Fig 3)
    int bundleSize = 1;         //!< >1 for OptimisticSkip bundles (Fig 5)
    std::int64_t instances = 0; //!< physical wires of this class
    std::int64_t wireLength = 0;//!< Manhattan length per instance
};

/** A regfile port class on the array boundary or across all PEs. */
struct PePortClass
{
    int tensor = -1;
    int externalTensor = -1;
    bool isInput = true;
    bool perPoint = false;
    std::int64_t portCount = 0; //!< physical ports of this class
    std::int64_t maxPerCycle = 0; //!< peak simultaneous accesses per cycle
};

/** The generated spatial array. */
class SpatialArray
{
  public:
    SpatialArray() = default;

    const dataflow::SpaceTimeTransform &transform() const { return transform_; }

    const std::vector<ProcessingElement> &pes() const { return pes_; }
    const std::vector<PeWire> &wires() const { return wires_; }
    const std::vector<PePortClass> &ports() const { return ports_; }

    std::int64_t numPes() const { return std::int64_t(pes_.size()); }

    /** Extent of the array along each spatial axis (max - min + 1). */
    IntVec extents() const;

    std::int64_t totalWires() const;
    std::int64_t totalWireLength() const;
    std::int64_t totalPorts() const;

    /** Largest number of points folded onto a single PE. */
    std::int64_t maxFolding() const;

    /** Total timesteps from first input to last output. */
    std::int64_t scheduleLength() const { return scheduleLength_; }

    std::string toString(const func::FunctionalSpec &spec) const;

  private:
    friend SpatialArray applyTransform(
            const IterationSpace &space,
            const dataflow::SpaceTimeTransform &transform);
    friend SpatialArray applyTransformNaive(
            const IterationSpace &space,
            const dataflow::SpaceTimeTransform &transform);

    dataflow::SpaceTimeTransform transform_;
    std::vector<ProcessingElement> pes_;
    std::vector<PeWire> wires_;
    std::vector<PePortClass> ports_;
    std::int64_t scheduleLength_ = 0;
};

/**
 * Map a pruned IterationSpace through a space-time transform.
 *
 * This is the fused fast path the DSE scores candidates through: one
 * pass over the iteration space computes PE folding, per-wire source
 * sets, and per-port cycle histograms together, indexing flat scratch
 * tables by a mixed-radix int64 encoding of the (bounded) spatial
 * position instead of allocating IntVec keys into std::map/std::set.
 * Falls back to applyTransformNaive when the spatial image box is too
 * large (or overflows) to index densely; both paths produce
 * byte-identical arrays.
 */
SpatialArray applyTransform(const IterationSpace &space,
                            const dataflow::SpaceTimeTransform &transform);

/**
 * Reference implementation of applyTransform: one full walk per
 * concern, ordered containers, no scratch reuse. Kept as the oracle for
 * the fused fast path's property tests (and as the fallback when the
 * spatial image box cannot be densely indexed).
 */
SpatialArray applyTransformNaive(const IterationSpace &space,
                                 const dataflow::SpaceTimeTransform &transform);

/**
 * The order in which a spatial array consumes an input tensor or produces
 * an output tensor, derived from its IOConns and dataflow (Fig 13b):
 * per timestep, the external-tensor coordinates accessed at that step.
 */
mem::AccessOrder arrayAccessOrder(const IterationSpace &space,
                                  const dataflow::SpaceTimeTransform &t,
                                  int external_tensor);

} // namespace stellar::core

#endif // STELLAR_CORE_SPATIAL_ARRAY_HPP
