#include "core/accelerator.hpp"

#include <set>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"

namespace stellar::core
{

const RegfilePlan *
GeneratedAccelerator::regfileFor(const std::string &tensor) const
{
    for (const auto &plan : regfiles)
        if (plan.tensorName == tensor)
            return &plan;
    return nullptr;
}

namespace
{

/** Number of distinct elements of a tensor touched by the array. */
std::int64_t
touchedElements(const mem::AccessOrder &order)
{
    std::set<IntVec> coords;
    for (std::size_t t = 0; t < order.steps(); t++)
        for (const auto &coord : order.step(t))
            coords.insert(coord);
    return std::int64_t(coords.size());
}

} // namespace

GeneratedAccelerator
generate(const AcceleratorSpec &spec)
{
    spec.functional.validate();
    require(spec.transform.dims() == spec.functional.numIndices(),
            "dataflow transform rank must match the functional spec");
    require(spec.transform.isCausalFor(spec.functional),
            "dataflow transform is not causal for this functional spec");

    // Fig 7 pipeline: elaborate, prune, transform. Each stage opens
    // with a fault-injection checkpoint so the robustness harness can
    // fail a candidate at any point of the pipeline.
    util::fault::checkpoint("generate.elaborate");
    IterationSpace space = elaborate(spec.functional,
                                     spec.elaborationBounds);
    util::fault::checkpoint("generate.prune");
    std::vector<PruneDecision> log;
    for (auto &decision : applySparsity(space, spec.sparsity))
        log.push_back(std::move(decision));
    for (auto &decision :
             applyBalancing(space, spec.balancing, spec.transform)) {
        log.push_back(std::move(decision));
    }
    util::fault::checkpoint("generate.transform");
    SpatialArray array = applyTransform(space, spec.transform);

    // Regfile optimization per external tensor (Section IV-D): compare
    // the buffer's emit order (known when its read parameters are
    // hardcoded) with the array's consumption order.
    util::fault::checkpoint("generate.regfiles");
    GeneratedAccelerator result{spec, space, array, {}, std::move(log),
                                func::diagnose(spec.functional)};
    const auto &fn = spec.functional;
    for (int t = 0; t < fn.numTensors(); t++) {
        if (fn.tensorKind(t) == func::TensorKind::Intermediate)
            continue;
        mem::AccessOrder consumer =
                arrayAccessOrder(space, spec.transform, t);
        if (consumer.steps() == 0)
            continue;
        std::int64_t entries = touchedElements(consumer);

        RegfilePlan plan;
        plan.externalTensor = t;
        plan.tensorName = fn.tensorNames()[std::size_t(t)];

        const mem::MemBufferSpec *buffer = nullptr;
        for (const auto &candidate : spec.buffers)
            if (candidate.boundTensor == plan.tensorName)
                buffer = &candidate;

        if (buffer != nullptr &&
                buffer->hardcodedRead.fullySpecified(buffer->format.rank()) &&
                buffer->format.isAllDense()) {
            mem::AccessOrder producer = mem::bufferEmitOrder(*buffer);
            plan.config = optimizeRegfile(producer, consumer, entries);
        } else {
            // Producer order unknown at elaboration time: fall back to
            // the baseline fully-associative design (Fig 14a).
            auto ports = std::int64_t(consumer.maxPerStep());
            plan.config = configForKind(RegfileKind::FullyAssociative,
                                        entries, std::max<std::int64_t>(ports, 1),
                                        std::max<std::int64_t>(ports, 1));
        }
        result.regfiles.push_back(std::move(plan));
    }
    return result;
}

} // namespace stellar::core
