/**
 * @file
 * Connection pruning (Section IV-B).
 *
 * Sparsity: skipping an iterator s makes its expanded coordinate a
 * symbolic function f of the compressed coordinate and the iterators in
 * deps(s). A Point2PointConn carrying variable v along direction d is
 * only valid when, for every *identity* index m of v (the iterators that
 * determine which logical value v carries), the expanded coordinate
 * difference along d is the constant the dense analysis assumed. When
 * that difference becomes symbolic, the conn is removed and replaced by
 * per-point IOConns to outer register files (Fig 4) — unless the skip is
 * optimistic, in which case the conn is widened into a bundle (Fig 5).
 *
 * Load balancing: per-PE balancing re-targets individual PEs at runtime,
 * so conns moving along a per-PE-balanced spatial axis can no longer be
 * trusted and are likewise replaced by IOConns (Fig 10b).
 */

#ifndef STELLAR_CORE_PRUNE_HPP
#define STELLAR_CORE_PRUNE_HPP

#include <string>
#include <vector>

#include "balance/shift.hpp"
#include "core/iteration_space.hpp"
#include "dataflow/transform.hpp"
#include "sparsity/skip.hpp"

namespace stellar::core
{

/** One pruning decision, for reports and tests. */
struct PruneDecision
{
    int tensor = -1;
    IntVec diff;
    PruneReason reason = PruneReason::NotPruned;
    bool bundled = false;
    std::string explanation;
};

/**
 * Apply the sparsity specification to an IterationSpace: prune (or
 * bundle) conn classes whose expanded-coordinate differences become
 * symbolic, and add per-point IOConns for the pruned variables.
 * Returns the decisions made.
 */
std::vector<PruneDecision> applySparsity(IterationSpace &space,
                                         const sparsity::SparsitySpec &spec);

/**
 * Apply the load-balancing specification: prune conn classes that move
 * along per-PE-balanced spatial axes of the given dataflow.
 */
std::vector<PruneDecision> applyBalancing(
        IterationSpace &space, const balance::BalanceSpec &spec,
        const dataflow::SpaceTimeTransform &transform);

} // namespace stellar::core

#endif // STELLAR_CORE_PRUNE_HPP
