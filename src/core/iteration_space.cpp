#include "core/iteration_space.hpp"

#include <sstream>

#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::core
{

IterationSpace::IterationSpace(const func::FunctionalSpec &spec,
                               IntVec bounds)
    : spec_(spec), bounds_(std::move(bounds))
{
    require(int(bounds_.size()) == spec.numIndices(),
            "elaboration bounds must cover every iterator");
    for (auto bound : bounds_)
        require(bound > 0, "elaboration bounds must be positive");
}

std::int64_t
IterationSpace::numPoints() const
{
    std::int64_t n = 1;
    for (auto bound : bounds_)
        n *= bound;
    return n;
}

void
IterationSpace::forEachPoint(
        const std::function<void(const IntVec &)> &fn) const
{
    // Type-erased entry point; the template overload carries the walk
    // (and its batched watchdog accounting) for both.
    forEachPoint<const std::function<void(const IntVec &)> &>(fn);
}

bool
IterationSpace::isInterior(const IntVec &point) const
{
    if (point.size() != bounds_.size())
        return false;
    for (std::size_t i = 0; i < point.size(); i++)
        if (point[i] < 0 || point[i] >= bounds_[i])
            return false;
    return true;
}

std::vector<Point2PointConn>
IterationSpace::aliveConns() const
{
    std::vector<Point2PointConn> out;
    for (const auto &conn : conns_)
        if (conn.alive())
            out.push_back(conn);
    return out;
}

const Point2PointConn *
IterationSpace::aliveConnFor(int tensor) const
{
    for (const auto &conn : conns_)
        if (conn.tensor == tensor && conn.alive())
            return &conn;
    return nullptr;
}

std::int64_t
IterationSpace::connInstances(const Point2PointConn &conn) const
{
    // A conn instance exists at every p where both p and p - diff are
    // interior; the count is the product of (bound - |diff|) per axis.
    std::int64_t n = 1;
    for (std::size_t i = 0; i < bounds_.size(); i++) {
        std::int64_t d = conn.diff[i];
        std::int64_t span = bounds_[i] - (d < 0 ? -d : d);
        if (span <= 0)
            return 0;
        n *= span;
    }
    return n;
}

std::int64_t
IterationSpace::totalConnInstances() const
{
    std::int64_t total = 0;
    for (const auto &conn : conns_)
        if (conn.alive())
            total += connInstances(conn);
    return total;
}

std::int64_t
IterationSpace::ioInstances(const IOConn &io) const
{
    if (io.perPoint)
        return numPoints();
    // Boundary IO fires on the face where the boundary iterator is at its
    // first (input) or last (output) value: the product of other bounds.
    std::int64_t n = 1;
    for (std::size_t i = 0; i < bounds_.size(); i++)
        if (int(i) != io.boundaryIndex)
            n *= bounds_[i];
    return n;
}

std::string
IterationSpace::toString() const
{
    std::ostringstream os;
    os << "IterationSpace of " << spec_.name() << " bounds "
       << vecToString(bounds_) << "\n";
    for (const auto &conn : conns_) {
        os << "  conn " << spec_.tensorNames()[std::size_t(conn.tensor)]
           << " diff " << vecToString(conn.diff);
        if (conn.bundled)
            os << " [bundle=" << conn.bundleSize << "]";
        switch (conn.pruned) {
          case PruneReason::NotPruned:
            break;
          case PruneReason::Sparsity:
            os << " [pruned: sparsity]";
            break;
          case PruneReason::LoadBalancing:
            os << " [pruned: load-balancing]";
            break;
        }
        os << "\n";
    }
    for (const auto &io : ioConns_) {
        os << "  io " << spec_.tensorNames()[std::size_t(io.tensor)]
           << (io.isInput ? " <- " : " -> ");
        if (io.externalTensor >= 0)
            os << spec_.tensorNames()[std::size_t(io.externalTensor)];
        else
            os << "<regfile>";
        os << (io.perPoint ? " (per-point)" : " (boundary)") << "\n";
    }
    return os.str();
}

IterationSpace
elaborate(const func::FunctionalSpec &spec, const IntVec &bounds)
{
    spec.validate();
    IterationSpace space(spec, bounds);

    // Conn classes: one per uniform recurrence with a nonzero direction.
    for (const auto &rec : spec.recurrences()) {
        if (vecIsZero(rec.diff))
            continue;
        Point2PointConn conn;
        conn.tensor = rec.tensor;
        conn.diff = rec.diff;
        space.conns().push_back(std::move(conn));
    }

    // Boundary IOConns from the input/output bindings.
    for (const auto &binding : spec.inputBindings()) {
        IOConn io;
        io.tensor = binding.intermediate;
        io.externalTensor = binding.external;
        io.isInput = true;
        io.boundaryIndex = binding.boundaryIndex;
        io.externalCoords = binding.externalCoords;
        space.ioConns().push_back(std::move(io));
    }
    for (const auto &binding : spec.outputBindings()) {
        IOConn io;
        io.tensor = binding.intermediate;
        io.externalTensor = binding.external;
        io.isInput = false;
        io.boundaryIndex = binding.boundaryIndex;
        io.externalCoords = binding.externalCoords;
        space.ioConns().push_back(std::move(io));
    }
    return space;
}

} // namespace stellar::core
