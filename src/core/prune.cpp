#include "core/prune.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::core
{

namespace
{

/** Add a per-point IOConn for a variable whose conn class was pruned. */
void
addPerPointIo(IterationSpace &space, int tensor)
{
    const auto &spec = space.spec();
    // Direction: a variable that is drained into an output tensor must be
    // written out per point; everything else is read in per point.
    bool is_input = true;
    int external = -1;
    std::vector<func::IndexExpr> coords;
    for (const auto &binding : spec.outputBindings()) {
        if (binding.intermediate == tensor) {
            is_input = false;
            external = binding.external;
            coords = binding.externalCoords;
        }
    }
    if (is_input) {
        for (const auto &binding : spec.inputBindings()) {
            if (binding.intermediate == tensor) {
                external = binding.external;
                coords = binding.externalCoords;
            }
        }
    }
    IOConn io;
    io.tensor = tensor;
    io.externalTensor = external;
    io.isInput = is_input;
    io.perPoint = true;
    io.externalCoords = std::move(coords);
    space.ioConns().push_back(std::move(io));
    // Accumulating variables that now scatter partial results also need to
    // *read* prior partial values per point.
    if (!is_input && spec.recurrenceDiff(tensor).has_value()) {
        IOConn rd = space.ioConns().back();
        rd.isInput = true;
        space.ioConns().push_back(std::move(rd));
    }
}

} // namespace

std::vector<PruneDecision>
applySparsity(IterationSpace &space, const sparsity::SparsitySpec &sparsity)
{
    std::vector<PruneDecision> decisions;
    if (sparsity.empty())
        return decisions;
    const auto &spec = space.spec();

    for (auto &conn : space.conns()) {
        if (!conn.alive())
            continue;
        auto identity = spec.identityIndices(conn.tensor);
        // An identity index m of v becomes symbolic along d when m is
        // skipped and either d moves along m itself or along one of the
        // iterators parameterizing m's expansion function.
        bool symbolic = false;
        bool all_optimistic = true;
        std::ostringstream why;
        for (int m : identity) {
            if (!sparsity.isSkipped(m))
                continue;
            bool moves = conn.diff[std::size_t(m)] != 0;
            for (int dep : sparsity.expansionDeps(m))
                if (conn.diff[std::size_t(dep)] != 0)
                    moves = true;
            if (moves) {
                symbolic = true;
                all_optimistic = all_optimistic && sparsity.isOptimistic(m);
                why << "expanded " << spec.indexNames()[std::size_t(m)]
                    << " is symbolic along "
                    << vecToString(conn.diff) << "; ";
            }
        }
        if (!symbolic)
            continue;
        PruneDecision decision;
        decision.tensor = conn.tensor;
        decision.diff = conn.diff;
        decision.explanation = why.str();
        if (all_optimistic) {
            // OptimisticSkip: retain the conn but widen it into a bundle
            // of potentially-useful values (Fig 5).
            conn.bundled = true;
            for (int m : identity)
                if (sparsity.isOptimistic(m))
                    conn.bundleSize = std::max(conn.bundleSize,
                                               sparsity.bundleSizeOf(m));
            decision.bundled = true;
        } else {
            conn.pruned = PruneReason::Sparsity;
            decision.reason = PruneReason::Sparsity;
            addPerPointIo(space, conn.tensor);
        }
        decisions.push_back(std::move(decision));
    }
    return decisions;
}

std::vector<PruneDecision>
applyBalancing(IterationSpace &space, const balance::BalanceSpec &spec,
               const dataflow::SpaceTimeTransform &transform)
{
    std::vector<PruneDecision> decisions;
    if (spec.empty())
        return decisions;
    auto per_pe_axes = spec.perPeAxes(transform);
    if (per_pe_axes.empty())
        return decisions;

    for (auto &conn : space.conns()) {
        if (!conn.alive())
            continue;
        auto delta = transform.deltaOf(conn.diff);
        bool crosses = false;
        for (int axis : per_pe_axes)
            if (delta.space[std::size_t(axis)] != 0)
                crosses = true;
        if (!crosses)
            continue;
        conn.pruned = PruneReason::LoadBalancing;
        addPerPointIo(space, conn.tensor);
        PruneDecision decision;
        decision.tensor = conn.tensor;
        decision.diff = conn.diff;
        decision.reason = PruneReason::LoadBalancing;
        decision.explanation =
                "conn crosses a per-PE load-balanced spatial axis";
        decisions.push_back(std::move(decision));
    }
    return decisions;
}

} // namespace stellar::core
