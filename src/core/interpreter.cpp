#include "core/interpreter.hpp"

#include <algorithm>
#include <functional>

#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"

namespace stellar::core
{

using func::ExprOp;
using func::ExprPtr;

double
evalExprAt(const ExprPtr &node, const IntVec &point, const IntVec &bounds,
           const TensorSet &tensors)
{
    invariant(node != nullptr, "evaluating a null expression");
    auto operand = [&](std::size_t i) {
        return evalExprAt(node->operands[i], point, bounds, tensors);
    };
    switch (node->op) {
      case ExprOp::Constant:
        return node->value;
      case ExprOp::Access:
      case ExprOp::Indirect: {
        IntVec coords;
        for (std::size_t i = 0; i < node->coords.size(); i++) {
            if (node->op == ExprOp::Indirect && int(i) == node->indirectPos)
                coords.push_back(std::int64_t(operand(0)));
            else
                coords.push_back(node->coords[i].evaluate(point, bounds));
        }
        auto it = tensors.find(node->tensor);
        if (it == tensors.end())
            return 0.0;
        return tensorAt(it->second, coords);
      }
      case ExprOp::Add: return operand(0) + operand(1);
      case ExprOp::Sub: return operand(0) - operand(1);
      case ExprOp::Mul: return operand(0) * operand(1);
      case ExprOp::Div: return operand(0) / operand(1);
      case ExprOp::Min: return std::min(operand(0), operand(1));
      case ExprOp::Max: return std::max(operand(0), operand(1));
      case ExprOp::Eq: return operand(0) == operand(1) ? 1.0 : 0.0;
      case ExprOp::Ne: return operand(0) != operand(1) ? 1.0 : 0.0;
      case ExprOp::Lt: return operand(0) < operand(1) ? 1.0 : 0.0;
      case ExprOp::Le: return operand(0) <= operand(1) ? 1.0 : 0.0;
      case ExprOp::And: return (operand(0) != 0.0 && operand(1) != 0.0)
                               ? 1.0 : 0.0;
      case ExprOp::Or: return (operand(0) != 0.0 || operand(1) != 0.0)
                              ? 1.0 : 0.0;
      case ExprOp::Not: return operand(0) == 0.0 ? 1.0 : 0.0;
      case ExprOp::Select: return operand(0) != 0.0 ? operand(1)
                                                    : operand(2);
    }
    panic("unhandled expression op");
}

bool
assignmentDefinesHalo(const func::Assignment &assign)
{
    for (const auto &coord : assign.lhs.coords)
        if (coord.kind == func::IndexExpr::Kind::LowerHalo)
            return true;
    return false;
}

IntVec
evalLhsCoordsAt(const func::Assignment &assign, const IntVec &point,
                const IntVec &bounds)
{
    IntVec coords;
    for (const auto &coord : assign.lhs.coords)
        coords.push_back(coord.evaluate(point, bounds));
    return coords;
}

namespace
{

void
forEachPointLex(const IntVec &bounds,
                const std::function<void(const IntVec &)> &fn)
{
    IntVec point(bounds.size(), 0);
    while (true) {
        fn(point);
        int axis = int(bounds.size()) - 1;
        while (axis >= 0) {
            if (++point[std::size_t(axis)] < bounds[std::size_t(axis)])
                break;
            point[std::size_t(axis)] = 0;
            axis--;
        }
        if (axis < 0)
            return;
    }
}

} // namespace

TensorData
denseToTensor(const std::vector<double> &values, std::int64_t rows,
              std::int64_t cols)
{
    require(std::int64_t(values.size()) == rows * cols,
            "denseToTensor size mismatch");
    TensorData data;
    for (std::int64_t r = 0; r < rows; r++)
        for (std::int64_t c = 0; c < cols; c++)
            data[{r, c}] = values[std::size_t(r * cols + c)];
    return data;
}

double
tensorAt(const TensorData &data, const IntVec &coords)
{
    auto it = data.find(coords);
    return it == data.end() ? 0.0 : it->second;
}

TensorSet
evaluateSpec(const func::FunctionalSpec &spec, const IntVec &bounds,
             const TensorSet &inputs)
{
    util::fault::checkpoint("interpreter.evaluate");
    spec.validate();
    require(int(bounds.size()) == spec.numIndices(),
            "evaluateSpec bounds must cover every iterator");

    // Watchdog: one step per (pass, point) visit. The dump names the
    // pass and the last point executed so a budget expiry reports where
    // the walk was, not just that it ran long.
    auto walk = [&](const char *pass,
                    const std::function<void(const IntVec &)> &body) {
        forEachPointLex(bounds, [&](const IntVec &point) {
            util::watchdogTick(1, [&]() {
                return std::string(pass) + " pass, last point " +
                       vecToString(point);
            });
            body(point);
        });
    };

    // Lexicographic execution is only valid when every recurrence moves
    // lexicographically forward.
    for (const auto &rec : spec.recurrences()) {
        bool forward = true;
        for (auto d : rec.diff) {
            if (d > 0)
                break;
            if (d < 0) {
                forward = false;
                break;
            }
        }
        require(forward, "spec has a lexicographically backward recurrence; "
                         "the reference interpreter cannot order it");
    }

    TensorSet tensors = inputs;

    // Pass 1: halo definitions (external inputs entering the array).
    walk("halo", [&](const IntVec &point) {
        for (const auto &assign : spec.assignments()) {
            if (!assignmentDefinesHalo(assign))
                continue;
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            auto &data = tensors[assign.lhs.tensor];
            if (data.count(coords))
                continue;
            data[coords] = evalExprAt(assign.rhs.node(), point, bounds,
                                      tensors);
        }
    });

    // Pass 2: interior intermediate computation, first definition wins.
    walk("intermediate", [&](const IntVec &point) {
        for (const auto &assign : spec.assignments()) {
            if (assignmentDefinesHalo(assign))
                continue;
            if (spec.tensorKind(assign.lhs.tensor) !=
                    func::TensorKind::Intermediate) {
                continue;
            }
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            double value = evalExprAt(assign.rhs.node(), point, bounds,
                                      tensors);
            tensors[assign.lhs.tensor].try_emplace(coords, value);
        }
    });

    // Pass 3: outputs.
    walk("output", [&](const IntVec &point) {
        for (const auto &assign : spec.assignments()) {
            if (spec.tensorKind(assign.lhs.tensor) !=
                    func::TensorKind::Output) {
                continue;
            }
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            auto &data = tensors[assign.lhs.tensor];
            if (data.count(coords))
                continue;
            data[coords] = evalExprAt(assign.rhs.node(), point, bounds,
                                      tensors);
        }
    });
    return tensors;
}

} // namespace stellar::core
