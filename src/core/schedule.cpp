#include "core/schedule.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace stellar::core
{

double
ScheduleResult::utilization() const
{
    if (activePerCycle.empty() || numPes == 0)
        return 0.0;
    std::int64_t total = 0;
    for (auto active : activePerCycle)
        total += active;
    return double(total) /
           (double(activePerCycle.size()) * double(numPes));
}

std::int64_t
ScheduleResult::peakActive() const
{
    std::int64_t peak = 0;
    for (auto active : activePerCycle)
        peak = std::max(peak, active);
    return peak;
}

ScheduleResult
executeSchedule(const GeneratedAccelerator &accel, const TensorSet &inputs)
{
    const auto &spec = accel.spec.functional;
    const auto &bounds = accel.iterSpace.bounds();
    const auto &transform = accel.spec.transform;

    // Enumerate points with their timesteps and sort by (time, lex).
    // Recurrence difference vectors are lexicographically positive (the
    // interpreter validates this), so lexicographic order within a
    // timestep respects combinational (zero-delay) chains.
    for (const auto &rec : spec.recurrences()) {
        bool forward = true;
        for (auto d : rec.diff) {
            if (d > 0)
                break;
            if (d < 0) {
                forward = false;
                break;
            }
        }
        require(forward, "schedule execution requires lexicographically "
                         "forward recurrences");
    }

    struct ScheduledPoint
    {
        std::int64_t time;
        IntVec point;
    };
    std::vector<ScheduledPoint> schedule;
    schedule.reserve(std::size_t(accel.iterSpace.numPoints()));
    accel.iterSpace.forEachPoint([&](const IntVec &point) {
        schedule.push_back(ScheduledPoint{transform.timeOf(point), point});
    });
    std::sort(schedule.begin(), schedule.end(),
              [](const ScheduledPoint &a, const ScheduledPoint &b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  return a.point < b.point;
              });

    ScheduleResult result;
    result.numPes = accel.array.numPes();
    result.tensors = inputs;
    auto &tensors = result.tensors;

    // Halo pass: external inputs enter their register files before the
    // array starts.
    accel.iterSpace.forEachPoint([&](const IntVec &point) {
        for (const auto &assign : spec.assignments()) {
            if (!assignmentDefinesHalo(assign))
                continue;
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            auto &data = tensors[assign.lhs.tensor];
            if (!data.count(coords))
                data[coords] = evalExprAt(assign.rhs.node(), point, bounds,
                                          tensors);
        }
    });

    // Execute points in schedule order, with a causality check: every
    // read of an intermediate value must already be defined.
    std::int64_t min_time = schedule.empty() ? 0 : schedule.front().time;
    std::int64_t max_time = schedule.empty() ? -1 : schedule.back().time;
    result.cycles = max_time - min_time + 1;
    result.activePerCycle.assign(std::size_t(result.cycles), 0);

    for (const auto &scheduled : schedule) {
        const IntVec &point = scheduled.point;
        result.activePerCycle[std::size_t(scheduled.time - min_time)]++;
        for (const auto &assign : spec.assignments()) {
            if (assignmentDefinesHalo(assign))
                continue;
            if (spec.tensorKind(assign.lhs.tensor) !=
                    func::TensorKind::Intermediate) {
                continue;
            }
            // Causality: intermediate reads must already exist.
            std::vector<func::ExprPtr> accesses;
            func::collectAccesses(assign.rhs.node(), accesses);
            for (const auto &access : accesses) {
                if (spec.tensorKind(access->tensor) !=
                        func::TensorKind::Intermediate) {
                    continue;
                }
                if (access->op == func::ExprOp::Indirect)
                    continue; // runtime coordinate; checked by value
                IntVec coords;
                for (const auto &expr : access->coords)
                    coords.push_back(expr.evaluate(point, bounds));
                auto it = tensors.find(access->tensor);
                bool defined = it != tensors.end() &&
                               it->second.count(coords) > 0;
                require(defined,
                        "schedule causality violation: " +
                        spec.tensorNames()[std::size_t(access->tensor)] +
                        vecToString(coords) + " read at t=" +
                        std::to_string(scheduled.time) +
                        " before being produced");
            }
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            double value = evalExprAt(assign.rhs.node(), point, bounds,
                                      tensors);
            tensors[assign.lhs.tensor].try_emplace(coords, value);
        }
    }

    // Output pass: drain results into the output tensors.
    accel.iterSpace.forEachPoint([&](const IntVec &point) {
        for (const auto &assign : spec.assignments()) {
            if (spec.tensorKind(assign.lhs.tensor) !=
                    func::TensorKind::Output) {
                continue;
            }
            IntVec coords = evalLhsCoordsAt(assign, point, bounds);
            auto &data = tensors[assign.lhs.tensor];
            if (!data.count(coords))
                data[coords] = evalExprAt(assign.rhs.node(), point, bounds,
                                          tensors);
        }
    });
    return result;
}

} // namespace stellar::core
