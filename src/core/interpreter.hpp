/**
 * @file
 * A reference interpreter for functional specifications.
 *
 * The interpreter executes a FunctionalSpec directly over the tensor
 * iteration space, with no notion of dataflow, sparsity, or hardware.
 * It serves as the golden model against which generated accelerators
 * (and their simulations) are validated: whatever the hardware computes
 * must match what the interpreter computes.
 *
 * Semantics: every iterator ranges over [0, bound). LHS lowerBound
 * markers define halo values at coordinate -1; RHS upperBound markers
 * read coordinate bound-1. Points execute in lexicographic order, which
 * is valid whenever all recurrence difference vectors are lexicographically
 * nonnegative (checked). Within a point, the first assignment to define a
 * coordinate wins, matching the paper's listing order convention.
 */

#ifndef STELLAR_CORE_INTERPRETER_HPP
#define STELLAR_CORE_INTERPRETER_HPP

#include <map>

#include "func/spec.hpp"
#include "util/int_matrix.hpp"

namespace stellar::core
{

/** Sparse point-value storage for one tensor. */
using TensorData = std::map<IntVec, double>;

/** All tensor contents, keyed by tensor id. */
using TensorSet = std::map<int, TensorData>;

/**
 * Evaluate a specification over the given bounds. `inputs` must provide
 * data for every Input tensor (missing coordinates read as 0). Returns
 * the contents of every tensor, including intermediates; callers usually
 * read only the Output tensors.
 */
TensorSet evaluateSpec(const func::FunctionalSpec &spec, const IntVec &bounds,
                       const TensorSet &inputs);

/** Convert a row-major dense matrix into TensorData. */
TensorData denseToTensor(const std::vector<double> &values,
                         std::int64_t rows, std::int64_t cols);

/** Read one coordinate of a tensor (0.0 when absent). */
double tensorAt(const TensorData &data, const IntVec &coords);

/** Evaluate an expression at a concrete iteration point. Shared by the
 *  interpreter and the schedule executor. */
double evalExprAt(const func::ExprPtr &node, const IntVec &point,
                  const IntVec &bounds, const TensorSet &tensors);

/** True when an assignment's LHS carries a lower-halo marker. */
bool assignmentDefinesHalo(const func::Assignment &assign);

/** Evaluate an assignment's LHS coordinates at a point. */
IntVec evalLhsCoordsAt(const func::Assignment &assign, const IntVec &point,
                       const IntVec &bounds);

} // namespace stellar::core

#endif // STELLAR_CORE_INTERPRETER_HPP
