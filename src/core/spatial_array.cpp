#include "core/spatial_array.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "util/logging.hpp"

namespace stellar::core
{

IntVec
SpatialArray::extents() const
{
    if (pes_.empty())
        return {};
    std::size_t dims = pes_[0].position.size();
    IntVec lo(dims, std::numeric_limits<std::int64_t>::max());
    IntVec hi(dims, std::numeric_limits<std::int64_t>::min());
    for (const auto &pe : pes_) {
        for (std::size_t d = 0; d < dims; d++) {
            lo[d] = std::min(lo[d], pe.position[d]);
            hi[d] = std::max(hi[d], pe.position[d]);
        }
    }
    IntVec extent(dims);
    for (std::size_t d = 0; d < dims; d++)
        extent[d] = hi[d] - lo[d] + 1;
    return extent;
}

std::int64_t
SpatialArray::totalWires() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires_)
        total += wire.instances;
    return total;
}

std::int64_t
SpatialArray::totalWireLength() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires_)
        total += wire.instances * wire.wireLength;
    return total;
}

std::int64_t
SpatialArray::totalPorts() const
{
    std::int64_t total = 0;
    for (const auto &port : ports_)
        total += port.portCount;
    return total;
}

std::int64_t
SpatialArray::maxFolding() const
{
    std::int64_t max = 0;
    for (const auto &pe : pes_)
        max = std::max(max, pe.foldedPoints);
    return max;
}

std::string
SpatialArray::toString(const func::FunctionalSpec &spec) const
{
    std::ostringstream os;
    os << "SpatialArray (" << transform_.name() << "): " << numPes()
       << " PEs, extents " << vecToString(extents()) << ", schedule "
       << scheduleLength_ << " steps\n";
    for (const auto &wire : wires_) {
        os << "  wire " << spec.tensorNames()[std::size_t(wire.tensor)]
           << " delta " << vecToString(wire.spaceDelta) << " regs "
           << wire.registers << " x" << wire.instances;
        if (wire.bundleSize > 1)
            os << " bundle=" << wire.bundleSize;
        os << "\n";
    }
    for (const auto &port : ports_) {
        os << "  port " << spec.tensorNames()[std::size_t(port.tensor)]
           << (port.isInput ? " in" : " out") << " x" << port.portCount
           << (port.perPoint ? " (per-point)" : " (boundary)")
           << " peak/cycle " << port.maxPerCycle << "\n";
    }
    return os.str();
}

namespace
{

/** Enumerate the points at which an IOConn class fires. */
void
forEachIoPoint(const IterationSpace &space, const IOConn &io,
               const std::function<void(const IntVec &)> &fn)
{
    const auto &bounds = space.bounds();
    space.forEachPoint([&](const IntVec &p) {
        if (io.perPoint || io.boundaryIndex < 0) {
            fn(p);
            return;
        }
        auto b = std::size_t(io.boundaryIndex);
        std::int64_t edge = io.isInput ? 0 : bounds[b] - 1;
        if (p[b] == edge)
            fn(p);
    });
}

} // namespace

SpatialArray
applyTransform(const IterationSpace &space,
               const dataflow::SpaceTimeTransform &transform)
{
    require(transform.dims() == space.numIndices(),
            "transform dimensionality must match the iteration space");
    SpatialArray array;
    array.transform_ = transform;

    // Fold points onto PEs.
    std::map<IntVec, std::size_t> pe_index;
    std::int64_t min_time = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_time = std::numeric_limits<std::int64_t>::min();
    space.forEachPoint([&](const IntVec &p) {
        IntVec st = transform.apply(p);
        std::int64_t t = st.back();
        st.pop_back();
        auto [it, inserted] = pe_index.try_emplace(st, array.pes_.size());
        if (inserted) {
            ProcessingElement pe;
            pe.position = st;
            pe.firstTime = t;
            pe.lastTime = t;
            array.pes_.push_back(std::move(pe));
        }
        auto &pe = array.pes_[it->second];
        pe.foldedPoints++;
        pe.firstTime = std::min(pe.firstTime, t);
        pe.lastTime = std::max(pe.lastTime, t);
        min_time = std::min(min_time, t);
        max_time = std::max(max_time, t);
    });
    array.scheduleLength_ = max_time - min_time + 1;

    // Surviving conn classes become wires.
    for (const auto &conn : space.aliveConns()) {
        auto delta = transform.deltaOf(conn.diff);
        if (vecIsZero(delta.space))
            continue; // stationary: internal PE register, not a wire
        PeWire wire;
        wire.tensor = conn.tensor;
        wire.spaceDelta = delta.space;
        wire.registers = delta.time;
        wire.bundleSize = conn.bundled ? conn.bundleSize : 1;
        wire.wireLength = vecL1(delta.space);
        // Physical instances: distinct (source PE -> dest PE) pairs.
        std::set<IntVec> sources;
        space.forEachPoint([&](const IntVec &p) {
            IntVec src = vecSub(p, conn.diff);
            if (space.isInterior(src))
                sources.insert(transform.spaceOf(src));
        });
        wire.instances = std::int64_t(sources.size());
        array.wires_.push_back(std::move(wire));
    }

    // IOConn classes become regfile ports.
    for (const auto &io : space.ioConns()) {
        PePortClass port;
        port.tensor = io.tensor;
        port.externalTensor = io.externalTensor;
        port.isInput = io.isInput;
        port.perPoint = io.perPoint;
        std::set<IntVec> port_pes;
        std::map<std::int64_t, std::int64_t> per_cycle;
        forEachIoPoint(space, io, [&](const IntVec &p) {
            port_pes.insert(transform.spaceOf(p));
            per_cycle[transform.timeOf(p)]++;
        });
        port.portCount = std::int64_t(port_pes.size());
        for (const auto &[t, n] : per_cycle)
            port.maxPerCycle = std::max(port.maxPerCycle, n);
        array.ports_.push_back(std::move(port));
    }
    return array;
}

mem::AccessOrder
arrayAccessOrder(const IterationSpace &space,
                 const dataflow::SpaceTimeTransform &t, int external_tensor)
{
    std::map<std::int64_t, std::vector<IntVec>> by_time;
    const auto &bounds = space.bounds();
    for (const auto &io : space.ioConns()) {
        if (io.externalTensor != external_tensor)
            continue;
        forEachIoPoint(space, io, [&](const IntVec &p) {
            IntVec coords;
            for (const auto &expr : io.externalCoords)
                coords.push_back(expr.evaluate(p, bounds));
            by_time[t.timeOf(p)].push_back(std::move(coords));
        });
    }
    mem::AccessOrder order;
    if (by_time.empty())
        return order;
    std::int64_t lo = by_time.begin()->first;
    std::int64_t hi = by_time.rbegin()->first;
    for (std::int64_t step = lo; step <= hi; step++) {
        auto it = by_time.find(step);
        order.addStep(it == by_time.end() ? std::vector<IntVec>{}
                                          : it->second);
    }
    return order;
}

} // namespace stellar::core
