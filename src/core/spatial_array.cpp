#include "core/spatial_array.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.hpp"
#include "util/saturate.hpp"
#include "util/watchdog.hpp"

namespace stellar::core
{

IntVec
SpatialArray::extents() const
{
    if (pes_.empty())
        return {};
    std::size_t dims = pes_[0].position.size();
    IntVec lo(dims, std::numeric_limits<std::int64_t>::max());
    IntVec hi(dims, std::numeric_limits<std::int64_t>::min());
    for (const auto &pe : pes_) {
        for (std::size_t d = 0; d < dims; d++) {
            lo[d] = std::min(lo[d], pe.position[d]);
            hi[d] = std::max(hi[d], pe.position[d]);
        }
    }
    IntVec extent(dims);
    for (std::size_t d = 0; d < dims; d++)
        extent[d] = hi[d] - lo[d] + 1;
    return extent;
}

std::int64_t
SpatialArray::totalWires() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires_)
        total += wire.instances;
    return total;
}

std::int64_t
SpatialArray::totalWireLength() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires_)
        total += wire.instances * wire.wireLength;
    return total;
}

std::int64_t
SpatialArray::totalPorts() const
{
    std::int64_t total = 0;
    for (const auto &port : ports_)
        total += port.portCount;
    return total;
}

std::int64_t
SpatialArray::maxFolding() const
{
    std::int64_t max = 0;
    for (const auto &pe : pes_)
        max = std::max(max, pe.foldedPoints);
    return max;
}

std::string
SpatialArray::toString(const func::FunctionalSpec &spec) const
{
    std::ostringstream os;
    os << "SpatialArray (" << transform_.name() << "): " << numPes()
       << " PEs, extents " << vecToString(extents()) << ", schedule "
       << scheduleLength_ << " steps\n";
    for (const auto &wire : wires_) {
        os << "  wire " << spec.tensorNames()[std::size_t(wire.tensor)]
           << " delta " << vecToString(wire.spaceDelta) << " regs "
           << wire.registers << " x" << wire.instances;
        if (wire.bundleSize > 1)
            os << " bundle=" << wire.bundleSize;
        os << "\n";
    }
    for (const auto &port : ports_) {
        os << "  port " << spec.tensorNames()[std::size_t(port.tensor)]
           << (port.isInput ? " in" : " out") << " x" << port.portCount
           << (port.perPoint ? " (per-point)" : " (boundary)")
           << " peak/cycle " << port.maxPerCycle << "\n";
    }
    return os.str();
}

namespace
{

/** Enumerate the points at which an IOConn class fires. */
template <typename Fn>
void
forEachIoPoint(const IterationSpace &space, const IOConn &io, Fn &&fn)
{
    const auto &bounds = space.bounds();
    space.forEachPoint([&](const IntVec &p) {
        if (io.perPoint || io.boundaryIndex < 0) {
            fn(p);
            return;
        }
        auto b = std::size_t(io.boundaryIndex);
        std::int64_t edge = io.isInput ? 0 : bounds[b] - 1;
        if (p[b] == edge)
            fn(p);
    });
}

/** Flat scratch tables above this many slots fall back to the naive walk. */
constexpr std::int64_t kDenseKeyLimit = std::int64_t(1) << 21;

/**
 * The affine image of the bounds box under a transform: per-spatial-axis
 * [lo, hi] ranges, mixed-radix strides that flatten a spatial position
 * into one int64 key, and the time range. `dense` is false when the box
 * product overflows or exceeds kDenseKeyLimit — the fused walk cannot
 * index it and the naive walk takes over.
 */
struct WalkGeometry
{
    int spaceDims = 0;
    IntVec lo;                        //!< per-axis image minimum
    std::vector<std::int64_t> stride; //!< mixed-radix key strides
    std::int64_t boxSize = 1;
    std::int64_t timeLo = 0;
    std::int64_t timeHi = 0;
    bool dense = false;

    std::int64_t
    keyOf(const IntVec &st) const
    {
        std::int64_t key = 0;
        for (int r = 0; r < spaceDims; r++)
            key += (st[std::size_t(r)] - lo[std::size_t(r)]) *
                   stride[std::size_t(r)];
        return key;
    }
};

WalkGeometry
walkGeometry(const dataflow::SpaceTimeTransform &transform,
             const IntVec &bounds)
{
    const auto &m = transform.matrix();
    WalkGeometry g;
    g.spaceDims = m.rows() - 1;
    g.lo.assign(std::size_t(g.spaceDims), 0);
    g.stride.assign(std::size_t(g.spaceDims), 0);

    bool saturated = false;
    std::vector<std::int64_t> extent(std::size_t(g.spaceDims), 1);
    for (int r = 0; r < m.rows(); r++) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        for (int c = 0; c < m.cols(); c++) {
            std::int64_t reach = util::satMul(
                    m.at(r, c), bounds[std::size_t(c)] - 1, &saturated);
            if (reach < 0)
                lo = util::satAdd(lo, reach, &saturated);
            else
                hi = util::satAdd(hi, reach, &saturated);
        }
        if (r + 1 == m.rows()) {
            g.timeLo = lo;
            g.timeHi = hi;
        } else {
            g.lo[std::size_t(r)] = lo;
            extent[std::size_t(r)] = util::satAdd(
                    util::satAdd(hi, -lo, &saturated), 1, &saturated);
        }
    }

    // Row-major strides, last spatial axis fastest.
    for (int r = g.spaceDims - 1; r >= 0; r--) {
        g.stride[std::size_t(r)] = g.boxSize;
        g.boxSize = util::satMul(g.boxSize, extent[std::size_t(r)],
                                 &saturated);
    }
    std::int64_t time_span = util::satAdd(
            util::satAdd(g.timeHi, -g.timeLo, &saturated), 1, &saturated);
    g.dense = !saturated && g.boxSize <= kDenseKeyLimit &&
              time_span <= kDenseKeyLimit;
    return g;
}

/** What the fused walk produces; applyTransform assembles the array. */
struct FusedResult
{
    std::vector<ProcessingElement> pes;
    std::vector<PeWire> wires;
    std::vector<PePortClass> ports;
    std::int64_t scheduleLength = 0;
};

/**
 * The fused single-pass walk. One traversal of the iteration space
 * updates the PE fold table, every wire's distinct-source table, and
 * every port's PE table and cycle histogram together; spatial position,
 * flat key, and timestep are updated incrementally per point from
 * precomputed per-axis carry deltas, so the hot loop does no matrix
 * multiplies and no heap allocation.
 */
FusedResult
applyTransformFused(const IterationSpace &space,
                    const dataflow::SpaceTimeTransform &transform,
                    const WalkGeometry &g)
{
    FusedResult result;

    const auto &bounds = space.bounds();
    const auto &m = transform.matrix();
    int n = transform.dims();
    int sd = g.spaceDims;

    // Carry deltas: an advance that increments axis a and wraps every
    // axis right of it changes the point by e_a - sum_{j>a} (b_j-1) e_j,
    // so st/key/t change by the matching linear combination of columns.
    std::vector<IntVec> delta_st(static_cast<std::size_t>(n),
                                 IntVec(std::size_t(sd), 0));
    std::vector<std::int64_t> delta_key(std::size_t(n), 0);
    std::vector<std::int64_t> delta_t(std::size_t(n), 0);
    for (int a = 0; a < n; a++) {
        for (int r = 0; r < n; r++) {
            std::int64_t v = m.at(r, a);
            for (int j = a + 1; j < n; j++)
                v -= m.at(r, j) * (bounds[std::size_t(j)] - 1);
            if (r < sd) {
                delta_st[std::size_t(a)][std::size_t(r)] = v;
                delta_key[std::size_t(a)] += v * g.stride[std::size_t(r)];
            } else {
                delta_t[std::size_t(a)] = v;
            }
        }
    }

    // PE fold table: flat spatial key -> index into array.pes_.
    std::vector<std::int32_t> pe_at(std::size_t(g.boxSize), -1);

    // Per-wire distinct-source tables, in aliveConns order.
    struct WireScratch
    {
        Point2PointConn conn;
        dataflow::SpaceTimeDelta delta;
        std::int64_t keyDelta = 0;
        std::int64_t count = 0;
        std::vector<std::uint8_t> seen;
    };
    std::vector<WireScratch> wires;
    for (const auto &conn : space.aliveConns()) {
        auto delta = transform.deltaOf(conn.diff);
        if (vecIsZero(delta.space))
            continue; // stationary: internal PE register, not a wire
        WireScratch w;
        w.conn = conn;
        w.keyDelta = 0;
        for (int r = 0; r < sd; r++)
            w.keyDelta += delta.space[std::size_t(r)] *
                          g.stride[std::size_t(r)];
        w.delta = std::move(delta);
        w.seen.assign(std::size_t(g.boxSize), 0);
        wires.push_back(std::move(w));
    }

    // Per-port PE tables and cycle histograms, in ioConns order.
    struct IoScratch
    {
        const IOConn *io = nullptr;
        bool everyPoint = false;
        std::size_t axis = 0;
        std::int64_t edge = 0;
        std::int64_t count = 0;
        std::vector<std::uint8_t> seen;
        std::vector<std::int64_t> perCycle;
    };
    std::vector<IoScratch> ios;
    for (const auto &io : space.ioConns()) {
        IoScratch s;
        s.io = &io;
        s.everyPoint = io.perPoint || io.boundaryIndex < 0;
        if (!s.everyPoint) {
            s.axis = std::size_t(io.boundaryIndex);
            s.edge = io.isInput ? 0 : bounds[s.axis] - 1;
        }
        s.seen.assign(std::size_t(g.boxSize), 0);
        s.perCycle.assign(std::size_t(g.timeHi - g.timeLo + 1), 0);
        ios.push_back(std::move(s));
    }

    std::int64_t min_time = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_time = std::numeric_limits<std::int64_t>::min();

    // The walk itself, with the same batched budget-exact watchdog
    // accounting (and diagnostic dump) as IterationSpace::forEachPoint.
    util::Watchdog *dog = util::currentWatchdog();
    IntVec point(std::size_t(n), 0);
    IntVec st(std::size_t(sd), 0);
    std::int64_t key = g.keyOf(st);
    std::int64_t t = 0;
    std::int64_t left = space.numPoints();
    while (left > 0) {
        std::int64_t batch =
                std::min(IterationSpace::kWatchdogBatch, left);
        if (dog != nullptr) {
            if (dog->enabled()) {
                std::int64_t allowance = dog->remaining();
                if (allowance == 0) {
                    dog->tick(1, [&]() {
                        return "iteration-space walk, last point " +
                               vecToString(point) + " of bounds " +
                               vecToString(bounds);
                    });
                }
                batch = std::min(batch, allowance);
            }
            dog->tick(batch);
        }
        for (std::int64_t i = 0; i < batch; i++) {
            // PE folding.
            std::int32_t &slot = pe_at[std::size_t(key)];
            if (slot < 0) {
                slot = std::int32_t(result.pes.size());
                ProcessingElement pe;
                pe.position = st;
                pe.firstTime = t;
                pe.lastTime = t;
                result.pes.push_back(std::move(pe));
            }
            auto &pe = result.pes[std::size_t(slot)];
            pe.foldedPoints++;
            pe.firstTime = std::min(pe.firstTime, t);
            pe.lastTime = std::max(pe.lastTime, t);
            min_time = std::min(min_time, t);
            max_time = std::max(max_time, t);

            // Distinct (source PE -> dest PE) pairs per wire class: the
            // source image key is this point's key shifted by the
            // wire's space delta, valid whenever p - diff is interior.
            for (auto &w : wires) {
                bool interior = true;
                for (int c = 0; c < n; c++) {
                    std::int64_t s = point[std::size_t(c)] -
                                     w.conn.diff[std::size_t(c)];
                    if (s < 0 || s >= bounds[std::size_t(c)]) {
                        interior = false;
                        break;
                    }
                }
                if (!interior)
                    continue;
                auto &mark = w.seen[std::size_t(key - w.keyDelta)];
                w.count += mark == 0;
                mark = 1;
            }

            // Port PEs and per-cycle request histograms.
            for (auto &s : ios) {
                if (!s.everyPoint && point[s.axis] != s.edge)
                    continue;
                auto &mark = s.seen[std::size_t(key)];
                s.count += mark == 0;
                mark = 1;
                s.perCycle[std::size_t(t - g.timeLo)]++;
            }

            // Lexicographic advance with incremental st/key/t updates.
            int axis = n - 1;
            while (axis >= 0) {
                if (++point[std::size_t(axis)] < bounds[std::size_t(axis)])
                    break;
                point[std::size_t(axis)] = 0;
                axis--;
            }
            if (axis >= 0) {
                const auto &d = delta_st[std::size_t(axis)];
                for (int r = 0; r < sd; r++)
                    st[std::size_t(r)] += d[std::size_t(r)];
                key += delta_key[std::size_t(axis)];
                t += delta_t[std::size_t(axis)];
            }
        }
        left -= batch;
    }
    result.scheduleLength = max_time - min_time + 1;

    for (auto &w : wires) {
        PeWire wire;
        wire.tensor = w.conn.tensor;
        wire.spaceDelta = w.delta.space;
        wire.registers = w.delta.time;
        wire.bundleSize = w.conn.bundled ? w.conn.bundleSize : 1;
        wire.wireLength = vecL1(w.delta.space);
        wire.instances = w.count;
        result.wires.push_back(std::move(wire));
    }

    for (auto &s : ios) {
        PePortClass port;
        port.tensor = s.io->tensor;
        port.externalTensor = s.io->externalTensor;
        port.isInput = s.io->isInput;
        port.perPoint = s.io->perPoint;
        port.portCount = s.count;
        for (auto per_cycle : s.perCycle)
            port.maxPerCycle = std::max(port.maxPerCycle, per_cycle);
        result.ports.push_back(std::move(port));
    }
    return result;
}

} // namespace

SpatialArray
applyTransform(const IterationSpace &space,
               const dataflow::SpaceTimeTransform &transform)
{
    require(transform.dims() == space.numIndices(),
            "transform dimensionality must match the iteration space");
    WalkGeometry g = walkGeometry(transform, space.bounds());
    if (!g.dense)
        return applyTransformNaive(space, transform);
    FusedResult fused = applyTransformFused(space, transform, g);
    SpatialArray array;
    array.transform_ = transform;
    array.pes_ = std::move(fused.pes);
    array.wires_ = std::move(fused.wires);
    array.ports_ = std::move(fused.ports);
    array.scheduleLength_ = fused.scheduleLength;
    return array;
}

SpatialArray
applyTransformNaive(const IterationSpace &space,
                    const dataflow::SpaceTimeTransform &transform)
{
    require(transform.dims() == space.numIndices(),
            "transform dimensionality must match the iteration space");
    SpatialArray array;
    array.transform_ = transform;

    // Fold points onto PEs.
    std::map<IntVec, std::size_t> pe_index;
    std::int64_t min_time = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_time = std::numeric_limits<std::int64_t>::min();
    space.forEachPoint([&](const IntVec &p) {
        IntVec st = transform.apply(p);
        std::int64_t t = st.back();
        st.pop_back();
        auto [it, inserted] = pe_index.try_emplace(st, array.pes_.size());
        if (inserted) {
            ProcessingElement pe;
            pe.position = st;
            pe.firstTime = t;
            pe.lastTime = t;
            array.pes_.push_back(std::move(pe));
        }
        auto &pe = array.pes_[it->second];
        pe.foldedPoints++;
        pe.firstTime = std::min(pe.firstTime, t);
        pe.lastTime = std::max(pe.lastTime, t);
        min_time = std::min(min_time, t);
        max_time = std::max(max_time, t);
    });
    array.scheduleLength_ = max_time - min_time + 1;

    // Surviving conn classes become wires.
    for (const auto &conn : space.aliveConns()) {
        auto delta = transform.deltaOf(conn.diff);
        if (vecIsZero(delta.space))
            continue; // stationary: internal PE register, not a wire
        PeWire wire;
        wire.tensor = conn.tensor;
        wire.spaceDelta = delta.space;
        wire.registers = delta.time;
        wire.bundleSize = conn.bundled ? conn.bundleSize : 1;
        wire.wireLength = vecL1(delta.space);
        // Physical instances: distinct (source PE -> dest PE) pairs.
        std::set<IntVec> sources;
        space.forEachPoint([&](const IntVec &p) {
            IntVec src = vecSub(p, conn.diff);
            if (space.isInterior(src))
                sources.insert(transform.spaceOf(src));
        });
        wire.instances = std::int64_t(sources.size());
        array.wires_.push_back(std::move(wire));
    }

    // IOConn classes become regfile ports.
    for (const auto &io : space.ioConns()) {
        PePortClass port;
        port.tensor = io.tensor;
        port.externalTensor = io.externalTensor;
        port.isInput = io.isInput;
        port.perPoint = io.perPoint;
        std::set<IntVec> port_pes;
        std::map<std::int64_t, std::int64_t> per_cycle;
        forEachIoPoint(space, io, [&](const IntVec &p) {
            port_pes.insert(transform.spaceOf(p));
            per_cycle[transform.timeOf(p)]++;
        });
        port.portCount = std::int64_t(port_pes.size());
        for (const auto &[t, n] : per_cycle)
            port.maxPerCycle = std::max(port.maxPerCycle, n);
        array.ports_.push_back(std::move(port));
    }
    return array;
}

mem::AccessOrder
arrayAccessOrder(const IterationSpace &space,
                 const dataflow::SpaceTimeTransform &t, int external_tensor)
{
    const auto &bounds = space.bounds();
    const auto &m = t.matrix();
    int n = t.dims();

    // Fast path: bucket requests into a dense per-timestep table using
    // the analytic time range of the bounds box, and evaluate the time
    // row directly instead of a full matrix apply per point.
    bool saturated = false;
    std::int64_t time_lo = 0;
    std::int64_t time_hi = 0;
    for (int c = 0; c < n; c++) {
        std::int64_t reach = util::satMul(
                m.at(n - 1, c), bounds[std::size_t(c)] - 1, &saturated);
        if (reach < 0)
            time_lo = util::satAdd(time_lo, reach, &saturated);
        else
            time_hi = util::satAdd(time_hi, reach, &saturated);
    }
    std::int64_t span = util::satAdd(
            util::satAdd(time_hi, -time_lo, &saturated), 1, &saturated);
    if (!saturated && span <= kDenseKeyLimit) {
        std::vector<std::vector<IntVec>> steps(
                static_cast<std::size_t>(span));
        auto time_of = [&](const IntVec &p) {
            std::int64_t time = 0;
            for (int c = 0; c < n; c++)
                time += m.at(n - 1, c) * p[std::size_t(c)];
            return time;
        };
        for (const auto &io : space.ioConns()) {
            if (io.externalTensor != external_tensor)
                continue;
            forEachIoPoint(space, io, [&](const IntVec &p) {
                IntVec coords;
                coords.reserve(io.externalCoords.size());
                for (const auto &expr : io.externalCoords)
                    coords.push_back(expr.evaluate(p, bounds));
                steps[std::size_t(time_of(p) - time_lo)].push_back(
                        std::move(coords));
            });
        }
        mem::AccessOrder order;
        std::size_t first = steps.size();
        std::size_t last = 0;
        for (std::size_t s = 0; s < steps.size(); s++) {
            if (steps[s].empty())
                continue;
            first = std::min(first, s);
            last = std::max(last, s);
        }
        if (first == steps.size())
            return order;
        for (std::size_t s = first; s <= last; s++)
            order.addStep(std::move(steps[s]));
        return order;
    }

    // Fallback for degenerate geometry: the original ordered-map path.
    std::map<std::int64_t, std::vector<IntVec>> by_time;
    for (const auto &io : space.ioConns()) {
        if (io.externalTensor != external_tensor)
            continue;
        forEachIoPoint(space, io, [&](const IntVec &p) {
            IntVec coords;
            for (const auto &expr : io.externalCoords)
                coords.push_back(expr.evaluate(p, bounds));
            by_time[t.timeOf(p)].push_back(std::move(coords));
        });
    }
    mem::AccessOrder order;
    if (by_time.empty())
        return order;
    std::int64_t lo = by_time.begin()->first;
    std::int64_t hi = by_time.rbegin()->first;
    for (std::int64_t step = lo; step <= hi; step++) {
        auto it = by_time.find(step);
        order.addStep(it == by_time.end() ? std::vector<IntVec>{}
                                          : it->second);
    }
    return order;
}

} // namespace stellar::core
