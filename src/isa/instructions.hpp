/**
 * @file
 * Stellar's 64-bit RISC-V custom-instruction set (Table II).
 *
 * Every instruction configures part of a data transfer between two
 * memory units (DRAM, private memory buffers, or register files) and is
 * encoded as an opcode plus two source registers: rs1 carries the
 * src/dst selector in bits [19:16] and an axis / metadata-type / constant
 * id in bits [15:0]; rs2 carries the 64-bit payload (address, span,
 * stride, or constant value). stellar_issue launches the transfer; the
 * spatial array starts as soon as its input register files fill.
 */

#ifndef STELLAR_ISA_INSTRUCTIONS_HPP
#define STELLAR_ISA_INSTRUCTIONS_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace stellar::isa
{

/** Table II opcodes. */
enum class Opcode : std::uint8_t
{
    SetAddress = 0,
    SetSpan = 1,
    SetDataStride = 2,
    SetMetadataStride = 3,
    SetAxisType = 4,
    SetConstant = 5,
    Issue = 6,
};

/** rs1[19:16]: which side(s) of the transfer a setting applies to. */
enum class Target : std::uint8_t
{
    Src = 1,
    Dst = 2,
    Both = 3,
};

/** Fibertree axis types carried by set_axis_type. */
enum class AxisType : std::uint8_t
{
    Dense = 0,
    Compressed = 1,
    Bitvector = 2,
    LinkedList = 3,
};

/** Metadata kinds carried by set_metadata_stride / set_address. */
enum class MetadataType : std::uint8_t
{
    RowId = 0,
    Coord = 1,
};

/** Scalar/boolean constants carried by set_constant. */
enum class ConstantId : std::uint16_t
{
    SrcUnit = 0,
    DstUnit = 1,
    ShouldTrailReads = 2,
    ShouldInterleave = 3,
    LastAxis = 4,
};

/** Memory units addressed by SrcUnit/DstUnit constants. */
enum class MemUnit : std::uint16_t
{
    Dram = 0,
    Sram0 = 1,
    Sram1 = 2,
    Sram2 = 3,
    Regfile0 = 8,
    Regfile1 = 9,
};

/** A span value meaning "walk the whole fiber" (Listing 7). */
constexpr std::uint64_t kEntireAxis = ~std::uint64_t(0);

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Issue;
    std::uint32_t rs1 = 0;
    std::uint64_t rs2 = 0;

    bool operator==(const Instruction &other) const = default;
};

/**
 * rs1 field packing: [19:16] target; [15:8] metadata selector (0 = data,
 * 1 = RowId, 2 = Coord); [7:0] axis (or constant id for set_constant).
 */
std::uint32_t packRs1(Target target, std::uint16_t low16);
std::uint32_t packRs1Metadata(Target target, std::uint8_t axis,
                              MetadataType metadata);
Target rs1Target(std::uint32_t rs1);
std::uint16_t rs1Low16(std::uint32_t rs1);
std::uint8_t rs1Axis(std::uint32_t rs1);
bool rs1HasMetadata(std::uint32_t rs1);
MetadataType rs1Metadata(std::uint32_t rs1);

/** Instruction builders (the assembler). */
Instruction makeSetAddress(Target target, std::uint8_t axis,
                           std::uint64_t address);
Instruction makeSetMetadataAddress(Target target, std::uint8_t axis,
                                   MetadataType metadata,
                                   std::uint64_t address);
Instruction makeSetSpan(Target target, std::uint8_t axis,
                        std::uint64_t span);
Instruction makeSetDataStride(Target target, std::uint8_t axis,
                              std::uint64_t stride);
Instruction makeSetMetadataStride(Target target, std::uint8_t axis,
                                  MetadataType metadata,
                                  std::uint64_t stride);
Instruction makeSetAxisType(Target target, std::uint8_t axis,
                            AxisType type);
Instruction makeSetConstant(ConstantId id, std::uint64_t value);
Instruction makeIssue();

/**
 * Binary encoding: 16 bytes per instruction, little-endian
 * [op:u8][pad:u8 x3][rs1:u32][rs2:u64].
 */
std::vector<std::uint8_t> encode(const std::vector<Instruction> &program);
std::vector<Instruction> decode(const std::vector<std::uint8_t> &bytes);

/** Disassemble for debugging and documentation. */
std::string disassemble(const Instruction &inst);

} // namespace stellar::isa

#endif // STELLAR_ISA_INSTRUCTIONS_HPP
