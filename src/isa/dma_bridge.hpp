/**
 * @file
 * Bridge from ISA transfer descriptors to the cycle-level DMA model.
 *
 * A TransferDescriptor (the snapshot a stellar_issue produces) describes
 * the fibertree layout of the tensor being moved; this bridge turns it
 * into the TransferChunk stream the DMA/DRAM simulator consumes, so the
 * performance cost of a software-issued transfer can be measured with
 * the same machinery the Section VI-C experiments use:
 *
 *  - Dense axes with unit inner stride stream as contiguous chunks;
 *  - strided dense axes degrade to per-element chunks;
 *  - Compressed and LinkedList axes gather per-fiber chunks behind
 *    pointer (row-id / next-pointer) lookups — the pointer-chasing
 *    pattern that bottlenecked the initial OuterSPACE port.
 */

#ifndef STELLAR_ISA_DMA_BRIDGE_HPP
#define STELLAR_ISA_DMA_BRIDGE_HPP

#include <vector>

#include "isa/config_state.hpp"
#include "sim/dram.hpp"

namespace stellar::isa
{

/** Fiber statistics for compressed transfers (from metadata). */
struct FiberShape
{
    std::vector<std::int64_t> fiberLengths; //!< elements per fiber
};

/**
 * Lower a descriptor to DMA chunks. `elem_bytes` is the element size;
 * `fibers` supplies per-fiber lengths for compressed axes (ignored for
 * all-dense transfers).
 */
std::vector<sim::TransferChunk> chunksForDescriptor(
        const TransferDescriptor &descriptor, int elem_bytes,
        const FiberShape &fibers = {});

/**
 * Convenience: measure the cycle cost of a descriptor on a DMA/DRAM
 * configuration.
 */
sim::TransferResult simulateDescriptor(const TransferDescriptor &descriptor,
                                       int elem_bytes,
                                       const FiberShape &fibers,
                                       const sim::DmaConfig &dma,
                                       const sim::DramConfig &dram);

} // namespace stellar::isa

#endif // STELLAR_ISA_DMA_BRIDGE_HPP
