#include "isa/dma_bridge.hpp"

#include "util/logging.hpp"

namespace stellar::isa
{

std::vector<sim::TransferChunk>
chunksForDescriptor(const TransferDescriptor &descriptor, int elem_bytes,
                    const FiberShape &fibers)
{
    require(elem_bytes > 0, "element size must be positive");
    const SideConfig &side = descriptor.src.unit == MemUnit::Dram
                                     ? descriptor.src
                                     : descriptor.dst;
    std::vector<sim::TransferChunk> chunks;

    // Find the innermost axis and whether any axis is pointer-indirected.
    bool indirect = false;
    for (int axis = 0; axis < descriptor.numAxes; axis++) {
        AxisType type = side.axisType[std::size_t(axis)];
        if (type == AxisType::Compressed || type == AxisType::LinkedList)
            indirect = true;
    }

    if (indirect) {
        // One pointer-chased chunk per fiber.
        require(!fibers.fiberLengths.empty(),
                "compressed transfers need fiber statistics");
        for (auto length : fibers.fiberLengths) {
            if (length <= 0)
                continue;
            sim::TransferChunk chunk;
            chunk.bytes = length * elem_bytes;
            chunk.pointerChased = true;
            chunks.push_back(chunk);
        }
        return chunks;
    }

    // Dense: rows of span[0] elements; contiguous when stride is 1.
    std::uint64_t inner_span = side.span[0] == kEntireAxis
                                       ? 1
                                       : std::max<std::uint64_t>(
                                                 side.span[0], 1);
    std::uint64_t outer = 1;
    for (int axis = 1; axis < descriptor.numAxes; axis++) {
        if (side.span[std::size_t(axis)] != kEntireAxis &&
                side.span[std::size_t(axis)] > 0) {
            outer *= side.span[std::size_t(axis)];
        }
    }
    bool contiguous = side.dataStride[0] <= 1;
    for (std::uint64_t row = 0; row < outer; row++) {
        if (contiguous) {
            sim::TransferChunk chunk;
            chunk.bytes = std::int64_t(inner_span) * elem_bytes;
            chunks.push_back(chunk);
        } else {
            for (std::uint64_t e = 0; e < inner_span; e++) {
                sim::TransferChunk chunk;
                chunk.bytes = elem_bytes;
                chunks.push_back(chunk);
            }
        }
    }
    return chunks;
}

sim::TransferResult
simulateDescriptor(const TransferDescriptor &descriptor, int elem_bytes,
                   const FiberShape &fibers, const sim::DmaConfig &dma,
                   const sim::DramConfig &dram)
{
    sim::DramModel model(dram);
    auto chunks = chunksForDescriptor(descriptor, elem_bytes, fibers);
    return sim::simulateTransfer(dma, model, chunks);
}

} // namespace stellar::isa
