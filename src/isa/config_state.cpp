#include "isa/config_state.hpp"

#include <functional>

#include "util/logging.hpp"

namespace stellar::isa
{

void
ConfigState::forTargets(Target target,
                        const std::function<void(SideConfig &)> &fn)
{
    if (target == Target::Src || target == Target::Both)
        fn(src_);
    if (target == Target::Dst || target == Target::Both)
        fn(dst_);
}

std::vector<TransferDescriptor>
ConfigState::apply(const Instruction &inst)
{
    std::vector<TransferDescriptor> issued;
    int axis = int(rs1Axis(inst.rs1));
    switch (inst.op) {
      case Opcode::SetAddress:
        require(axis < kMaxAxes, "axis out of range");
        maxAxisTouched_ = std::max(maxAxisTouched_, axis);
        if (rs1HasMetadata(inst.rs1)) {
            auto meta = rs1Metadata(inst.rs1);
            forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
                side.metadataAddress[{axis, meta}] = inst.rs2;
            });
        } else {
            forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
                side.dataAddress[std::size_t(axis)] = inst.rs2;
            });
        }
        break;
      case Opcode::SetSpan:
        require(axis < kMaxAxes, "axis out of range");
        maxAxisTouched_ = std::max(maxAxisTouched_, axis);
        forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
            side.span[std::size_t(axis)] = inst.rs2;
        });
        break;
      case Opcode::SetDataStride:
        require(axis < kMaxAxes, "axis out of range");
        maxAxisTouched_ = std::max(maxAxisTouched_, axis);
        forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
            side.dataStride[std::size_t(axis)] = inst.rs2;
        });
        break;
      case Opcode::SetMetadataStride: {
        require(axis < kMaxAxes, "axis out of range");
        auto meta = rs1Metadata(inst.rs1);
        forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
            side.metadataStride[{axis, meta}] = inst.rs2;
        });
        break;
      }
      case Opcode::SetAxisType:
        require(axis < kMaxAxes, "axis out of range");
        require(inst.rs2 <= std::uint64_t(AxisType::LinkedList),
                "invalid axis type");
        maxAxisTouched_ = std::max(maxAxisTouched_, axis);
        forTargets(rs1Target(inst.rs1), [&](SideConfig &side) {
            side.axisType[std::size_t(axis)] = AxisType(inst.rs2);
        });
        break;
      case Opcode::SetConstant: {
        auto id = ConstantId(rs1Low16(inst.rs1));
        constants_[id] = inst.rs2;
        if (id == ConstantId::SrcUnit)
            src_.unit = MemUnit(inst.rs2);
        if (id == ConstantId::DstUnit)
            dst_.unit = MemUnit(inst.rs2);
        break;
      }
      case Opcode::Issue: {
        TransferDescriptor desc;
        desc.src = src_;
        desc.dst = dst_;
        desc.constants = constants_;
        desc.numAxes = maxAxisTouched_ + 1;
        issued.push_back(std::move(desc));
        break;
      }
    }
    return issued;
}

std::vector<TransferDescriptor>
ConfigState::applyProgram(const std::vector<Instruction> &program)
{
    std::vector<TransferDescriptor> issued;
    for (const auto &inst : program)
        for (auto &desc : apply(inst))
            issued.push_back(std::move(desc));
    return issued;
}

} // namespace stellar::isa
