#include "isa/instructions.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::isa
{

std::uint32_t
packRs1(Target target, std::uint16_t low16)
{
    return (std::uint32_t(target) << 16) | low16;
}

std::uint32_t
packRs1Metadata(Target target, std::uint8_t axis, MetadataType metadata)
{
    std::uint16_t low16 =
            std::uint16_t((std::uint16_t(metadata) + 1) << 8) | axis;
    return packRs1(target, low16);
}

Target
rs1Target(std::uint32_t rs1)
{
    return Target((rs1 >> 16) & 0xF);
}

std::uint16_t
rs1Low16(std::uint32_t rs1)
{
    return std::uint16_t(rs1 & 0xFFFF);
}

std::uint8_t
rs1Axis(std::uint32_t rs1)
{
    return std::uint8_t(rs1 & 0xFF);
}

bool
rs1HasMetadata(std::uint32_t rs1)
{
    return ((rs1 >> 8) & 0xFF) != 0;
}

MetadataType
rs1Metadata(std::uint32_t rs1)
{
    invariant(rs1HasMetadata(rs1), "rs1 carries no metadata selector");
    return MetadataType(((rs1 >> 8) & 0xFF) - 1);
}

Instruction
makeSetAddress(Target target, std::uint8_t axis, std::uint64_t address)
{
    return Instruction{Opcode::SetAddress, packRs1(target, axis), address};
}

Instruction
makeSetMetadataAddress(Target target, std::uint8_t axis,
                       MetadataType metadata, std::uint64_t address)
{
    return Instruction{Opcode::SetAddress,
                       packRs1Metadata(target, axis, metadata), address};
}

Instruction
makeSetSpan(Target target, std::uint8_t axis, std::uint64_t span)
{
    return Instruction{Opcode::SetSpan, packRs1(target, axis), span};
}

Instruction
makeSetDataStride(Target target, std::uint8_t axis, std::uint64_t stride)
{
    return Instruction{Opcode::SetDataStride, packRs1(target, axis),
                       stride};
}

Instruction
makeSetMetadataStride(Target target, std::uint8_t axis,
                      MetadataType metadata, std::uint64_t stride)
{
    return Instruction{Opcode::SetMetadataStride,
                       packRs1Metadata(target, axis, metadata), stride};
}

Instruction
makeSetAxisType(Target target, std::uint8_t axis, AxisType type)
{
    return Instruction{Opcode::SetAxisType, packRs1(target, axis),
                       std::uint64_t(type)};
}

Instruction
makeSetConstant(ConstantId id, std::uint64_t value)
{
    return Instruction{Opcode::SetConstant,
                       packRs1(Target::Both, std::uint16_t(id)), value};
}

Instruction
makeIssue()
{
    return Instruction{Opcode::Issue, 0, 0};
}

std::vector<std::uint8_t>
encode(const std::vector<Instruction> &program)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(program.size() * 16);
    auto put32 = [&](std::uint32_t v) {
        for (int b = 0; b < 4; b++)
            bytes.push_back(std::uint8_t(v >> (8 * b)));
    };
    auto put64 = [&](std::uint64_t v) {
        for (int b = 0; b < 8; b++)
            bytes.push_back(std::uint8_t(v >> (8 * b)));
    };
    for (const auto &inst : program) {
        bytes.push_back(std::uint8_t(inst.op));
        bytes.push_back(0);
        bytes.push_back(0);
        bytes.push_back(0);
        put32(inst.rs1);
        put64(inst.rs2);
    }
    return bytes;
}

std::vector<Instruction>
decode(const std::vector<std::uint8_t> &bytes)
{
    require(bytes.size() % 16 == 0,
            "instruction stream must be a multiple of 16 bytes");
    std::vector<Instruction> program;
    for (std::size_t off = 0; off < bytes.size(); off += 16) {
        Instruction inst;
        require(bytes[off] <= std::uint8_t(Opcode::Issue),
                "invalid opcode in instruction stream");
        inst.op = Opcode(bytes[off]);
        std::uint32_t rs1 = 0;
        for (int b = 0; b < 4; b++)
            rs1 |= std::uint32_t(bytes[off + 4 + std::size_t(b)]) << (8 * b);
        std::uint64_t rs2 = 0;
        for (int b = 0; b < 8; b++)
            rs2 |= std::uint64_t(bytes[off + 8 + std::size_t(b)]) << (8 * b);
        inst.rs1 = rs1;
        inst.rs2 = rs2;
        program.push_back(inst);
    }
    return program;
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    auto target_name = [](Target t) {
        switch (t) {
          case Target::Src: return "src";
          case Target::Dst: return "dst";
          case Target::Both: return "both";
        }
        return "?";
    };
    switch (inst.op) {
      case Opcode::SetAddress:
        os << (rs1HasMetadata(inst.rs1) ? "set_metadata_address "
                                        : "set_address ")
           << target_name(rs1Target(inst.rs1)) << " axis="
           << int(rs1Axis(inst.rs1)) << " 0x" << std::hex << inst.rs2;
        break;
      case Opcode::SetSpan:
        os << "set_span " << target_name(rs1Target(inst.rs1)) << " axis="
           << int(rs1Axis(inst.rs1)) << " "
           << (inst.rs2 == kEntireAxis ? std::string("ENTIRE_AXIS")
                                       : std::to_string(inst.rs2));
        break;
      case Opcode::SetDataStride:
        os << "set_data_stride " << target_name(rs1Target(inst.rs1))
           << " axis=" << int(rs1Axis(inst.rs1)) << " " << inst.rs2;
        break;
      case Opcode::SetMetadataStride:
        os << "set_metadata_stride " << target_name(rs1Target(inst.rs1))
           << " axis=" << int(rs1Axis(inst.rs1)) << " meta="
           << (rs1Metadata(inst.rs1) == MetadataType::RowId ? "ROW_ID"
                                                            : "COORD")
           << " " << inst.rs2;
        break;
      case Opcode::SetAxisType: {
        const char *types[] = {"DENSE", "COMPRESSED", "BITVECTOR",
                               "LINKED_LIST"};
        os << "set_axis_type " << target_name(rs1Target(inst.rs1))
           << " axis=" << int(rs1Axis(inst.rs1)) << " "
           << types[inst.rs2 & 3];
        break;
      }
      case Opcode::SetConstant:
        os << "set_constant id=" << rs1Low16(inst.rs1) << " " << inst.rs2;
        break;
      case Opcode::Issue:
        os << "stellar_issue";
        break;
    }
    return os.str();
}

} // namespace stellar::isa
