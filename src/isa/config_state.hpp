/**
 * @file
 * The accelerator-side configuration state machine (Section V).
 *
 * Instructions accumulate settings into per-side (src/dst) state; a
 * stellar_issue snapshots that state into a TransferDescriptor that the
 * DMA consumes. This mirrors the decoupled configure-then-issue flow of
 * the paper's programming interface.
 */

#ifndef STELLAR_ISA_CONFIG_STATE_HPP
#define STELLAR_ISA_CONFIG_STATE_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "isa/instructions.hpp"

namespace stellar::isa
{

constexpr int kMaxAxes = 4;

/** Per-side (src or dst) transfer settings. */
struct SideConfig
{
    MemUnit unit = MemUnit::Dram;
    std::array<std::uint64_t, kMaxAxes> dataAddress{};
    std::array<std::uint64_t, kMaxAxes> span{};
    std::array<std::uint64_t, kMaxAxes> dataStride{};
    std::array<AxisType, kMaxAxes> axisType{};

    /** Metadata addresses/strides keyed by (axis, metadata type). */
    std::map<std::pair<int, MetadataType>, std::uint64_t> metadataAddress;
    std::map<std::pair<int, MetadataType>, std::uint64_t> metadataStride;
};

/** A snapshot of the configuration at stellar_issue time. */
struct TransferDescriptor
{
    SideConfig src;
    SideConfig dst;
    std::map<ConstantId, std::uint64_t> constants;
    int numAxes = 0;
};

/** The decoder-side state machine. */
class ConfigState
{
  public:
    /** Apply one instruction; returns a descriptor on Issue. */
    std::vector<TransferDescriptor> apply(const Instruction &inst);

    /** Apply a whole program, collecting every issued descriptor. */
    std::vector<TransferDescriptor>
    applyProgram(const std::vector<Instruction> &program);

    const SideConfig &src() const { return src_; }
    const SideConfig &dst() const { return dst_; }

  private:
    void forTargets(Target target,
                    const std::function<void(SideConfig &)> &fn);

    SideConfig src_;
    SideConfig dst_;
    std::map<ConstantId, std::uint64_t> constants_;
    int maxAxisTouched_ = 0;
};

} // namespace stellar::isa

#endif // STELLAR_ISA_CONFIG_STATE_HPP
