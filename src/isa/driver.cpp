#include "isa/driver.hpp"

#include <cstring>

#include "util/logging.hpp"

namespace stellar::isa
{

void
HostMemory::write32(std::uint64_t addr, std::uint32_t value)
{
    require(addr + 4 <= bytes_.size(), "DRAM write out of range");
    std::memcpy(&bytes_[addr], &value, 4);
}

std::uint32_t
HostMemory::read32(std::uint64_t addr) const
{
    require(addr + 4 <= bytes_.size(), "DRAM read out of range");
    std::uint32_t value;
    std::memcpy(&value, &bytes_[addr], 4);
    return value;
}

void
HostMemory::writeFloat(std::uint64_t addr, float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, 4);
    write32(addr, bits);
}

float
HostMemory::readFloat(std::uint64_t addr) const
{
    std::uint32_t bits = read32(addr);
    float value;
    std::memcpy(&value, &bits, 4);
    return value;
}

void
HostMemory::writeFloatArray(std::uint64_t addr,
                            const std::vector<float> &vs)
{
    for (std::size_t i = 0; i < vs.size(); i++)
        writeFloat(addr + i * 4, vs[i]);
}

void
HostMemory::writeIntArray(std::uint64_t addr,
                          const std::vector<std::int32_t> &vs)
{
    for (std::size_t i = 0; i < vs.size(); i++)
        write32(addr + i * 4, std::uint32_t(vs[i]));
}

void
Driver::setSrcAndDst(MemUnit src, MemUnit dst)
{
    program_.push_back(makeSetConstant(ConstantId::SrcUnit,
                                       std::uint64_t(src)));
    program_.push_back(makeSetConstant(ConstantId::DstUnit,
                                       std::uint64_t(dst)));
}

void
Driver::setDataAddr(Target target, std::uint64_t addr)
{
    program_.push_back(makeSetAddress(target, 0, addr));
}

void
Driver::setMetadataAddr(Target target, int axis, MetadataType metadata,
                        std::uint64_t addr)
{
    program_.push_back(makeSetMetadataAddress(target, std::uint8_t(axis),
                                              metadata, addr));
}

void
Driver::setSpan(Target target, int axis, std::uint64_t span)
{
    program_.push_back(makeSetSpan(target, std::uint8_t(axis), span));
}

void
Driver::setStride(Target target, int axis, std::uint64_t stride)
{
    program_.push_back(makeSetDataStride(target, std::uint8_t(axis),
                                         stride));
}

void
Driver::setMetadataStride(Target target, int addr_gen_axis, int axis,
                          MetadataType metadata, std::uint64_t stride)
{
    // The addr-gen axis is folded into the stride payload's upper bits in
    // hardware; functionally the (axis, metadata) pair identifies the
    // stride register.
    (void)addr_gen_axis;
    program_.push_back(makeSetMetadataStride(target, std::uint8_t(axis),
                                             metadata, stride));
}

void
Driver::setAxis(Target target, int axis, AxisType type)
{
    program_.push_back(makeSetAxisType(target, std::uint8_t(axis), type));
}

void
Driver::setConstant(ConstantId id, std::uint64_t value)
{
    program_.push_back(makeSetConstant(id, value));
}

void
Driver::issue()
{
    program_.push_back(makeIssue());
}

namespace
{

/** Move a dense rank<=2 tensor from DRAM into an SRAM unit. */
void
moveDenseIn(const TransferDescriptor &desc, HostMemory &dram,
            SramUnit &sram, ExecStats &stats)
{
    std::uint64_t base = desc.src.dataAddress[0];
    std::uint64_t span0 = desc.src.span[0];
    std::uint64_t span1 = desc.numAxes > 1 ? desc.src.span[1] : 1;
    std::uint64_t stride0 = desc.src.dataStride[0];
    std::uint64_t stride1 = desc.numAxes > 1 ? desc.src.dataStride[1] : 0;
    for (std::uint64_t i1 = 0; i1 < span1; i1++) {
        for (std::uint64_t i0 = 0; i0 < span0; i0++) {
            std::uint64_t elem = i1 * stride1 + i0 * stride0;
            sram.data.push_back(dram.readFloat(base + elem * 4));
            stats.elementsMoved++;
        }
    }
}

/** Move a CSR tensor (Dense outer, Compressed inner) into an SRAM. */
void
moveCsrIn(const TransferDescriptor &desc, HostMemory &dram, SramUnit &sram,
          ExecStats &stats)
{
    std::uint64_t data_base = desc.src.dataAddress[0];
    auto row_it = desc.src.metadataAddress.find({0, MetadataType::RowId});
    auto coord_it = desc.src.metadataAddress.find({0, MetadataType::Coord});
    require(row_it != desc.src.metadataAddress.end() &&
                    coord_it != desc.src.metadataAddress.end(),
            "compressed transfer needs ROW_ID and COORD addresses");
    std::uint64_t rows = desc.src.span[1];

    std::int32_t running = 0;
    sram.rowIds.push_back(running);
    for (std::uint64_t r = 0; r < rows; r++) {
        auto start = std::int32_t(dram.read32(row_it->second + r * 4));
        auto end = std::int32_t(dram.read32(row_it->second + (r + 1) * 4));
        require(end >= start, "malformed row pointers");
        for (std::int32_t idx = start; idx < end; idx++) {
            sram.data.push_back(
                    dram.readFloat(data_base + std::uint64_t(idx) * 4));
            sram.coords.push_back(std::int32_t(
                    dram.read32(coord_it->second + std::uint64_t(idx) * 4)));
            stats.elementsMoved++;
            stats.metadataMoved++;
        }
        running += end - start;
        sram.rowIds.push_back(running);
        stats.metadataMoved += 2;
    }
}

/** Write a CSR SRAM tensor back to DRAM (data, coords, row ids). */
void
moveCsrOut(const TransferDescriptor &desc, HostMemory &dram,
           SramUnit &sram, ExecStats &stats)
{
    std::uint64_t data_base = desc.dst.dataAddress[0];
    auto row_it = desc.dst.metadataAddress.find({0, MetadataType::RowId});
    auto coord_it = desc.dst.metadataAddress.find({0, MetadataType::Coord});
    require(row_it != desc.dst.metadataAddress.end() &&
                    coord_it != desc.dst.metadataAddress.end(),
            "compressed writeback needs ROW_ID and COORD addresses");
    for (std::size_t idx = 0; idx < sram.data.size(); idx++) {
        dram.writeFloat(data_base + idx * 4, sram.data[idx]);
        dram.write32(coord_it->second + idx * 4,
                     std::uint32_t(sram.coords[idx]));
        stats.elementsMoved++;
        stats.metadataMoved++;
    }
    for (std::size_t r = 0; r < sram.rowIds.size(); r++) {
        dram.write32(row_it->second + r * 4,
                     std::uint32_t(sram.rowIds[r]));
        stats.metadataMoved++;
    }
}

/** Write a dense SRAM tensor back to DRAM. */
void
moveDenseOut(const TransferDescriptor &desc, HostMemory &dram,
             SramUnit &sram, ExecStats &stats)
{
    std::uint64_t base = desc.dst.dataAddress[0];
    std::uint64_t span0 = desc.dst.span[0];
    std::uint64_t span1 = desc.numAxes > 1 ? desc.dst.span[1] : 1;
    std::uint64_t stride0 = desc.dst.dataStride[0];
    std::uint64_t stride1 = desc.numAxes > 1 ? desc.dst.dataStride[1] : 0;
    std::size_t cursor = 0;
    for (std::uint64_t i1 = 0; i1 < span1; i1++) {
        for (std::uint64_t i0 = 0; i0 < span0; i0++) {
            require(cursor < sram.data.size(),
                    "SRAM underflow during writeback");
            std::uint64_t elem = i1 * stride1 + i0 * stride0;
            dram.writeFloat(base + elem * 4, sram.data[cursor++]);
            stats.elementsMoved++;
        }
    }
}

} // namespace

ExecStats
executeProgram(const std::vector<Instruction> &program, HostMemory &dram,
               std::map<MemUnit, SramUnit> &srams)
{
    ExecStats stats;
    ConfigState state;
    for (const auto &desc : state.applyProgram(program)) {
        stats.descriptors++;
        bool compressed = false;
        for (int axis = 0; axis < desc.numAxes; axis++) {
            if (desc.src.axisType[std::size_t(axis)] ==
                        AxisType::Compressed ||
                    desc.dst.axisType[std::size_t(axis)] ==
                            AxisType::Compressed) {
                compressed = true;
            }
        }
        if (desc.src.unit == MemUnit::Dram) {
            auto it = srams.find(desc.dst.unit);
            require(it != srams.end(), "unknown destination SRAM unit");
            if (compressed)
                moveCsrIn(desc, dram, it->second, stats);
            else
                moveDenseIn(desc, dram, it->second, stats);
        } else {
            auto it = srams.find(desc.src.unit);
            require(it != srams.end(), "unknown source SRAM unit");
            if (compressed)
                moveCsrOut(desc, dram, it->second, stats);
            else
                moveDenseOut(desc, dram, it->second, stats);
        }
    }
    return stats;
}

} // namespace stellar::isa
