/**
 * @file
 * The C-style software driver of Listing 7, plus a functional transfer
 * executor.
 *
 * The driver records the set_* calls as Table II instructions; the
 * executor decodes an issued program against modeled DRAM and SRAM units
 * and actually moves the bytes, so software-visible behaviour (e.g.
 * "move this CSR matrix into SRAM_B") can be tested end-to-end exactly
 * as a user program would run it.
 */

#ifndef STELLAR_ISA_DRIVER_HPP
#define STELLAR_ISA_DRIVER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "isa/config_state.hpp"
#include "isa/instructions.hpp"

namespace stellar::isa
{

/** Byte-addressable modeled DRAM. */
class HostMemory
{
  public:
    explicit HostMemory(std::size_t bytes) : bytes_(bytes, 0) {}

    std::size_t size() const { return bytes_.size(); }

    void write32(std::uint64_t addr, std::uint32_t value);
    std::uint32_t read32(std::uint64_t addr) const;
    void writeFloat(std::uint64_t addr, float value);
    float readFloat(std::uint64_t addr) const;

    /** Bulk helpers for setting up test arrays. */
    void writeFloatArray(std::uint64_t addr, const std::vector<float> &vs);
    void writeIntArray(std::uint64_t addr,
                       const std::vector<std::int32_t> &vs);

  private:
    std::vector<std::uint8_t> bytes_;
};

/** One modeled private memory buffer (data + per-axis metadata). */
struct SramUnit
{
    std::vector<float> data;
    std::vector<std::int32_t> coords;  //!< compressed-axis coordinates
    std::vector<std::int32_t> rowIds;  //!< compressed-axis row pointers
};

/** The Listing 7 programming API. Calls append instructions. */
class Driver
{
  public:
    void setSrcAndDst(MemUnit src, MemUnit dst);
    void setDataAddr(Target target, std::uint64_t addr);
    void setMetadataAddr(Target target, int axis, MetadataType metadata,
                         std::uint64_t addr);
    void setSpan(Target target, int axis, std::uint64_t span);
    void setStride(Target target, int axis, std::uint64_t stride);
    void setMetadataStride(Target target, int addr_gen_axis, int axis,
                           MetadataType metadata, std::uint64_t stride);
    void setAxis(Target target, int axis, AxisType type);
    void setConstant(ConstantId id, std::uint64_t value);
    void issue();

    const std::vector<Instruction> &program() const { return program_; }
    void clear() { program_.clear(); }

  private:
    std::vector<Instruction> program_;
};

/** Execution statistics of a functional transfer. */
struct ExecStats
{
    std::int64_t elementsMoved = 0;
    std::int64_t metadataMoved = 0;
    std::int64_t descriptors = 0;
};

/**
 * Decode and execute a driver program: every issued descriptor moves
 * data between `dram` and the SRAM units (keyed by MemUnit). Supports
 * rank-1/rank-2 tensors with Dense and Compressed axes — the Listing 7
 * use cases.
 */
ExecStats executeProgram(const std::vector<Instruction> &program,
                         HostMemory &dram,
                         std::map<MemUnit, SramUnit> &srams);

} // namespace stellar::isa

#endif // STELLAR_ISA_DRIVER_HPP
