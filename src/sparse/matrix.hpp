/**
 * @file
 * Software sparse-matrix substrate: dense, COO, CSR, and CSC matrices
 * with conversions. These back the sparse workloads of Sections VI-C and
 * VI-D (OuterSPACE-style SpGEMM and SpArch/GAMMA-style merging) and give
 * the simulator its golden results.
 */

#ifndef STELLAR_SPARSE_MATRIX_HPP
#define STELLAR_SPARSE_MATRIX_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace stellar::sparse
{

/** A row-major dense matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() : rows_(0), cols_(0) {}
    DenseMatrix(std::int64_t rows, std::int64_t cols);

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }

    double &at(std::int64_t r, std::int64_t c);
    double at(std::int64_t r, std::int64_t c) const;

    /** Count of nonzero entries. */
    std::int64_t nnz() const;

    bool operator==(const DenseMatrix &other) const = default;

    /** Max absolute elementwise difference (for float comparisons). */
    double maxAbsDiff(const DenseMatrix &other) const;

  private:
    std::int64_t rows_;
    std::int64_t cols_;
    std::vector<double> data_;
};

/** One coordinate-format entry. */
struct CooEntry
{
    std::int64_t row = 0;
    std::int64_t col = 0;
    double value = 0.0;

    bool
    operator<(const CooEntry &other) const
    {
        if (row != other.row)
            return row < other.row;
        return col < other.col;
    }
};

/** A COO matrix: unordered triplets plus dimensions. */
struct CooMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<CooEntry> entries;

    /** Sort by (row, col) and sum duplicates. */
    void canonicalize();
};

/** A compressed-sparse-row matrix. */
class CsrMatrix
{
  public:
    CsrMatrix() : rows_(0), cols_(0) { rowPtr_.push_back(0); }
    CsrMatrix(std::int64_t rows, std::int64_t cols,
              std::vector<std::int64_t> row_ptr,
              std::vector<std::int64_t> col_idx, std::vector<double> values);

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t nnz() const { return std::int64_t(values_.size()); }

    const std::vector<std::int64_t> &rowPtr() const { return rowPtr_; }
    const std::vector<std::int64_t> &colIdx() const { return colIdx_; }
    const std::vector<double> &values() const { return values_; }

    std::int64_t rowNnz(std::int64_t r) const;

    /** Largest row length (merger imbalance metric). */
    std::int64_t maxRowNnz() const;

    /** Check structural invariants (sorted columns, consistent ptrs). */
    bool wellFormed() const;

    bool operator==(const CsrMatrix &other) const = default;

  private:
    std::int64_t rows_;
    std::int64_t cols_;
    std::vector<std::int64_t> rowPtr_;
    std::vector<std::int64_t> colIdx_;
    std::vector<double> values_;
};

/** A compressed-sparse-column matrix. */
class CscMatrix
{
  public:
    CscMatrix() : rows_(0), cols_(0) { colPtr_.push_back(0); }
    CscMatrix(std::int64_t rows, std::int64_t cols,
              std::vector<std::int64_t> col_ptr,
              std::vector<std::int64_t> row_idx, std::vector<double> values);

    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }
    std::int64_t nnz() const { return std::int64_t(values_.size()); }

    const std::vector<std::int64_t> &colPtr() const { return colPtr_; }
    const std::vector<std::int64_t> &rowIdx() const { return rowIdx_; }
    const std::vector<double> &values() const { return values_; }

    std::int64_t colNnz(std::int64_t c) const;

  private:
    std::int64_t rows_;
    std::int64_t cols_;
    std::vector<std::int64_t> colPtr_;
    std::vector<std::int64_t> rowIdx_;
    std::vector<double> values_;
};

/** Conversions. */
CsrMatrix cooToCsr(const CooMatrix &coo);
CooMatrix csrToCoo(const CsrMatrix &csr);
CscMatrix csrToCsc(const CsrMatrix &csr);
CsrMatrix cscToCsr(const CscMatrix &csc);
DenseMatrix csrToDense(const CsrMatrix &csr);
CsrMatrix denseToCsr(const DenseMatrix &dense);

/** Dense reference matmul. */
DenseMatrix denseMatmul(const DenseMatrix &a, const DenseMatrix &b);

/** CSR transpose (via CSC reinterpretation). */
CsrMatrix csrTranspose(const CsrMatrix &csr);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_MATRIX_HPP
