#include "sparse/spgemm.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace stellar::sparse
{

CsrMatrix
spgemmGustavson(const CsrMatrix &a, const CsrMatrix &b)
{
    require(a.cols() == b.rows(), "SpGEMM shape mismatch");
    CooMatrix coo;
    coo.rows = a.rows();
    coo.cols = b.cols();
    std::map<std::int64_t, double> accumulator;
    for (std::int64_t i = 0; i < a.rows(); i++) {
        accumulator.clear();
        for (auto ai = a.rowPtr()[std::size_t(i)];
                ai < a.rowPtr()[std::size_t(i + 1)]; ai++) {
            auto k = a.colIdx()[std::size_t(ai)];
            double av = a.values()[std::size_t(ai)];
            for (auto bi = b.rowPtr()[std::size_t(k)];
                    bi < b.rowPtr()[std::size_t(k + 1)]; bi++) {
                accumulator[b.colIdx()[std::size_t(bi)]] +=
                        av * b.values()[std::size_t(bi)];
            }
        }
        for (const auto &[col, value] : accumulator)
            if (value != 0.0)
                coo.entries.push_back(CooEntry{i, col, value});
    }
    return cooToCsr(coo);
}

bool
Fiber::sorted() const
{
    for (std::size_t i = 1; i < coords.size(); i++)
        if (coords[i - 1] >= coords[i])
            return false;
    return true;
}

std::int64_t
PartialMatrix::totalElements() const
{
    std::int64_t total = 0;
    for (const auto &fiber : rowFibers)
        total += fiber.size();
    return total;
}

std::int64_t
PartialMatrix::maxFiberLen() const
{
    std::int64_t worst = 0;
    for (const auto &fiber : rowFibers)
        worst = std::max(worst, fiber.size());
    return worst;
}

double
PartialMatrix::imbalance() const
{
    if (rowFibers.empty())
        return 1.0;
    double mean = double(totalElements()) / double(rowFibers.size());
    return mean == 0.0 ? 1.0 : double(maxFiberLen()) / mean;
}

std::vector<PartialMatrix>
outerProductPartials(const CscMatrix &a, const CsrMatrix &b)
{
    require(a.cols() == b.rows(), "outer-product shape mismatch");
    std::vector<PartialMatrix> partials;
    for (std::int64_t k = 0; k < a.cols(); k++) {
        if (a.colNnz(k) == 0 ||
                b.rowPtr()[std::size_t(k)] == b.rowPtr()[std::size_t(k + 1)]) {
            continue;
        }
        PartialMatrix partial;
        for (auto ai = a.colPtr()[std::size_t(k)];
                ai < a.colPtr()[std::size_t(k + 1)]; ai++) {
            auto i = a.rowIdx()[std::size_t(ai)];
            double av = a.values()[std::size_t(ai)];
            Fiber fiber;
            for (auto bi = b.rowPtr()[std::size_t(k)];
                    bi < b.rowPtr()[std::size_t(k + 1)]; bi++) {
                fiber.coords.push_back(b.colIdx()[std::size_t(bi)]);
                fiber.values.push_back(av * b.values()[std::size_t(bi)]);
            }
            partial.rowIds.push_back(i);
            partial.rowFibers.push_back(std::move(fiber));
        }
        partials.push_back(std::move(partial));
    }
    return partials;
}

CsrMatrix
mergePartials(std::int64_t rows, std::int64_t cols,
              const std::vector<PartialMatrix> &partials)
{
    CooMatrix coo;
    coo.rows = rows;
    coo.cols = cols;
    for (const auto &partial : partials) {
        for (std::size_t f = 0; f < partial.rowFibers.size(); f++) {
            const auto &fiber = partial.rowFibers[f];
            for (std::size_t e = 0; e < fiber.coords.size(); e++) {
                coo.entries.push_back(CooEntry{partial.rowIds[f],
                                               fiber.coords[e],
                                               fiber.values[e]});
            }
        }
    }
    return cooToCsr(coo);
}

Fiber
mergeFibers(const Fiber &a, const Fiber &b)
{
    invariant(a.sorted() && b.sorted(), "mergeFibers needs sorted inputs");
    Fiber out;
    std::size_t ia = 0, ib = 0;
    while (ia < a.coords.size() || ib < b.coords.size()) {
        bool take_a = ib >= b.coords.size() ||
                      (ia < a.coords.size() &&
                       a.coords[ia] <= b.coords[ib]);
        bool take_b = ia >= a.coords.size() ||
                      (ib < b.coords.size() &&
                       b.coords[ib] <= a.coords[ia]);
        if (take_a && take_b) {
            out.coords.push_back(a.coords[ia]);
            out.values.push_back(a.values[ia] + b.values[ib]);
            ia++;
            ib++;
        } else if (take_a) {
            out.coords.push_back(a.coords[ia]);
            out.values.push_back(a.values[ia]);
            ia++;
        } else {
            out.coords.push_back(b.coords[ib]);
            out.values.push_back(b.values[ib]);
            ib++;
        }
    }
    return out;
}

std::int64_t
spgemmMultiplies(const CsrMatrix &a, const CsrMatrix &b)
{
    require(a.cols() == b.rows(), "SpGEMM shape mismatch");
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < a.rows(); i++) {
        for (auto ai = a.rowPtr()[std::size_t(i)];
                ai < a.rowPtr()[std::size_t(i + 1)]; ai++) {
            auto k = a.colIdx()[std::size_t(ai)];
            total += b.rowNnz(k);
        }
    }
    return total;
}

} // namespace stellar::sparse
