#include "sparse/suitesparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hpp"

namespace stellar::sparse
{

double
MatrixProfile::density() const
{
    return rows == 0 || cols == 0
                   ? 0.0
                   : double(nnz) / (double(rows) * double(cols));
}

double
MatrixProfile::avgRowNnz() const
{
    return rows == 0 ? 0.0 : double(nnz) / double(rows);
}

const std::vector<MatrixProfile> &
outerSpaceSuite()
{
    // Dimensions and nonzero counts follow the published SuiteSparse
    // metadata for the matrices in OuterSPACE's (and SpArch's) evaluation.
    static const std::vector<MatrixProfile> suite = {
        {"2cubes_sphere", 101492, 101492, 1647264, MatrixPattern::Mesh, 0.3},
        {"amazon0312", 400727, 400727, 3200440, MatrixPattern::PowerLaw, 0.9},
        {"ca-CondMat", 23133, 23133, 186936, MatrixPattern::PowerLaw, 0.9},
        {"cage12", 130228, 130228, 2032536, MatrixPattern::Mesh, 0.3},
        {"cop20k_A", 121192, 121192, 2624331, MatrixPattern::Mesh, 0.5},
        {"email-Enron", 36692, 36692, 367662, MatrixPattern::PowerLaw, 1.4},
        {"filter3D", 106437, 106437, 2707179, MatrixPattern::Mesh, 0.3},
        {"m133-b3", 200200, 200200, 800800, MatrixPattern::Mesh, 0.1},
        {"mario002", 389874, 389874, 2101242, MatrixPattern::Mesh, 0.2},
        {"offshore", 259789, 259789, 4242673, MatrixPattern::Mesh, 0.3},
        {"p2p-Gnutella31", 62586, 62586, 147892, MatrixPattern::PowerLaw,
         1.1},
        {"patents_main", 240547, 240547, 560943, MatrixPattern::PowerLaw,
         0.8},
        {"poisson3Da", 13514, 13514, 352762, MatrixPattern::Mesh, 0.4},
        {"roadNet-CA", 1971281, 1971281, 5533214, MatrixPattern::Mesh, 0.2},
        {"scircuit", 170998, 170998, 958936, MatrixPattern::PowerLaw, 1.2},
        {"web-Google", 916428, 916428, 5105039, MatrixPattern::PowerLaw,
         1.3},
        {"webbase-1M", 1000005, 1000005, 3105536, MatrixPattern::PowerLaw,
         1.6},
        {"wiki-Vote", 8297, 8297, 103689, MatrixPattern::PowerLaw, 1.3},
    };
    return suite;
}

const std::vector<MatrixProfile> &
pyxisSuite()
{
    // Dimensions and nonzero counts follow the published SuiteSparse
    // metadata for three matrices in the Pyxis dataset's input set,
    // chosen to bracket the density range the dataset covers.
    static const std::vector<MatrixProfile> suite = {
        {"mouse_gene", 45101, 45101, 28967291, MatrixPattern::PowerLaw,
         1.0},
        {"nasasrb", 54870, 54870, 2677324, MatrixPattern::Mesh, 0.2},
        {"rajat21", 411676, 411676, 1876011, MatrixPattern::PowerLaw,
         1.2},
    };
    return suite;
}

const MatrixProfile &
profileByName(const std::string &name)
{
    for (const auto &profile : outerSpaceSuite())
        if (profile.name == name)
            return profile;
    for (const auto &profile : pyxisSuite())
        if (profile.name == name)
            return profile;
    fatal("unknown SuiteSparse profile: " + name);
}

MatrixProfile
scaleProfile(const MatrixProfile &profile, std::int64_t target_nnz)
{
    if (profile.nnz <= target_nnz)
        return profile;
    MatrixProfile scaled = profile;
    // Preserve the average row length (the statistic merger throughput
    // and SpGEMM work depend on): rows shrink linearly with nnz.
    double ratio = double(target_nnz) / double(profile.nnz);
    scaled.rows = std::max<std::int64_t>(
            64, std::int64_t(double(profile.rows) * ratio));
    scaled.cols = scaled.rows;
    scaled.nnz = std::max<std::int64_t>(
            scaled.rows,
            std::int64_t(double(scaled.rows) * profile.avgRowNnz()));
    return scaled;
}

CsrMatrix
synthesize(const MatrixProfile &profile, std::uint64_t seed)
{
    require(profile.rows > 0 && profile.cols > 0,
            "profile must have positive dimensions");
    Rng rng(seed ^ std::hash<std::string>{}(profile.name));

    // Draw per-row weights from the profile's distribution and scale them
    // so the total matches nnz.
    std::vector<double> weights(std::size_t(profile.rows));
    double total_weight = 0.0;
    for (auto &w : weights) {
        if (profile.pattern == MatrixPattern::PowerLaw) {
            // Pareto-distributed row weights: a handful of hub rows carry
            // a large share of the nonzeros, as in real graph matrices.
            double u = std::max(rng.nextDouble(), 1e-9);
            w = std::min(std::pow(u, -profile.rowSkew), 1e5);
        } else {
            w = std::max(0.2, rng.nextGaussian(1.0, profile.rowSkew));
        }
        total_weight += w;
    }

    std::vector<std::int64_t> row_ptr(std::size_t(profile.rows) + 1, 0);
    std::vector<std::int64_t> col_idx;
    col_idx.reserve(std::size_t(profile.nnz));
    std::vector<double> values;
    values.reserve(std::size_t(profile.nnz));

    std::int64_t remaining = profile.nnz;
    for (std::int64_t r = 0; r < profile.rows; r++) {
        std::int64_t len;
        if (r + 1 == profile.rows) {
            len = remaining;
        } else {
            len = std::int64_t(std::llround(
                    weights[std::size_t(r)] / total_weight *
                    double(profile.nnz)));
        }
        len = std::clamp<std::int64_t>(len, 0,
                                       std::min(remaining, profile.cols));
        remaining -= len;

        // Distinct sorted column indices for this row.
        std::set<std::int64_t> cols;
        if (profile.pattern == MatrixPattern::Mesh && len > 0) {
            // Mesh rows cluster near the diagonal.
            std::int64_t center = std::int64_t(
                    double(r) / double(profile.rows) * double(profile.cols));
            while (std::int64_t(cols.size()) < len) {
                auto offset = std::int64_t(
                        rng.nextGaussian(0.0, double(len) * 4.0 + 8.0));
                auto c = std::clamp<std::int64_t>(center + offset, 0,
                                                  profile.cols - 1);
                cols.insert(c);
            }
        } else {
            while (std::int64_t(cols.size()) < len)
                cols.insert(std::int64_t(
                        rng.nextBounded(std::uint64_t(profile.cols))));
        }
        for (auto c : cols) {
            col_idx.push_back(c);
            values.push_back(0.1 + 0.9 * rng.nextDouble());
        }
        row_ptr[std::size_t(r) + 1] =
                row_ptr[std::size_t(r)] + std::int64_t(cols.size());
    }
    return CsrMatrix(profile.rows, profile.cols, std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

} // namespace stellar::sparse
