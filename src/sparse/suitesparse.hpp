/**
 * @file
 * Synthetic SuiteSparse workloads (Sections VI-C and VI-D).
 *
 * The paper evaluates its OuterSPACE-style accelerator and merger designs
 * on matrices from the SuiteSparse (University of Florida) collection.
 * The collection is not available offline, so this module carries each
 * matrix's published dimensions and nonzero count plus a row-length-
 * distribution profile (mesh-like/uniform vs power-law/skewed), and
 * synthesizes matrices matching those statistics. Throughput and merger
 * results depend on size, density, and row imbalance — which the
 * generator reproduces per matrix — not on the exact coordinate values.
 * Dimensions/nnz are from the published collection metadata and are
 * approximate where the original papers rounded.
 */

#ifndef STELLAR_SPARSE_SUITESPARSE_HPP
#define STELLAR_SPARSE_SUITESPARSE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/matrix.hpp"
#include "util/rng.hpp"

namespace stellar::sparse
{

/** Row-length distribution family. */
enum class MatrixPattern
{
    Mesh,      //!< near-uniform row lengths (FEM/meshes)
    PowerLaw,  //!< heavy-tailed row lengths (graphs, circuits)
};

/** Published statistics of one SuiteSparse matrix. */
struct MatrixProfile
{
    std::string name;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t nnz = 0;
    MatrixPattern pattern = MatrixPattern::Mesh;

    /** Zipf skew of the row-length distribution. */
    double rowSkew = 0.4;

    double density() const;
    double avgRowNnz() const;
};

/** The matrices OuterSPACE (and SpArch) were evaluated on. */
const std::vector<MatrixProfile> &outerSpaceSuite();

/**
 * Three matrices shaped like the Pyxis performance dataset's SuiteSparse
 * inputs (PAPERS.md): a near-dense power-law gene network, an FEM shell
 * mesh, and a large, very sparse circuit. They stress corners the
 * OuterSPACE suite under-samples — extreme row density, stiff regular
 * meshes, and hub-dominated circuits — and back the `pyxis_*`
 * calibration records.
 */
const std::vector<MatrixProfile> &pyxisSuite();

/** Look up a profile by name in any built-in suite; fatal when
 *  unknown. */
const MatrixProfile &profileByName(const std::string &name);

/**
 * Scale a profile down to approximately `target_nnz` nonzeros while
 * preserving its average row length and skew (the statistics merger
 * throughput and SpGEMM work depend on), so cycle-level simulation stays
 * tractable on one core. Profiles at or below the target are unchanged.
 */
MatrixProfile scaleProfile(const MatrixProfile &profile,
                           std::int64_t target_nnz);

/** Synthesize a matrix matching a profile. Deterministic per (profile,
 *  seed). */
CsrMatrix synthesize(const MatrixProfile &profile, std::uint64_t seed);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_SUITESPARSE_HPP
