#include "sparse/structured.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace stellar::sparse
{

StructuredMatrix
generateStructured(Rng &rng, std::int64_t rows, std::int64_t cols,
                   int keep_n, int group_m)
{
    require(group_m > 0 && keep_n > 0 && keep_n <= group_m,
            "invalid N:M parameters");
    require(cols % group_m == 0, "cols must be a multiple of M");
    StructuredMatrix matrix;
    matrix.rows = rows;
    matrix.cols = cols;
    matrix.keepN = keep_n;
    matrix.groupM = group_m;
    for (std::int64_t r = 0; r < rows; r++) {
        for (std::int64_t g = 0; g < cols / group_m; g++) {
            // Choose keep_n distinct positions within the group.
            auto perm = rng.permutation(std::size_t(group_m));
            std::vector<std::uint8_t> kept(perm.begin(),
                                           perm.begin() + keep_n);
            std::sort(kept.begin(), kept.end());
            for (auto sel : kept) {
                matrix.values.push_back(
                        double(rng.nextRange(1, 9)));
                matrix.selectors.push_back(sel);
            }
        }
    }
    return matrix;
}

DenseMatrix
structuredToDense(const StructuredMatrix &matrix)
{
    DenseMatrix dense(matrix.rows, matrix.cols);
    std::size_t cursor = 0;
    for (std::int64_t r = 0; r < matrix.rows; r++) {
        for (std::int64_t g = 0; g < matrix.groupsPerRow(); g++) {
            for (int n = 0; n < matrix.keepN; n++) {
                invariant(cursor < matrix.values.size(),
                          "structured matrix underrun");
                std::int64_t c = g * matrix.groupM +
                                 matrix.selectors[cursor];
                dense.at(r, c) = matrix.values[cursor];
                cursor++;
            }
        }
    }
    return dense;
}

StructuredMatrix
denseToStructured(const DenseMatrix &dense, int keep_n, int group_m)
{
    require(isStructuredNM(dense, keep_n, group_m),
            "matrix violates the N:M structured-sparsity property");
    StructuredMatrix matrix;
    matrix.rows = dense.rows();
    matrix.cols = dense.cols();
    matrix.keepN = keep_n;
    matrix.groupM = group_m;
    for (std::int64_t r = 0; r < dense.rows(); r++) {
        for (std::int64_t g = 0; g < dense.cols() / group_m; g++) {
            int packed = 0;
            for (int pos = 0; pos < group_m; pos++) {
                double v = dense.at(r, g * group_m + pos);
                if (v != 0.0) {
                    matrix.values.push_back(v);
                    matrix.selectors.push_back(std::uint8_t(pos));
                    packed++;
                }
            }
            // Pad with explicit zeros so groups stay fixed-size.
            while (packed < keep_n) {
                matrix.values.push_back(0.0);
                matrix.selectors.push_back(0);
                packed++;
            }
        }
    }
    return matrix;
}

bool
isStructuredNM(const DenseMatrix &dense, int keep_n, int group_m)
{
    if (group_m <= 0 || dense.cols() % group_m != 0)
        return false;
    for (std::int64_t r = 0; r < dense.rows(); r++) {
        for (std::int64_t g = 0; g < dense.cols() / group_m; g++) {
            int nonzeros = 0;
            for (int pos = 0; pos < group_m; pos++)
                if (dense.at(r, g * group_m + pos) != 0.0)
                    nonzeros++;
            if (nonzeros > keep_n)
                return false;
        }
    }
    return true;
}

} // namespace stellar::sparse
