/**
 * @file
 * Reference sparse-matrix-multiplication algorithms.
 *
 * Two SpGEMM formulations matter for the evaluation:
 *  - Gustavson (row-wise) products, the GAMMA baseline;
 *  - outer products, the OuterSPACE/SpArch formulation, which produce
 *    *partial matrices* (one per column of A) that must then be merged
 *    (Section VI-C/VI-D). The partial-matrix representation here is what
 *    the merger simulators consume.
 */

#ifndef STELLAR_SPARSE_SPGEMM_HPP
#define STELLAR_SPARSE_SPGEMM_HPP

#include <cstdint>
#include <vector>

#include "sparse/matrix.hpp"

namespace stellar::sparse
{

/** Gustavson row-wise SpGEMM: C = A * B over CSR operands. */
CsrMatrix spgemmGustavson(const CsrMatrix &a, const CsrMatrix &b);

/** One sorted (coordinate, value) stream. */
struct Fiber
{
    std::vector<std::int64_t> coords;
    std::vector<double> values;

    std::int64_t size() const { return std::int64_t(coords.size()); }
    bool sorted() const;
};

/**
 * One outer-product partial matrix: the rank-1 update A(:,k) x B(k,:),
 * stored as one fiber per touched row.
 */
struct PartialMatrix
{
    std::vector<std::int64_t> rowIds;
    std::vector<Fiber> rowFibers;

    std::int64_t totalElements() const;
    std::int64_t maxFiberLen() const;

    /** Row-length imbalance: max fiber length / mean fiber length. */
    double imbalance() const;
};

/** Produce the outer-product partial matrices of C = A * B, one per
 *  column k of A (equivalently row k of B), in k order. */
std::vector<PartialMatrix> outerProductPartials(const CscMatrix &a,
                                                const CsrMatrix &b);

/** Merge partial matrices into the final CSR result (reference). */
CsrMatrix mergePartials(std::int64_t rows, std::int64_t cols,
                        const std::vector<PartialMatrix> &partials);

/** Two-way sorted-fiber merge, summing values at equal coordinates. */
Fiber mergeFibers(const Fiber &a, const Fiber &b);

/** Number of multiply operations an SpGEMM performs (2x for GFLOPs). */
std::int64_t spgemmMultiplies(const CsrMatrix &a, const CsrMatrix &b);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_SPGEMM_HPP
