/**
 * @file
 * Matrix Market (.mtx) I/O.
 *
 * SuiteSparse distributes its matrices in the Matrix Market coordinate
 * format; this reader/writer lets users run the Section VI experiments
 * on the *real* collection when they have it, instead of the synthetic
 * profiles. Supports the `matrix coordinate real/integer/pattern
 * general/symmetric` headers that cover the collection.
 */

#ifndef STELLAR_SPARSE_MATRIX_MARKET_HPP
#define STELLAR_SPARSE_MATRIX_MARKET_HPP

#include <iosfwd>
#include <string>

#include "sparse/matrix.hpp"

namespace stellar::sparse
{

/**
 * Parse a Matrix Market stream into CSR. Malformed input — a damaged
 * banner, a garbage size header, short entry rows, out-of-range
 * coordinates, or a truncated entry list — raises FatalError carrying
 * the offending 1-based line number; nothing misparses silently.
 */
CsrMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write a CSR matrix as `matrix coordinate real general`. */
void writeMatrixMarket(std::ostream &out, const CsrMatrix &matrix);

/** Save a .mtx file. */
void writeMatrixMarketFile(const std::string &path,
                           const CsrMatrix &matrix);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_MATRIX_MARKET_HPP
