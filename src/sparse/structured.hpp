/**
 * @file
 * N:M structured sparsity (Fig 5 / NVIDIA A100 2:4).
 *
 * In an N:M structured-sparse matrix every aligned group of M elements
 * along the compressed dimension holds at most N nonzeros. The format
 * stores the N values plus small per-group selector metadata, which is
 * what lets the OptimisticSkip hardware keep its PE-to-PE connections
 * and mux the right operands out of 4-wide bundles.
 */

#ifndef STELLAR_SPARSE_STRUCTURED_HPP
#define STELLAR_SPARSE_STRUCTURED_HPP

#include <cstdint>
#include <vector>

#include "sparse/matrix.hpp"
#include "util/rng.hpp"

namespace stellar::sparse
{

/** An N:M structured-sparse matrix in packed form. */
struct StructuredMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    int keepN = 2;
    int groupM = 4;

    /** Packed nonzero values: rows x (cols / M) groups of N values. */
    std::vector<double> values;

    /** Per kept value: its index within the M-group (selector bits). */
    std::vector<std::uint8_t> selectors;

    std::int64_t groupsPerRow() const { return cols / groupM; }
    std::int64_t nnz() const { return std::int64_t(values.size()); }
};

/** Generate a random N:M structured matrix. cols must divide by M. */
StructuredMatrix generateStructured(Rng &rng, std::int64_t rows,
                                    std::int64_t cols, int keep_n,
                                    int group_m);

/** Expand to dense (zeros where pruned). */
DenseMatrix structuredToDense(const StructuredMatrix &matrix);

/** Pack a dense matrix that satisfies the N:M property; fatal if the
 *  property is violated. */
StructuredMatrix denseToStructured(const DenseMatrix &dense, int keep_n,
                                   int group_m);

/** True when the dense matrix satisfies N:M sparsity along rows. */
bool isStructuredNM(const DenseMatrix &dense, int keep_n, int group_m);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_STRUCTURED_HPP
