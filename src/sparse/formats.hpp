/**
 * @file
 * Additional fibertree storage formats (Section III-E): bitvector,
 * linked-list, and block-CRS. Each supports lossless round-trips to CSR,
 * mirroring the format conversions Stellar-generated DMAs perform when
 * moving tensors between memories.
 */

#ifndef STELLAR_SPARSE_FORMATS_HPP
#define STELLAR_SPARSE_FORMATS_HPP

#include <cstdint>
#include <vector>

#include "sparse/matrix.hpp"

namespace stellar::sparse
{

/** Rows stored as presence bitmasks plus packed values. */
struct BitvectorMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<std::vector<std::uint64_t>> rowMasks; //!< per-row bitmask
    std::vector<std::vector<double>> rowValues;       //!< packed nonzeros

    std::int64_t nnz() const;

    /** Total metadata bits (the format's storage cost). */
    std::int64_t metadataBits() const;
};

BitvectorMatrix csrToBitvector(const CsrMatrix &csr);
CsrMatrix bitvectorToCsr(const BitvectorMatrix &bv);

/** Rows stored as singly-linked coordinate/value nodes (append-friendly,
 *  used for accumulating scattered partial sums). */
struct LinkedListMatrix
{
    struct Node
    {
        std::int64_t col = 0;
        double value = 0.0;
        std::int64_t next = -1; //!< index into nodes, -1 terminates
    };

    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::vector<std::int64_t> rowHead; //!< per-row head node (-1 = empty)
    std::vector<Node> nodes;

    std::int64_t nnz() const { return std::int64_t(nodes.size()); }

    /** Insert (or accumulate into) an entry, keeping rows sorted. */
    void insert(std::int64_t row, std::int64_t col, double value);
};

LinkedListMatrix csrToLinkedList(const CsrMatrix &csr);
CsrMatrix linkedListToCsr(const LinkedListMatrix &ll);

/** Block compressed-row storage: dense b x b blocks indexed CSR-style
 *  (the Fig 12 example format). */
struct BlockCrsMatrix
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    std::int64_t blockSize = 1;
    std::vector<std::int64_t> blockRowPtr;
    std::vector<std::int64_t> blockColIdx;
    std::vector<std::vector<double>> blocks; //!< row-major b*b values

    std::int64_t blockRows() const;
    std::int64_t nnzBlocks() const { return std::int64_t(blocks.size()); }
};

BlockCrsMatrix csrToBlockCrs(const CsrMatrix &csr, std::int64_t block_size);
CsrMatrix blockCrsToCsr(const BlockCrsMatrix &bcrs);

} // namespace stellar::sparse

#endif // STELLAR_SPARSE_FORMATS_HPP
