#include "sparse/formats.hpp"

#include "util/logging.hpp"

namespace stellar::sparse
{

std::int64_t
BitvectorMatrix::nnz() const
{
    std::int64_t n = 0;
    for (const auto &values : rowValues)
        n += std::int64_t(values.size());
    return n;
}

std::int64_t
BitvectorMatrix::metadataBits() const
{
    std::int64_t bits = 0;
    for (const auto &mask : rowMasks)
        bits += std::int64_t(mask.size()) * 64;
    return bits;
}

BitvectorMatrix
csrToBitvector(const CsrMatrix &csr)
{
    BitvectorMatrix bv;
    bv.rows = csr.rows();
    bv.cols = csr.cols();
    std::size_t words = std::size_t((csr.cols() + 63) / 64);
    bv.rowMasks.assign(std::size_t(csr.rows()),
                       std::vector<std::uint64_t>(words, 0));
    bv.rowValues.assign(std::size_t(csr.rows()), {});
    for (std::int64_t r = 0; r < csr.rows(); r++) {
        for (auto idx = csr.rowPtr()[std::size_t(r)];
                idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
            auto c = csr.colIdx()[std::size_t(idx)];
            bv.rowMasks[std::size_t(r)][std::size_t(c / 64)] |=
                    std::uint64_t(1) << (c % 64);
            bv.rowValues[std::size_t(r)].push_back(
                    csr.values()[std::size_t(idx)]);
        }
    }
    return bv;
}

CsrMatrix
bitvectorToCsr(const BitvectorMatrix &bv)
{
    CooMatrix coo;
    coo.rows = bv.rows;
    coo.cols = bv.cols;
    for (std::int64_t r = 0; r < bv.rows; r++) {
        std::size_t cursor = 0;
        const auto &mask = bv.rowMasks[std::size_t(r)];
        for (std::int64_t c = 0; c < bv.cols; c++) {
            bool set = (mask[std::size_t(c / 64)] >> (c % 64)) & 1;
            if (!set)
                continue;
            invariant(cursor < bv.rowValues[std::size_t(r)].size(),
                      "bitvector value underrun");
            coo.entries.push_back(CooEntry{r, c,
                    bv.rowValues[std::size_t(r)][cursor++]});
        }
    }
    return cooToCsr(coo);
}

void
LinkedListMatrix::insert(std::int64_t row, std::int64_t col, double value)
{
    invariant(row >= 0 && row < rows && col >= 0 && col < cols,
              "linked-list insert out of range");
    std::int64_t prev = -1;
    std::int64_t curr = rowHead[std::size_t(row)];
    while (curr != -1 && nodes[std::size_t(curr)].col < col) {
        prev = curr;
        curr = nodes[std::size_t(curr)].next;
    }
    if (curr != -1 && nodes[std::size_t(curr)].col == col) {
        nodes[std::size_t(curr)].value += value;
        return;
    }
    Node node;
    node.col = col;
    node.value = value;
    node.next = curr;
    auto inserted = std::int64_t(nodes.size());
    nodes.push_back(node);
    if (prev == -1)
        rowHead[std::size_t(row)] = inserted;
    else
        nodes[std::size_t(prev)].next = inserted;
}

LinkedListMatrix
csrToLinkedList(const CsrMatrix &csr)
{
    LinkedListMatrix ll;
    ll.rows = csr.rows();
    ll.cols = csr.cols();
    ll.rowHead.assign(std::size_t(csr.rows()), -1);
    for (std::int64_t r = 0; r < csr.rows(); r++) {
        for (auto idx = csr.rowPtr()[std::size_t(r)];
                idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
            ll.insert(r, csr.colIdx()[std::size_t(idx)],
                      csr.values()[std::size_t(idx)]);
        }
    }
    return ll;
}

CsrMatrix
linkedListToCsr(const LinkedListMatrix &ll)
{
    CooMatrix coo;
    coo.rows = ll.rows;
    coo.cols = ll.cols;
    for (std::int64_t r = 0; r < ll.rows; r++) {
        std::int64_t curr = ll.rowHead[std::size_t(r)];
        while (curr != -1) {
            const auto &node = ll.nodes[std::size_t(curr)];
            coo.entries.push_back(CooEntry{r, node.col, node.value});
            curr = node.next;
        }
    }
    return cooToCsr(coo);
}

std::int64_t
BlockCrsMatrix::blockRows() const
{
    return (rows + blockSize - 1) / blockSize;
}

BlockCrsMatrix
csrToBlockCrs(const CsrMatrix &csr, std::int64_t block_size)
{
    require(block_size > 0, "block size must be positive");
    BlockCrsMatrix bcrs;
    bcrs.rows = csr.rows();
    bcrs.cols = csr.cols();
    bcrs.blockSize = block_size;
    std::int64_t block_rows = (csr.rows() + block_size - 1) / block_size;
    std::int64_t block_cols = (csr.cols() + block_size - 1) / block_size;
    bcrs.blockRowPtr.assign(std::size_t(block_rows) + 1, 0);

    for (std::int64_t br = 0; br < block_rows; br++) {
        // Discover the nonempty block columns of this block row.
        std::vector<std::vector<double>> row_blocks;
        row_blocks.resize(std::size_t(block_cols));
        std::vector<bool> present(std::size_t(block_cols), false);
        for (std::int64_t r = br * block_size;
                r < std::min((br + 1) * block_size, csr.rows()); r++) {
            for (auto idx = csr.rowPtr()[std::size_t(r)];
                    idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
                auto c = csr.colIdx()[std::size_t(idx)];
                auto bc = c / block_size;
                if (!present[std::size_t(bc)]) {
                    present[std::size_t(bc)] = true;
                    row_blocks[std::size_t(bc)].assign(
                            std::size_t(block_size * block_size), 0.0);
                }
                auto lr = r - br * block_size;
                auto lc = c - bc * block_size;
                row_blocks[std::size_t(bc)][std::size_t(
                        lr * block_size + lc)] =
                        csr.values()[std::size_t(idx)];
            }
        }
        for (std::int64_t bc = 0; bc < block_cols; bc++) {
            if (!present[std::size_t(bc)])
                continue;
            bcrs.blockColIdx.push_back(bc);
            bcrs.blocks.push_back(std::move(row_blocks[std::size_t(bc)]));
            bcrs.blockRowPtr[std::size_t(br) + 1]++;
        }
    }
    for (std::size_t br = 1; br < bcrs.blockRowPtr.size(); br++)
        bcrs.blockRowPtr[br] += bcrs.blockRowPtr[br - 1];
    return bcrs;
}

CsrMatrix
blockCrsToCsr(const BlockCrsMatrix &bcrs)
{
    CooMatrix coo;
    coo.rows = bcrs.rows;
    coo.cols = bcrs.cols;
    for (std::int64_t br = 0; br < bcrs.blockRows(); br++) {
        for (auto idx = bcrs.blockRowPtr[std::size_t(br)];
                idx < bcrs.blockRowPtr[std::size_t(br + 1)]; idx++) {
            auto bc = bcrs.blockColIdx[std::size_t(idx)];
            const auto &block = bcrs.blocks[std::size_t(idx)];
            for (std::int64_t lr = 0; lr < bcrs.blockSize; lr++) {
                for (std::int64_t lc = 0; lc < bcrs.blockSize; lc++) {
                    double v = block[std::size_t(lr * bcrs.blockSize + lc)];
                    if (v == 0.0)
                        continue;
                    std::int64_t r = br * bcrs.blockSize + lr;
                    std::int64_t c = bc * bcrs.blockSize + lc;
                    if (r < bcrs.rows && c < bcrs.cols)
                        coo.entries.push_back(CooEntry{r, c, v});
                }
            }
        }
    }
    return cooToCsr(coo);
}

} // namespace stellar::sparse
