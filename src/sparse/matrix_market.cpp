#include "sparse/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace stellar::sparse
{

CsrMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    require(bool(std::getline(in, line)), "empty Matrix Market stream");
    require(startsWith(line, "%%MatrixMarket"),
            "missing %%MatrixMarket banner");

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    require(toLower(object) == "matrix", "only matrix objects supported");
    require(toLower(format) == "coordinate",
            "only coordinate format supported");
    std::string field_lc = toLower(field);
    require(field_lc == "real" || field_lc == "integer" ||
                    field_lc == "pattern",
            "unsupported field type: " + field);
    std::string symmetry_lc = toLower(symmetry);
    require(symmetry_lc == "general" || symmetry_lc == "symmetric",
            "unsupported symmetry: " + symmetry);
    bool pattern = field_lc == "pattern";
    bool symmetric = symmetry_lc == "symmetric";

    // Skip comments; the first non-comment line is the size header.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream sizes(line);
    std::int64_t rows = 0, cols = 0, entries = 0;
    sizes >> rows >> cols >> entries;
    require(rows > 0 && cols > 0 && entries >= 0,
            "malformed size header");

    CooMatrix coo;
    coo.rows = rows;
    coo.cols = cols;
    for (std::int64_t e = 0; e < entries; e++) {
        require(bool(std::getline(in, line)),
                "truncated entry list (expected " +
                std::to_string(entries) + " entries)");
        std::istringstream entry(line);
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        if (!pattern)
            entry >> v;
        require(r >= 1 && r <= rows && c >= 1 && c <= cols,
                "entry coordinates out of range");
        coo.entries.push_back(CooEntry{r - 1, c - 1, v});
        if (symmetric && r != c)
            coo.entries.push_back(CooEntry{c - 1, r - 1, v});
    }
    return cooToCsr(coo);
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(), "cannot open " + path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &matrix)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by stellar-cpp\n";
    out << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz()
        << "\n";
    for (std::int64_t r = 0; r < matrix.rows(); r++) {
        for (auto idx = matrix.rowPtr()[std::size_t(r)];
                idx < matrix.rowPtr()[std::size_t(r + 1)]; idx++) {
            out << (r + 1) << " "
                << (matrix.colIdx()[std::size_t(idx)] + 1) << " "
                << matrix.values()[std::size_t(idx)] << "\n";
        }
    }
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &matrix)
{
    std::ofstream out(path);
    require(out.good(), "cannot open " + path + " for writing");
    writeMatrixMarket(out, matrix);
    require(out.good(), "failed writing " + path);
}

} // namespace stellar::sparse
