#include "sparse/matrix_market.hpp"

#include <fstream>
#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace stellar::sparse
{

CsrMatrix
readMatrixMarket(std::istream &in)
{
    // Every failure carries the 1-based line number: malformed headers,
    // short rows, and out-of-range indices must raise FatalError with a
    // location, never silently misparse (istream >> on a garbage token
    // would otherwise leave zeros behind).
    std::int64_t line_no = 0;
    std::string line;
    auto next_line = [&]() {
        bool ok = bool(std::getline(in, line));
        if (ok)
            line_no++;
        return ok;
    };
    auto at = [&]() { return "line " + std::to_string(line_no) + ": "; };

    require(next_line(), "empty Matrix Market stream");
    require(startsWith(line, "%%MatrixMarket"),
            at() + "missing %%MatrixMarket banner");

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    require(bool(banner >> tag >> object >> format >> field >> symmetry),
            at() + "incomplete banner (want object format field "
                   "symmetry): '" + line + "'");
    require(toLower(object) == "matrix",
            at() + "only matrix objects supported");
    require(toLower(format) == "coordinate",
            at() + "only coordinate format supported");
    std::string field_lc = toLower(field);
    require(field_lc == "real" || field_lc == "integer" ||
                    field_lc == "pattern",
            at() + "unsupported field type: " + field);
    std::string symmetry_lc = toLower(symmetry);
    require(symmetry_lc == "general" || symmetry_lc == "symmetric",
            at() + "unsupported symmetry: " + symmetry);
    bool pattern = field_lc == "pattern";
    bool symmetric = symmetry_lc == "symmetric";

    // Skip comments; the first non-comment line is the size header.
    bool have_sizes = false;
    while (next_line()) {
        if (!line.empty() && line[0] != '%') {
            have_sizes = true;
            break;
        }
    }
    require(have_sizes, at() + "missing size header");
    std::istringstream sizes(line);
    std::int64_t rows = 0, cols = 0, entries = 0;
    require(bool(sizes >> rows >> cols >> entries),
            at() + "malformed size header (want 'rows cols entries'): '" +
                    line + "'");
    require(rows > 0 && cols > 0 && entries >= 0,
            at() + "size header out of range: " + std::to_string(rows) +
                    " x " + std::to_string(cols) + ", " +
                    std::to_string(entries) + " entries");
    // A hostile size header must fail like any other malformed input,
    // not take down the process with a giant CSR allocation. 2^28 rows
    // comfortably covers the SuiteSparse collection (largest ~2.3e8).
    constexpr std::int64_t kMaxDimension = std::int64_t(1) << 28;
    require(rows <= kMaxDimension && cols <= kMaxDimension,
            at() + "size header exceeds supported maximum (" +
                    std::to_string(rows) + " x " + std::to_string(cols) +
                    ", max dimension " + std::to_string(kMaxDimension) +
                    ")");

    CooMatrix coo;
    coo.rows = rows;
    coo.cols = cols;
    for (std::int64_t e = 0; e < entries; e++) {
        require(next_line(),
                at() + "truncated entry list (got " + std::to_string(e) +
                        " of " + std::to_string(entries) + " entries)");
        std::istringstream entry(line);
        std::int64_t r = 0, c = 0;
        double v = 1.0;
        require(bool(entry >> r >> c),
                at() + "short entry row (want 'row col" +
                        std::string(pattern ? "" : " value") + "'): '" +
                        line + "'");
        if (!pattern) {
            require(bool(entry >> v),
                    at() + "entry missing its value: '" + line + "'");
        }
        require(r >= 1 && r <= rows && c >= 1 && c <= cols,
                at() + "entry coordinates (" + std::to_string(r) + ", " +
                        std::to_string(c) + ") out of range for " +
                        std::to_string(rows) + " x " +
                        std::to_string(cols) + " matrix");
        coo.entries.push_back(CooEntry{r - 1, c - 1, v});
        if (symmetric && r != c)
            coo.entries.push_back(CooEntry{c - 1, r - 1, v});
    }
    return cooToCsr(coo);
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(), "cannot open " + path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &matrix)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by stellar-cpp\n";
    out << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz()
        << "\n";
    for (std::int64_t r = 0; r < matrix.rows(); r++) {
        for (auto idx = matrix.rowPtr()[std::size_t(r)];
                idx < matrix.rowPtr()[std::size_t(r + 1)]; idx++) {
            out << (r + 1) << " "
                << (matrix.colIdx()[std::size_t(idx)] + 1) << " "
                << matrix.values()[std::size_t(idx)] << "\n";
        }
    }
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &matrix)
{
    std::ofstream out(path);
    require(out.good(), "cannot open " + path + " for writing");
    writeMatrixMarket(out, matrix);
    require(out.good(), "failed writing " + path);
}

} // namespace stellar::sparse
