#include "sparse/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace stellar::sparse
{

DenseMatrix::DenseMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(std::size_t(rows * cols), 0.0)
{
    require(rows >= 0 && cols >= 0, "matrix dims must be nonnegative");
}

double &
DenseMatrix::at(std::int64_t r, std::int64_t c)
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "DenseMatrix index out of range");
    return data_[std::size_t(r * cols_ + c)];
}

double
DenseMatrix::at(std::int64_t r, std::int64_t c) const
{
    invariant(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "DenseMatrix index out of range");
    return data_[std::size_t(r * cols_ + c)];
}

std::int64_t
DenseMatrix::nnz() const
{
    std::int64_t n = 0;
    for (double v : data_)
        if (v != 0.0)
            n++;
    return n;
}

double
DenseMatrix::maxAbsDiff(const DenseMatrix &other) const
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); i++)
        worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
    return worst;
}

void
CooMatrix::canonicalize()
{
    std::sort(entries.begin(), entries.end());
    std::vector<CooEntry> merged;
    for (const auto &entry : entries) {
        if (!merged.empty() && merged.back().row == entry.row &&
                merged.back().col == entry.col) {
            merged.back().value += entry.value;
        } else {
            merged.push_back(entry);
        }
    }
    entries = std::move(merged);
}

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_ptr,
                     std::vector<std::int64_t> col_idx,
                     std::vector<double> values)
    : rows_(rows), cols_(cols), rowPtr_(std::move(row_ptr)),
      colIdx_(std::move(col_idx)), values_(std::move(values))
{
    require(std::int64_t(rowPtr_.size()) == rows + 1,
            "CSR row pointer array must have rows+1 entries");
    require(colIdx_.size() == values_.size(),
            "CSR column and value arrays must match");
    require(rowPtr_.back() == std::int64_t(values_.size()),
            "CSR row pointers must cover all values");
}

std::int64_t
CsrMatrix::rowNnz(std::int64_t r) const
{
    invariant(r >= 0 && r < rows_, "row out of range");
    return rowPtr_[std::size_t(r + 1)] - rowPtr_[std::size_t(r)];
}

std::int64_t
CsrMatrix::maxRowNnz() const
{
    std::int64_t worst = 0;
    for (std::int64_t r = 0; r < rows_; r++)
        worst = std::max(worst, rowNnz(r));
    return worst;
}

bool
CsrMatrix::wellFormed() const
{
    if (std::int64_t(rowPtr_.size()) != rows_ + 1)
        return false;
    if (rowPtr_[0] != 0 || rowPtr_.back() != nnz())
        return false;
    for (std::int64_t r = 0; r < rows_; r++) {
        auto lo = rowPtr_[std::size_t(r)];
        auto hi = rowPtr_[std::size_t(r + 1)];
        if (lo > hi)
            return false;
        for (auto idx = lo; idx + 1 < hi; idx++)
            if (colIdx_[std::size_t(idx)] >= colIdx_[std::size_t(idx + 1)])
                return false;
        for (auto idx = lo; idx < hi; idx++)
            if (colIdx_[std::size_t(idx)] < 0 ||
                    colIdx_[std::size_t(idx)] >= cols_) {
                return false;
            }
    }
    return true;
}

CscMatrix::CscMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> col_ptr,
                     std::vector<std::int64_t> row_idx,
                     std::vector<double> values)
    : rows_(rows), cols_(cols), colPtr_(std::move(col_ptr)),
      rowIdx_(std::move(row_idx)), values_(std::move(values))
{
    require(std::int64_t(colPtr_.size()) == cols + 1,
            "CSC column pointer array must have cols+1 entries");
    require(rowIdx_.size() == values_.size(),
            "CSC row and value arrays must match");
}

std::int64_t
CscMatrix::colNnz(std::int64_t c) const
{
    invariant(c >= 0 && c < cols_, "col out of range");
    return colPtr_[std::size_t(c + 1)] - colPtr_[std::size_t(c)];
}

CsrMatrix
cooToCsr(const CooMatrix &coo)
{
    CooMatrix canon = coo;
    canon.canonicalize();
    std::vector<std::int64_t> row_ptr(std::size_t(coo.rows) + 1, 0);
    std::vector<std::int64_t> col_idx;
    std::vector<double> values;
    for (const auto &entry : canon.entries) {
        invariant(entry.row >= 0 && entry.row < coo.rows &&
                          entry.col >= 0 && entry.col < coo.cols,
                  "COO entry out of range");
        row_ptr[std::size_t(entry.row) + 1]++;
        col_idx.push_back(entry.col);
        values.push_back(entry.value);
    }
    for (std::size_t r = 1; r < row_ptr.size(); r++)
        row_ptr[r] += row_ptr[r - 1];
    return CsrMatrix(coo.rows, coo.cols, std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

CooMatrix
csrToCoo(const CsrMatrix &csr)
{
    CooMatrix coo;
    coo.rows = csr.rows();
    coo.cols = csr.cols();
    for (std::int64_t r = 0; r < csr.rows(); r++) {
        for (auto idx = csr.rowPtr()[std::size_t(r)];
                idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
            coo.entries.push_back(CooEntry{r, csr.colIdx()[std::size_t(idx)],
                                           csr.values()[std::size_t(idx)]});
        }
    }
    return coo;
}

CscMatrix
csrToCsc(const CsrMatrix &csr)
{
    std::vector<std::int64_t> col_ptr(std::size_t(csr.cols()) + 1, 0);
    for (auto c : csr.colIdx())
        col_ptr[std::size_t(c) + 1]++;
    for (std::size_t c = 1; c < col_ptr.size(); c++)
        col_ptr[c] += col_ptr[c - 1];
    std::vector<std::int64_t> row_idx(std::size_t(csr.nnz()));
    std::vector<double> values(std::size_t(csr.nnz()));
    std::vector<std::int64_t> cursor = col_ptr;
    for (std::int64_t r = 0; r < csr.rows(); r++) {
        for (auto idx = csr.rowPtr()[std::size_t(r)];
                idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
            auto c = csr.colIdx()[std::size_t(idx)];
            auto dst = cursor[std::size_t(c)]++;
            row_idx[std::size_t(dst)] = r;
            values[std::size_t(dst)] = csr.values()[std::size_t(idx)];
        }
    }
    return CscMatrix(csr.rows(), csr.cols(), std::move(col_ptr),
                     std::move(row_idx), std::move(values));
}

CsrMatrix
cscToCsr(const CscMatrix &csc)
{
    CooMatrix coo;
    coo.rows = csc.rows();
    coo.cols = csc.cols();
    for (std::int64_t c = 0; c < csc.cols(); c++) {
        for (auto idx = csc.colPtr()[std::size_t(c)];
                idx < csc.colPtr()[std::size_t(c + 1)]; idx++) {
            coo.entries.push_back(CooEntry{csc.rowIdx()[std::size_t(idx)], c,
                                           csc.values()[std::size_t(idx)]});
        }
    }
    return cooToCsr(coo);
}

DenseMatrix
csrToDense(const CsrMatrix &csr)
{
    DenseMatrix dense(csr.rows(), csr.cols());
    for (std::int64_t r = 0; r < csr.rows(); r++) {
        for (auto idx = csr.rowPtr()[std::size_t(r)];
                idx < csr.rowPtr()[std::size_t(r + 1)]; idx++) {
            dense.at(r, csr.colIdx()[std::size_t(idx)]) =
                    csr.values()[std::size_t(idx)];
        }
    }
    return dense;
}

CsrMatrix
denseToCsr(const DenseMatrix &dense)
{
    CooMatrix coo;
    coo.rows = dense.rows();
    coo.cols = dense.cols();
    for (std::int64_t r = 0; r < dense.rows(); r++)
        for (std::int64_t c = 0; c < dense.cols(); c++)
            if (dense.at(r, c) != 0.0)
                coo.entries.push_back(CooEntry{r, c, dense.at(r, c)});
    return cooToCsr(coo);
}

DenseMatrix
denseMatmul(const DenseMatrix &a, const DenseMatrix &b)
{
    require(a.cols() == b.rows(), "matmul shape mismatch");
    DenseMatrix c(a.rows(), b.cols());
    for (std::int64_t i = 0; i < a.rows(); i++)
        for (std::int64_t k = 0; k < a.cols(); k++) {
            double av = a.at(i, k);
            if (av == 0.0)
                continue;
            for (std::int64_t j = 0; j < b.cols(); j++)
                c.at(i, j) += av * b.at(k, j);
        }
    return c;
}

CsrMatrix
csrTranspose(const CsrMatrix &csr)
{
    CscMatrix csc = csrToCsc(csr);
    // A CSC of M is structurally the CSR of M^T.
    std::vector<std::int64_t> row_ptr = csc.colPtr();
    std::vector<std::int64_t> col_idx = csc.rowIdx();
    std::vector<double> values = csc.values();
    return CsrMatrix(csr.cols(), csr.rows(), std::move(row_ptr),
                     std::move(col_idx), std::move(values));
}

} // namespace stellar::sparse
