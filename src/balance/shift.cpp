#include "balance/shift.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::balance
{

bool
IndexShift::isManyToFew() const
{
    switch (kind) {
      case Kind::Unchanged:
        return false;
      case Kind::RangeMap:
        return (srcHi - srcLo) > (dstHi - dstLo);
      case Kind::Collapse:
        return true;
    }
    return false;
}

std::int64_t
IndexShift::offset() const
{
    return kind == Kind::RangeMap ? dstLo - srcLo : 0;
}

IntVec
ShiftSpec::biasVector(int num_indices) const
{
    IntVec bias(std::size_t(num_indices), 0);
    for (const auto &shift : shifts) {
        invariant(shift.index >= 0 && shift.index < num_indices,
                  "shift references unknown iterator");
        bias[std::size_t(shift.index)] = shift.offset();
    }
    return bias;
}

IndexShift
shiftUnchanged(int index)
{
    IndexShift s;
    s.index = index;
    s.kind = IndexShift::Kind::Unchanged;
    return s;
}

IndexShift
shiftRange(int index, std::int64_t src_lo, std::int64_t src_hi,
           std::int64_t dst_lo, std::int64_t dst_hi)
{
    IndexShift s;
    s.index = index;
    s.kind = IndexShift::Kind::RangeMap;
    s.srcLo = src_lo;
    s.srcHi = src_hi;
    s.dstLo = dst_lo;
    s.dstHi = dst_hi;
    return s;
}

IndexShift
shiftCollapse(int index, std::int64_t dst_lo, std::int64_t dst_hi)
{
    IndexShift s;
    s.index = index;
    s.kind = IndexShift::Kind::Collapse;
    s.dstLo = dst_lo;
    s.dstHi = dst_hi;
    return s;
}

std::set<int>
BalanceSpec::perPeAxes(const dataflow::SpaceTimeTransform &t) const
{
    std::set<int> axes;
    for (const auto &spec : shifts_) {
        for (const auto &shift : spec.shifts) {
            if (!shift.isManyToFew())
                continue;
            for (int axis = 0; axis < t.spaceDims(); axis++)
                if (t.matrix().at(axis, shift.index) != 0)
                    axes.insert(axis);
        }
    }
    return axes;
}

Granularity
BalanceSpec::granularity(const dataflow::SpaceTimeTransform &t) const
{
    return perPeAxes(t).empty() ? Granularity::RowGranular
                                : Granularity::PerPE;
}

std::string
BalanceSpec::toString(const func::FunctionalSpec &spec) const
{
    std::ostringstream os;
    for (const auto &shift_spec : shifts_) {
        os << "Shift ";
        auto render = [&](bool src) {
            std::vector<std::string> parts;
            for (const auto &shift : shift_spec.shifts) {
                const auto &name =
                        spec.indexNames()[std::size_t(shift.index)];
                std::ostringstream part;
                switch (shift.kind) {
                  case IndexShift::Kind::Unchanged:
                    part << name;
                    break;
                  case IndexShift::Kind::RangeMap:
                    if (src) {
                        part << name << " = " << shift.srcLo << "->"
                             << shift.srcHi;
                    } else {
                        part << name << " = " << shift.dstLo << "->"
                             << shift.dstHi;
                    }
                    break;
                  case IndexShift::Kind::Collapse:
                    if (src)
                        part << name;
                    else
                        part << name << " = " << shift.dstLo << "->"
                             << shift.dstHi;
                    break;
                }
                parts.push_back(part.str());
            }
            std::string out;
            for (std::size_t i = 0; i < parts.size(); i++)
                out += (i ? ", " : "") + parts[i];
            return out;
        };
        os << render(true) << " to " << render(false) << "\n";
    }
    return os.str();
}

} // namespace stellar::balance
