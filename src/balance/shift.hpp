/**
 * @file
 * Load-balancing specifications (Section III-D).
 *
 * A ShiftSpec says that computations in one region of the tensor iteration
 * space may be shifted onto "target" iterations when the targets would
 * otherwise be idle (Listings 3 and 4). At runtime the load balancer
 * applies a *space-time bias* (Eq. 2): T * (p + b) = (x, y, t), making the
 * biased PEs behave as if they were located elsewhere in the array.
 *
 * The *granularity* of a shift determines its hardware cost (Fig 10):
 * row-granular shifts preserve intra-row PE-to-PE connections, while
 * per-PE shifts force those connections to be replaced with regfile ports.
 */

#ifndef STELLAR_BALANCE_SHIFT_HPP
#define STELLAR_BALANCE_SHIFT_HPP

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dataflow/transform.hpp"
#include "func/spec.hpp"
#include "util/int_matrix.hpp"

namespace stellar::balance
{

/** How one iterator participates in a shift. */
struct IndexShift
{
    enum class Kind
    {
        Unchanged,  //!< the iterator passes through: "j" -> "j"
        RangeMap,   //!< [srcLo, srcHi) -> [dstLo, dstHi): "N->2N" to "0->N"
        Collapse,   //!< any source value -> [dstLo, dstHi): "i" to "i=0"
    };

    int index = -1;
    Kind kind = Kind::Unchanged;
    std::int64_t srcLo = 0, srcHi = 0;
    std::int64_t dstLo = 0, dstHi = 0;

    /** True when more source values map to fewer target values. */
    bool isManyToFew() const;

    /** The additive bias dst - src (RangeMap only; 0 otherwise). */
    std::int64_t offset() const;
};

/** One Shift declaration. */
struct ShiftSpec
{
    std::vector<IndexShift> shifts;

    /** The space-time bias vector b of Eq. 2 (one entry per iterator). */
    IntVec biasVector(int num_indices) const;
};

/** Builders mirroring Listings 3 and 4. */
IndexShift shiftUnchanged(int index);
IndexShift shiftRange(int index, std::int64_t src_lo, std::int64_t src_hi,
                      std::int64_t dst_lo, std::int64_t dst_hi);
IndexShift shiftCollapse(int index, std::int64_t dst_lo, std::int64_t dst_hi);

/** Granularity of a balancing scheme (Fig 10). */
enum class Granularity { RowGranular, PerPE };

/** The full load-balancing specification for an accelerator. */
class BalanceSpec
{
  public:
    void add(const ShiftSpec &shift) { shifts_.push_back(shift); }

    const std::vector<ShiftSpec> &shifts() const { return shifts_; }
    bool empty() const { return shifts_.empty(); }

    /**
     * The spatial axes along which PEs can be re-targeted *independently*.
     * An axis is per-PE balanced when a many-to-few iterator shift maps
     * onto it under the dataflow transform; connections along such axes
     * are no longer guaranteed to carry the right values and must be
     * pruned (Fig 10b vs Fig 10a).
     */
    std::set<int> perPeAxes(const dataflow::SpaceTimeTransform &t) const;

    /** Overall granularity under a given dataflow. */
    Granularity granularity(const dataflow::SpaceTimeTransform &t) const;

    std::string toString(const func::FunctionalSpec &spec) const;

  private:
    std::vector<ShiftSpec> shifts_;
};

} // namespace stellar::balance

#endif // STELLAR_BALANCE_SHIFT_HPP
