#include "model/area.hpp"

#include <sstream>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace stellar::model
{

void
AreaBreakdown::add(const std::string &name, double area)
{
    components.push_back(AreaComponent{name, area});
}

double
AreaBreakdown::total() const
{
    double sum = 0.0;
    for (const auto &component : components)
        sum += component.area;
    return sum;
}

double
AreaBreakdown::of(const std::string &name) const
{
    for (const auto &component : components)
        if (component.name == name)
            return component.area;
    return 0.0;
}

std::string
AreaBreakdown::toString() const
{
    std::ostringstream os;
    double sum = total();
    for (const auto &component : components) {
        os << padRight(component.name, 16) << " "
           << padLeft(formatDouble(component.area / 1000.0, 0), 8) << "K  ("
           << formatDouble(100.0 * component.area / sum, 1) << "%)\n";
    }
    os << padRight("Total", 16) << " "
       << padLeft(formatDouble(sum / 1000.0, 0), 8) << "K\n";
    return os.str();
}

double
peArea(const AreaParams &params, int mac_bits, int pipeline_bits,
       bool stellar_generated)
{
    double mac = mac_bits <= 8 ? params.mac8 : params.mac32;
    double area = mac + double(pipeline_bits) * params.regBit;
    if (stellar_generated) {
        area += double(params.timeCounterBits) * params.regBit;
        area += params.recoveryLogic;
        area += params.stallWiring;
    }
    return area;
}

double
arrayArea(const AreaParams &params, const core::GeneratedAccelerator &accel,
          int mac_bits, int data_width, bool stellar_generated)
{
    // Per-PE pipeline bits: one register set per flowing variable hop.
    int pipeline_bits = 0;
    for (const auto &conn : accel.iterSpace.aliveConns()) {
        auto delta = accel.spec.transform.deltaOf(conn.diff);
        int width = data_width * (conn.bundled ? conn.bundleSize : 1);
        pipeline_bits += int(delta.time) * width;
    }
    double total = double(accel.array.numPes()) *
                   peArea(params, mac_bits, pipeline_bits,
                          stellar_generated);
    // Wiring tracks: every wire instance contributes length x width.
    for (const auto &wire : accel.array.wires()) {
        int width = data_width * wire.bundleSize;
        total += double(wire.instances * wire.wireLength) * double(width) *
                 params.wireTrackBit;
    }
    return total;
}

double
regfileArea(const AreaParams &params, const core::RegfileConfig &config,
            int data_width, int coord_width)
{
    double area = double(config.entries * data_width) * params.regBit;
    area += double(config.comparators) * params.cmpCoord *
            (double(coord_width) / 16.0);
    area += double(config.muxes) * params.muxLeg;
    // Coordinate storage is only needed when entries are searched.
    if (config.comparators > 0)
        area += double(config.entries * coord_width) * params.regBit;
    return area;
}

double
bufferArea(const AreaParams &params, const mem::MemBufferSpec &spec)
{
    double bits = double(spec.capacityBytes) * 8.0;
    double area = bits * params.sramBit;
    // Metadata SRAMs for compressed/bitvector/linked-list axes: sized at
    // a quarter of the data capacity per sparse axis.
    auto stages = mem::planPipeline(spec, /*for_reads=*/true);
    for (const auto &stage : stages)
        if (stage.metadataLookup)
            area += bits * 0.25 * params.sramBit;
    area += double(spec.banks) * params.bankControl;
    return area;
}

double
bufferAddrGenArea(const AreaParams &params, const mem::MemBufferSpec &spec,
                  int lanes)
{
    auto stages = mem::planPipeline(spec, /*for_reads=*/true);
    double per_lane = double(stages.size()) * params.addrGenLane;
    // Hardcoded request parameters simplify the generators (Listing 6).
    int rank = spec.format.rank();
    if (spec.hardcodedRead.fullySpecified(rank))
        per_lane *= 0.6;
    return per_lane * double(lanes);
}

double
dmaArea(const AreaParams &params, int max_inflight, bool stellar_generated)
{
    double base = stellar_generated ? params.dmaStellarBase : params.dmaBase;
    return base + double(max_inflight - 1) * params.dmaPerInflight;
}

double
flattenedMergerArea(const AreaParams &params, int throughput)
{
    // SpArch-style: 8 comparators per element of throughput (128 for 16)
    // plus a quadratic prefix-merge network.
    double comparators = 8.0 * double(throughput) * params.cmp64;
    double network = double(throughput) * double(throughput) *
                     params.mergeNetUnit;
    return comparators + network;
}

double
rowPartitionedMergerArea(const AreaParams &params, int lanes)
{
    return double(lanes) * (params.cmp64 + params.mergerLaneFifo);
}

double
hierarchicalMergerArea(const AreaParams &params, int throughput, int ways)
{
    require(ways >= 2, "hierarchical merger needs at least 2 ways");
    // A tree of flattened mergers: each level halves the stream count.
    double total = 0.0;
    int streams = ways;
    while (streams > 1) {
        int mergers = streams / 2;
        total += double(mergers) * flattenedMergerArea(params, throughput) /
                 double(ways / 2);
        streams = (streams + 1) / 2;
    }
    return total;
}

} // namespace stellar::model
