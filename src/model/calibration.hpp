/**
 * @file
 * Calibration regression records: versioned JSON reference files that
 * pin the analytic model and simulator outputs for every figure and
 * ablation workload of the reproduction.
 *
 * The area/energy/timing models (model/params.hpp) and the cycle sims
 * are calibrated against the paper's tables; nothing in tier-1 pins
 * that calibration, so a refactor of model::area or a fused transform
 * path could drift every figure while the structural tests still pass.
 * Following Sparseloop's analytic-vs-measured validation methodology
 * (and the Pyxis idea of an open per-workload profile corpus with
 * tolerance bands), each record stores one workload's metric vector
 * plus a per-metric relative tolerance band; tests/calibration_test.cpp
 * replays the configurations and asserts every metric stays in band,
 * failing with the exact metric, workload, and delta.
 *
 * Records are regenerated — never hand-edited — via the
 * STELLAR_REGEN_CALIBRATION=1 path (mirroring STELLAR_REGEN_RTL_HASHES;
 * see docs/CALIBRATION.md).
 */

#ifndef STELLAR_MODEL_CALIBRATION_HPP
#define STELLAR_MODEL_CALIBRATION_HPP

#include <string>
#include <vector>

namespace stellar::model
{

/** One pinned metric: a named scalar and its relative tolerance. */
struct CalibrationMetric
{
    std::string name;
    double value = 0.0;

    /**
     * Allowed relative drift: |measured - value| <= relTol * |value|.
     * 0 pins the metric exactly (the right band for integer outputs
     * such as cycle counts, which must be bit-stable).
     */
    double relTol = 0.0;
};

/** One workload's pinned metric vector. */
struct CalibrationRecord
{
    /** Format version of the record file, bumped on schema changes. */
    int version = 1;

    /** Stable workload key, e.g. "fig15_scnn" or "ablation_regfiles". */
    std::string workload;

    std::vector<CalibrationMetric> metrics;

    /** The metric with `name`, or nullptr. */
    const CalibrationMetric *find(const std::string &name) const;
};

/** One out-of-band metric; toString() names workload, metric, delta. */
struct CalibrationViolation
{
    std::string workload;
    std::string metric;
    double reference = 0.0;
    double measured = 0.0;
    double delta = 0.0; //!< measured - reference
    double band = 0.0;  //!< allowed |delta| (relTol * |reference|)

    std::string toString() const;
};

/**
 * Serialize a record to its canonical JSON text (stable field order,
 * %.17g doubles so values round-trip exactly, trailing newline).
 */
std::string serializeCalibration(const CalibrationRecord &record);

/**
 * Parse a record from JSON text. Accepts exactly the subset
 * serializeCalibration emits (one object with version/workload/metrics)
 * plus arbitrary whitespace; raises util FatalError on anything
 * malformed, with a byte offset in the message.
 */
CalibrationRecord parseCalibration(const std::string &text);

/**
 * Compare `measured` against the pinned `reference`: every reference
 * metric must be present and within its band, and `measured` must not
 * carry metrics the reference lacks (a new metric requires a regen, so
 * it is reviewed like any other calibration change). Violations carry
 * workload, metric, and delta. Metrics are checked in reference order.
 */
std::vector<CalibrationViolation>
compareCalibration(const CalibrationRecord &reference,
                   const CalibrationRecord &measured);

} // namespace stellar::model

#endif // STELLAR_MODEL_CALIBRATION_HPP
