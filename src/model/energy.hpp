/**
 * @file
 * Event-based energy model (Fig 17).
 *
 * Energy is integrated from event counts — MACs, SRAM/regfile/DRAM
 * traffic, and cycles (leakage folded in per cycle, scaled by area) — so
 * that a lower-utilization design burns more energy per MAC exactly as
 * the paper's Fig 17 shows for the Stellar-generated Gemmini.
 */

#ifndef STELLAR_MODEL_ENERGY_HPP
#define STELLAR_MODEL_ENERGY_HPP

#include <cstdint>
#include <string>

#include "model/params.hpp"

namespace stellar::model
{

/** Event counts accumulated by a simulation or an analytic estimate. */
struct EnergyEvents
{
    std::int64_t macs = 0;
    int macBits = 8;
    std::int64_t sramReadBytes = 0;
    std::int64_t sramWriteBytes = 0;
    std::int64_t regfileBytes = 0;
    std::int64_t dramBytes = 0;
    std::int64_t cycles = 0;
    double areaMm2 = 0.0;

    /**
     * PE-cycle toggle events of Stellar-specific machinery: the per-PE
     * time counters and global start/stall wiring switch every cycle in
     * every PE of a Stellar-generated array (Section VI-B); handwritten
     * designs leave this at zero.
     */
    std::int64_t peToggleEvents = 0;
};

/** Total energy in picojoules. */
double totalEnergy(const EnergyParams &params, const EnergyEvents &events);

/** Energy per MAC in picojoules (the Fig 17 metric). */
double energyPerMac(const EnergyParams &params, const EnergyEvents &events);

} // namespace stellar::model

#endif // STELLAR_MODEL_ENERGY_HPP
