/**
 * @file
 * Calibration constants for the analytic area/energy/timing models.
 *
 * The paper synthesizes designs with the ASAP7 PDK (area, frequency) and
 * Intel 22nm (energy). Neither toolchain is available here, so the models
 * are *component-level analytic models* whose constants are calibrated
 * against the component areas the paper itself reports:
 *
 *  - Table III: handwritten Gemmini matmul array 334K um^2 (256 PEs of a
 *    16x16 8-bit weight-stationary array -> ~1304 um^2/PE), Stellar array
 *    420K (~1640/PE), SRAMs 2225K for 320 KiB (-> ~0.85 um^2/bit),
 *    centralized loop unrollers 259K, distributed ones 482K, DMA
 *    102K/109K, host CPU 337K.
 *  - Section VI-D: SpArch-style flattened mergers use 128 64-bit
 *    comparators for a throughput of 16 and are 13x the area of
 *    GAMMA-style row-partitioned mergers with throughput 32.
 *
 * Because every design is measured with the same constants, the *ratios*
 * the evaluation depends on are preserved even though absolute numbers
 * are approximations.
 */

#ifndef STELLAR_MODEL_PARAMS_HPP
#define STELLAR_MODEL_PARAMS_HPP

namespace stellar::model
{

/** Area constants, um^2 (ASAP7-like). */
struct AreaParams
{
    /** One flip-flop bit including local clocking. */
    double regBit = 4.0;

    /** An 8-bit multiply + 32-bit accumulate MAC (Gemmini-style PE core).
     *  Chosen so PE = mac + 48 pipeline bits = ~1304 um^2 (Table III). */
    double mac8 = 1112.0;

    /** A full 32-bit MAC (used by fp32 sparse accelerators). */
    double mac32 = 5200.0;

    /** One SRAM bit (2225K um^2 / 320 KiB, Table III). */
    double sramBit = 0.85;

    /** A 16-bit coordinate comparator (regfile searches). */
    double cmpCoord = 30.0;

    /** A 64-bit merge comparator (Section VI-D mergers). */
    double cmp64 = 500.0;

    /** A per-entry output mux leg. */
    double muxLeg = 8.0;

    /** Wiring track area per unit Manhattan length per bit. */
    double wireTrackBit = 0.35;

    /** Stellar PE overheads vs a handwritten PE (Section VI-B):
     *  time counter bits, iterator-recovery logic, global stall wiring. */
    int timeCounterBits = 16;
    double recoveryLogic = 170.0;
    double stallWiring = 102.0;

    /** Per-lane, per-axis distributed address generator (Stellar memory
     *  buffers): 3 buffers x 2 axes x 16 lanes, with the hardcoded-span
     *  simplification of Listing 6 applied, -> 482K (Table III). */
    double addrGenLane = 8370.0;

    /** The handwritten Gemmini's centralized loop unroller (Table III). */
    double centralUnroller = 259000.0;

    /** DMA base areas (Table III) and per-extra-inflight tracker cost. */
    double dmaBase = 102000.0;
    double dmaStellarBase = 109000.0;
    double dmaPerInflight = 6000.0;

    /** Rocket-class in-order host CPU (Table III). */
    double hostCpu = 337000.0;

    /** Flattened-merger prefix/merge network per tput^2 unit (calibrated
     *  to the 13x merger-area ratio of Section IV-F / VI-D). */
    double mergeNetUnit = 725.0;

    /** Small per-lane FIFO of a row-partitioned merger lane. */
    double mergerLaneFifo = 100.0;

    /** Per-buffer bank control overhead of Stellar SRAM wrappers. */
    double bankControl = 7300.0;
};

/** Energy constants, pJ per event (Intel-22nm-like, 500 MHz). */
struct EnergyParams
{
    double mac8 = 0.28;        //!< one 8-bit MAC
    double mac32 = 1.9;        //!< one fp32 multiply-add
    double sramReadByte = 0.35;
    double sramWriteByte = 0.42;
    double regfileAccessByte = 0.22;
    double peToggle = 0.05; //!< time counter + stall wiring, per PE-cycle
    double dramAccessByte = 15.0;
    double leakagePerCyclePerMm2 = 1.8; //!< static power folded per cycle
};

/** Timing constants, ns of critical path per component (ASAP7-like). */
struct TimingParams
{
    double peArrayLogic = 0.90;          //!< MAC + forwarding path
    double sramAccess = 0.95;
    double centralizedUnroller = 1.40;   //!< handwritten Gemmini: ~700 MHz
    double distributedAddrGen = 0.93;    //!< Stellar buffers: ~1 GHz
    double regfileSearchPerLog2Entries = 0.08;
    double wirePerUnitLength = 0.05;     //!< broadcast wire delay per hop
};

} // namespace stellar::model

#endif // STELLAR_MODEL_PARAMS_HPP
