/**
 * @file
 * Critical-path timing model (Section VI-B).
 *
 * The achievable frequency of a design is set by its slowest component.
 * The handwritten Gemmini's centralized loop unroller fails timing above
 * ~700 MHz, while Stellar's distributed memory-buffer address generators
 * scale to ~1 GHz — this model reproduces that asymmetry, plus the
 * wire-delay cost of unpipelined broadcast wires (Fig 3 tradeoff).
 */

#ifndef STELLAR_MODEL_TIMING_HPP
#define STELLAR_MODEL_TIMING_HPP

#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "model/params.hpp"

namespace stellar::model
{

/** One named critical-path contributor. */
struct PathComponent
{
    std::string name;
    double delayNs = 0.0;
};

/** A timing report: every component and the binding constraint. */
struct TimingReport
{
    std::vector<PathComponent> components;

    double criticalPathNs() const;
    double fmaxMhz() const;
    const PathComponent *slowest() const;
};

/**
 * Timing of a generated accelerator. `centralized_unroller` models the
 * handwritten baseline's monolithic address generator instead of
 * Stellar's distributed ones.
 */
TimingReport timingOf(const TimingParams &params,
                      const core::GeneratedAccelerator &accel,
                      bool centralized_unroller);

} // namespace stellar::model

#endif // STELLAR_MODEL_TIMING_HPP
