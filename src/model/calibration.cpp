#include "model/calibration.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace stellar::model
{

namespace
{

/** %.17g: the shortest text that round-trips every finite double. */
std::string
jsonDouble(double value)
{
    return util::json::serializeDouble(value);
}

// Syntax lives in the shared util::json parser (one hardened parser
// for corpus files and serve requests alike); this walker owns the
// calibration schema: required keys, unknown-key rejection, and typed
// field extraction, all still with byte offsets in every diagnostic.

[[noreturn]] void
fail(const std::string &what, std::size_t offset)
{
    throw FatalError("calibration JSON: " + what + " at byte " +
                     std::to_string(offset));
}

const util::json::Value &
typedField(const util::json::Value &value, const std::string &key,
           util::json::Value::Kind kind, const char *kind_name)
{
    if (value.kind != kind)
        fail("'" + key + "' must be " + kind_name, value.offset);
    return value;
}

CalibrationMetric
parseMetric(const util::json::Value &value)
{
    using util::json::Value;
    if (!value.isObject())
        fail("metric must be an object", value.offset);
    CalibrationMetric metric;
    bool saw_name = false, saw_value = false;
    for (const auto &[key, field] : value.object) {
        if (key == "name") {
            metric.name =
                    typedField(field, key, Value::Kind::String, "a string")
                            .string;
            saw_name = true;
        } else if (key == "value") {
            metric.value =
                    typedField(field, key, Value::Kind::Number, "a number")
                            .number;
            saw_value = true;
        } else if (key == "relTol") {
            metric.relTol =
                    typedField(field, key, Value::Kind::Number, "a number")
                            .number;
        } else {
            fail("unknown metric key '" + key + "'", field.offset);
        }
    }
    if (!saw_name || !saw_value)
        fail("metric must carry name and value", value.offset);
    return metric;
}

} // namespace

const CalibrationMetric *
CalibrationRecord::find(const std::string &name) const
{
    for (const auto &metric : metrics)
        if (metric.name == name)
            return &metric;
    return nullptr;
}

std::string
CalibrationViolation::toString() const
{
    std::ostringstream os;
    os << "calibration drift: workload '" << workload << "' metric '"
       << metric << "': reference " << jsonDouble(reference)
       << ", measured " << jsonDouble(measured) << ", delta "
       << (delta >= 0.0 ? "+" : "") << jsonDouble(delta)
       << " exceeds band +/-" << jsonDouble(band);
    return os.str();
}

std::string
serializeCalibration(const CalibrationRecord &record)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << record.version << ",\n";
    os << "  \"workload\": " << util::json::quote(record.workload)
       << ",\n";
    os << "  \"metrics\": [";
    for (std::size_t i = 0; i < record.metrics.size(); i++) {
        const auto &metric = record.metrics[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    { \"name\": " << util::json::quote(metric.name)
           << ", \"value\": "
           << jsonDouble(metric.value) << ", \"relTol\": "
           << jsonDouble(metric.relTol) << " }";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

CalibrationRecord
parseCalibration(const std::string &text)
{
    using util::json::Value;
    Value root = util::json::parse(text, "calibration JSON");
    if (!root.isObject())
        fail("record must be an object", root.offset);
    CalibrationRecord record;
    bool saw_version = false, saw_workload = false, saw_metrics = false;
    for (const auto &[key, field] : root.object) {
        if (key == "version") {
            record.version = int(util::json::toInt64(
                    field, "calibration JSON: 'version'"));
            saw_version = true;
        } else if (key == "workload") {
            record.workload =
                    typedField(field, key, Value::Kind::String, "a string")
                            .string;
            saw_workload = true;
        } else if (key == "metrics") {
            if (!field.isArray())
                fail("'metrics' must be an array", field.offset);
            for (const auto &item : field.array)
                record.metrics.push_back(parseMetric(item));
            saw_metrics = true;
        } else {
            fail("unknown key '" + key + "'", field.offset);
        }
    }
    if (!saw_version || !saw_workload || !saw_metrics)
        fail("record must carry version, workload, and metrics",
             root.offset);
    return record;
}

std::vector<CalibrationViolation>
compareCalibration(const CalibrationRecord &reference,
                   const CalibrationRecord &measured)
{
    require(reference.workload == measured.workload,
            "calibration workload mismatch: reference '" +
                    reference.workload + "' vs measured '" +
                    measured.workload + "'");
    std::vector<CalibrationViolation> violations;
    auto violation = [&](const std::string &metric, double ref, double got,
                         double band) {
        CalibrationViolation v;
        v.workload = reference.workload;
        v.metric = metric;
        v.reference = ref;
        v.measured = got;
        v.delta = got - ref;
        v.band = band;
        violations.push_back(std::move(v));
    };
    for (const auto &want : reference.metrics) {
        const CalibrationMetric *got = measured.find(want.name);
        double band = want.relTol * std::fabs(want.value);
        if (got == nullptr) {
            violation(want.name, want.value,
                      std::numeric_limits<double>::quiet_NaN(), band);
            continue;
        }
        double delta = got->value - want.value;
        // relTol 0 demands bit-stable equality (NaN never passes).
        if (!(std::fabs(delta) <= band))
            violation(want.name, want.value, got->value, band);
    }
    for (const auto &extra : measured.metrics) {
        // A metric the reference lacks means the collector changed
        // without a regen; surface it instead of silently passing.
        if (reference.find(extra.name) == nullptr)
            violation(extra.name, 0.0, extra.value, 0.0);
    }
    return violations;
}

} // namespace stellar::model
