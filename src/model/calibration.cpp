#include "model/calibration.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/logging.hpp"

namespace stellar::model
{

namespace
{

/** %.17g: the shortest text that round-trips every finite double. */
std::string
jsonDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

/**
 * Minimal recursive-descent parser over exactly the JSON subset the
 * serializer emits (objects, arrays, strings without escapes beyond
 * \" \\ / \b \f \n \r \t, and strtod numbers), with byte offsets in
 * every diagnostic so hand-damaged corpus files fail loudly.
 */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    CalibrationRecord
    parse()
    {
        CalibrationRecord record;
        bool saw_version = false, saw_workload = false, saw_metrics = false;
        expect('{');
        while (true) {
            std::string key = parseString();
            expect(':');
            if (key == "version") {
                record.version = int(parseNumber());
                saw_version = true;
            } else if (key == "workload") {
                record.workload = parseString();
                saw_workload = true;
            } else if (key == "metrics") {
                parseMetrics(record.metrics);
                saw_metrics = true;
            } else {
                fail("unknown key '" + key + "'");
            }
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            break;
        }
        expect('}');
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after record");
        if (!saw_version || !saw_workload || !saw_metrics)
            fail("record must carry version, workload, and metrics");
        return record;
    }

  private:
    void
    parseMetrics(std::vector<CalibrationMetric> &metrics)
    {
        expect('[');
        skipWs();
        if (peek() == ']') {
            pos_++;
            return;
        }
        while (true) {
            metrics.push_back(parseMetric());
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            break;
        }
        expect(']');
    }

    CalibrationMetric
    parseMetric()
    {
        CalibrationMetric metric;
        bool saw_name = false, saw_value = false;
        expect('{');
        while (true) {
            std::string key = parseString();
            expect(':');
            if (key == "name") {
                metric.name = parseString();
                saw_name = true;
            } else if (key == "value") {
                metric.value = parseNumber();
                saw_value = true;
            } else if (key == "relTol") {
                metric.relTol = parseNumber();
            } else {
                fail("unknown metric key '" + key + "'");
            }
            skipWs();
            if (peek() == ',') {
                pos_++;
                continue;
            }
            break;
        }
        expect('}');
        if (!saw_name || !saw_value)
            fail("metric must carry name and value");
        return metric;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              default:
                fail(std::string("unsupported escape '\\") + esc + "'");
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin)
            fail("expected a number");
        if (!std::isfinite(value))
            fail("number is not finite");
        pos_ += std::size_t(end - begin);
        return value;
    }

    char
    peek()
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    void
    expect(char c)
    {
        skipWs();
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        pos_++;
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw FatalError("calibration JSON: " + what + " at byte " +
                         std::to_string(pos_));
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

const CalibrationMetric *
CalibrationRecord::find(const std::string &name) const
{
    for (const auto &metric : metrics)
        if (metric.name == name)
            return &metric;
    return nullptr;
}

std::string
CalibrationViolation::toString() const
{
    std::ostringstream os;
    os << "calibration drift: workload '" << workload << "' metric '"
       << metric << "': reference " << jsonDouble(reference)
       << ", measured " << jsonDouble(measured) << ", delta "
       << (delta >= 0.0 ? "+" : "") << jsonDouble(delta)
       << " exceeds band +/-" << jsonDouble(band);
    return os.str();
}

std::string
serializeCalibration(const CalibrationRecord &record)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"version\": " << record.version << ",\n";
    os << "  \"workload\": \"" << record.workload << "\",\n";
    os << "  \"metrics\": [";
    for (std::size_t i = 0; i < record.metrics.size(); i++) {
        const auto &metric = record.metrics[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    { \"name\": \"" << metric.name << "\", \"value\": "
           << jsonDouble(metric.value) << ", \"relTol\": "
           << jsonDouble(metric.relTol) << " }";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

CalibrationRecord
parseCalibration(const std::string &text)
{
    return Parser(text).parse();
}

std::vector<CalibrationViolation>
compareCalibration(const CalibrationRecord &reference,
                   const CalibrationRecord &measured)
{
    require(reference.workload == measured.workload,
            "calibration workload mismatch: reference '" +
                    reference.workload + "' vs measured '" +
                    measured.workload + "'");
    std::vector<CalibrationViolation> violations;
    auto violation = [&](const std::string &metric, double ref, double got,
                         double band) {
        CalibrationViolation v;
        v.workload = reference.workload;
        v.metric = metric;
        v.reference = ref;
        v.measured = got;
        v.delta = got - ref;
        v.band = band;
        violations.push_back(std::move(v));
    };
    for (const auto &want : reference.metrics) {
        const CalibrationMetric *got = measured.find(want.name);
        double band = want.relTol * std::fabs(want.value);
        if (got == nullptr) {
            violation(want.name, want.value,
                      std::numeric_limits<double>::quiet_NaN(), band);
            continue;
        }
        double delta = got->value - want.value;
        // relTol 0 demands bit-stable equality (NaN never passes).
        if (!(std::fabs(delta) <= band))
            violation(want.name, want.value, got->value, band);
    }
    for (const auto &extra : measured.metrics) {
        // A metric the reference lacks means the collector changed
        // without a regen; surface it instead of silently passing.
        if (reference.find(extra.name) == nullptr)
            violation(extra.name, 0.0, extra.value, 0.0);
    }
    return violations;
}

} // namespace stellar::model
