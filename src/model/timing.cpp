#include "model/timing.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace stellar::model
{

double
TimingReport::criticalPathNs() const
{
    double worst = 0.0;
    for (const auto &component : components)
        worst = std::max(worst, component.delayNs);
    return worst;
}

double
TimingReport::fmaxMhz() const
{
    double path = criticalPathNs();
    require(path > 0.0, "empty timing report");
    return 1000.0 / path;
}

const PathComponent *
TimingReport::slowest() const
{
    const PathComponent *worst = nullptr;
    for (const auto &component : components)
        if (worst == nullptr || component.delayNs > worst->delayNs)
            worst = &component;
    return worst;
}

TimingReport
timingOf(const TimingParams &params,
         const core::GeneratedAccelerator &accel,
         bool centralized_unroller)
{
    TimingReport report;

    // PE array: logic depth plus the longest unpipelined (zero-register)
    // wire chain — a combinational broadcast traverses the full extent of
    // its axis in one cycle (Fig 3's un-pipelined variant).
    double array_delay = params.peArrayLogic;
    IntVec extents = accel.array.extents();
    for (const auto &wire : accel.array.wires()) {
        if (wire.registers > 0)
            continue;
        // Chain length: how many hops the broadcast makes along its axis.
        std::int64_t chain = 0;
        for (std::size_t axis = 0; axis < wire.spaceDelta.size(); axis++) {
            if (wire.spaceDelta[axis] != 0 && axis < extents.size()) {
                chain = std::max(chain,
                                 extents[axis] /
                                         std::abs(wire.spaceDelta[axis]));
            }
        }
        array_delay = std::max(array_delay,
                               params.peArrayLogic +
                                       double(chain) *
                                               params.wirePerUnitLength);
    }
    report.components.push_back({"pe-array", array_delay});

    report.components.push_back({"sram", params.sramAccess});

    if (centralized_unroller) {
        report.components.push_back(
                {"centralized-loop-unroller", params.centralizedUnroller});
    } else {
        report.components.push_back(
                {"distributed-addr-gen", params.distributedAddrGen});
    }

    // Regfile search depth grows with the searched entry count.
    for (const auto &plan : accel.regfiles) {
        if (plan.config.comparators == 0)
            continue;
        double searched = double(plan.config.comparators) /
                          double(std::max<std::int64_t>(
                                  plan.config.inPorts + plan.config.outPorts,
                                  1));
        double delay = 0.3 + params.regfileSearchPerLog2Entries *
                                     std::log2(std::max(searched, 2.0));
        report.components.push_back({"regfile-" + plan.tensorName, delay});
    }
    return report;
}

} // namespace stellar::model
