#include "model/energy.hpp"

#include "util/logging.hpp"

namespace stellar::model
{

double
totalEnergy(const EnergyParams &params, const EnergyEvents &events)
{
    double mac_energy = events.macBits <= 8 ? params.mac8 : params.mac32;
    double total = double(events.macs) * mac_energy;
    total += double(events.sramReadBytes) * params.sramReadByte;
    total += double(events.sramWriteBytes) * params.sramWriteByte;
    total += double(events.regfileBytes) * params.regfileAccessByte;
    total += double(events.dramBytes) * params.dramAccessByte;
    total += double(events.cycles) * events.areaMm2 *
             params.leakagePerCyclePerMm2;
    total += double(events.peToggleEvents) * params.peToggle;
    return total;
}

double
energyPerMac(const EnergyParams &params, const EnergyEvents &events)
{
    require(events.macs > 0, "energyPerMac needs at least one MAC");
    return totalEnergy(params, events) / double(events.macs);
}

} // namespace stellar::model
