/**
 * @file
 * Component-level area model (Table III, Section IV-F, Section VI-D).
 *
 * Areas are computed from generated structures — PE counts and wire
 * classes from the SpatialArray, comparator/mux counts from the
 * RegfileConfig, SRAM bits and pipeline stages from MemBufferSpecs — so
 * that design choices (pruned conns, regfile kinds, bundle widths, DMA
 * in-flight depth) show up in area exactly the way the paper describes.
 */

#ifndef STELLAR_MODEL_AREA_HPP
#define STELLAR_MODEL_AREA_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "model/params.hpp"

namespace stellar::model
{

/** One named area component (for Table III style breakdowns). */
struct AreaComponent
{
    std::string name;
    double area = 0.0;
};

/** A named breakdown with a total. */
struct AreaBreakdown
{
    std::vector<AreaComponent> components;

    void add(const std::string &name, double area);
    double total() const;
    double of(const std::string &name) const;
    std::string toString() const;
};

/** Area of one PE. `stellar_generated` adds the Fig 11 overheads
 *  (time counter, recovery logic, stall wiring). */
double peArea(const AreaParams &params, int mac_bits, int pipeline_bits,
              bool stellar_generated);

/** Area of a spatial array, including inter-PE wiring tracks. */
double arrayArea(const AreaParams &params,
                 const core::GeneratedAccelerator &accel, int mac_bits,
                 int data_width, bool stellar_generated);

/** Area of one regfile from its optimized configuration (Fig 14). */
double regfileArea(const AreaParams &params,
                   const core::RegfileConfig &config, int data_width,
                   int coord_width);

/** Area of one private memory buffer (SRAM bits + metadata + stages). */
double bufferArea(const AreaParams &params, const mem::MemBufferSpec &spec);

/** Address-generation area of a buffer's distributed pipelines. */
double bufferAddrGenArea(const AreaParams &params,
                         const mem::MemBufferSpec &spec, int lanes);

/** DMA area as a function of the in-flight request depth. */
double dmaArea(const AreaParams &params, int max_inflight,
               bool stellar_generated);

/** Flattened (SpArch-style) merger: tput elements/cycle via a comparator
 *  array and a prefix-merge network (Fig 19b). */
double flattenedMergerArea(const AreaParams &params, int throughput);

/** Row-partitioned (GAMMA-style) merger: one comparator lane per row
 *  (Fig 19a). */
double rowPartitionedMergerArea(const AreaParams &params, int lanes);

/** Hierarchical (SpArch-style tree) merger: levels of flattened mergers;
 *  Section IV-F reports 13x the area of a simple non-hierarchical one. */
double hierarchicalMergerArea(const AreaParams &params, int throughput,
                              int ways);

} // namespace stellar::model

#endif // STELLAR_MODEL_AREA_HPP
