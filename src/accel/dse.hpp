/**
 * @file
 * Automated design-space exploration: enumerate dataflows for a
 * functional specification, generate each candidate accelerator, and
 * rank them by a delay-area product computed from the timing and area
 * models. This is the "rapid design space exploration" loop the paper's
 * introduction motivates.
 */

#ifndef STELLAR_ACCEL_DSE_HPP
#define STELLAR_ACCEL_DSE_HPP

#include <vector>

#include "core/accelerator.hpp"
#include "dataflow/enumerate.hpp"
#include "model/params.hpp"

namespace stellar::accel
{

/** One explored design point. */
struct DseCandidate
{
    dataflow::SpaceTimeTransform transform;
    std::int64_t pes = 0;
    std::int64_t wires = 0;
    std::int64_t wireLength = 0;
    std::int64_t scheduleLength = 0;
    double fmaxMhz = 0.0;
    double areaUm2 = 0.0;

    /** Execution time x area; lower is better. */
    double score = 0.0;
};

/** Exploration settings. */
struct DseOptions
{
    dataflow::EnumerateOptions enumerate;
    std::size_t topK = 10;
    int dataWidth = 8;
    int macBits = 8;

    /** Optional sparsity/balancing applied to every candidate, so the
     *  search sees the interactions between dataflow and the other
     *  concerns (pruned conns change both wiring and regfile cost). */
    sparsity::SparsitySpec sparsity;
    balance::BalanceSpec balancing;
};

/**
 * Explore dataflows for a spec at the given elaboration bounds. The
 * returned candidates are sorted by ascending score (best first).
 */
std::vector<DseCandidate> exploreDataflows(
        const func::FunctionalSpec &functional, const IntVec &bounds,
        const DseOptions &options, const model::AreaParams &area_params,
        const model::TimingParams &timing_params);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_DSE_HPP
