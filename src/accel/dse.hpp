/**
 * @file
 * Automated design-space exploration: enumerate dataflows for a
 * functional specification, generate each candidate accelerator, and
 * rank them by a delay-area product computed from the timing and area
 * models. This is the "rapid design space exploration" loop the paper's
 * introduction motivates.
 */

#ifndef STELLAR_ACCEL_DSE_HPP
#define STELLAR_ACCEL_DSE_HPP

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "dataflow/enumerate.hpp"
#include "model/params.hpp"
#include "util/failure.hpp"
#include "util/memo.hpp"

namespace stellar::accel
{

/** One explored design point. */
struct DseCandidate
{
    dataflow::SpaceTimeTransform transform;

    /** Position in the enumeration order; the deterministic tie-break. */
    std::size_t enumIndex = 0;

    std::int64_t pes = 0;
    std::int64_t wires = 0;
    std::int64_t wireLength = 0;
    std::int64_t scheduleLength = 0;
    double fmaxMhz = 0.0;
    double areaUm2 = 0.0;

    /** Execution time x area; lower is better. */
    double score = 0.0;
};

/**
 * Cross-call memo of elaborated design points (the declared next rung
 * of the workload cache): key = canonical spec identity + elaboration
 * bounds + model widths + transform, payload = the scored candidate.
 * A repeat exploration of the same space — a serve daemon answering
 * the same query twice, or a sweep revisiting a transform — skips
 * `core::generate` entirely and replays the score.
 *
 * Only *successful* evaluations are memoized: failures must re-run so
 * per-request budgets and fault injection keep their meaning, and a
 * candidate that timed out under one budget is not poisoned for a
 * caller with a larger one.
 *
 * Thread-safe (backed by util::MemoCache); share one instance across
 * concurrent exploreDataflows calls freely.
 */
class DesignPointMemo
{
  public:
    /** `byte_budget` of 0 means unlimited. */
    explicit DesignPointMemo(std::uint64_t byte_budget = 0)
        : cache_(byte_budget)
    {
    }

    /**
     * The canonical key for one candidate. `spec_key` is the caller's
     * canonical identity for everything that determines a score besides
     * the transform and bounds: the functional spec, sparsity,
     * balancing, and area/timing params (FunctionalSpec has no
     * canonical serializer, so the caller owns this). Keys also fold in
     * dataWidth/macBits and the full transform matrix, so distinct
     * design points can never alias.
     */
    static std::string candidateKey(
            const std::string &spec_key, const IntVec &bounds,
            int data_width, int mac_bits,
            const dataflow::SpaceTimeTransform &transform);

    /** The memoized candidate for `key`, or nullptr. */
    std::shared_ptr<const DseCandidate> lookup(const std::string &key);

    /** Memoize a (successful) candidate; returns the resident payload
     *  (the incumbent wins if another thread inserted first). */
    std::shared_ptr<const DseCandidate> insert(const std::string &key,
                                               DseCandidate candidate);

    /** Visit every resident entry as fn(key, candidate) in the stable
     *  snapshot order of MemoCache::forEach. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        cache_.forEach([&](const std::string &key,
                           const std::shared_ptr<const void> &payload,
                           std::uint64_t) {
            fn(key,
               *std::static_pointer_cast<const DseCandidate>(payload));
        });
    }

    util::MemoStats stats() const { return cache_.stats(); }
    void clear() { cache_.clear(); }

  private:
    util::MemoCache cache_;
};

/** Exploration settings. */
struct DseOptions
{
    dataflow::EnumerateOptions enumerate;
    std::size_t topK = 10;
    int dataWidth = 8;
    int macBits = 8;

    /**
     * Worker threads for candidate evaluation: 0 = hardware concurrency,
     * 1 = serial in the calling thread. Rankings are byte-identical for
     * every thread count: each candidate is scored independently and the
     * reduction sorts by (score, enumeration index).
     */
    std::size_t threads = 0;

    /**
     * Skip candidates with more than this many PEs before elaborating
     * them (0 = keep everything). The filter uses the closed-form
     * analyticPeCount, which equals the elaborated PE count exactly, so
     * the prune is lossless: it removes precisely the candidates whose
     * elaborated array would exceed the cap, never a survivor.
     */
    std::int64_t maxPes = 0;

    /**
     * Two-phase exploration: when nonzero, every candidate is first
     * probed analytically (exact PE count and schedule length, no
     * iteration-space walk), and only the best `analyticPrepass`
     * candidates by the schedule-length x PE proxy are fully elaborated
     * and scored. The rest are counted in DseStats::prepassFiltered.
     * The proxy tracks the delay-area score but is not identical to it,
     * so set this comfortably above topK. 0 disables the prepass.
     */
    std::size_t analyticPrepass = 0;

    /**
     * Three-tier exploration: when nonzero, every candidate surviving
     * the prunes above is scored by the closed-form AnalyticCostModel
     * (no elaboration — millions of candidates per second), a
     * deterministic top-K heap ordered by (saturated, analytic score,
     * enumIndex) keeps the best `analyticTopK`, and only those
     * survivors are fully elaborated and exactly re-scored. The rest
     * are counted in DseStats::analyticFiltered.
     *
     * With an empty balancing spec the analytic score is bit-identical
     * to the elaborated one, so the final ranking equals a full run's
     * top-K exactly (the differential tests pin this). With balancing,
     * the analytic score ignores the balance pruning and the tier is a
     * heuristic filter — set this comfortably above topK. The tier is
     * scored serially, so rankings stay byte-identical at any thread
     * or enumeration-shard count. 0 disables the tier.
     */
    std::size_t analyticTopK = 0;

    /**
     * Fuse enumeration into the analytic tier: when true (the default)
     * and `analyticTopK` is active (nonzero, and no analyticPrepass),
     * candidates are scored by the closed-form model as the coefficient
     * scan streams them, so the transform vector is never materialized
     * and the bounded top-K heap is the only O(K) state — hop-4-scale
     * walks (1e8 codes) become feasible under `enumerate.limit`. The
     * streamed survivor sequence is byte-identical to the materialized
     * scan, so rankings and counters are unchanged; `enumerateMs` then
     * covers the fused enumerate+score phase and `analyticMs` mirrors
     * it. Set false to force the materialized two-phase path (the
     * differential tests compare both).
     */
    bool streamEnumeration = true;

    /** Optional sparsity/balancing applied to every candidate, so the
     *  search sees the interactions between dataflow and the other
     *  concerns (pruned conns change both wiring and regfile cost). */
    sparsity::SparsitySpec sparsity;
    balance::BalanceSpec balancing;

    /**
     * Per-candidate watchdog step budget for elaboration and scoring
     * (0 = unlimited). A candidate that exceeds it raises TimeoutError
     * and is recorded as a Timeout failure instead of wedging a worker.
     */
    std::int64_t stepBudget = 0;

    /**
     * Per-candidate wall-clock deadline in milliseconds (0 = none),
     * checked at the same batch boundaries as the simulators' (see
     * util/watchdog.hpp). Step budgets are the deterministic choice for
     * trusted specs; the deadline exists for untrusted external inputs
     * whose step counts cannot be bounded ahead of time. Expiry is
     * recorded as a Timeout failure with TimeoutError::isWallClock set.
     */
    std::int64_t timeBudgetMillis = 0;

    /**
     * Retry a candidate whose evaluation expired its *wall-clock*
     * deadline (TimeoutError::isWallClock) exactly once, under a fresh
     * watchdog. Wall-clock expiry is the one nondeterministic failure
     * in the taxonomy — a noisy neighbour or cold cache can push a
     * healthy candidate past the deadline — so one retry recovers
     * transients without masking repeatable pathology. Step-budget
     * timeouts are deterministic and are never retried. Counted in
     * DseStats::{retried, retrySucceeded}; non-faulted rankings are
     * unchanged by this option at every thread count.
     */
    bool retryWallClockTimeout = false;

    /**
     * When true (the default), a candidate whose evaluation throws is
     * recorded in DseStats::failures and exploration continues; failed
     * candidates rank nowhere and rankings stay byte-identical across
     * thread counts. When false, the first failure (by enumeration
     * order) is rethrown to the caller.
     */
    bool isolateFailures = true;

    /**
     * Optional cross-call design-point memo, consulted per candidate
     * before elaboration and fed every successful score. Ignored unless
     * `memoSpecKey` is also nonempty. Memo hits replay the identical
     * scored candidate (enumIndex rebound to this call's enumeration),
     * so rankings are byte-identical warm or cold.
     */
    DesignPointMemo *memo = nullptr;

    /** Canonical spec identity for memo keys — see
     *  DesignPointMemo::candidateKey for what it must cover. Empty
     *  disables the memo. */
    std::string memoSpecKey;
};

/** One candidate whose evaluation failed, with the classified cause. */
struct CandidateFailure
{
    /** The candidate's position in the enumeration order. */
    std::size_t enumIndex = 0;
    util::Failure failure;
};

/** Counters and phase timings of one exploreDataflows call. */
struct DseStats
{
    std::size_t enumerated = 0;  //!< distinct transforms found
    std::size_t evaluated = 0;   //!< candidates fully elaborated+scored
    std::size_t prunedEarly = 0; //!< skipped by the exact maxPes prune
    std::size_t failed = 0;      //!< candidates that threw (isolated)

    /** Candidates dropped by the analyticPrepass proxy ranking. */
    std::size_t prepassFiltered = 0;

    /** Candidates scored by the analytic tier (DseOptions::analyticTopK). */
    std::size_t analyticRanked = 0;
    /** Candidates the analytic tier dropped (never elaborated). */
    std::size_t analyticFiltered = 0;
    std::size_t threadsUsed = 1;

    /**
     * Coefficient codes the scan skipped by orbit canonicalization
     * before decoding (codes, not transforms — they never reach
     * `enumerated`, so the accounting invariant over `enumerated` is
     * unchanged; consistency is pinned by `enumeration`'s own
     * invariants: codesExamined == orbitSkipped + decoded and decoded
     * == rejected + duplicates + yielded).
     */
    std::size_t orbitSkipped = 0;

    /** Full accounting of the underlying coefficient-code scan. */
    dataflow::EnumerateStats enumeration;

    /** Wall-clock-timeout candidates re-run once (retryWallClockTimeout). */
    std::size_t retried = 0;
    /** Retries whose second run completed (counted in `evaluated`). */
    std::size_t retrySucceeded = 0;

    /** failed, broken down by util::FailureKind (indexed by the enum). */
    std::array<std::size_t, util::kFailureKindCount> failedByKind{};

    /** Every isolated failure, in enumeration order — deterministic
     *  across thread counts. */
    std::vector<CandidateFailure> failures;

    double enumerateMs = 0.0; //!< wall time enumerating transforms
    double prepassMs = 0.0;   //!< wall time in the analytic prepass
    double analyticMs = 0.0;  //!< wall time in the analytic top-K tier
    double evaluateMs = 0.0;  //!< wall time elaborating + scoring
    double rankMs = 0.0;      //!< wall time in the top-K reduction

    /** Evaluation throughput over the evaluate phase. */
    double candidatesPerSecond() const;

    /** Closed-form scoring throughput over the analytic tier. */
    double analyticCandidatesPerSecond() const;
};

/**
 * Explore dataflows for a spec at the given elaboration bounds. The
 * returned candidates are sorted by ascending score (best first), ties
 * broken by enumeration index, so the ranking is deterministic across
 * runs and thread counts. When `stats` is non-null it receives the
 * counters for this call; `evaluated + prunedEarly + prepassFiltered +
 * analyticFiltered + failed == enumerated` always holds, and with the
 * default isolateFailures a
 * throwing candidate becomes a recorded CandidateFailure rather than
 * an exception out of this call.
 */
std::vector<DseCandidate> exploreDataflows(
        const func::FunctionalSpec &functional, const IntVec &bounds,
        const DseOptions &options, const model::AreaParams &area_params,
        const model::TimingParams &timing_params,
        DseStats *stats = nullptr);

/**
 * The evaluate + rank back half of exploreDataflows: elaborate and
 * exactly score each `(enumIndex, transform)` work item (threaded per
 * `options.threads`, failures isolated per `options.isolateFailures`,
 * memo consulted per `options.memo`), classify failures in work order,
 * then sort by (score, enumIndex) and truncate to `options.topK`.
 * Fills the evaluate/rank fields of `stats` (evaluated, failed,
 * failedByKind, failures, retried, retrySucceeded, threadsUsed,
 * evaluateMs, rankMs). Exposed so the shard-merge path
 * (src/accel/records.hpp) elaborates its folded survivor set through
 * exactly this code, keeping merged output byte-identical to a
 * single-process run.
 */
std::vector<DseCandidate> evaluateAndRank(
        std::vector<std::pair<std::size_t, dataflow::SpaceTimeTransform>>
                work,
        const func::FunctionalSpec &functional, const IntVec &bounds,
        const DseOptions &options, const model::AreaParams &area_params,
        const model::TimingParams &timing_params, DseStats &stats);

/**
 * The analyticPrepass proxy ranking used by exploreDataflows: probe
 * every worklist candidate in closed form against `probe_space`, rank
 * by (saturated, scheduleLength x PEs proxy, enumeration index), and
 * return the best `keep` indices re-sorted into enumeration order.
 *
 * Saturated probes always rank after every unsaturated one. The flag —
 * not the clamped magnitude — must be the primary key: a clamp rounds
 * to double(INT64_MAX), which can compare *equal* to a legitimately
 * huge unsaturated design's proxy, and a tie decided by enumeration
 * index could then keep the saturated candidate. Exposed so the
 * regression test can pin this with 2^62-coefficient transforms that
 * enumeration never produces.
 */
std::vector<std::size_t> analyticPrepassSurvivors(
        const std::vector<dataflow::SpaceTimeTransform> &transforms,
        const std::vector<std::size_t> &worklist, const IntVec &bounds,
        const core::IterationSpace &probe_space, std::size_t keep);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_DSE_HPP
