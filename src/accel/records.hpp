/**
 * @file
 * Versioned, checksummed per-shard candidate records — the transport
 * layer that lifts the DSE's any-thread-count byte-identity contract
 * one level, to *processes*.
 *
 * A shard scan (`scanShard`) owns one contiguous slice of the
 * orbit-canonical coefficient-code space (the same `total*i/N` split
 * the sharded oracle uses, via EnumerateOptions::{shardIndex,
 * shardCount}) and records every locally-deduplicated survivor: its
 * code, matrix, dedup signature, closed-form analytic score, and the
 * serial-equivalent scan counters through that yield. The merge
 * (`mergeShardRecords`) folds N shard files in code order against a
 * global signature set — exactly the consuming walk TransformStream
 * runs over its chunks, lifted to files — then elaborates the folded
 * survivor set through the same `evaluateAndRank` back half a
 * single-process run uses. The merged ranking and `DseStats` are
 * therefore bit-for-bit what one process scanning the whole space
 * would produce (tests/shard_merge_test.cpp pins this differentially).
 *
 * The on-disk format mirrors serve::snapshot: a `util::json` document
 * carrying a version, a kind tag, and an FNV-1a checksum over the
 * re-serialized payload, so any damaged byte is rejected as a
 * classified FatalError before a single record is admitted. Mixed
 * versions, overlapping or gapped ranges, and shuffled input order are
 * all detected at merge time.
 */

#ifndef STELLAR_ACCEL_RECORDS_HPP
#define STELLAR_ACCEL_RECORDS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "accel/dse.hpp"
#include "dataflow/enumerate.hpp"
#include "model/params.hpp"

namespace stellar::accel
{

/** Format version; a mismatch is a classified load error. */
inline constexpr int kRecordsVersion = 1;

/**
 * The scan parameters every shard of one sweep must agree on. These
 * mirror the serve-protocol DseRequest knobs that shape the candidate
 * space; eval-side knobs (threads, budgets) deliberately stay out —
 * they never change the ranking.
 */
struct ShardConfig
{
    std::int64_t dim = 8;        //!< cubic matmul elaboration bound
    std::int64_t maxHop = 2;     //!< EnumerateOptions::maxHopLength
    std::int64_t maxCoeff = 1;   //!< coefficient range is [-maxCoeff, maxCoeff]
    std::int64_t topK = 10;      //!< final ranking depth
    std::int64_t analyticTopK = 0; //!< analytic-tier survivors
    std::int64_t enumLimit = 4096; //!< global survivor cap (merge-side)
    std::int64_t maxPes = 0;     //!< exact PE-count prune (0 = off)
};

bool operator==(const ShardConfig &a, const ShardConfig &b);

/** The contiguous code slice one shard file covers. */
struct ShardRange
{
    std::int64_t shardIndex = 0;
    std::int64_t shardCount = 1;
    std::int64_t lo = 0; //!< first code owned (inclusive)
    std::int64_t hi = 0; //!< first code not owned (exclusive)
    std::int64_t codesTotal = 0; //!< the full space, range^(n^2)
};

/**
 * One locally-deduplicated survivor of a shard scan. The `*After`
 * counters are the serial-equivalent shard-relative scan accounting
 * through this yield (EnumeratedTransform's snapshot fields), which is
 * what lets the merge reproduce a `--enum-limit` stop's stats exactly
 * even when the limit falls mid-shard.
 */
struct CandidateRecord
{
    std::int64_t code = 0;
    std::int64_t localIndex = 0; //!< 0-based shard-local yield order
    IntMatrix matrix;
    std::vector<std::int64_t> signature;

    /** Exact analytic PE count (the merge re-derives the maxPes prune
     *  from this, never from a stored verdict). */
    std::int64_t analyticPes = 0;

    /** Closed-form analytic score; unset (0, unsaturated) when the
     *  record was maxPes-pruned and never scored. */
    bool saturated = false;
    double score = 0.0;

    std::int64_t examinedAfter = 0;
    std::int64_t decodedAfter = 0;
    std::int64_t rejectedAfter = 0;
    std::int64_t duplicatesAfter = 0;
};

/** One shard file's worth of scan output. */
struct ShardRecords
{
    ShardConfig config;
    ShardRange range;

    /** Full-slice scan accounting (codesTotal = whole space; the other
     *  counters cover only [range.lo, range.hi)). */
    dataflow::EnumerateStats stats;

    std::vector<CandidateRecord> records;
};

/**
 * Scan shard `shard_index` of `shard_count` and record every local
 * survivor with its analytic score. The scan ignores
 * `config.enumLimit` (the limit is a *global* property only the merge
 * can apply) and records pruned survivors too, so the merge can fold
 * counters exactly. `threads` is the scan thread count (0 = hardware
 * concurrency; the records are byte-identical at any value).
 */
ShardRecords scanShard(const func::FunctionalSpec &functional,
                       const IntVec &bounds, const ShardConfig &config,
                       std::int64_t shard_index, std::int64_t shard_count,
                       std::size_t threads,
                       const model::AreaParams &area_params,
                       const model::TimingParams &timing_params);

/** Serialize to the versioned, checksummed JSON document. */
std::string serializeShardRecords(const ShardRecords &shard);

/**
 * Parse and fully validate one shard document. Rejects wrong kind,
 * version mismatch, checksum mismatch, malformed shapes, out-of-range
 * or non-monotone codes, and counter-invariant violations — all as
 * classified FatalError, never an unclassified throw.
 */
ShardRecords parseShardRecords(const std::string &text);

/** Atomic (write-temp-then-rename) save of one shard file. */
void saveShardRecordsFile(const ShardRecords &shard,
                          const std::string &path);

/** Load + parse one shard file; missing file is a classified error. */
ShardRecords loadShardRecordsFile(const std::string &path);

/** Eval-side knobs for the merge's elaboration pass (the knobs that
 *  never change the ranking, so they live outside ShardConfig). */
struct MergeEvalOptions
{
    std::size_t threads = 0;
    std::int64_t stepBudget = 0;
    std::int64_t timeBudgetMillis = 0;
    bool retryWallClockTimeout = false;
    bool isolateFailures = true;
};

/**
 * Fold N shard files into the single-process ranking: validate that
 * the shards form an exact partition of the code space under one
 * config (any overlap, gap, duplicate index, or config mismatch is a
 * classified error), replay the global consuming walk (signature
 * dedup, maxPes prune, analytic top-K heap, `enumLimit` stop — in
 * code order, so shuffled input-file order cannot change anything),
 * then elaborate the survivors through `evaluateAndRank`. The
 * returned candidates and `stats` match a single-process
 * `exploreDataflows` run over the whole space bit-for-bit (timings
 * excepted — they measure this process's walls).
 */
std::vector<DseCandidate> mergeShardRecords(
        std::vector<ShardRecords> shards,
        const func::FunctionalSpec &functional, const IntVec &bounds,
        const MergeEvalOptions &eval,
        const model::AreaParams &area_params,
        const model::TimingParams &timing_params, DseStats *stats);

/** Deterministic corruption modes for the gauntlet tests and the
 *  records fuzz domain (mirrors serve::SnapshotCorruption). */
enum class RecordsCorruption
{
    TruncateTail,    //!< cut the document in half
    FlipByte,        //!< damage one payload digit (parses; checksum fails)
    VersionBump,     //!< claim an unsupported version
    ChecksumClobber, //!< damage the stored checksum itself
    GarbageHeader,   //!< prepend non-JSON bytes
};

/** Apply one corruption mode to a serialized shard document. */
std::string corruptShardRecords(std::string text, RecordsCorruption mode);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_RECORDS_HPP
