/**
 * @file
 * Human-readable design reports.
 *
 * For any generated accelerator, produce the summary an architect wants
 * when comparing design points: the five input specifications, the
 * pruning decisions, the physical array, regfile plans, buffer
 * pipelines, the modeled area breakdown, and the timing report. Used by
 * the examples and handy when exploring with the DSE driver.
 */

#ifndef STELLAR_ACCEL_REPORT_HPP
#define STELLAR_ACCEL_REPORT_HPP

#include <string>

#include "accel/dse.hpp"
#include "core/accelerator.hpp"
#include "model/params.hpp"

namespace stellar::accel
{

/** Options controlling which report sections appear. */
struct ReportOptions
{
    bool includeSpecs = true;
    bool includeArray = true;
    bool includeRegfiles = true;
    bool includeBuffers = true;
    bool includeArea = true;
    bool includeTiming = true;
    int dataWidth = 8;
    int macBits = 8;
};

/** Render the full report. */
std::string designReport(const core::GeneratedAccelerator &accel,
                         const model::AreaParams &area_params,
                         const model::TimingParams &timing_params,
                         const ReportOptions &options = {});

/**
 * One-paragraph summary of a DSE run: candidates enumerated, pruned
 * early, evaluated, per-phase wall time, and evaluation throughput.
 * Benches and the CLI print this after each exploration.
 *
 * `include_timings` = false drops the wall-time/throughput line — the
 * one nondeterministic line in the report — so outputs that must be
 * byte-identical across runs (the serve daemon's responses, and the
 * CLI under --no-timings) can use the same renderer unfiltered.
 */
std::string dseStatsReport(const DseStats &stats,
                           bool include_timings = true);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_REPORT_HPP
