/**
 * @file
 * The framework feature matrix of Table I.
 *
 * Prior-framework rows are transcribed from the paper; the Stellar row
 * is *introspected* from this library: each capability is checked by
 * probing the corresponding module, so the table stays honest if the
 * implementation changes.
 */

#ifndef STELLAR_ACCEL_FEATURES_HPP
#define STELLAR_ACCEL_FEATURES_HPP

#include <string>
#include <vector>

namespace stellar::accel
{

/** The Table I feature axes. */
enum class Feature
{
    Functionality,
    Dataflow,
    SparseDataStructures,
    LoadBalancing,
    PrivateMemoryBuffers,
    Simulators,
    SynthesizableRtl,
    ApplicationLevelApi,
    IsaLevelApi,
};

/** Support levels used in Table I. */
enum class Support { No, Implicit, Yes };

/** One framework row. */
struct FrameworkRow
{
    std::string name;
    std::vector<Support> support; //!< indexed by Feature
};

const std::vector<Feature> &allFeatures();
std::string featureName(Feature feature);
std::string supportMark(Support support);

/** The prior-framework rows exactly as Table I lists them. */
std::vector<FrameworkRow> priorFrameworkRows();

/** The Stellar row, introspected from this library's capabilities. */
FrameworkRow stellarRow();

} // namespace stellar::accel

#endif // STELLAR_ACCEL_FEATURES_HPP
