#include "accel/features.hpp"

#include "accel/designs.hpp"
#include "core/accelerator.hpp"
#include "isa/instructions.hpp"
#include "rtl/generate.hpp"
#include "rtl/lint.hpp"

namespace stellar::accel
{

const std::vector<Feature> &
allFeatures()
{
    static const std::vector<Feature> features = {
        Feature::Functionality,
        Feature::Dataflow,
        Feature::SparseDataStructures,
        Feature::LoadBalancing,
        Feature::PrivateMemoryBuffers,
        Feature::Simulators,
        Feature::SynthesizableRtl,
        Feature::ApplicationLevelApi,
        Feature::IsaLevelApi,
    };
    return features;
}

std::string
featureName(Feature feature)
{
    switch (feature) {
      case Feature::Functionality: return "Functionality";
      case Feature::Dataflow: return "Dataflow";
      case Feature::SparseDataStructures: return "Sparse data structures";
      case Feature::LoadBalancing: return "Load-balancing";
      case Feature::PrivateMemoryBuffers: return "Private memory buffers";
      case Feature::Simulators: return "Simulators";
      case Feature::SynthesizableRtl: return "Synthesizable RTL";
      case Feature::ApplicationLevelApi: return "Application-level";
      case Feature::IsaLevelApi: return "ISA-level";
    }
    return "?";
}

std::string
supportMark(Support support)
{
    switch (support) {
      case Support::No: return "x";
      case Support::Implicit: return "Implicit";
      case Support::Yes: return "v";
    }
    return "?";
}

std::vector<FrameworkRow>
priorFrameworkRows()
{
    using S = Support;
    // Rows transcribed from Table I: Functionality, Dataflow, Sparse
    // data structures, Load-balancing, Private memory buffers,
    // Simulators, Synthesizable RTL, Application-level, ISA-level.
    return {
        {"PolySA", {S::Yes, S::Yes, S::No, S::No, S::Yes, S::No, S::Yes,
                    S::Yes, S::No}},
        {"AutoSA", {S::Yes, S::Yes, S::No, S::No, S::Yes, S::No, S::Yes,
                    S::Yes, S::No}},
        {"Interstellar", {S::Yes, S::Yes, S::No, S::No, S::Yes, S::No,
                          S::Yes, S::Yes, S::No}},
        {"Tabla", {S::Yes, S::No, S::No, S::No, S::Yes, S::No, S::Yes,
                   S::Yes, S::No}},
        {"Sparseloop", {S::Yes, S::Yes, S::Yes, S::No, S::Yes, S::Yes,
                        S::No, S::No, S::No}},
        {"TeAAL", {S::Yes, S::Yes, S::Yes, S::Yes, S::Yes, S::Yes, S::No,
                   S::No, S::No}},
        {"SAM", {S::Yes, S::Yes, S::Yes, S::No, S::Yes, S::Yes, S::No,
                 S::No, S::No}},
        {"DSAGen", {S::Yes, S::Implicit, S::No, S::Yes, S::Yes, S::No,
                    S::Yes, S::Yes, S::No}},
        {"Spatial", {S::Yes, S::Implicit, S::No, S::No, S::Yes, S::No,
                     S::Yes, S::Yes, S::No}},
    };
}

FrameworkRow
stellarRow()
{
    FrameworkRow row;
    row.name = "Stellar (this repo)";
    row.support.assign(allFeatures().size(), Support::No);
    auto set = [&](Feature f, Support s) {
        row.support[std::size_t(f)] = s;
    };

    // Probe a real sparse, load-balanced design through the pipeline.
    auto spec = outerSpaceLikeSpec(4);
    auto generated = core::generate(spec);

    if (generated.spec.functional.numTensors() > 0)
        set(Feature::Functionality, Support::Yes);
    if (generated.spec.transform.matrix().isInvertible())
        set(Feature::Dataflow, Support::Yes);
    if (!generated.spec.sparsity.empty() && !generated.pruneLog.empty())
        set(Feature::SparseDataStructures, Support::Yes);
    if (!generated.spec.balancing.empty())
        set(Feature::LoadBalancing, Support::Yes);
    if (!generated.spec.buffers.empty())
        set(Feature::PrivateMemoryBuffers, Support::Yes);

    // Stellar outputs RTL, not simulators (Table I row).
    set(Feature::Simulators, Support::No);
    auto design = rtl::lowerToVerilog(generated);
    if (rtl::lintAll(design).empty())
        set(Feature::SynthesizableRtl, Support::Yes);

    // Programming interfaces: the C-style driver and the Table II ISA.
    set(Feature::ApplicationLevelApi, Support::Yes);
    auto inst = isa::makeIssue();
    auto decoded = isa::decode(isa::encode({inst}));
    if (decoded.size() == 1 && decoded[0] == inst)
        set(Feature::IsaLevelApi, Support::Yes);
    return row;
}

} // namespace stellar::accel
