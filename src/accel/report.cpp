#include "accel/report.hpp"

#include <sstream>

#include "model/area.hpp"
#include "model/timing.hpp"
#include "util/strings.hpp"

namespace stellar::accel
{

std::string
designReport(const core::GeneratedAccelerator &accel,
             const model::AreaParams &area_params,
             const model::TimingParams &timing_params,
             const ReportOptions &options)
{
    std::ostringstream os;
    const auto &spec = accel.spec;
    const auto &fn = spec.functional;
    os << "==== design report: " << spec.name << " ====\n";

    if (options.includeSpecs) {
        os << "\n-- functionality --\n" << fn.toString();
        os << "\n-- dataflow --\n" << spec.transform.toString() << "\n";
        if (!spec.sparsity.empty())
            os << "\n-- sparsity --\n" << spec.sparsity.toString(fn);
        if (!spec.balancing.empty()) {
            os << "\n-- load balancing --\n"
               << spec.balancing.toString(fn)
               << "granularity: "
               << (spec.balancing.granularity(spec.transform) ==
                                   balance::Granularity::PerPE
                           ? "per-PE"
                           : "row-granular")
               << "\n";
        }
        if (options.includeBuffers && !spec.buffers.empty()) {
            os << "\n-- private memory buffers --\n";
            for (const auto &buffer : spec.buffers) {
                auto stages = mem::planPipeline(buffer, true);
                os << "  " << padRight(buffer.name, 12) << " "
                   << buffer.format.toString() << ", "
                   << buffer.capacityBytes / 1024 << " KiB, "
                   << stages.size() << " read stages ("
                   << mem::pipelineLatency(stages) << " cycles)\n";
            }
        }
        if (!accel.pruneLog.empty()) {
            os << "\n-- pruning decisions (Sec IV-B) --\n";
            for (const auto &decision : accel.pruneLog) {
                os << "  " << fn.tensorNames()[std::size_t(decision.tensor)]
                   << " along " << vecToString(decision.diff) << ": "
                   << (decision.bundled ? "bundled (OptimisticSkip)"
                                        : "pruned")
                   << "\n";
            }
        }
    }

    if (options.includeArray) {
        os << "\n-- spatial array --\n" << accel.array.toString(fn);
    }

    if (options.includeRegfiles && !accel.regfiles.empty()) {
        os << "\n-- register files (Fig 14) --\n";
        for (const auto &plan : accel.regfiles) {
            os << "  " << padRight(plan.tensorName, 4) << " "
               << padRight(core::regfileKindName(plan.config.kind), 18)
               << plan.config.entries << " entries, "
               << plan.config.comparators << " comparators, "
               << plan.config.inPorts << "+" << plan.config.outPorts
               << " ports\n";
        }
    }

    if (options.includeArea) {
        os << "\n-- modeled area --\n";
        double array_area = model::arrayArea(area_params, accel,
                                             options.macBits,
                                             options.dataWidth, true);
        os << "  spatial array: "
           << formatDouble(array_area / 1e3, 1) << "K um^2\n";
        double regfiles = 0.0;
        for (const auto &plan : accel.regfiles)
            regfiles += model::regfileArea(area_params, plan.config,
                                           options.dataWidth, 16);
        os << "  regfiles:      " << formatDouble(regfiles / 1e3, 1)
           << "K um^2\n";
        double buffers = 0.0;
        for (const auto &buffer : spec.buffers)
            buffers += model::bufferArea(area_params, buffer);
        os << "  buffers:       " << formatDouble(buffers / 1e3, 1)
           << "K um^2\n";
    }

    if (options.includeTiming) {
        auto timing = model::timingOf(timing_params, accel, false);
        os << "\n-- timing --\n  Fmax " << formatDouble(timing.fmaxMhz(), 0)
           << " MHz, critical path: " << timing.slowest()->name << " ("
           << formatDouble(timing.criticalPathNs(), 2) << " ns)\n";
    }
    return os.str();
}

std::string
dseStatsReport(const DseStats &stats, bool include_timings)
{
    std::ostringstream os;
    os << "explored " << stats.enumerated << " dataflows (";
    if (stats.orbitSkipped > 0)
        os << stats.orbitSkipped << " orbit-skipped codes, ";
    os << stats.prunedEarly << " pruned early, ";
    if (stats.prepassFiltered > 0)
        os << stats.prepassFiltered << " prepass-filtered, ";
    if (stats.analyticFiltered > 0)
        os << stats.analyticFiltered << " analytic-filtered, ";
    os << stats.evaluated << " evaluated, " << stats.failed
       << " failed) on " << stats.threadsUsed
       << (stats.threadsUsed == 1 ? " thread" : " threads") << "\n";
    if (include_timings) {
        os << "  enumerate " << formatDouble(stats.enumerateMs, 1)
           << " ms, ";
        if (stats.prepassFiltered > 0 || stats.prepassMs > 0.0)
            os << "prepass " << formatDouble(stats.prepassMs, 2)
               << " ms, ";
        if (stats.analyticRanked > 0)
            os << "analytic " << formatDouble(stats.analyticMs, 2)
               << " ms ("
               << formatDouble(stats.analyticCandidatesPerSecond(), 1)
               << " analytic candidates/s), ";
        os << "evaluate " << formatDouble(stats.evaluateMs, 1)
           << " ms, rank " << formatDouble(stats.rankMs, 2) << " ms ("
           << formatDouble(stats.candidatesPerSecond(), 1)
           << " candidates/s)\n";
    }
    if (stats.retried > 0) {
        os << "  wall-clock retries: " << stats.retried << " ("
           << stats.retrySucceeded << " recovered)\n";
    }
    if (stats.failed > 0) {
        os << "  failures:";
        for (std::size_t k = 0; k < util::kFailureKindCount; k++) {
            if (stats.failedByKind[k] == 0)
                continue;
            os << " " << util::failureKindName(util::FailureKind(k))
               << " x" << stats.failedByKind[k];
        }
        os << "\n";
        // Cap the listing: large sweeps can fail thousands of
        // candidates for the same root cause.
        const std::size_t kMaxListed = 8;
        for (std::size_t i = 0;
             i < stats.failures.size() && i < kMaxListed; i++) {
            os << "    " << stats.failures[i].failure.toString() << "\n";
        }
        if (stats.failures.size() > kMaxListed) {
            os << "    ... and "
               << stats.failures.size() - kMaxListed << " more\n";
        }
    }
    return os.str();
}

} // namespace stellar::accel
