/**
 * @file
 * Elaboration-free analytic scoring: the complete delay-area score of a
 * DSE candidate computed in closed form, without `core::generate`.
 *
 * The probe in accel/analytic.hpp already gives the exact PE count,
 * schedule length, extents, and wire-instance counts of a candidate.
 * What the score additionally needs — per-PE pipeline registers, wire
 * track area, the regfile search depth, and the critical-path floor —
 * turns out to be either a closed form of the same per-axis geometry or
 * transform-*independent* altogether:
 *
 *  - Pipeline bits per PE are `sum(time-delta x width)` over the alive
 *    conn classes, a handful of saturating dot products.
 *  - Wire track area is `instances x L1(space-delta) x width` per conn,
 *    with `instances` from the kernel-overlap count.
 *  - In a DSE sweep the spec carries no buffer bindings, so every
 *    external tensor falls back to the fully-associative regfile whose
 *    searched-entry count equals `touchedElements` — a property of the
 *    fired IO points only, independent of the transform. Its search
 *    delay (and the SRAM/addr-gen components) is therefore a constant
 *    floor computed once per model.
 *
 * Because every accumulation below mirrors model::arrayArea /
 * model::timingOf term-for-term in the same order, the analytic score
 * is BIT-IDENTICAL to the elaborated score whenever (a) the balancing
 * spec is empty (balancing is transform-specific and prunes conns the
 * model cannot see without elaborating) and (b) nothing saturates.
 * That exactness is what lets the DSE's analytic tier keep only top-K
 * candidates and still reproduce the full ranking; the differential
 * tests pin it.
 *
 * A model instance is NOT thread-safe: score() reuses internal scratch
 * buffers so a sweep over a million candidates allocates nothing. The
 * DSE tier runs it serially, which is also what makes the tier's
 * ranking trivially byte-identical at any thread or shard count.
 */

#ifndef STELLAR_ACCEL_ANALYTIC_COST_HPP
#define STELLAR_ACCEL_ANALYTIC_COST_HPP

#include <cstdint>
#include <vector>

#include "core/accelerator.hpp"
#include "core/iteration_space.hpp"
#include "dataflow/transform.hpp"
#include "model/params.hpp"

namespace stellar::accel
{

/** Closed-form score of one candidate (mirrors DseCandidate's fields). */
struct AnalyticScore
{
    std::int64_t pes = 0;
    std::int64_t wires = 0;
    std::int64_t wireLength = 0;
    std::int64_t scheduleLength = 0;
    double fmaxMhz = 0.0;
    double areaUm2 = 0.0;

    /** Execution time x area; lower is better. */
    double score = 0.0;

    /**
     * True when any intermediate quantity was clamped to the int64
     * range: the numbers describe "astronomically large", not a usable
     * magnitude, and the candidate must rank after every unsaturated
     * one (see the (saturated, score, enumIndex) ordering in the DSE).
     */
    bool saturated = false;
};

/**
 * Shared precomputation for analytic scoring of one design space: the
 * elaborated + sparsity-pruned iteration space, per-conn geometry, and
 * the transform-independent regfile/SRAM delay floor. Construct once,
 * then call score() per candidate (~a hundred integer ops for a
 * 3-index spec — millions of candidates per second on one thread).
 */
class AnalyticCostModel
{
  public:
    AnalyticCostModel(const func::FunctionalSpec &functional,
                      const IntVec &bounds,
                      const sparsity::SparsitySpec &sparsity,
                      int data_width, int mac_bits,
                      const model::AreaParams &area_params,
                      const model::TimingParams &timing_params);

    /** The shared probe space (also usable by the analytic prepass). */
    const core::IterationSpace &probeSpace() const { return space_; }

    /**
     * Score one candidate. Not thread-safe (reuses scratch buffers);
     * not `const` for the same reason.
     */
    AnalyticScore score(const dataflow::SpaceTimeTransform &transform);

  private:
    /** Transform-independent geometry of one alive conn class. */
    struct ConnGeometry
    {
        IntVec diff;
        int widthBits = 0;    //!< data width x bundle size
        IntVec subSpans;      //!< per-axis source sub-box span
    };

    core::IterationSpace space_;
    IntVec bounds_;
    int dims_ = 0;
    int macBits_ = 0;
    model::AreaParams area_;
    model::TimingParams timing_;
    std::vector<ConnGeometry> conns_;

    /** max(sram, addr-gen, per-tensor regfile search) — constant. */
    double constantDelayFloor_ = 0.0;

    // score() scratch, reused across calls (the allocation-free path).
    IntVec kernel_;
    IntVec spaceDelta_;
    IntVec extents_;
    std::vector<double> wireAreas_;
};

} // namespace stellar::accel

#endif // STELLAR_ACCEL_ANALYTIC_COST_HPP
