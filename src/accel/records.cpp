#include "accel/records.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "accel/analytic.hpp"
#include "accel/analytic_cost.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/memo.hpp"

namespace stellar::accel
{

namespace
{

namespace json = util::json;

using Clock = std::chrono::steady_clock;

/** Largest integer every double round-trips exactly (2^53). Analytic
 *  PE counts are clamped here at record time so the JSON number path
 *  cannot silently round them; any realistic maxPes is far below. */
constexpr std::int64_t kMaxExactInt = std::int64_t(1) << 53;

[[noreturn]] void
fail(const std::string &what)
{
    throw FatalError("dse shard records: " + what);
}

std::string
checksumHex(const std::string &payload)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)util::fnv1a(payload));
    return buffer;
}

std::string
serializeConfig(const ShardConfig &config)
{
    std::string out = "{\"dim\":" + std::to_string(config.dim);
    out += ",\"max_hop\":" + std::to_string(config.maxHop);
    out += ",\"max_coeff\":" + std::to_string(config.maxCoeff);
    out += ",\"top_k\":" + std::to_string(config.topK);
    out += ",\"analytic_top_k\":" + std::to_string(config.analyticTopK);
    out += ",\"enum_limit\":" + std::to_string(config.enumLimit);
    out += ",\"max_pes\":" + std::to_string(config.maxPes);
    out += "}";
    return out;
}

std::string
serializeRange(const ShardRange &range)
{
    std::string out =
            "{\"shard_index\":" + std::to_string(range.shardIndex);
    out += ",\"shard_count\":" + std::to_string(range.shardCount);
    out += ",\"lo\":" + std::to_string(range.lo);
    out += ",\"hi\":" + std::to_string(range.hi);
    out += ",\"codes_total\":" + std::to_string(range.codesTotal);
    out += "}";
    return out;
}

std::string
serializeStats(const dataflow::EnumerateStats &stats)
{
    std::string out =
            "{\"codes_total\":" + std::to_string(stats.codesTotal);
    out += ",\"codes_examined\":" + std::to_string(stats.codesExamined);
    out += ",\"orbit_skipped\":" + std::to_string(stats.orbitSkipped);
    out += ",\"decoded\":" + std::to_string(stats.decoded);
    out += ",\"rejected\":" + std::to_string(stats.rejected);
    out += ",\"duplicates\":" + std::to_string(stats.duplicates);
    out += ",\"yielded\":" + std::to_string(stats.yielded);
    out += "}";
    return out;
}

std::string
serializeRecord(const CandidateRecord &record)
{
    std::string out = "{\"code\":" + std::to_string(record.code);
    out += ",\"local_index\":" + std::to_string(record.localIndex);
    out += ",\"rows\":" + std::to_string(record.matrix.rows());
    out += ",\"cols\":" + std::to_string(record.matrix.cols());
    out += ",\"matrix\":[";
    for (int r = 0; r < record.matrix.rows(); r++)
        for (int c = 0; c < record.matrix.cols(); c++) {
            if (r != 0 || c != 0)
                out += ",";
            out += std::to_string(record.matrix.at(r, c));
        }
    out += "],\"signature\":[";
    for (std::size_t i = 0; i < record.signature.size(); i++) {
        if (i != 0)
            out += ",";
        out += std::to_string(record.signature[i]);
    }
    out += "],\"analytic_pes\":" + std::to_string(record.analyticPes);
    out += ",\"saturated\":";
    out += record.saturated ? "true" : "false";
    out += ",\"score\":" + json::serializeDouble(record.score);
    out += ",\"examined_after\":" + std::to_string(record.examinedAfter);
    out += ",\"decoded_after\":" + std::to_string(record.decodedAfter);
    out += ",\"rejected_after\":" + std::to_string(record.rejectedAfter);
    out += ",\"duplicates_after\":" +
           std::to_string(record.duplicatesAfter);
    out += "}";
    return out;
}

std::string
serializePayload(const ShardRecords &shard)
{
    std::string out = "{\"config\":" + serializeConfig(shard.config);
    out += ",\"range\":" + serializeRange(shard.range);
    out += ",\"stats\":" + serializeStats(shard.stats);
    out += ",\"records\":[";
    for (std::size_t i = 0; i < shard.records.size(); i++) {
        if (i != 0)
            out += ",";
        out += serializeRecord(shard.records[i]);
    }
    out += "]}";
    return out;
}

const json::Value &
member(const json::Value &object, const std::string &key)
{
    const json::Value *value = object.find(key);
    if (value == nullptr)
        fail("missing field '" + key + "'");
    return *value;
}

std::int64_t
intMember(const json::Value &object, const std::string &key)
{
    return json::toInt64(member(object, key),
                         "dse shard records: '" + key + "'");
}

double
numberMember(const json::Value &object, const std::string &key)
{
    const json::Value &value = member(object, key);
    if (!value.isNumber())
        fail("'" + key + "' must be a number");
    return value.number;
}

bool
boolMember(const json::Value &object, const std::string &key)
{
    const json::Value &value = member(object, key);
    if (!value.isBool())
        fail("'" + key + "' must be a boolean");
    return value.boolean;
}

ShardConfig
parseConfig(const json::Value &body)
{
    if (!body.isObject())
        fail("'config' must be an object");
    ShardConfig config;
    config.dim = intMember(body, "dim");
    config.maxHop = intMember(body, "max_hop");
    config.maxCoeff = intMember(body, "max_coeff");
    config.topK = intMember(body, "top_k");
    config.analyticTopK = intMember(body, "analytic_top_k");
    config.enumLimit = intMember(body, "enum_limit");
    config.maxPes = intMember(body, "max_pes");
    if (config.dim < 1 || config.dim > 4096)
        fail("implausible dim " + std::to_string(config.dim));
    if (config.maxHop < 0)
        fail("max_hop must be >= 0");
    if (config.maxCoeff < 1)
        fail("max_coeff must be >= 1");
    if (config.topK < 1)
        fail("top_k must be >= 1");
    if (config.analyticTopK < 1)
        fail("analytic_top_k must be >= 1 (shard scans are "
             "analytic-tier scans)");
    if (config.enumLimit < 1)
        fail("enum_limit must be >= 1");
    if (config.maxPes < 0)
        fail("max_pes must be >= 0");
    return config;
}

ShardRange
parseRange(const json::Value &body)
{
    if (!body.isObject())
        fail("'range' must be an object");
    ShardRange range;
    range.shardIndex = intMember(body, "shard_index");
    range.shardCount = intMember(body, "shard_count");
    range.lo = intMember(body, "lo");
    range.hi = intMember(body, "hi");
    range.codesTotal = intMember(body, "codes_total");
    if (range.shardCount < 1)
        fail("shard_count must be >= 1");
    if (range.shardIndex < 0 || range.shardIndex >= range.shardCount)
        fail("shard_index " + std::to_string(range.shardIndex) +
             " out of range for " + std::to_string(range.shardCount) +
             " shard(s)");
    if (range.codesTotal < 1)
        fail("codes_total must be >= 1");
    if (range.lo < 0 || range.lo > range.hi ||
        range.hi > range.codesTotal)
        fail("shard range [" + std::to_string(range.lo) + ", " +
             std::to_string(range.hi) + ") does not fit in " +
             std::to_string(range.codesTotal) + " codes");
    // The only legitimate slice for (index, count) is the total*i/N
    // split; anything else overlaps or gaps a sibling shard.
    std::int64_t lo = range.codesTotal * range.shardIndex /
                      range.shardCount;
    std::int64_t hi = range.codesTotal * (range.shardIndex + 1) /
                      range.shardCount;
    if (range.lo != lo || range.hi != hi)
        fail("overlapping or gapped shard range [" +
             std::to_string(range.lo) + ", " + std::to_string(range.hi) +
             ") (shard " + std::to_string(range.shardIndex) + "/" +
             std::to_string(range.shardCount) + " owns [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "))");
    return range;
}

dataflow::EnumerateStats
parseStats(const json::Value &body, const ShardRange &range)
{
    if (!body.isObject())
        fail("'stats' must be an object");
    dataflow::EnumerateStats stats;
    stats.codesTotal = intMember(body, "codes_total");
    stats.codesExamined = intMember(body, "codes_examined");
    stats.orbitSkipped = intMember(body, "orbit_skipped");
    stats.decoded = intMember(body, "decoded");
    stats.rejected = intMember(body, "rejected");
    stats.duplicates = intMember(body, "duplicates");
    stats.yielded = intMember(body, "yielded");
    if (stats.codesTotal != range.codesTotal)
        fail("stats codes_total disagrees with the shard range");
    if (stats.codesExamined != range.hi - range.lo)
        fail("stats must cover the whole shard range");
    if (stats.orbitSkipped < 0 || stats.decoded < 0 ||
        stats.rejected < 0 || stats.duplicates < 0 || stats.yielded < 0)
        fail("negative scan counter");
    if (stats.codesExamined != stats.orbitSkipped + stats.decoded)
        fail("scan counters break codesExamined == orbitSkipped + "
             "decoded");
    if (stats.decoded !=
        stats.rejected + stats.duplicates + stats.yielded)
        fail("scan counters break decoded == rejected + duplicates + "
             "yielded");
    return stats;
}

CandidateRecord
parseRecord(const json::Value &body, const ShardRange &range,
            std::size_t position, std::int64_t prev_code)
{
    if (!body.isObject())
        fail("record must be an object");
    CandidateRecord record;
    record.code = intMember(body, "code");
    record.localIndex = intMember(body, "local_index");
    if (record.code < range.lo || record.code >= range.hi)
        fail("record code " + std::to_string(record.code) +
             " outside the shard range");
    if (position > 0 && record.code <= prev_code)
        fail("record codes must be strictly increasing");
    if (record.localIndex != std::int64_t(position))
        fail("record local_index out of sequence");

    int rows = int(intMember(body, "rows"));
    int cols = int(intMember(body, "cols"));
    if (rows < 1 || cols < 1 || rows > 4 || cols > 4 || rows != cols)
        fail("implausible transform shape " + std::to_string(rows) +
             "x" + std::to_string(cols));
    const json::Value &cells = member(body, "matrix");
    if (!cells.isArray() ||
        cells.array.size() != std::size_t(rows) * std::size_t(cols))
        fail("matrix must carry rows*cols cells");
    record.matrix = IntMatrix(rows, cols);
    std::size_t at = 0;
    for (int r = 0; r < rows; r++)
        for (int c = 0; c < cols; c++)
            record.matrix.at(r, c) = json::toInt64(
                    cells.array[at++], "dse shard records: matrix cell");

    const json::Value &signature = member(body, "signature");
    if (!signature.isArray())
        fail("'signature' must be an array");
    record.signature.reserve(signature.array.size());
    for (const json::Value &value : signature.array)
        record.signature.push_back(json::toInt64(
                value, "dse shard records: signature value"));

    record.analyticPes = intMember(body, "analytic_pes");
    if (record.analyticPes < 0)
        fail("analytic_pes must be >= 0");
    record.saturated = boolMember(body, "saturated");
    record.score = numberMember(body, "score");
    record.examinedAfter = intMember(body, "examined_after");
    record.decodedAfter = intMember(body, "decoded_after");
    record.rejectedAfter = intMember(body, "rejected_after");
    record.duplicatesAfter = intMember(body, "duplicates_after");
    if (record.examinedAfter < 1 ||
        record.examinedAfter > range.hi - range.lo ||
        record.decodedAfter < 1 || record.rejectedAfter < 0 ||
        record.duplicatesAfter < 0)
        fail("implausible record scan snapshot");
    return record;
}

} // namespace

bool
operator==(const ShardConfig &a, const ShardConfig &b)
{
    return a.dim == b.dim && a.maxHop == b.maxHop &&
           a.maxCoeff == b.maxCoeff && a.topK == b.topK &&
           a.analyticTopK == b.analyticTopK &&
           a.enumLimit == b.enumLimit && a.maxPes == b.maxPes;
}

std::string
serializeShardRecords(const ShardRecords &shard)
{
    std::string payload = serializePayload(shard);
    std::string out = "{\"version\":" + std::to_string(kRecordsVersion);
    out += ",\"kind\":\"stellar-dse-shard\"";
    out += ",\"checksum\":" + json::quote(checksumHex(payload));
    out += ",\"payload\":" + payload;
    out += "}";
    return out;
}

ShardRecords
parseShardRecords(const std::string &text)
{
    json::Value root = json::parse(text, "dse shard records");
    if (!root.isObject())
        fail("document must be an object");
    const json::Value *kind = root.find("kind");
    if (kind == nullptr || !kind->isString() ||
        kind->string != "stellar-dse-shard")
        fail("not a stellar-dse-shard file");
    std::int64_t version = intMember(root, "version");
    if (version != kRecordsVersion)
        fail("unsupported version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(kRecordsVersion) + ")");

    // Re-serialize the parsed payload and compare checksums: any byte
    // that changed a value anywhere is caught here, before a single
    // record is admitted.
    const json::Value &payload = member(root, "payload");
    if (!payload.isObject())
        fail("'payload' must be an object");
    std::string canonical = json::serialize(payload);
    const json::Value &checksum = member(root, "checksum");
    if (!checksum.isString() ||
        checksum.string != checksumHex(canonical))
        fail("checksum mismatch (file damaged or hand-edited)");

    ShardRecords shard;
    shard.config = parseConfig(member(payload, "config"));
    shard.range = parseRange(member(payload, "range"));
    shard.stats = parseStats(member(payload, "stats"), shard.range);
    const json::Value &records = member(payload, "records");
    if (!records.isArray())
        fail("'records' must be an array");
    if (std::int64_t(records.array.size()) != shard.stats.yielded)
        fail("record count disagrees with stats.yielded");
    shard.records.reserve(records.array.size());
    std::int64_t prev_code = -1;
    for (std::size_t i = 0; i < records.array.size(); i++) {
        shard.records.push_back(parseRecord(records.array[i],
                                            shard.range, i, prev_code));
        prev_code = shard.records.back().code;
    }
    return shard;
}

void
saveShardRecordsFile(const ShardRecords &shard, const std::string &path)
{
    std::string text = serializeShardRecords(shard);
    std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            fail("cannot write " + temp);
        out << text;
        if (!out.flush())
            fail("short write to " + temp);
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fail("cannot rename " + temp + " to " + path);
}

ShardRecords
loadShardRecordsFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail("cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseShardRecords(text.str());
}

ShardRecords
scanShard(const func::FunctionalSpec &functional, const IntVec &bounds,
          const ShardConfig &config, std::int64_t shard_index,
          std::int64_t shard_count, std::size_t threads,
          const model::AreaParams &area_params,
          const model::TimingParams &timing_params)
{
    require(shard_count >= 1, "shard count must be >= 1");
    require(shard_index >= 0 && shard_index < shard_count,
            "shard index out of range");
    require(config.maxCoeff >= 1, "max_coeff must be >= 1");
    require(config.analyticTopK >= 1,
            "shard scans require the analytic tier (analytic_top_k)");

    ShardRecords out;
    out.config = config;

    dataflow::EnumerateOptions enumerate;
    enumerate.minCoeff = -config.maxCoeff;
    enumerate.maxCoeff = config.maxCoeff;
    enumerate.maxHopLength = config.maxHop;
    // The enumLimit is a *global* property of the merged walk; a shard
    // cannot know where it falls, so it records every local survivor.
    enumerate.limit = std::numeric_limits<std::size_t>::max();
    enumerate.threads = threads;
    enumerate.shardIndex = shard_index;
    enumerate.shardCount = shard_count;

    // Score with the same model and widths the single-process fused
    // path constructs (DseOptions defaults — renderDse never overrides
    // them), so recorded scores merge bit-for-bit.
    DseOptions defaults;
    AnalyticCostModel cost_model(functional, bounds, defaults.sparsity,
                                 defaults.dataWidth, defaults.macBits,
                                 area_params, timing_params);

    dataflow::forEachTransform(
            functional, enumerate,
            [&](const dataflow::EnumeratedTransform &item) {
                CandidateRecord record;
                record.code = item.code;
                record.localIndex = std::int64_t(out.records.size());
                record.matrix = item.transform.matrix();
                record.signature = item.signature;
                record.analyticPes = std::min(
                        analyticPeCount(item.transform, bounds),
                        kMaxExactInt);
                // maxPes-pruned records are never scored — exactly like
                // the fused single-process sink. The merge re-derives
                // the prune from analyticPes.
                if (!(config.maxPes > 0 &&
                      record.analyticPes > config.maxPes)) {
                    auto analytic = cost_model.score(item.transform);
                    record.saturated = analytic.saturated;
                    record.score = analytic.score;
                }
                record.examinedAfter = item.examinedAfter;
                record.decodedAfter = item.decodedAfter;
                record.rejectedAfter = item.rejectedAfter;
                record.duplicatesAfter = item.duplicatesAfter;
                out.records.push_back(std::move(record));
                return true;
            },
            &out.stats);

    out.range.shardIndex = shard_index;
    out.range.shardCount = shard_count;
    out.range.codesTotal = out.stats.codesTotal;
    out.range.lo = out.range.codesTotal * shard_index / shard_count;
    out.range.hi = out.range.codesTotal * (shard_index + 1) / shard_count;
    return out;
}

std::vector<DseCandidate>
mergeShardRecords(std::vector<ShardRecords> shards,
                  const func::FunctionalSpec &functional,
                  const IntVec &bounds, const MergeEvalOptions &eval,
                  const model::AreaParams &area_params,
                  const model::TimingParams &timing_params, DseStats *stats)
{
    if (shards.empty())
        fail("no shard files to merge");
    const ShardConfig &config = shards.front().config;
    const std::int64_t total = shards.front().range.codesTotal;
    for (const ShardRecords &shard : shards) {
        if (!(shard.config == config))
            fail("mixed shard configs (all inputs must come from one "
                 "sweep)");
        if (shard.range.codesTotal != total)
            fail("mixed code-space sizes");
        if (shard.range.shardCount != std::int64_t(shards.size()))
            fail("expected " + std::to_string(shard.range.shardCount) +
                 " shard file(s) for this sweep, got " +
                 std::to_string(shards.size()));
    }
    // The per-file range formula is validated at parse time, so a
    // permutation of indices is exactly a partition of [0, total).
    std::vector<bool> seen(shards.size(), false);
    for (const ShardRecords &shard : shards) {
        std::size_t index = std::size_t(shard.range.shardIndex);
        if (seen[index])
            fail("overlapping shard ranges: shard " +
                 std::to_string(shard.range.shardIndex) +
                 " appears twice");
        seen[index] = true;
    }
    std::sort(shards.begin(), shards.end(),
              [](const ShardRecords &a, const ShardRecords &b) {
                  return a.range.shardIndex < b.range.shardIndex;
              });

    DseStats local;
    auto enumerate_start = Clock::now();

    // The global consuming walk: exactly TransformStream's chunk merge,
    // with shard files in the chunk role. Dedup against a global
    // signature set, apply the maxPes prune and the analytic top-K
    // heap to every global yield, and stop at enumLimit — all in code
    // order, so the fold is independent of input-file order.
    struct Ranked
    {
        bool saturated;
        double score;
        std::size_t index;
        const CandidateRecord *record;
    };
    auto better = [](const Ranked &a, const Ranked &b) {
        if (a.saturated != b.saturated)
            return !a.saturated; // clamped scores rank last
        if (a.score != b.score)
            return a.score < b.score;
        return a.index < b.index;
    };
    std::vector<Ranked> heap;
    const std::size_t analytic_top_k = std::size_t(config.analyticTopK);
    heap.reserve(std::min<std::size_t>(analytic_top_k, 4096));
    std::set<std::vector<std::int64_t>> signatures;
    std::size_t scored = 0;
    std::int64_t yielded = 0;
    std::int64_t merge_duplicates = 0;
    std::int64_t prior_examined = 0;
    std::int64_t prior_decoded = 0;
    std::int64_t prior_rejected = 0;
    std::int64_t prior_duplicates = 0;
    std::int64_t last_examined = 0;
    std::int64_t last_decoded = 0;
    std::int64_t last_rejected = 0;
    std::int64_t last_duplicates = 0;
    bool limited = false;
    for (const ShardRecords &shard : shards) {
        for (const CandidateRecord &record : shard.records) {
            if (!signatures.insert(record.signature).second) {
                // This shard yielded it, but an earlier shard owns the
                // signature — the single-process walk would have
                // counted it a duplicate.
                merge_duplicates++;
                continue;
            }
            std::size_t index = std::size_t(yielded);
            yielded++;
            last_examined = prior_examined + record.examinedAfter;
            last_decoded = prior_decoded + record.decodedAfter;
            last_rejected = prior_rejected + record.rejectedAfter;
            last_duplicates = prior_duplicates + record.duplicatesAfter +
                              merge_duplicates;
            if (config.maxPes > 0 &&
                record.analyticPes > config.maxPes) {
                local.prunedEarly++;
            } else {
                scored++;
                Ranked ranked{record.saturated, record.score, index,
                              &record};
                if (heap.size() < analytic_top_k) {
                    heap.push_back(ranked);
                    std::push_heap(heap.begin(), heap.end(), better);
                } else if (better(ranked, heap.front())) {
                    std::pop_heap(heap.begin(), heap.end(), better);
                    heap.back() = ranked;
                    std::push_heap(heap.begin(), heap.end(), better);
                }
            }
            if (yielded >= config.enumLimit) {
                limited = true;
                break;
            }
        }
        if (limited)
            break;
        prior_examined += shard.range.hi - shard.range.lo;
        prior_decoded += shard.stats.decoded;
        prior_rejected += shard.stats.rejected;
        prior_duplicates += shard.stats.duplicates;
    }

    local.enumeration.codesTotal = total;
    if (limited) {
        local.enumeration.codesExamined = last_examined;
        local.enumeration.decoded = last_decoded;
        local.enumeration.rejected = last_rejected;
        local.enumeration.duplicates = last_duplicates;
    } else {
        local.enumeration.codesExamined = prior_examined;
        local.enumeration.decoded = prior_decoded;
        local.enumeration.rejected = prior_rejected;
        local.enumeration.duplicates = prior_duplicates +
                                       merge_duplicates;
    }
    local.enumeration.yielded = yielded;
    local.enumeration.orbitSkipped = local.enumeration.codesExamined -
                                     local.enumeration.decoded;
    local.enumerated = std::size_t(yielded);
    local.orbitSkipped = std::size_t(local.enumeration.orbitSkipped);
    if (scored > analytic_top_k) {
        local.analyticRanked = scored;
        local.analyticFiltered = scored - heap.size();
    }
    std::sort(heap.begin(), heap.end(),
              [](const Ranked &a, const Ranked &b) {
                  return a.index < b.index;
              });
    std::vector<std::pair<std::size_t, dataflow::SpaceTimeTransform>>
            work;
    work.reserve(heap.size());
    for (const Ranked &ranked : heap) {
        // The transform constructor re-validates invertibility; a
        // corrupted-but-checksummed matrix dies here, classified.
        work.emplace_back(
                ranked.index,
                dataflow::SpaceTimeTransform(
                        ranked.record->matrix,
                        "enumerated-" + std::to_string(ranked.index)));
    }
    local.enumerateMs = std::chrono::duration<double, std::milli>(
                                Clock::now() - enumerate_start)
                                .count();
    local.analyticMs = local.analyticRanked > 0 ? local.enumerateMs : 0.0;

    // Elaborate the folded survivors through exactly the back half a
    // single-process run uses.
    DseOptions options;
    options.enumerate.minCoeff = -config.maxCoeff;
    options.enumerate.maxCoeff = config.maxCoeff;
    options.enumerate.maxHopLength = config.maxHop;
    options.enumerate.limit = std::size_t(config.enumLimit);
    options.topK = std::size_t(config.topK);
    options.threads = eval.threads;
    options.maxPes = config.maxPes;
    options.analyticTopK = analytic_top_k;
    options.stepBudget = eval.stepBudget;
    options.timeBudgetMillis = eval.timeBudgetMillis;
    options.retryWallClockTimeout = eval.retryWallClockTimeout;
    options.isolateFailures = eval.isolateFailures;
    auto candidates = evaluateAndRank(std::move(work), functional, bounds,
                                      options, area_params, timing_params,
                                      local);
    if (stats)
        *stats = local;
    return candidates;
}

std::string
corruptShardRecords(std::string text, RecordsCorruption mode)
{
    switch (mode) {
      case RecordsCorruption::TruncateTail:
        text.resize(text.size() / 2);
        return text;
      case RecordsCorruption::FlipByte: {
        // Flip a digit inside the payload so the document still parses
        // but the checksum no longer matches.
        std::size_t at = text.find("\"payload\":");
        for (at = at == std::string::npos ? 0 : at; at < text.size();
             at++) {
            if (text[at] >= '0' && text[at] <= '8') {
                text[at] = char(text[at] + 1);
                return text;
            }
        }
        return text;
      }
      case RecordsCorruption::VersionBump: {
        std::size_t at = text.find("\"version\":");
        if (at != std::string::npos)
            text.replace(at, 10, "\"version\":9");
        return text;
      }
      case RecordsCorruption::ChecksumClobber: {
        std::size_t at = text.find("\"checksum\":\"");
        if (at != std::string::npos)
            text[at + 12] = text[at + 12] == '0' ? '1' : '0';
        return text;
      }
      case RecordsCorruption::GarbageHeader:
        return "\x7f" "ELF not json at all" + text;
    }
    return text;
}

} // namespace stellar::accel
