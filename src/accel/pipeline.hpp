/**
 * @file
 * Multi-array accelerator pipelines (Fig 8).
 *
 * The paper's example sparse-matmul accelerator is a *pipeline*: a
 * multiplier spatial array produces scattered partial sums which merger
 * arrays then combine, with register files and private memory buffers
 * between the stages and one shared DMA in front. A PipelineSpec chains
 * several five-axis AcceleratorSpecs; generation runs each stage through
 * the standard compiler and lowering produces one Verilog design with a
 * shared DMA and the stage tops instantiated side by side.
 */

#ifndef STELLAR_ACCEL_PIPELINE_HPP
#define STELLAR_ACCEL_PIPELINE_HPP

#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "rtl/generate.hpp"
#include "util/failure.hpp"

namespace stellar::accel
{

/** A chain of accelerator stages sharing one DMA and memory system. */
struct PipelineSpec
{
    std::string name;
    std::vector<core::AcceleratorSpec> stages;
};

/** Every stage's compiled result. */
struct GeneratedPipeline
{
    PipelineSpec spec;
    std::vector<core::GeneratedAccelerator> stages;

    std::int64_t totalPes() const;
};

/** Compile every stage; the first failing stage's exception escapes. */
GeneratedPipeline generatePipeline(const PipelineSpec &spec);

/** One pipeline stage whose compilation failed. */
struct StageFailure
{
    std::size_t stageIndex = 0;
    std::string stageName;
    util::Failure failure;
};

/** A pipeline compiled with per-stage failure isolation. */
struct PipelineGenerationResult
{
    /** Successfully compiled stages only, in spec order. */
    GeneratedPipeline pipeline;

    /** Classified failures for the stages that threw, in spec order. */
    std::vector<StageFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Compile every stage with per-stage isolation: a stage that throws is
 * recorded as a classified StageFailure and the remaining stages still
 * compile, mirroring the per-candidate isolation of exploreDataflows.
 * `stepBudget` (0 = unlimited) bounds each stage's elaboration steps.
 */
PipelineGenerationResult
generatePipelineIsolated(const PipelineSpec &spec,
                         std::int64_t step_budget = 0);

/**
 * Lower the whole pipeline into one Verilog design: per-stage arrays,
 * regfiles and buffers, plus a single shared DMA and a pipeline top.
 */
rtl::Design lowerPipelineToVerilog(const GeneratedPipeline &pipeline,
                                   const rtl::RtlOptions &options = {});

/**
 * The Fig 8 design: an OuterSPACE-style sparse multiplier stage feeding
 * a merger stage.
 */
PipelineSpec sparseMatmulPipelineSpec(int dim = 8, int merge_lanes = 8);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_PIPELINE_HPP
