#include "accel/pipeline.hpp"

#include <exception>

#include "accel/designs.hpp"
#include "util/fault_inject.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/watchdog.hpp"

namespace stellar::accel
{

std::int64_t
GeneratedPipeline::totalPes() const
{
    std::int64_t total = 0;
    for (const auto &stage : stages)
        total += stage.array.numPes();
    return total;
}

GeneratedPipeline
generatePipeline(const PipelineSpec &spec)
{
    require(!spec.stages.empty(), "pipeline needs at least one stage");
    GeneratedPipeline pipeline;
    pipeline.spec = spec;
    for (const auto &stage : spec.stages)
        pipeline.stages.push_back(core::generate(stage));
    return pipeline;
}

PipelineGenerationResult
generatePipelineIsolated(const PipelineSpec &spec,
                         std::int64_t step_budget)
{
    require(!spec.stages.empty(), "pipeline needs at least one stage");
    PipelineGenerationResult result;
    result.pipeline.spec = spec;
    for (std::size_t s = 0; s < spec.stages.size(); s++) {
        util::fault::ScopedContext context(s);
        util::WatchdogScope guard("pipeline.stage", step_budget);
        try {
            util::fault::checkpoint("pipeline.stage");
            result.pipeline.stages.push_back(
                    core::generate(spec.stages[s]));
        } catch (...) {
            StageFailure failure;
            failure.stageIndex = s;
            failure.stageName = spec.stages[s].name;
            failure.failure = util::classifyException(
                    std::current_exception(), "pipeline.stage",
                    "stage#" + std::to_string(s) + " " +
                            spec.stages[s].name);
            result.failures.push_back(std::move(failure));
        }
    }
    return result;
}

rtl::Design
lowerPipelineToVerilog(const GeneratedPipeline &pipeline,
                       const rtl::RtlOptions &options)
{
    rtl::Design design;
    std::vector<std::string> stage_tops;
    for (const auto &stage : pipeline.stages) {
        // Lower each stage into its own namespace of modules, then copy
        // them into the shared design.
        rtl::Design stage_design = rtl::lowerToVerilog(stage, options);
        for (const auto &module : stage_design.modules()) {
            if (design.findModule(module.name()) != nullptr)
                continue; // shared helper (e.g. a pipereg template)
            design.addModule(module.name()) = module;
        }
        stage_tops.push_back(stage_design.top());
    }

    std::string base = sanitizeIdentifier(pipeline.spec.name);
    std::string top_name = "stellar_pipeline_" + base;
    rtl::Module &top = design.addModule(top_name);
    top.setComment("Accelerator pipeline (Fig 8): " +
                   std::to_string(stage_tops.size()) +
                   " stages behind one shared DMA; stage n+1 consumes "
                   "stage n's output buffers.");
    top.addPort(rtl::PortDir::Input, "clock", 1);
    top.addPort(rtl::PortDir::Input, "reset", 1);
    top.addPort(rtl::PortDir::Input, "enable", 1);
    for (std::size_t s = 0; s < stage_tops.size(); s++) {
        rtl::Instance inst;
        inst.moduleName = stage_tops[s];
        inst.instanceName = "stage" + std::to_string(s);
        inst.connections.push_back({"clock", "clock"});
        inst.connections.push_back({"reset", "reset"});
        inst.connections.push_back({"enable", "enable"});
        top.addInstance(std::move(inst));
    }
    design.setTop(top_name);
    return design;
}

PipelineSpec
sparseMatmulPipelineSpec(int dim, int merge_lanes)
{
    PipelineSpec pipeline;
    pipeline.name = "sparse_matmul_pipeline";
    pipeline.stages.push_back(outerSpaceLikeSpec(dim));
    pipeline.stages.push_back(gammaMergerSpec(merge_lanes));
    return pipeline;
}

} // namespace stellar::accel
