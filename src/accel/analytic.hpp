/**
 * @file
 * Closed-form analytic candidate evaluation.
 *
 * Every structural quantity the DSE scores — PE count, schedule length,
 * array extents, dense wire-instance counts — is a property of the
 * affine image of the elaboration bounds box under the space-time
 * transform, and the box is a product of intervals, so each quantity
 * has an exact closed form (the same per-axis-span geometry as
 * IterationSpace::connInstances). Probing a candidate this way costs a
 * handful of small determinants instead of a full iteration-space walk,
 * which makes two things possible: a *lossless* maxPes prune (the
 * analytic PE count equals the elaborated one exactly), and an optional
 * two-phase exploration that full-elaborates only the analytically
 * promising candidates (DseOptions::analyticPrepass).
 *
 * All arithmetic saturates instead of wrapping: at extreme transform
 * coefficients the per-axis extents exceed the int64 range, and a
 * wrapped product would silently misclassify an astronomically large
 * design as a small one.
 */

#ifndef STELLAR_ACCEL_ANALYTIC_HPP
#define STELLAR_ACCEL_ANALYTIC_HPP

#include <cstdint>
#include <vector>

#include "core/iteration_space.hpp"
#include "dataflow/transform.hpp"

namespace stellar::accel
{

/** One wire class predicted by the analytic evaluator. */
struct AnalyticWire
{
    int tensor = -1;
    IntVec spaceDelta;
    std::int64_t registers = 0;
    std::int64_t instances = 0; //!< distinct (source PE -> dest PE) pairs
    std::int64_t wireLength = 0;
};

/** The closed-form image of one candidate: exact elaboration counts. */
struct AnalyticProbe
{
    std::int64_t pes = 0;
    std::int64_t scheduleLength = 0;
    IntVec extents;
    std::vector<AnalyticWire> wires;

    /** True when any quantity was clamped to the int64 range. */
    bool saturated = false;

    std::int64_t totalWires() const;
    std::int64_t totalWireLength() const;
};

/**
 * Exact PE count of a transform at the given bounds, without
 * elaboration: the number of distinct spatial images of the bounds box.
 * Matches SpatialArray::numPes() of the elaborated array exactly, which
 * is what makes the DseOptions::maxPes prune lossless.
 */
std::int64_t analyticPeCount(const dataflow::SpaceTimeTransform &transform,
                             const IntVec &bounds);

/**
 * Full analytic probe of a candidate against a (possibly pruned)
 * IterationSpace: exact PE count, schedule length, extents, and
 * per-wire dense instance counts for the space's alive conn classes.
 */
AnalyticProbe analyticProbe(const dataflow::SpaceTimeTransform &transform,
                            const IntVec &bounds,
                            const core::IterationSpace &space);

namespace detail
{

/**
 * Cofactor determinant with saturating arithmetic. Exact whenever no
 * intermediate product or sum leaves the int64 range; otherwise clamped
 * with `*saturated` set, which callers must treat as "astronomically
 * large design", never as a usable magnitude.
 */
std::int64_t satDeterminant(const IntMatrix &m, bool *saturated);

/**
 * Primitive generator of the integer kernel of the spatial rows of an
 * invertible transform matrix, written into `out` (resized to m.cols())
 * without allocating on the hot path for the common sd <= 2 case.
 * Returns false when saturation collapsed the minors so no generator
 * could be derived — `out` is then the time-axis unit vector and
 * `*saturated` is set; every count derived from it is a clamp artifact.
 */
bool spatialKernelInto(const IntMatrix &m, IntVec &out, bool *saturated);

/**
 * Distinct spatial images of an axis-aligned box with the given
 * per-axis spans: |box| minus the overlap of the box with its translate
 * by the kernel vector (every point whose predecessor along the kernel
 * line is also inside the box is a duplicate image).
 */
std::int64_t distinctImages(const IntVec &spans, const IntVec &kernel,
                            bool *saturated);

} // namespace detail

} // namespace stellar::accel

#endif // STELLAR_ACCEL_ANALYTIC_HPP
