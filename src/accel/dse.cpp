#include "accel/dse.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "accel/analytic.hpp"
#include "accel/analytic_cost.hpp"
#include "core/prune.hpp"
#include "model/area.hpp"
#include "model/timing.hpp"
#include "util/fault_inject.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace stellar::accel
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
}

DseCandidate
evaluateCandidate(const dataflow::SpaceTimeTransform &transform,
                  std::size_t enum_index,
                  const func::FunctionalSpec &functional,
                  const IntVec &bounds, const DseOptions &options,
                  const model::AreaParams &area_params,
                  const model::TimingParams &timing_params)
{
    util::fault::checkpoint("dse.evaluate");
    core::AcceleratorSpec spec;
    spec.name = "dse";
    spec.functional = functional;
    spec.transform = transform;
    spec.sparsity = options.sparsity;
    spec.balancing = options.balancing;
    spec.elaborationBounds = bounds;
    auto generated = core::generate(spec);
    util::fault::checkpoint("dse.score");

    DseCandidate candidate;
    candidate.transform = transform;
    candidate.enumIndex = enum_index;
    candidate.pes = generated.array.numPes();
    candidate.wires = generated.array.totalWires();
    candidate.wireLength = generated.array.totalWireLength();
    candidate.scheduleLength = generated.array.scheduleLength();
    auto timing = model::timingOf(timing_params, generated,
                                  /*centralized=*/false);
    candidate.fmaxMhz = timing.fmaxMhz();
    candidate.areaUm2 = model::arrayArea(area_params, generated,
                                         options.macBits,
                                         options.dataWidth, true);
    double seconds = double(candidate.scheduleLength) /
                     (candidate.fmaxMhz * 1e6);
    candidate.score = seconds * candidate.areaUm2;
    return candidate;
}

/** Resident-size estimate for a memoized candidate (LRU accounting). */
std::uint64_t
candidateBytes(const DseCandidate &candidate)
{
    const auto &matrix = candidate.transform.matrix();
    return sizeof(DseCandidate) +
           std::uint64_t(matrix.rows()) * std::uint64_t(matrix.cols()) *
                   sizeof(std::int64_t) +
           candidate.transform.name().size();
}

} // namespace

std::string
DesignPointMemo::candidateKey(const std::string &spec_key,
                              const IntVec &bounds, int data_width,
                              int mac_bits,
                              const dataflow::SpaceTimeTransform &transform)
{
    std::string key = spec_key;
    key += "|b=";
    key += vecToString(bounds);
    key += "|w=";
    key += std::to_string(data_width);
    key += "/";
    key += std::to_string(mac_bits);
    key += "|T=";
    const IntMatrix &matrix = transform.matrix();
    key += std::to_string(matrix.rows());
    key += "x";
    key += std::to_string(matrix.cols());
    key += ":";
    for (int r = 0; r < matrix.rows(); r++)
        for (int c = 0; c < matrix.cols(); c++) {
            key += std::to_string(matrix.at(r, c));
            key += ",";
        }
    key += transform.name();
    return key;
}

std::shared_ptr<const DseCandidate>
DesignPointMemo::lookup(const std::string &key)
{
    return std::static_pointer_cast<const DseCandidate>(
            cache_.lookup(key, util::fnv1a(key)));
}

std::shared_ptr<const DseCandidate>
DesignPointMemo::insert(const std::string &key, DseCandidate candidate)
{
    std::uint64_t bytes = candidateBytes(candidate);
    auto payload = std::make_shared<const DseCandidate>(
            std::move(candidate));
    return std::static_pointer_cast<const DseCandidate>(cache_.insert(
            key, util::fnv1a(key), std::move(payload), bytes));
}

double
DseStats::candidatesPerSecond() const
{
    if (evaluateMs <= 0.0)
        return 0.0;
    return double(evaluated) / (evaluateMs / 1e3);
}

double
DseStats::analyticCandidatesPerSecond() const
{
    if (analyticMs <= 0.0)
        return 0.0;
    return double(analyticRanked) / (analyticMs / 1e3);
}

std::vector<std::size_t>
analyticPrepassSurvivors(
        const std::vector<dataflow::SpaceTimeTransform> &transforms,
        const std::vector<std::size_t> &worklist, const IntVec &bounds,
        const core::IterationSpace &probe_space, std::size_t keep)
{
    struct Proxy
    {
        bool saturated;
        double proxy;
        std::size_t index;
    };
    std::vector<Proxy> proxies;
    proxies.reserve(worklist.size());
    for (std::size_t index : worklist) {
        auto probe = analyticProbe(transforms[index], bounds, probe_space);
        double proxy = double(probe.scheduleLength) * double(probe.pes);
        proxies.push_back({probe.saturated, proxy, index});
    }
    std::sort(proxies.begin(), proxies.end(),
              [](const Proxy &a, const Proxy &b) {
                  if (a.saturated != b.saturated)
                      return !a.saturated; // clamped counts rank last
                  if (a.proxy != b.proxy)
                      return a.proxy < b.proxy;
                  return a.index < b.index;
              });
    if (proxies.size() > keep)
        proxies.resize(keep);
    std::vector<std::size_t> survivors;
    survivors.reserve(proxies.size());
    for (const auto &proxy : proxies)
        survivors.push_back(proxy.index);
    std::sort(survivors.begin(), survivors.end());
    return survivors;
}

std::vector<DseCandidate>
exploreDataflows(const func::FunctionalSpec &functional,
                 const IntVec &bounds, const DseOptions &options,
                 const model::AreaParams &area_params,
                 const model::TimingParams &timing_params, DseStats *stats)
{
    DseStats local;

    // The evaluate phase below consumes (enumIndex, transform) pairs in
    // enumeration order; both the fused-streaming and the materialized
    // front halves produce exactly the same `work` sequence.
    std::vector<std::pair<std::size_t, dataflow::SpaceTimeTransform>> work;

    // Fused streaming front half: score candidates with the closed-form
    // model as the coefficient scan streams them. The bounded top-K
    // heap (keyed like the materialized tier: saturated, analytic
    // score, enumIndex) is the only O(K) state — the transform vector
    // is never materialized, which is what makes 1e8-code walks fit in
    // memory. The streamed survivor sequence is byte-identical to the
    // materialized scan, so the survivor set, counters, and final
    // ranking are unchanged. Engages only when the analytic tier alone
    // filters (a prepass needs the whole worklist at once).
    const bool fused = options.streamEnumeration &&
                       options.analyticTopK > 0 &&
                       options.analyticPrepass == 0;
    if (fused) {
        auto enumerate_start = Clock::now();
        AnalyticCostModel cost_model(functional, bounds, options.sparsity,
                                     options.dataWidth, options.macBits,
                                     area_params, timing_params);
        struct Ranked
        {
            bool saturated;
            double score;
            std::size_t index;
            dataflow::SpaceTimeTransform transform;
        };
        auto better = [](const Ranked &a, const Ranked &b) {
            if (a.saturated != b.saturated)
                return !a.saturated; // clamped scores rank last
            if (a.score != b.score)
                return a.score < b.score;
            return a.index < b.index;
        };
        std::vector<Ranked> heap;
        heap.reserve(std::min<std::size_t>(options.analyticTopK, 4096));
        std::size_t scored = 0;
        dataflow::forEachTransform(
                functional, options.enumerate,
                [&](const dataflow::EnumeratedTransform &item) {
                    // Exact maxPes prune, same as the materialized path.
                    if (options.maxPes > 0 &&
                        analyticPeCount(item.transform, bounds) >
                                options.maxPes) {
                        local.prunedEarly++;
                        return true;
                    }
                    auto analytic = cost_model.score(item.transform);
                    scored++;
                    Ranked ranked{analytic.saturated, analytic.score,
                                  item.index, item.transform};
                    if (heap.size() < options.analyticTopK) {
                        heap.push_back(std::move(ranked));
                        std::push_heap(heap.begin(), heap.end(), better);
                    } else if (better(ranked, heap.front())) {
                        std::pop_heap(heap.begin(), heap.end(), better);
                        heap.back() = std::move(ranked);
                        std::push_heap(heap.begin(), heap.end(), better);
                    }
                    return true;
                },
                &local.enumeration);
        local.enumerated = std::size_t(local.enumeration.yielded);
        local.orbitSkipped = std::size_t(local.enumeration.orbitSkipped);
        if (scored > options.analyticTopK) {
            local.analyticRanked = scored;
            local.analyticFiltered = scored - heap.size();
        }
        // else: too few survivors for the tier to filter — counters
        // stay 0, exactly as when the materialized tier is skipped.
        std::sort(heap.begin(), heap.end(),
                  [](const Ranked &a, const Ranked &b) {
                      return a.index < b.index;
                  });
        work.reserve(heap.size());
        for (auto &ranked : heap)
            work.emplace_back(ranked.index, std::move(ranked.transform));
        local.enumerateMs = msSince(enumerate_start);
        // The tier is fused into the scan; report the same wall for
        // both phases (comparisons filter timing lines anyway).
        local.analyticMs = local.analyticRanked > 0 ? local.enumerateMs
                                                    : 0.0;
    } else {
    auto enumerate_start = Clock::now();
    auto transforms = dataflow::enumerateTransforms(
            functional, options.enumerate, &local.enumeration);
    local.enumerateMs = msSince(enumerate_start);
    local.enumerated = transforms.size();
    local.orbitSkipped = std::size_t(local.enumeration.orbitSkipped);

    // Fix the work list (and each candidate's enumIndex) up front so the
    // ranking never depends on evaluation order. The maxPes prune is
    // exact: analyticPeCount equals the elaborated numPes(), so only
    // candidates that genuinely exceed the cap are dropped.
    std::vector<std::size_t> worklist;
    worklist.reserve(transforms.size());
    for (std::size_t i = 0; i < transforms.size(); i++) {
        if (options.maxPes > 0 &&
            analyticPeCount(transforms[i], bounds) > options.maxPes) {
            local.prunedEarly++;
            continue;
        }
        worklist.push_back(i);
    }

    // Optional analytic prepass: probe every surviving candidate in
    // closed form and keep only the most promising ones for the full
    // elaboration below. The probe shares one elaborated + sparsity-
    // pruned space across candidates (both are transform-independent;
    // balancing is transform-specific and deliberately left to the full
    // evaluation). The proxy is the same execution-time x area shape as
    // the real score with fmax and per-PE area held constant, and the
    // survivor list is re-sorted back into enumeration order so the
    // evaluate phase below behaves exactly as in a single-phase run.
    if (options.analyticPrepass > 0 &&
        worklist.size() > options.analyticPrepass) {
        auto prepass_start = Clock::now();
        core::IterationSpace probe_space =
                core::elaborate(functional, bounds);
        core::applySparsity(probe_space, options.sparsity);
        local.prepassFiltered = worklist.size() - options.analyticPrepass;
        worklist = analyticPrepassSurvivors(transforms, worklist, bounds,
                                            probe_space,
                                            options.analyticPrepass);
        local.prepassMs = msSince(prepass_start);
    }

    // Analytic top-K tier: score every surviving candidate with the
    // closed-form cost model (no elaboration) and keep only the best
    // analyticTopK for the exact evaluation below. The tier is scored
    // serially in enumeration order and its heap is keyed (saturated,
    // analytic score, enumIndex), so the survivor set — and therefore
    // the final ranking — is byte-identical at any thread or
    // enumeration-shard count; survivors are re-sorted back into
    // enumeration order so the evaluate phase behaves exactly as in a
    // single-phase run. With an empty balancing spec the analytic score
    // equals the elaborated score bit-for-bit, making this filter
    // lossless for the final top-K (see analytic_cost.hpp).
    if (options.analyticTopK > 0 && worklist.size() > options.analyticTopK) {
        auto analytic_start = Clock::now();
        AnalyticCostModel cost_model(functional, bounds, options.sparsity,
                                     options.dataWidth, options.macBits,
                                     area_params, timing_params);
        struct Ranked
        {
            bool saturated;
            double score;
            std::size_t index;
        };
        auto better = [](const Ranked &a, const Ranked &b) {
            if (a.saturated != b.saturated)
                return !a.saturated; // clamped scores rank last
            if (a.score != b.score)
                return a.score < b.score;
            return a.index < b.index;
        };
        // Bounded heap of the best K seen so far. With the "better"
        // ordering as the heap comparator, the front is the *worst*
        // kept candidate — the eviction point.
        std::vector<Ranked> heap;
        heap.reserve(std::min<std::size_t>(options.analyticTopK, 4096));
        for (std::size_t index : worklist) {
            auto analytic = cost_model.score(transforms[index]);
            Ranked ranked{analytic.saturated, analytic.score, index};
            if (heap.size() < options.analyticTopK) {
                heap.push_back(ranked);
                std::push_heap(heap.begin(), heap.end(), better);
            } else if (better(ranked, heap.front())) {
                std::pop_heap(heap.begin(), heap.end(), better);
                heap.back() = ranked;
                std::push_heap(heap.begin(), heap.end(), better);
            }
        }
        local.analyticRanked = worklist.size();
        local.analyticFiltered = worklist.size() - heap.size();
        worklist.clear();
        for (const auto &ranked : heap)
            worklist.push_back(ranked.index);
        std::sort(worklist.begin(), worklist.end());
        local.analyticMs = msSince(analytic_start);
    }

    work.reserve(worklist.size());
    for (std::size_t index : worklist)
        work.emplace_back(index, std::move(transforms[index]));
    } // end materialized front half

    auto candidates = evaluateAndRank(std::move(work), functional, bounds,
                                      options, area_params, timing_params,
                                      local);

    if (stats)
        *stats = local;
    return candidates;
}

std::vector<DseCandidate>
evaluateAndRank(
        std::vector<std::pair<std::size_t, dataflow::SpaceTimeTransform>>
                work,
        const func::FunctionalSpec &functional, const IntVec &bounds,
        const DseOptions &options, const model::AreaParams &area_params,
        const model::TimingParams &timing_params, DseStats &local)
{
    auto evaluate_start = Clock::now();
    // Each slot is evaluated independently; a throwing candidate leaves
    // its result slot empty and its exception in `errors`. Failure
    // isolation (and the failure *records*) therefore never depend on
    // scheduling: the reduction below walks slots in worklist order.
    std::atomic<std::size_t> retried{0};
    std::atomic<std::size_t> retry_succeeded{0};
    const bool use_memo =
            options.memo != nullptr && !options.memoSpecKey.empty();
    auto evaluate_once = [&](std::size_t i) {
        util::WatchdogScope guard("dse.candidate", options.stepBudget,
                                  options.timeBudgetMillis);
        if (!use_memo)
            return evaluateCandidate(work[i].second, work[i].first,
                                     functional, bounds, options,
                                     area_params, timing_params);
        std::string key = DesignPointMemo::candidateKey(
                options.memoSpecKey, bounds, options.dataWidth,
                options.macBits, work[i].second);
        if (auto hit = options.memo->lookup(key)) {
            // The payload's enumIndex belongs to whichever call
            // populated it; rebind to this enumeration so ranking
            // tie-breaks are identical warm or cold.
            DseCandidate candidate = *hit;
            candidate.enumIndex = work[i].first;
            return candidate;
        }
        auto candidate = evaluateCandidate(
                work[i].second, work[i].first, functional, bounds,
                options, area_params, timing_params);
        options.memo->insert(key, candidate);
        return candidate;
    };
    auto evaluate = [&](std::size_t i) {
        util::fault::ScopedContext context(work[i].first);
        if (!options.retryWallClockTimeout)
            return evaluate_once(i);
        try {
            return evaluate_once(i);
        } catch (const util::TimeoutError &err) {
            // Only wall-clock expiry can be transient; a step budget
            // counts deterministic work and would fail identically.
            if (!err.isWallClock())
                throw;
            retried.fetch_add(1, std::memory_order_relaxed);
            auto candidate = evaluate_once(i); // fresh watchdog budget
            retry_succeeded.fetch_add(1, std::memory_order_relaxed);
            return candidate;
        }
    };
    std::vector<DseCandidate> slots;
    std::vector<std::exception_ptr> errors;
    std::size_t threads = options.threads;
    if (threads == 0)
        threads = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
    if (threads == 1 || work.size() <= 1) {
        local.threadsUsed = 1;
        slots.resize(work.size());
        errors.assign(work.size(), nullptr);
        for (std::size_t i = 0; i < work.size(); i++) {
            try {
                slots[i] = evaluate(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        util::ThreadPool pool(threads);
        local.threadsUsed = pool.size();
        slots = pool.parallelMapIsolated<DseCandidate>(work.size(),
                                                       evaluate, errors);
    }

    // Deterministic reduction: classify failures in work-list (i.e.
    // enumeration) order, so counts, kinds, and records are identical
    // at every thread count.
    std::vector<DseCandidate> candidates;
    candidates.reserve(work.size());
    for (std::size_t i = 0; i < work.size(); i++) {
        if (!errors[i]) {
            candidates.push_back(std::move(slots[i]));
            continue;
        }
        if (!options.isolateFailures)
            std::rethrow_exception(errors[i]);
        CandidateFailure failure;
        failure.enumIndex = work[i].first;
        failure.failure = util::classifyException(
                errors[i], "dse.candidate",
                "enum#" + std::to_string(work[i].first));
        local.failed++;
        local.failedByKind[std::size_t(failure.failure.kind)]++;
        local.failures.push_back(std::move(failure));
    }
    local.evaluated = candidates.size();
    local.retried = retried.load(std::memory_order_relaxed);
    local.retrySucceeded = retry_succeeded.load(std::memory_order_relaxed);
    local.evaluateMs = msSince(evaluate_start);

    // Deterministic top-K reduction: each candidate's score is a pure
    // function of its transform, so sorting by (score, enumIndex) gives
    // byte-identical rankings for serial and parallel runs.
    auto rank_start = Clock::now();
    std::sort(candidates.begin(), candidates.end(),
              [](const DseCandidate &a, const DseCandidate &b) {
                  if (a.score != b.score)
                      return a.score < b.score;
                  return a.enumIndex < b.enumIndex;
              });
    if (candidates.size() > options.topK)
        candidates.resize(options.topK);
    local.rankMs = msSince(rank_start);
    return candidates;
}

} // namespace stellar::accel
