#include "accel/dse.hpp"

#include <algorithm>

#include "model/area.hpp"
#include "model/timing.hpp"

namespace stellar::accel
{

std::vector<DseCandidate>
exploreDataflows(const func::FunctionalSpec &functional,
                 const IntVec &bounds, const DseOptions &options,
                 const model::AreaParams &area_params,
                 const model::TimingParams &timing_params)
{
    auto transforms =
            dataflow::enumerateTransforms(functional, options.enumerate);

    std::vector<DseCandidate> candidates;
    for (auto &transform : transforms) {
        core::AcceleratorSpec spec;
        spec.name = "dse";
        spec.functional = functional;
        spec.transform = transform;
        spec.sparsity = options.sparsity;
        spec.balancing = options.balancing;
        spec.elaborationBounds = bounds;
        auto generated = core::generate(spec);

        DseCandidate candidate;
        candidate.transform = transform;
        candidate.pes = generated.array.numPes();
        candidate.wires = generated.array.totalWires();
        candidate.wireLength = generated.array.totalWireLength();
        candidate.scheduleLength = generated.array.scheduleLength();
        auto timing = model::timingOf(timing_params, generated,
                                      /*centralized=*/false);
        candidate.fmaxMhz = timing.fmaxMhz();
        candidate.areaUm2 = model::arrayArea(area_params, generated,
                                             options.macBits,
                                             options.dataWidth, true);
        double seconds = double(candidate.scheduleLength) /
                         (candidate.fmaxMhz * 1e6);
        candidate.score = seconds * candidate.areaUm2;
        candidates.push_back(std::move(candidate));
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const DseCandidate &a, const DseCandidate &b) {
                  return a.score < b.score;
              });
    if (candidates.size() > options.topK)
        candidates.resize(options.topK);
    return candidates;
}

} // namespace stellar::accel
