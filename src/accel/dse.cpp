#include "accel/dse.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "model/area.hpp"
#include "model/timing.hpp"
#include "util/fault_inject.hpp"
#include "util/thread_pool.hpp"
#include "util/watchdog.hpp"

namespace stellar::accel
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
}

/**
 * Upper bound on the PE count of a transform: the product of the
 * per-spatial-axis bounding-box extents. Exact for fully occupied
 * rectangular arrays, an over-count otherwise — cheap enough to run
 * before elaboration.
 */
std::int64_t
boundingBoxPes(const dataflow::SpaceTimeTransform &transform,
               const IntVec &bounds)
{
    const auto &m = transform.matrix();
    std::int64_t pes = 1;
    for (int r = 0; r + 1 < m.rows(); r++) {
        std::int64_t extent = 0;
        for (int c = 0; c < m.cols(); c++) {
            std::int64_t coeff = m.at(r, c);
            std::int64_t span = bounds[std::size_t(c)] - 1;
            extent += (coeff < 0 ? -coeff : coeff) * span;
        }
        pes *= extent + 1;
    }
    return pes;
}

DseCandidate
evaluateCandidate(const dataflow::SpaceTimeTransform &transform,
                  std::size_t enum_index,
                  const func::FunctionalSpec &functional,
                  const IntVec &bounds, const DseOptions &options,
                  const model::AreaParams &area_params,
                  const model::TimingParams &timing_params)
{
    util::fault::checkpoint("dse.evaluate");
    core::AcceleratorSpec spec;
    spec.name = "dse";
    spec.functional = functional;
    spec.transform = transform;
    spec.sparsity = options.sparsity;
    spec.balancing = options.balancing;
    spec.elaborationBounds = bounds;
    auto generated = core::generate(spec);
    util::fault::checkpoint("dse.score");

    DseCandidate candidate;
    candidate.transform = transform;
    candidate.enumIndex = enum_index;
    candidate.pes = generated.array.numPes();
    candidate.wires = generated.array.totalWires();
    candidate.wireLength = generated.array.totalWireLength();
    candidate.scheduleLength = generated.array.scheduleLength();
    auto timing = model::timingOf(timing_params, generated,
                                  /*centralized=*/false);
    candidate.fmaxMhz = timing.fmaxMhz();
    candidate.areaUm2 = model::arrayArea(area_params, generated,
                                         options.macBits,
                                         options.dataWidth, true);
    double seconds = double(candidate.scheduleLength) /
                     (candidate.fmaxMhz * 1e6);
    candidate.score = seconds * candidate.areaUm2;
    return candidate;
}

} // namespace

double
DseStats::candidatesPerSecond() const
{
    if (evaluateMs <= 0.0)
        return 0.0;
    return double(evaluated) / (evaluateMs / 1e3);
}

std::vector<DseCandidate>
exploreDataflows(const func::FunctionalSpec &functional,
                 const IntVec &bounds, const DseOptions &options,
                 const model::AreaParams &area_params,
                 const model::TimingParams &timing_params, DseStats *stats)
{
    DseStats local;

    auto enumerate_start = Clock::now();
    auto transforms =
            dataflow::enumerateTransforms(functional, options.enumerate);
    local.enumerateMs = msSince(enumerate_start);
    local.enumerated = transforms.size();

    // Fix the work list (and each candidate's enumIndex) up front so the
    // ranking never depends on evaluation order.
    std::vector<std::size_t> worklist;
    worklist.reserve(transforms.size());
    for (std::size_t i = 0; i < transforms.size(); i++) {
        if (options.maxPes > 0 &&
            boundingBoxPes(transforms[i], bounds) > options.maxPes) {
            local.prunedEarly++;
            continue;
        }
        worklist.push_back(i);
    }

    auto evaluate_start = Clock::now();
    // Each slot is evaluated independently; a throwing candidate leaves
    // its result slot empty and its exception in `errors`. Failure
    // isolation (and the failure *records*) therefore never depend on
    // scheduling: the reduction below walks slots in worklist order.
    auto evaluate = [&](std::size_t i) {
        util::fault::ScopedContext context(worklist[i]);
        util::WatchdogScope guard("dse.candidate", options.stepBudget);
        return evaluateCandidate(transforms[worklist[i]], worklist[i],
                                 functional, bounds, options, area_params,
                                 timing_params);
    };
    std::vector<DseCandidate> slots;
    std::vector<std::exception_ptr> errors;
    std::size_t threads = options.threads;
    if (threads == 0)
        threads = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
    if (threads == 1 || worklist.size() <= 1) {
        local.threadsUsed = 1;
        slots.resize(worklist.size());
        errors.assign(worklist.size(), nullptr);
        for (std::size_t i = 0; i < worklist.size(); i++) {
            try {
                slots[i] = evaluate(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        util::ThreadPool pool(threads);
        local.threadsUsed = pool.size();
        slots = pool.parallelMapIsolated<DseCandidate>(worklist.size(),
                                                       evaluate, errors);
    }

    // Deterministic reduction: classify failures in worklist (i.e.
    // enumeration) order, so counts, kinds, and records are identical
    // at every thread count.
    std::vector<DseCandidate> candidates;
    candidates.reserve(worklist.size());
    for (std::size_t i = 0; i < worklist.size(); i++) {
        if (!errors[i]) {
            candidates.push_back(std::move(slots[i]));
            continue;
        }
        if (!options.isolateFailures)
            std::rethrow_exception(errors[i]);
        CandidateFailure failure;
        failure.enumIndex = worklist[i];
        failure.failure = util::classifyException(
                errors[i], "dse.candidate",
                "enum#" + std::to_string(worklist[i]));
        local.failed++;
        local.failedByKind[std::size_t(failure.failure.kind)]++;
        local.failures.push_back(std::move(failure));
    }
    local.evaluated = candidates.size();
    local.evaluateMs = msSince(evaluate_start);

    // Deterministic top-K reduction: each candidate's score is a pure
    // function of its transform, so sorting by (score, enumIndex) gives
    // byte-identical rankings for serial and parallel runs.
    auto rank_start = Clock::now();
    std::sort(candidates.begin(), candidates.end(),
              [](const DseCandidate &a, const DseCandidate &b) {
                  if (a.score != b.score)
                      return a.score < b.score;
                  return a.enumIndex < b.enumIndex;
              });
    if (candidates.size() > options.topK)
        candidates.resize(options.topK);
    local.rankMs = msSince(rank_start);

    if (stats)
        *stats = local;
    return candidates;
}

} // namespace stellar::accel
