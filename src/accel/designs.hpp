/**
 * @file
 * Pre-built accelerator specifications reproducing the designs the paper
 * generates and evaluates (Section VI):
 *
 *  - a Gemmini-like dense DNN accelerator: 16x16 weight-stationary
 *    systolic array with 8-bit inputs;
 *  - an SCNN-like sparse CNN accelerator: cartesian-product PEs with
 *    both operands skipped on zeros;
 *  - an OuterSPACE-like sparse matmul accelerator: outer-product dataflow
 *    with CSC-A and CSR-B skips, scattered partial sums;
 *  - GAMMA-style row-partitioned and SpArch-style flattened mergers;
 *  - an A100-style 2:4 structured-sparsity matmul array (OptimisticSkip).
 *
 * Builders only assemble five-axis AcceleratorSpecs; all generation runs
 * through the shared compiler pipeline in src/core.
 */

#ifndef STELLAR_ACCEL_DESIGNS_HPP
#define STELLAR_ACCEL_DESIGNS_HPP

#include "core/accelerator.hpp"
#include "model/area.hpp"

namespace stellar::accel
{

/** 16x16 weight-stationary dense matmul accelerator (Gemmini-like). */
core::AcceleratorSpec gemminiLikeSpec(int dim = 16);

/** Sparse CNN accelerator with both operands skipped (SCNN-like). */
core::AcceleratorSpec scnnLikeSpec();

/** Outer-product sparse-sparse matmul accelerator (OuterSPACE-like). */
core::AcceleratorSpec outerSpaceLikeSpec(int dim = 16);

/** Row-partitioned merger (GAMMA-style, Fig 19a). */
core::AcceleratorSpec gammaMergerSpec(int lanes = 32);

/** Flattened merger (SpArch-style, Fig 19b). */
core::AcceleratorSpec spArchMergerSpec(int throughput = 16);

/** Output-stationary array with A in the A100 2:4 format (Fig 5). */
core::AcceleratorSpec a100SparseSpec(int dim = 16);

/**
 * The Table III area breakdown of a Gemmini-class SoC. When
 * `stellar_generated` is false the handwritten design's components
 * (no PE overheads, centralized loop unroller) are used.
 */
model::AreaBreakdown gemminiAreaBreakdown(const model::AreaParams &params,
                                          bool stellar_generated,
                                          int dim = 16);

} // namespace stellar::accel

#endif // STELLAR_ACCEL_DESIGNS_HPP
