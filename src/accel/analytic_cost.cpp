#include "accel/analytic_cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "accel/analytic.hpp"
#include "core/prune.hpp"
#include "model/area.hpp"
#include "util/logging.hpp"
#include "util/saturate.hpp"

namespace stellar::accel
{

AnalyticCostModel::AnalyticCostModel(const func::FunctionalSpec &functional,
                                     const IntVec &bounds,
                                     const sparsity::SparsitySpec &sparsity,
                                     int data_width, int mac_bits,
                                     const model::AreaParams &area_params,
                                     const model::TimingParams &timing_params)
    : space_(core::elaborate(functional, bounds)), bounds_(bounds),
      dims_(functional.numIndices()), macBits_(mac_bits),
      area_(area_params), timing_(timing_params)
{
    require(int(bounds.size()) == dims_, "bounds must cover every iterator");
    core::applySparsity(space_, sparsity);

    // Per-conn geometry: everything about a conn class except its
    // space-time delta is transform-independent.
    for (const auto &conn : space_.aliveConns()) {
        ConnGeometry geometry;
        geometry.diff = conn.diff;
        geometry.widthBits =
                data_width * (conn.bundled ? conn.bundleSize : 1);
        geometry.subSpans.assign(std::size_t(dims_), 0);
        for (int c = 0; c < dims_; c++)
            geometry.subSpans[std::size_t(c)] =
                    bounds[std::size_t(c)] -
                    std::llabs(conn.diff[std::size_t(c)]);
        conns_.push_back(std::move(geometry));
    }

    // Transform-independent delay floor. A DSE spec carries no buffer
    // bindings, so core::generate always falls back to the fully-
    // associative regfile whose searched-entry count is exactly
    // touchedElements: the number of distinct external coordinate
    // tuples over the fired IO points — a property of the pruned space
    // and bounds only. (timingOf divides comparators back down by the
    // port count, so the transform-dependent port pressure cancels;
    // the quotient is exact in double up to 2^53 comparators, far
    // beyond any elaborable space.) The same goes for the SRAM and
    // distributed address-generator components.
    double floor =
            std::max(timing_.sramAccess, timing_.distributedAddrGen);
    const auto &space_bounds = space_.bounds();
    for (int t = 0; t < functional.numTensors(); t++) {
        if (functional.tensorKind(t) == func::TensorKind::Intermediate)
            continue;
        std::set<IntVec> coords;
        bool fired = false;
        for (const auto &io : space_.ioConns()) {
            if (io.externalTensor != t)
                continue;
            space_.forEachPoint([&](const IntVec &p) {
                if (!io.perPoint && io.boundaryIndex >= 0) {
                    auto b = std::size_t(io.boundaryIndex);
                    std::int64_t edge =
                            io.isInput ? 0 : space_bounds[b] - 1;
                    if (p[b] != edge)
                        return;
                }
                fired = true;
                IntVec coord;
                coord.reserve(io.externalCoords.size());
                for (const auto &expr : io.externalCoords)
                    coord.push_back(expr.evaluate(p, space_bounds));
                coords.insert(std::move(coord));
            });
        }
        if (!fired)
            continue; // generate() plans no regfile for this tensor
        double searched = double(std::int64_t(coords.size()));
        double delay = 0.3 + timing_.regfileSearchPerLog2Entries *
                                     std::log2(std::max(searched, 2.0));
        floor = std::max(floor, delay);
    }
    constantDelayFloor_ = floor;
}

AnalyticScore
AnalyticCostModel::score(const dataflow::SpaceTimeTransform &transform)
{
    require(transform.dims() == dims_,
            "transform dimensionality must match the cost model");
    AnalyticScore result;
    const IntMatrix &m = transform.matrix();
    int d = dims_;
    int sd = d - 1;

    // Extents and schedule length: per row, the sum of per-axis
    // coefficient reaches (the analyticProbe closed form — exact).
    extents_.assign(std::size_t(sd), 0);
    for (int r = 0; r < d; r++) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        for (int c = 0; c < d; c++) {
            std::int64_t reach =
                    util::satMul(m.at(r, c), bounds_[std::size_t(c)] - 1,
                                 &result.saturated);
            if (reach < 0)
                lo = util::satAdd(lo, reach, &result.saturated);
            else
                hi = util::satAdd(hi, reach, &result.saturated);
        }
        std::int64_t span = util::satAdd(
                util::satAdd(hi, -lo, &result.saturated), 1,
                &result.saturated);
        if (r + 1 == d)
            result.scheduleLength = span;
        else
            extents_[std::size_t(r)] = span;
    }

    if (sd > 0) {
        detail::spatialKernelInto(m, kernel_, &result.saturated);
        result.pes =
                detail::distinctImages(bounds_, kernel_, &result.saturated);
    } else {
        result.pes = 1; // no spatial axes: one PE, no wires
    }

    // One pass over the conn classes mirrors three elaborated loops at
    // once: arrayArea's pipeline-bit sum (every alive conn), its wire-
    // track terms and timingOf's broadcast-chain scan (non-stationary
    // conns, in aliveConns order — the same order applyTransform emits
    // wire classes, so the double accumulation below is bit-identical).
    double array_delay = timing_.peArrayLogic;
    std::int64_t pipeline_bits = 0;
    wireAreas_.clear();
    spaceDelta_.assign(std::size_t(sd), 0);
    for (const auto &conn : conns_) {
        bool stationary = true;
        for (int r = 0; r < sd; r++) {
            std::int64_t component = 0;
            for (int c = 0; c < d; c++)
                component = util::satAdd(
                        component,
                        util::satMul(m.at(r, c), conn.diff[std::size_t(c)],
                                     &result.saturated),
                        &result.saturated);
            spaceDelta_[std::size_t(r)] = component;
            stationary = stationary && component == 0;
        }
        std::int64_t time = 0;
        for (int c = 0; c < d; c++)
            time = util::satAdd(
                    time,
                    util::satMul(m.at(d - 1, c), conn.diff[std::size_t(c)],
                                 &result.saturated),
                    &result.saturated);
        pipeline_bits = util::satAdd(
                pipeline_bits,
                util::satMul(time, conn.widthBits, &result.saturated),
                &result.saturated);
        if (stationary)
            continue; // not a wire under this transform

        std::int64_t length = 0;
        for (int r = 0; r < sd; r++)
            length = util::satAdd(length,
                                  std::llabs(spaceDelta_[std::size_t(r)]),
                                  &result.saturated);
        std::int64_t instances = detail::distinctImages(
                conn.subSpans, kernel_, &result.saturated);
        result.wires =
                util::satAdd(result.wires, instances, &result.saturated);
        std::int64_t track = util::satMul(instances, length,
                                          &result.saturated);
        result.wireLength =
                util::satAdd(result.wireLength, track, &result.saturated);
        wireAreas_.push_back(double(track) * double(conn.widthBits) *
                             area_.wireTrackBit);
        if (time <= 0) {
            // Unpipelined broadcast: traverses its full axis extent in
            // one cycle (the timingOf chain scan, registers == 0).
            std::int64_t chain = 0;
            for (int r = 0; r < sd; r++) {
                if (spaceDelta_[std::size_t(r)] != 0)
                    chain = std::max<std::int64_t>(
                            chain,
                            extents_[std::size_t(r)] /
                                    std::llabs(
                                            spaceDelta_[std::size_t(r)]));
            }
            array_delay = std::max(array_delay,
                                   timing_.peArrayLogic +
                                           double(chain) *
                                                   timing_.wirePerUnitLength);
        }
    }

    // arrayArea casts the per-conn time delta to int; outside that
    // range the elaborated sum is meaningless too, so clamp + flag.
    if (pipeline_bits > std::numeric_limits<int>::max() ||
        pipeline_bits < std::numeric_limits<int>::min()) {
        result.saturated = true;
        pipeline_bits = std::numeric_limits<int>::max();
    }
    double area = double(result.pes) *
                  model::peArea(area_, macBits_, int(pipeline_bits),
                                /*stellar_generated=*/true);
    for (double term : wireAreas_)
        area += term;
    result.areaUm2 = area;

    double path = std::max(array_delay, constantDelayFloor_);
    result.fmaxMhz = 1000.0 / path;
    double seconds =
            double(result.scheduleLength) / (result.fmaxMhz * 1e6);
    result.score = seconds * result.areaUm2;
    return result;
}

} // namespace stellar::accel
