#include "accel/designs.hpp"

#include "dataflow/transform.hpp"
#include "func/library.hpp"
#include "mem/format.hpp"
#include "sparsity/skip.hpp"

namespace stellar::accel
{

namespace
{

/** Dense double-buffered scratchpad bound to one matmul operand. */
mem::MemBufferSpec
denseBuffer(const std::string &name, const std::string &tensor,
            std::int64_t capacity_bytes, int lanes, int span)
{
    mem::MemBufferSpec buf;
    buf.name = name;
    buf.boundTensor = tensor;
    buf.format = mem::denseFormat(2);
    buf.capacityBytes = capacity_bytes;
    buf.readPorts = lanes;
    buf.writePorts = lanes;
    buf.banks = 4;
    buf.hardcodedRead.spans = {span, span};
    buf.hardcodedRead.dataStrides = {1, span};
    return buf;
}

mem::MemBufferSpec
csrBuffer(const std::string &name, const std::string &tensor,
          std::int64_t capacity_bytes)
{
    mem::MemBufferSpec buf;
    buf.name = name;
    buf.boundTensor = tensor;
    buf.format = mem::csrFormat();
    buf.capacityBytes = capacity_bytes;
    buf.banks = 2;
    return buf;
}

} // namespace

core::AcceleratorSpec
gemminiLikeSpec(int dim)
{
    core::AcceleratorSpec spec;
    spec.name = "gemmini_like";
    spec.functional = func::matmulSpec();
    // Weight-stationary and fully pipelined, like Gemmini's WS array.
    spec.transform = dataflow::dataflows::inputStationaryPipelined(1);
    spec.elaborationBounds = {dim, dim, dim};
    spec.buffers.push_back(
            denseBuffer("SPAD_A", "A", 128 * 1024, dim, dim));
    spec.buffers.push_back(
            denseBuffer("SPAD_B", "B", 128 * 1024, dim, dim));
    spec.buffers.push_back(
            denseBuffer("ACC_C", "C", 64 * 1024, dim, dim));
    return spec;
}

core::AcceleratorSpec
scnnLikeSpec()
{
    core::AcceleratorSpec spec;
    spec.name = "scnn_like";
    spec.functional = func::matmulSpec();
    // Cartesian-product PEs: both operands skip zeros (unstructured
    // weight and activation sparsity), partial sums scatter to buffers.
    spec.transform = dataflow::dataflows::outputStationary();
    spec.elaborationBounds = {8, 8, 4};
    int A = spec.functional.tensorIdByName("A");
    int B = spec.functional.tensorIdByName("B");
    spec.sparsity.add(sparsity::skipWhenZero(
            0, A, {func::makeIndexExpr(0), func::makeIndexExpr(2)}));
    spec.sparsity.add(sparsity::skipWhenZero(
            1, B, {func::makeIndexExpr(2), func::makeIndexExpr(1)}));
    spec.buffers.push_back(csrBuffer("WEIGHT_FIFO", "A", 32 * 1024));
    spec.buffers.push_back(csrBuffer("ACT_RAM", "B", 64 * 1024));
    spec.buffers.push_back(csrBuffer("ACC_RAM", "C", 32 * 1024));
    return spec;
}

core::AcceleratorSpec
outerSpaceLikeSpec(int dim)
{
    core::AcceleratorSpec spec;
    spec.name = "outerspace_like";
    spec.functional = func::matmulSpec();
    spec.transform = dataflow::dataflows::outputStationary();
    spec.elaborationBounds = {dim, dim, dim};
    int A = spec.functional.tensorIdByName("A");
    int B = spec.functional.tensorIdByName("B");
    // A is CSC (skip i within a column), B is CSR (skip j within a row):
    // the outer-product formulation of Listing 2's first case.
    spec.sparsity.add(sparsity::skipWhenZero(
            0, A, {func::makeIndexExpr(0), func::makeIndexExpr(2)}));
    spec.sparsity.add(sparsity::skipWhenZero(
            1, B, {func::makeIndexExpr(2), func::makeIndexExpr(1)}));
    // Adjacent-row work sharing, Listing 3 style.
    balance::ShiftSpec shift;
    shift.shifts = {balance::shiftRange(0, dim, 2 * dim, 0, dim),
                    balance::shiftUnchanged(1),
                    balance::shiftRange(2, 0, dim, 1, dim + 1)};
    spec.balancing.add(shift);
    spec.buffers.push_back(csrBuffer("SRAM_A", "A", 64 * 1024));
    spec.buffers.push_back(csrBuffer("SRAM_B", "B", 64 * 1024));
    mem::MemBufferSpec partials = csrBuffer("PARTIALS", "C", 128 * 1024);
    partials.format = mem::linkedListFormat();
    spec.buffers.push_back(partials);
    return spec;
}

core::AcceleratorSpec
gammaMergerSpec(int lanes)
{
    core::AcceleratorSpec spec;
    spec.name = "gamma_merger";
    spec.functional = func::mergeSpec();
    spec.transform = dataflow::SpaceTimeTransform(IntMatrix{{1}},
                                                  "sequential");
    spec.elaborationBounds = {lanes};
    spec.buffers.push_back(csrBuffer("FIBER_A", "AVal", 16 * 1024));
    spec.buffers.push_back(csrBuffer("FIBER_B", "BVal", 16 * 1024));
    spec.buffers.push_back(csrBuffer("MERGED", "OutVal", 32 * 1024));
    return spec;
}

core::AcceleratorSpec
spArchMergerSpec(int throughput)
{
    core::AcceleratorSpec spec = gammaMergerSpec(throughput);
    spec.name = "sparch_merger";
    return spec;
}

core::AcceleratorSpec
a100SparseSpec(int dim)
{
    core::AcceleratorSpec spec;
    spec.name = "a100_24";
    spec.functional = func::matmulSpec();
    spec.transform = dataflow::dataflows::outputStationary();
    spec.elaborationBounds = {dim, dim, dim};
    int A = spec.functional.tensorIdByName("A");
    // 2:4 structured sparsity along k: OptimisticSkip with bundles of 4
    // (Fig 5), which keeps PE-to-PE connections but widens them.
    spec.sparsity.add(sparsity::optimisticSkip(
            2, A, {func::makeIndexExpr(0), func::makeIndexExpr(2)}, 4));
    spec.buffers.push_back(
            denseBuffer("SPAD_B", "B", 128 * 1024, dim, dim));
    return spec;
}

model::AreaBreakdown
gemminiAreaBreakdown(const model::AreaParams &params, bool stellar_generated,
                     int dim)
{
    model::AreaBreakdown breakdown;
    auto spec = gemminiLikeSpec(dim);
    auto generated = core::generate(spec);

    // Matmul array: 8-bit weight-stationary PEs with 48 pipeline bits
    // (8b activation + 32b partial sum + 8b weight), per Table III.
    double array = double(generated.array.numPes()) *
                   model::peArea(params, 8, 48, stellar_generated);
    breakdown.add("Matmul array", array);

    double srams = 0.0;
    for (const auto &buf : spec.buffers)
        srams += model::bufferArea(params, buf);
    breakdown.add("SRAMs", srams);

    double regfiles = 0.0;
    for (const auto &plan : generated.regfiles) {
        int width = plan.tensorName == "C" ? 32 : 8;
        regfiles += model::regfileArea(params, plan.config, width, 16);
    }
    if (!stellar_generated) {
        // The handwritten design only keeps small transpose/preload
        // registers (Table III: 25K).
        regfiles = 25000.0;
    }
    breakdown.add("Regfiles", regfiles);

    double unrollers;
    if (stellar_generated) {
        unrollers = 0.0;
        for (const auto &buf : spec.buffers)
            unrollers += model::bufferAddrGenArea(params, buf, dim);
    } else {
        unrollers = params.centralUnroller;
    }
    breakdown.add("Loop unrollers", unrollers);

    breakdown.add("Dma", model::dmaArea(params, 1, stellar_generated));
    breakdown.add("Host CPU", params.hostCpu);
    return breakdown;
}

} // namespace stellar::accel
