#include "accel/analytic.hpp"

#include <cstdlib>
#include <limits>
#include <numeric>

#include "util/logging.hpp"
#include "util/saturate.hpp"

namespace stellar::accel
{

namespace detail
{

std::int64_t
satDeterminant(const IntMatrix &m, bool *saturated)
{
    int n = m.rows();
    if (n == 0)
        return 1;
    if (n == 1)
        return m.at(0, 0);
    if (n == 2) {
        return util::satAdd(
                util::satMul(m.at(0, 0), m.at(1, 1), saturated),
                -util::satMul(m.at(0, 1), m.at(1, 0), saturated),
                saturated);
    }
    // General cofactor expansion along the first row. Matrices here are
    // tiny (the spec's index count), so the recursion depth is shallow;
    // only n >= 4 allocates, and only off the DSE hot path.
    std::int64_t det = 0;
    IntMatrix minor(n - 1, n - 1);
    for (int skip = 0; skip < n; skip++) {
        for (int r = 1; r < n; r++) {
            int mc = 0;
            for (int c = 0; c < n; c++) {
                if (c == skip)
                    continue;
                minor.at(r - 1, mc++) = m.at(r, c);
            }
        }
        std::int64_t term = util::satMul(
                m.at(0, skip), satDeterminant(minor, saturated), saturated);
        det = util::satAdd(det, (skip % 2 == 0) ? term : -term, saturated);
    }
    return det;
}

/**
 * The spatial rows of an invertible (d x d) transform form a rank d-1
 * map, so its rational kernel is one-dimensional and its integer points
 * are the multiples of a single primitive vector v. Two iteration
 * points fold onto the same PE exactly when they differ by a multiple
 * of v, which reduces every distinct-image count to box-overlap
 * arithmetic. v comes from the generalized cross product (signed
 * (d-1)-minors of the spatial rows), normalized by the gcd.
 */
bool
spatialKernelInto(const IntMatrix &m, IntVec &out, bool *saturated)
{
    int d = m.cols();
    int sd = m.rows() - 1;
    out.assign(std::size_t(d), 0);
    bool local_saturated = false;
    std::int64_t g = 0;
    for (int skip = 0; skip < d; skip++) {
        std::int64_t det = 0;
        if (sd == 1) {
            det = m.at(0, skip == 0 ? 1 : 0);
        } else if (sd == 2) {
            // The dominant DSE case (3-index specs): the 2x2 minor over
            // the two columns != skip, computed without allocating.
            int c0 = skip == 0 ? 1 : 0;
            int c1 = skip == 2 ? 1 : 2;
            det = util::satAdd(
                    util::satMul(m.at(0, c0), m.at(1, c1), &local_saturated),
                    -util::satMul(m.at(0, c1), m.at(1, c0),
                                  &local_saturated),
                    &local_saturated);
        } else {
            IntMatrix minor(sd, sd);
            for (int r = 0; r < sd; r++) {
                int mc = 0;
                for (int c = 0; c < d; c++) {
                    if (c == skip)
                        continue;
                    minor.at(r, mc++) = m.at(r, c);
                }
            }
            det = satDeterminant(minor, &local_saturated);
        }
        out[std::size_t(skip)] = (skip % 2 == 0) ? det : -det;
        g = std::gcd(g, std::llabs(det));
    }
    if (local_saturated && saturated != nullptr)
        *saturated = true;
    if (g <= 0) {
        // An invertible transform always has a rank d-1 spatial map, so
        // an all-zero minor vector can only be a saturation artifact
        // (clamped terms cancelling). Fall back to a deterministic unit
        // kernel so callers get *a* count — flagged as saturated, it
        // ranks after every honestly-counted candidate anyway.
        if (saturated != nullptr)
            *saturated = true;
        out.assign(std::size_t(d), 0);
        out[std::size_t(d - 1)] = 1;
        return false;
    }
    for (auto &component : out)
        component /= g;
    return true;
}

std::int64_t
distinctImages(const IntVec &spans, const IntVec &kernel, bool *saturated)
{
    std::int64_t total = 1;
    std::int64_t overlap = 1;
    for (std::size_t i = 0; i < spans.size(); i++) {
        std::int64_t span = spans[i];
        if (span <= 0)
            return 0;
        total = util::satMul(total, span, saturated);
        std::int64_t shifted = span - std::llabs(kernel[i]);
        overlap = shifted <= 0
                          ? 0
                          : util::satMul(overlap, shifted, saturated);
    }
    return total - overlap;
}

} // namespace detail

std::int64_t
AnalyticProbe::totalWires() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires)
        total += wire.instances;
    return total;
}

std::int64_t
AnalyticProbe::totalWireLength() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires)
        total += wire.instances * wire.wireLength;
    return total;
}

std::int64_t
analyticPeCount(const dataflow::SpaceTimeTransform &transform,
                const IntVec &bounds)
{
    require(transform.dims() == int(bounds.size()),
            "transform dimensionality must match the bounds");
    if (transform.spaceDims() == 0)
        return 1; // every point folds onto the single PE
    bool saturated = false;
    IntVec kernel;
    if (!detail::spatialKernelInto(transform.matrix(), kernel, &saturated))
        return std::numeric_limits<std::int64_t>::max();
    return detail::distinctImages(bounds, kernel, &saturated);
}

AnalyticProbe
analyticProbe(const dataflow::SpaceTimeTransform &transform,
              const IntVec &bounds, const core::IterationSpace &space)
{
    require(transform.dims() == space.numIndices(),
            "transform dimensionality must match the iteration space");
    require(int(bounds.size()) == space.numIndices(),
            "bounds must cover every iterator");

    AnalyticProbe probe;
    const auto &m = transform.matrix();
    int d = transform.dims();
    int sd = transform.spaceDims();

    // Extents and schedule length: a linear form over a box attains its
    // extremes at the corners, so per row the image range is the sum of
    // per-axis coefficient reaches.
    probe.extents.assign(std::size_t(sd), 0);
    for (int r = 0; r < d; r++) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        for (int c = 0; c < d; c++) {
            std::int64_t reach =
                    util::satMul(m.at(r, c), bounds[std::size_t(c)] - 1,
                                 &probe.saturated);
            if (reach < 0)
                lo = util::satAdd(lo, reach, &probe.saturated);
            else
                hi = util::satAdd(hi, reach, &probe.saturated);
        }
        std::int64_t span = util::satAdd(
                util::satAdd(hi, -lo, &probe.saturated), 1,
                &probe.saturated);
        if (r + 1 == d)
            probe.scheduleLength = span;
        else
            probe.extents[std::size_t(r)] = span;
    }

    if (sd == 0) {
        probe.pes = 1;
        return probe; // no spatial axes: one PE, no wires
    }

    IntVec kernel;
    detail::spatialKernelInto(m, kernel, &probe.saturated);
    probe.pes = detail::distinctImages(bounds, kernel, &probe.saturated);

    // Dense wire-instance counts: a wire instance exists for every
    // distinct spatial image of a source point, and the sources of a
    // conn class form the sub-box with per-axis span bound - |diff|
    // (the connInstances geometry), so the same kernel-overlap count
    // applies to the sub-box.
    for (const auto &conn : space.aliveConns()) {
        auto delta = transform.deltaOf(conn.diff);
        if (vecIsZero(delta.space))
            continue; // stationary under this transform: not a wire
        IntVec spans(std::size_t(d), 0);
        for (int c = 0; c < d; c++)
            spans[std::size_t(c)] = bounds[std::size_t(c)] -
                                    std::llabs(conn.diff[std::size_t(c)]);
        AnalyticWire wire;
        wire.tensor = conn.tensor;
        wire.spaceDelta = delta.space;
        wire.registers = delta.time;
        wire.wireLength = vecL1(delta.space);
        wire.instances =
                detail::distinctImages(spans, kernel, &probe.saturated);
        probe.wires.push_back(std::move(wire));
    }
    return probe;
}

} // namespace stellar::accel
