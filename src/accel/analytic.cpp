#include "accel/analytic.hpp"

#include <cstdlib>
#include <numeric>

#include "util/logging.hpp"
#include "util/saturate.hpp"

namespace stellar::accel
{

namespace
{

/**
 * Primitive generator of the integer kernel of the spatial submatrix.
 *
 * The spatial rows of an invertible (d x d) transform form a rank d-1
 * map, so its rational kernel is one-dimensional and its integer points
 * are the multiples of a single primitive vector v. Two iteration
 * points fold onto the same PE exactly when they differ by a multiple
 * of v, which reduces every distinct-image count below to box-overlap
 * arithmetic. v comes from the generalized cross product (signed
 * (d-1)-minors of the spatial rows), normalized by the gcd.
 */
IntVec
spatialKernel(const IntMatrix &m)
{
    int d = m.cols();
    int sd = m.rows() - 1;
    IntVec v(std::size_t(d), 0);
    std::int64_t g = 0;
    for (int skip = 0; skip < d; skip++) {
        IntMatrix minor(sd, sd);
        for (int r = 0; r < sd; r++) {
            int mc = 0;
            for (int c = 0; c < d; c++) {
                if (c == skip)
                    continue;
                minor.at(r, mc++) = m.at(r, c);
            }
        }
        std::int64_t det = minor.determinant();
        v[std::size_t(skip)] = (skip % 2 == 0) ? det : -det;
        g = std::gcd(g, std::llabs(det));
    }
    require(g > 0, "spatial submatrix of an invertible transform must "
                   "have a one-dimensional kernel");
    for (auto &component : v)
        component /= g;
    return v;
}

/**
 * Distinct spatial images of an axis-aligned box with the given
 * per-axis spans: |box| minus the overlap of the box with its translate
 * by the kernel vector (every point whose predecessor along the kernel
 * line is also inside the box is a duplicate image).
 */
std::int64_t
distinctImages(const IntVec &spans, const IntVec &kernel, bool *saturated)
{
    std::int64_t total = 1;
    std::int64_t overlap = 1;
    for (std::size_t i = 0; i < spans.size(); i++) {
        std::int64_t span = spans[i];
        if (span <= 0)
            return 0;
        total = util::satMul(total, span, saturated);
        std::int64_t shifted = span - std::llabs(kernel[i]);
        overlap = shifted <= 0
                          ? 0
                          : util::satMul(overlap, shifted, saturated);
    }
    return total - overlap;
}

} // namespace

std::int64_t
AnalyticProbe::totalWires() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires)
        total += wire.instances;
    return total;
}

std::int64_t
AnalyticProbe::totalWireLength() const
{
    std::int64_t total = 0;
    for (const auto &wire : wires)
        total += wire.instances * wire.wireLength;
    return total;
}

std::int64_t
analyticPeCount(const dataflow::SpaceTimeTransform &transform,
                const IntVec &bounds)
{
    require(transform.dims() == int(bounds.size()),
            "transform dimensionality must match the bounds");
    if (transform.spaceDims() == 0)
        return 1; // every point folds onto the single PE
    bool saturated = false;
    IntVec kernel = spatialKernel(transform.matrix());
    return distinctImages(bounds, kernel, &saturated);
}

AnalyticProbe
analyticProbe(const dataflow::SpaceTimeTransform &transform,
              const IntVec &bounds, const core::IterationSpace &space)
{
    require(transform.dims() == space.numIndices(),
            "transform dimensionality must match the iteration space");
    require(int(bounds.size()) == space.numIndices(),
            "bounds must cover every iterator");

    AnalyticProbe probe;
    const auto &m = transform.matrix();
    int d = transform.dims();
    int sd = transform.spaceDims();

    // Extents and schedule length: a linear form over a box attains its
    // extremes at the corners, so per row the image range is the sum of
    // per-axis coefficient reaches.
    probe.extents.assign(std::size_t(sd), 0);
    for (int r = 0; r < d; r++) {
        std::int64_t lo = 0;
        std::int64_t hi = 0;
        for (int c = 0; c < d; c++) {
            std::int64_t reach =
                    util::satMul(m.at(r, c), bounds[std::size_t(c)] - 1,
                                 &probe.saturated);
            if (reach < 0)
                lo = util::satAdd(lo, reach, &probe.saturated);
            else
                hi = util::satAdd(hi, reach, &probe.saturated);
        }
        std::int64_t span = util::satAdd(
                util::satAdd(hi, -lo, &probe.saturated), 1,
                &probe.saturated);
        if (r + 1 == d)
            probe.scheduleLength = span;
        else
            probe.extents[std::size_t(r)] = span;
    }

    if (sd == 0) {
        probe.pes = 1;
        return probe; // no spatial axes: one PE, no wires
    }

    IntVec kernel = spatialKernel(m);
    probe.pes = distinctImages(bounds, kernel, &probe.saturated);

    // Dense wire-instance counts: a wire instance exists for every
    // distinct spatial image of a source point, and the sources of a
    // conn class form the sub-box with per-axis span bound - |diff|
    // (the connInstances geometry), so the same kernel-overlap count
    // applies to the sub-box.
    for (const auto &conn : space.aliveConns()) {
        auto delta = transform.deltaOf(conn.diff);
        if (vecIsZero(delta.space))
            continue; // stationary under this transform: not a wire
        IntVec spans(std::size_t(d), 0);
        for (int c = 0; c < d; c++)
            spans[std::size_t(c)] = bounds[std::size_t(c)] -
                                    std::llabs(conn.diff[std::size_t(c)]);
        AnalyticWire wire;
        wire.tensor = conn.tensor;
        wire.spaceDelta = delta.space;
        wire.registers = delta.time;
        wire.wireLength = vecL1(delta.space);
        wire.instances = distinctImages(spans, kernel, &probe.saturated);
        probe.wires.push_back(std::move(wire));
    }
    return probe;
}

} // namespace stellar::accel
