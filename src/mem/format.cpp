#include "mem/format.hpp"

namespace stellar::mem
{

std::string
axisFormatName(AxisFormat format)
{
    switch (format) {
      case AxisFormat::Dense: return "Dense";
      case AxisFormat::Compressed: return "Compressed";
      case AxisFormat::Bitvector: return "Bitvector";
      case AxisFormat::LinkedList: return "LinkedList";
    }
    return "Unknown";
}

bool
FiberTreeFormat::isAllDense() const
{
    for (auto axis : axes)
        if (axis != AxisFormat::Dense)
            return false;
    return true;
}

int
FiberTreeFormat::compressedAxes() const
{
    int n = 0;
    for (auto axis : axes)
        if (axis != AxisFormat::Dense)
            n++;
    return n;
}

std::string
FiberTreeFormat::toString() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < axes.size(); i++) {
        if (i > 0)
            out += ", ";
        out += axisFormatName(axes[i]);
    }
    return out + "}";
}

FiberTreeFormat
denseFormat(int rank)
{
    FiberTreeFormat f;
    f.axes.assign(std::size_t(rank), AxisFormat::Dense);
    return f;
}

FiberTreeFormat
csrFormat()
{
    return FiberTreeFormat{{AxisFormat::Dense, AxisFormat::Compressed}};
}

FiberTreeFormat
cscFormat()
{
    return FiberTreeFormat{{AxisFormat::Dense, AxisFormat::Compressed}};
}

FiberTreeFormat
bitvectorFormat()
{
    return FiberTreeFormat{{AxisFormat::Dense, AxisFormat::Bitvector}};
}

FiberTreeFormat
linkedListFormat()
{
    return FiberTreeFormat{{AxisFormat::Dense, AxisFormat::LinkedList}};
}

FiberTreeFormat
blockCrsFormat()
{
    return FiberTreeFormat{{AxisFormat::Dense, AxisFormat::Compressed,
                            AxisFormat::Dense, AxisFormat::Dense}};
}

} // namespace stellar::mem
