/**
 * @file
 * Access orders (Fig 13).
 *
 * An AccessOrder records, per timestep, the multiset of tensor coordinates
 * produced by a memory buffer or consumed by a spatial array. The regfile
 * optimizer (Section IV-D) compares producer and consumer orders to decide
 * how aggressively a register file can be simplified.
 */

#ifndef STELLAR_MEM_ACCESS_ORDER_HPP
#define STELLAR_MEM_ACCESS_ORDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/buffer_spec.hpp"
#include "util/int_matrix.hpp"

namespace stellar::mem
{

/**
 * Per-timestep coordinate groups. Coordinates within one timestep are kept
 * sorted so two orders compare equal regardless of intra-cycle port
 * numbering.
 */
class AccessOrder
{
  public:
    /** Append the coordinate group of the next timestep. */
    void addStep(std::vector<IntVec> coords);

    std::size_t steps() const { return steps_.size(); }
    const std::vector<IntVec> &step(std::size_t t) const { return steps_[t]; }

    /** Largest number of coordinates in any single timestep. */
    std::size_t maxPerStep() const;

    /** Total coordinates across all steps. */
    std::size_t totalElements() const;

    bool operator==(const AccessOrder &other) const = default;

    /**
     * True when `other` contains the same per-step coordinate groups with
     * the two given coordinate axes swapped (a transposition, Fig 14d).
     */
    bool isTransposeOf(const AccessOrder &other, int axis_a,
                       int axis_b) const;

    /**
     * True when both orders enumerate the same coordinate multiset
     * (ignoring time), i.e. they are reorderings of the same tensor tile.
     */
    bool samePopulation(const AccessOrder &other) const;

    std::string toString() const;

  private:
    std::vector<std::vector<IntVec>> steps_;
};

/**
 * The order a buffer with fully-hardcoded 2-D read parameters emits
 * elements: row-major streams `per_cycle` elements per step; skewed emits
 * the anti-diagonal wavefront of Fig 13a.
 */
AccessOrder bufferEmitOrder(const MemBufferSpec &spec);

/** Row-major order over an arbitrary dense span set. */
AccessOrder rowMajorOrder(const IntVec &spans, int per_cycle);

/** Anti-diagonal wavefront order over a 2-D span (Fig 13a). */
AccessOrder skewedOrder(std::int64_t rows, std::int64_t cols);

} // namespace stellar::mem

#endif // STELLAR_MEM_ACCESS_ORDER_HPP
