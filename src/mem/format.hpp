/**
 * @file
 * Fibertree tensor formats (Section III-E).
 *
 * Private memory buffers declare a dense/sparse format *per axis* of the
 * tensors they hold, following the fibertree notation: CSR is
 * {Dense, Compressed}, a bitmask matrix is {Dense, Bitvector}, block-CRS
 * is {Dense, Compressed, Dense, Dense}, and so on.
 */

#ifndef STELLAR_MEM_FORMAT_HPP
#define STELLAR_MEM_FORMAT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace stellar::mem
{

/** Per-axis storage formats supported by Stellar memory buffers. */
enum class AxisFormat
{
    Dense,       //!< uncompressed; a simple address generator
    Compressed,  //!< coordinate + pointer arrays (CSR/CSC-style)
    Bitvector,   //!< presence bitmask + popcount-prefix offsets
    LinkedList,  //!< pointer-chased nodes (dynamic append)
};

std::string axisFormatName(AxisFormat format);

/** A fibertree format: one AxisFormat per tensor axis, outermost first. */
struct FiberTreeFormat
{
    std::vector<AxisFormat> axes;

    int rank() const { return int(axes.size()); }

    bool isAllDense() const;

    /** Number of axes that need metadata SRAM lookups. */
    int compressedAxes() const;

    std::string toString() const;

    bool operator==(const FiberTreeFormat &other) const = default;
};

/** Common formats, for convenience. */
FiberTreeFormat denseFormat(int rank);
FiberTreeFormat csrFormat();         //!< {Dense, Compressed}
FiberTreeFormat cscFormat();         //!< {Dense, Compressed} over columns
FiberTreeFormat bitvectorFormat();   //!< {Dense, Bitvector}
FiberTreeFormat linkedListFormat();  //!< {Dense, LinkedList}
FiberTreeFormat blockCrsFormat();    //!< {Dense, Compressed, Dense, Dense}

} // namespace stellar::mem

#endif // STELLAR_MEM_FORMAT_HPP
