#include "mem/access_order.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hpp"

namespace stellar::mem
{

void
AccessOrder::addStep(std::vector<IntVec> coords)
{
    std::sort(coords.begin(), coords.end());
    steps_.push_back(std::move(coords));
}

std::size_t
AccessOrder::maxPerStep() const
{
    std::size_t max = 0;
    for (const auto &step : steps_)
        max = std::max(max, step.size());
    return max;
}

std::size_t
AccessOrder::totalElements() const
{
    std::size_t total = 0;
    for (const auto &step : steps_)
        total += step.size();
    return total;
}

bool
AccessOrder::isTransposeOf(const AccessOrder &other, int axis_a,
                           int axis_b) const
{
    if (steps_.size() != other.steps_.size())
        return false;
    for (std::size_t t = 0; t < steps_.size(); t++) {
        std::vector<IntVec> swapped = other.steps_[t];
        for (auto &coord : swapped) {
            if (axis_a >= int(coord.size()) || axis_b >= int(coord.size()))
                return false;
            std::swap(coord[std::size_t(axis_a)], coord[std::size_t(axis_b)]);
        }
        std::sort(swapped.begin(), swapped.end());
        if (swapped != steps_[t])
            return false;
    }
    return true;
}

bool
AccessOrder::samePopulation(const AccessOrder &other) const
{
    std::map<IntVec, std::int64_t> counts;
    for (const auto &step : steps_)
        for (const auto &coord : step)
            counts[coord]++;
    for (const auto &step : other.steps_)
        for (const auto &coord : step)
            if (--counts[coord] < 0)
                return false;
    for (const auto &[coord, count] : counts)
        if (count != 0)
            return false;
    return true;
}

std::string
AccessOrder::toString() const
{
    std::ostringstream os;
    for (std::size_t t = 0; t < steps_.size(); t++) {
        os << "t=" << t << ":";
        for (const auto &coord : steps_[t])
            os << " " << vecToString(coord);
        os << "\n";
    }
    return os.str();
}

AccessOrder
bufferEmitOrder(const MemBufferSpec &spec)
{
    const auto &hard = spec.hardcodedRead;
    require(hard.fullySpecified(spec.format.rank()),
            "bufferEmitOrder requires fully hardcoded read spans");
    IntVec spans;
    for (const auto &span : hard.spans)
        spans.push_back(span.value());
    if (spec.emitOrder == EmitOrder::Skewed) {
        require(spans.size() == 2, "skewed emit order is 2-D only");
        return skewedOrder(spans[0], spans[1]);
    }
    return rowMajorOrder(spans, spec.readPorts);
}

AccessOrder
rowMajorOrder(const IntVec &spans, int per_cycle)
{
    require(per_cycle > 0, "rowMajorOrder needs a positive rate");
    AccessOrder order;
    IntVec coord(spans.size(), 0);
    bool done = spans.empty();
    for (auto span : spans)
        if (span <= 0)
            done = true;
    std::vector<IntVec> step;
    while (!done) {
        step.push_back(coord);
        if (int(step.size()) == per_cycle) {
            order.addStep(std::move(step));
            step.clear();
        }
        // Row-major increment: innermost axis fastest.
        int axis = int(spans.size()) - 1;
        while (axis >= 0) {
            if (++coord[std::size_t(axis)] < spans[std::size_t(axis)])
                break;
            coord[std::size_t(axis)] = 0;
            axis--;
        }
        if (axis < 0)
            done = true;
    }
    if (!step.empty())
        order.addStep(std::move(step));
    return order;
}

AccessOrder
skewedOrder(std::int64_t rows, std::int64_t cols)
{
    AccessOrder order;
    for (std::int64_t diag = 0; diag < rows + cols - 1; diag++) {
        std::vector<IntVec> step;
        for (std::int64_t r = 0; r < rows; r++) {
            std::int64_t c = diag - r;
            if (c >= 0 && c < cols)
                step.push_back({r, c});
        }
        order.addStep(std::move(step));
    }
    return order;
}

} // namespace stellar::mem
