#include "mem/buffer_spec.hpp"

namespace stellar::mem
{

std::vector<PipelineStage>
planPipeline(const MemBufferSpec &spec, bool for_reads)
{
    const HardcodedRequest &hard =
            for_reads ? spec.hardcodedRead : spec.hardcodedWrite;
    std::vector<PipelineStage> stages;
    for (int axis = 0; axis < spec.format.rank(); axis++) {
        PipelineStage stage;
        stage.axis = axis;
        stage.format = spec.format.axes[std::size_t(axis)];
        bool hardcoded = int(hard.spans.size()) > axis &&
                         hard.spans[std::size_t(axis)].has_value();
        switch (stage.format) {
          case AxisFormat::Dense:
            stage.latency = 1;
            stage.simplifiedAddressGen = hardcoded;
            break;
          case AxisFormat::Compressed:
            // One cycle for the pointer (row-id) lookup plus one for the
            // coordinate lookup.
            stage.latency = 2;
            stage.metadataLookup = true;
            stage.metadataSrams = {spec.name + "_axis" +
                                           std::to_string(axis) + "_rowids",
                                   spec.name + "_axis" +
                                           std::to_string(axis) + "_coords"};
            break;
          case AxisFormat::Bitvector:
            // Bitmask fetch plus popcount-prefix offset computation.
            stage.latency = 2;
            stage.metadataLookup = true;
            stage.metadataSrams = {spec.name + "_axis" +
                                   std::to_string(axis) + "_bitmask"};
            break;
          case AxisFormat::LinkedList:
            // Head-pointer fetch plus per-node chase; the steady-state
            // pipeline cost per request is the node fetch.
            stage.latency = 2;
            stage.metadataLookup = true;
            stage.metadataSrams = {spec.name + "_axis" +
                                   std::to_string(axis) + "_next_ptrs"};
            break;
        }
        stages.push_back(std::move(stage));
    }
    return stages;
}

int
pipelineLatency(const std::vector<PipelineStage> &stages)
{
    int total = 0;
    for (const auto &stage : stages)
        total += stage.latency;
    return total;
}

} // namespace stellar::mem
