/**
 * @file
 * Private-memory-buffer specifications and pipeline planning
 * (Sections III-E and IV-C).
 *
 * Users declare the format, capacity, and bandwidth of each buffer, and
 * may *hardcode* read/write request parameters (Listing 6). Hardcoding
 * lets the compiler simplify address generators and — more importantly —
 * lets the regfile optimizer (src/core/regfile_opt) know the exact order
 * in which elements leave the buffer (Fig 13a).
 */

#ifndef STELLAR_MEM_BUFFER_SPEC_HPP
#define STELLAR_MEM_BUFFER_SPEC_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/format.hpp"

namespace stellar::mem
{

/**
 * Hardcoded request parameters for one request direction (read or write).
 * Unset entries remain runtime-programmable via the ISA.
 */
struct HardcodedRequest
{
    std::vector<std::optional<std::int64_t>> spans;
    std::vector<std::optional<std::int64_t>> dataStrides;

    bool
    fullySpecified(int rank) const
    {
        if (int(spans.size()) < rank)
            return false;
        for (int axis = 0; axis < rank; axis++)
            if (!spans[std::size_t(axis)].has_value())
                return false;
        return true;
    }
};

/** The order in which a buffer emits elements of a hardcoded request. */
enum class EmitOrder
{
    RowMajor,  //!< innermost axis fastest
    Skewed,    //!< wavefront order (Fig 13a), for skewed systolic feeds
};

/** A private memory buffer (scratchpad) specification. */
struct MemBufferSpec
{
    std::string name;

    /** Name of the functional-spec tensor this buffer feeds/drains. */
    std::string boundTensor;

    FiberTreeFormat format;
    std::int64_t capacityBytes = 0;
    int elemBits = 32;
    int readPorts = 1;
    int writePorts = 1;
    int banks = 1;
    EmitOrder emitOrder = EmitOrder::RowMajor;
    HardcodedRequest hardcodedRead;
    HardcodedRequest hardcodedWrite;
};

/** One read/write pipeline stage of a generated buffer (Fig 12). */
struct PipelineStage
{
    int axis = 0;
    AxisFormat format = AxisFormat::Dense;

    /** Cycles a request spends in this stage. */
    int latency = 1;

    /** Whether this stage performs indirect metadata SRAM lookups. */
    bool metadataLookup = false;

    /** Names of the metadata SRAMs this stage reads (e.g. row ids). */
    std::vector<std::string> metadataSrams;

    /** Whether hardcoding removed the runtime span/stride registers. */
    bool simplifiedAddressGen = false;
};

/**
 * Plan the per-axis read/write pipeline of a buffer: one stage per axis,
 * outermost first, with metadata lookups for non-dense axes (Fig 12).
 */
std::vector<PipelineStage> planPipeline(const MemBufferSpec &spec,
                                        bool for_reads);

/** Total request latency through the planned pipeline. */
int pipelineLatency(const std::vector<PipelineStage> &stages);

} // namespace stellar::mem

#endif // STELLAR_MEM_BUFFER_SPEC_HPP
