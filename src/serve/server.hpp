/**
 * @file
 * The stellar_serve daemon: a fault-isolated DSE/sim service.
 *
 * A long-lived process answering concurrent sim/dse requests on a
 * local socket, batching work onto util::ThreadPool and keeping
 * workloads::Cache plus the cross-call DesignPointMemo warm, with
 * snapshot/warm-start so restarts don't re-pay synthesis.
 *
 * Robustness contract (what the hostile-request soak pins):
 *  - *isolation*: every request runs under its own WatchdogScope and
 *    catch-all; any failure is classified via util::classifyException
 *    into a structured `error` response. No request input — malformed,
 *    oversized, budget-exhausting, or cache-poisoning — kills the
 *    daemon, and no failure ever classifies as Unknown.
 *  - *admission control*: at most workers + maxQueueDepth requests are
 *    in flight; beyond that, connections are shed immediately with an
 *    `overloaded` response and a retry-after hint, so latency stays
 *    bounded instead of queues growing without limit.
 *  - *graceful degradation*: a transient wall-clock timeout is retried
 *    once (the DseOptions::retryWallClockTimeout semantics lifted to
 *    the request level); budgets are clamped to server-wide caps.
 *  - *graceful drain*: on SIGTERM (via drainPoll) or a `shutdown`
 *    request, in-flight requests finish, queued ones get
 *    `shutting_down`, the memo is snapshotted, and serve() returns.
 */

#ifndef STELLAR_SERVE_SERVER_HPP
#define STELLAR_SERVE_SERVER_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "accel/dse.hpp"
#include "serve/protocol.hpp"

namespace stellar::util
{
class LocalSocket;
}

namespace stellar::serve
{

/** Daemon configuration. */
struct ServeOptions
{
    /** Filesystem path of the AF_UNIX listening socket. */
    std::string socketPath;

    /** Worker threads executing requests. */
    std::size_t workers = 2;

    /** Requests allowed to queue beyond the workers; one more and the
     *  connection is shed with `overloaded`. */
    std::size_t maxQueueDepth = 16;

    /**
     * Server-wide watchdog caps. When nonzero, a request's budget is
     * clamped: asking for 0 (unlimited) or more than the cap runs
     * under the cap instead. 0 = requests budget themselves.
     */
    std::int64_t maxStepBudget = 0;
    std::int64_t maxTimeBudgetMillis = 0;

    /** Retry a request whose execution died on a *wall-clock* timeout
     *  exactly once (deterministic step-budget expiry never retries). */
    bool retryWallClock = true;

    /** Memo snapshot file: loaded on serve() start (corrupt files are
     *  rejected and logged, the daemon starts cold), written on
     *  graceful drain. Empty = no persistence. */
    std::string snapshotPath;

    /** Backoff hint carried in `overloaded` responses. */
    std::int64_t retryAfterMillis = 50;

    /** Receive/send timeout per connection; a slow-loris peer costs a
     *  worker at most this long. */
    int ioTimeoutMillis = 2000;

    /** Wire-format validation caps (size, dim, threads, topk). */
    RequestLimits limits;

    /** Polled between accepts; returning true starts a drain (the
     *  SIGTERM hook — signal handlers set a flag, this reads it). */
    std::function<bool()> drainPoll;
};

/** Operational counters (the `stats` endpoint payload). */
struct ServeStats
{
    std::uint64_t accepted = 0;  //!< connections accepted
    std::uint64_t completed = 0; //!< requests answered `ok`
    std::uint64_t errors = 0;    //!< requests answered `error`
    std::uint64_t shed = 0;      //!< connections shed `overloaded`
    std::uint64_t drained = 0;   //!< answered `shutting_down`
    std::uint64_t writeFailures = 0; //!< peers gone before the reply

    std::uint64_t simRequests = 0;
    std::uint64_t dseRequests = 0;
    std::uint64_t statsRequests = 0;

    /** errors, broken down by util::FailureKind. */
    std::array<std::uint64_t, util::kFailureKindCount> errorsByKind{};

    /** Request-level wall-clock retries (ServeOptions::retryWallClock). */
    std::uint64_t retried = 0;
    std::uint64_t retrySucceeded = 0;

    /** DseStats totals accumulated across every dse request. */
    std::uint64_t dseEnumerated = 0;
    std::uint64_t dseEvaluated = 0;
    std::uint64_t dseFailed = 0;
    std::uint64_t dseCandidateRetries = 0;
    std::uint64_t dseOrbitSkipped = 0;
};

class Server
{
  public:
    explicit Server(ServeOptions options = {});

    /**
     * Parse, execute, and serialize one request — the whole lifecycle
     * minus the socket. Never throws: every failure becomes a
     * classified `error` response; after a drain begins, non-stats
     * requests get `shutting_down`. Exposed directly so tests and the
     * request-domain fuzzer can hammer it in-process.
     */
    std::string handleRequestText(const std::string &text);

    /**
     * Run the daemon: listen on socketPath, warm-start the memo, and
     * serve until drained. Returns 0 after a graceful drain; throws
     * FatalError only for startup failures (unusable socket path).
     */
    int serve();

    /** Begin a graceful drain (thread-safe, idempotent). */
    void requestDrain() { draining_.store(true); }
    bool draining() const { return draining_.load(); }

    ServeStats stats() const;

    /** The stats endpoint body: serve counters + design-memo and
     *  workload-cache counters as one JSON document. */
    std::string statsJson() const;

    accel::DesignPointMemo &memo() { return memo_; }
    const ServeOptions &options() const { return options_; }

  private:
    Response execute(const Request &request);
    Response executeOnce(const Request &request);
    void handleConnection(util::LocalSocket &conn);
    void bumpError(const util::Failure &failure);

    ServeOptions options_;
    accel::DesignPointMemo memo_;
    std::atomic<bool> draining_{false};

    mutable std::mutex statsMutex_;
    ServeStats stats_;
};

} // namespace stellar::serve

#endif // STELLAR_SERVE_SERVER_HPP
