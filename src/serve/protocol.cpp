#include "serve/protocol.hpp"

#include "util/json.hpp"
#include "util/logging.hpp"

namespace stellar::serve
{

namespace
{

namespace json = util::json;

[[noreturn]] void
fail(const std::string &what, std::size_t offset)
{
    throw FatalError("serve request: " + what + " at byte " +
                     std::to_string(offset));
}

std::int64_t
intField(const json::Value &value, const std::string &key,
         std::int64_t min, std::int64_t max)
{
    std::int64_t v = json::toInt64(value, "serve request: '" + key + "'");
    if (v < min || v > max)
        fail("'" + key + "' must be in [" + std::to_string(min) + ", " +
                     std::to_string(max) + "] (got " + std::to_string(v) +
                     ")",
             value.offset);
    return v;
}

bool
boolField(const json::Value &value, const std::string &key)
{
    if (!value.isBool())
        fail("'" + key + "' must be true or false", value.offset);
    return value.boolean;
}

std::string
stringField(const json::Value &value, const std::string &key)
{
    if (!value.isString())
        fail("'" + key + "' must be a string", value.offset);
    return value.string;
}

constexpr std::int64_t kMaxBudget = 1ll << 62;

} // namespace

Request
parseRequest(const std::string &text, const RequestLimits &limits)
{
    json::ParseLimits parse_limits;
    parse_limits.maxBytes = limits.maxBytes;
    json::Value root = json::parse(text, "serve request", parse_limits);
    if (!root.isObject())
        fail("request must be an object", root.offset);
    const json::Value *command = root.find("command");
    if (command == nullptr)
        fail("request must carry 'command'", root.offset);
    std::string name = stringField(*command, "command");

    Request request;
    if (name == "sim")
        request.command = Command::Sim;
    else if (name == "dse")
        request.command = Command::Dse;
    else if (name == "stats")
        request.command = Command::Stats;
    else if (name == "shutdown")
        request.command = Command::Shutdown;
    else
        fail("unknown command '" + name + "'", command->offset);

    for (const auto &[key, field] : root.object) {
        if (key == "command")
            continue;
        if (request.command == Command::Sim) {
            if (key == "workload") {
                request.sim.workload = stringField(field, key);
                continue;
            }
            if (key == "threads") {
                request.sim.threads = std::size_t(intField(
                        field, key, 0,
                        std::int64_t(limits.maxThreads)));
                continue;
            }
            if (key == "step_budget") {
                request.sim.stepBudget =
                        intField(field, key, 0, kMaxBudget);
                continue;
            }
            if (key == "time_budget_ms") {
                request.sim.timeBudgetMillis =
                        intField(field, key, 0, kMaxBudget);
                continue;
            }
        } else if (request.command == Command::Dse) {
            if (key == "dim") {
                request.dse.dim = int(intField(field, key, 1,
                                               limits.maxDim));
                continue;
            }
            if (key == "threads") {
                request.dse.threads = std::size_t(intField(
                        field, key, 0,
                        std::int64_t(limits.maxThreads)));
                continue;
            }
            if (key == "topk") {
                request.dse.topK = std::size_t(intField(
                        field, key, 1, std::int64_t(limits.maxTopK)));
                continue;
            }
            if (key == "max_pes") {
                request.dse.maxPes = intField(field, key, 0, kMaxBudget);
                continue;
            }
            if (key == "prepass") {
                request.dse.prepass = std::size_t(
                        intField(field, key, 0, kMaxBudget));
                continue;
            }
            if (key == "analytic_top_k") {
                request.dse.analyticTopK = std::size_t(intField(
                        field, key, 0,
                        std::int64_t(limits.maxAnalyticTopK)));
                continue;
            }
            if (key == "max_hop") {
                request.dse.maxHop = int(intField(
                        field, key, 1, std::int64_t(limits.maxHop)));
                continue;
            }
            if (key == "max_coeff") {
                request.dse.maxCoeff = int(intField(
                        field, key, 1, std::int64_t(limits.maxCoeff)));
                continue;
            }
            if (key == "enum_limit") {
                request.dse.enumLimit = std::size_t(intField(
                        field, key, 1,
                        std::int64_t(limits.maxEnumerated)));
                continue;
            }
            if (key == "step_budget") {
                request.dse.stepBudget =
                        intField(field, key, 0, kMaxBudget);
                continue;
            }
            if (key == "time_budget_ms") {
                request.dse.timeBudgetMillis =
                        intField(field, key, 0, kMaxBudget);
                continue;
            }
            if (key == "retry_wall_clock") {
                request.dse.retryWallClock = boolField(field, key);
                continue;
            }
            if (key == "fail_fast") {
                request.dse.failFast = boolField(field, key);
                continue;
            }
            if (key == "timings") {
                request.dse.timings = boolField(field, key);
                continue;
            }
            if (key == "stream") {
                request.dse.stream = boolField(field, key);
                continue;
            }
        }
        // Unknown fields are rejected, never ignored: a typo like
        // "step_budgets" silently dropped would run with no budget.
        fail("unknown field '" + key + "' for command '" + name + "'",
             field.offset);
    }

    // Admission on the coefficient-code space a dse request would scan:
    // the matmul spec has 3 iterators, so the scan walks
    // (2*max_coeff+1)^9 codes. Reject oversized spaces at parse time
    // instead of letting a worker discover the cap mid-request.
    if (request.command == Command::Dse) {
        std::int64_t range = 2 * std::int64_t(request.dse.maxCoeff) + 1;
        std::int64_t codes = 1;
        for (int c = 0; c < 9; c++) {
            if (codes > limits.maxScanCodes / range) {
                codes = limits.maxScanCodes + 1;
                break;
            }
            codes *= range;
        }
        if (codes > limits.maxScanCodes)
            fail("'max_coeff' of " +
                         std::to_string(request.dse.maxCoeff) +
                         " scans more than " +
                         std::to_string(limits.maxScanCodes) +
                         " coefficient codes",
                 root.offset);
    }
    return request;
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok: return "ok";
      case Status::Error: return "error";
      case Status::Overloaded: return "overloaded";
      case Status::ShuttingDown: return "shutting_down";
    }
    return "error";
}

std::string
serializeResponse(const Response &response)
{
    std::string out = "{\"status\":";
    out += json::quote(statusName(response.status));
    switch (response.status) {
      case Status::Ok:
        out += ",\"exit_code\":" + std::to_string(response.exitCode);
        out += ",\"output\":" + json::quote(response.output);
        break;
      case Status::Error:
        out += ",\"failure\":{\"kind\":";
        out += json::quote(util::failureKindName(response.failure.kind));
        out += ",\"stage\":" + json::quote(response.failure.stage);
        out += ",\"candidate\":" + json::quote(response.failure.candidate);
        out += ",\"message\":" + json::quote(response.failure.message);
        out += "}";
        break;
      case Status::Overloaded:
        out += ",\"retry_after_ms\":" +
               std::to_string(response.retryAfterMillis);
        break;
      case Status::ShuttingDown:
        break;
    }
    out += "}";
    return out;
}

Response
parseResponse(const std::string &text)
{
    json::Value root = json::parse(text, "serve response");
    if (!root.isObject())
        fail("response must be an object", root.offset);
    const json::Value *status = root.find("status");
    if (status == nullptr || !status->isString())
        fail("response must carry a string 'status'", root.offset);

    Response response;
    if (status->string == "ok")
        response.status = Status::Ok;
    else if (status->string == "error")
        response.status = Status::Error;
    else if (status->string == "overloaded")
        response.status = Status::Overloaded;
    else if (status->string == "shutting_down")
        response.status = Status::ShuttingDown;
    else
        fail("unknown status '" + status->string + "'", status->offset);

    if (response.status == Status::Ok) {
        if (const json::Value *code = root.find("exit_code"))
            response.exitCode =
                    int(json::toInt64(*code, "serve response: exit_code"));
        if (const json::Value *output = root.find("output")) {
            if (!output->isString())
                fail("'output' must be a string", output->offset);
            response.output = output->string;
        }
    }
    if (response.status == Status::Overloaded) {
        if (const json::Value *retry = root.find("retry_after_ms"))
            response.retryAfterMillis = json::toInt64(
                    *retry, "serve response: retry_after_ms");
    }
    if (response.status == Status::Error) {
        const json::Value *failure = root.find("failure");
        if (failure == nullptr || !failure->isObject())
            fail("error response must carry a 'failure' object",
                 root.offset);
        const json::Value *kind = failure->find("kind");
        if (kind == nullptr || !kind->isString())
            fail("failure must carry a string 'kind'", failure->offset);
        bool known = false;
        for (std::size_t k = 0; k < util::kFailureKindCount; k++) {
            if (kind->string ==
                util::failureKindName(util::FailureKind(k))) {
                response.failure.kind = util::FailureKind(k);
                known = true;
                break;
            }
        }
        if (!known)
            fail("unknown failure kind '" + kind->string + "'",
                 kind->offset);
        if (const json::Value *stage = failure->find("stage"))
            response.failure.stage = stringField(*stage, "stage");
        if (const json::Value *candidate = failure->find("candidate"))
            response.failure.candidate =
                    stringField(*candidate, "candidate");
        if (const json::Value *message = failure->find("message"))
            response.failure.message = stringField(*message, "message");
    }
    return response;
}

} // namespace stellar::serve
