#include "serve/commands.hpp"

#include <cstdarg>
#include <cstdio>
#include <optional>

#include "accel/report.hpp"
#include "func/library.hpp"
#include "sim/outerspace.hpp"
#include "sim/run_many.hpp"
#include "sim/scnn.hpp"
#include "sparse/suitesparse.hpp"
#include "util/logging.hpp"
#include "util/watchdog.hpp"
#include "workloads/cache.hpp"

namespace stellar::serve
{

namespace
{

/** printf into a growing string — keeps the table formats below
 *  character-identical to the printf calls they moved out of. */
void
appendf(std::string &out, const char *format, ...)
{
    va_list args;
    va_start(args, format);
    char buffer[512];
    int wrote = std::vsnprintf(buffer, sizeof(buffer), format, args);
    va_end(args);
    if (wrote > 0)
        out.append(buffer, std::size_t(wrote) < sizeof(buffer)
                                   ? std::size_t(wrote)
                                   : sizeof(buffer) - 1);
}

/** The ranked-candidate table shared by renderDse and renderMerge —
 *  one renderer, so shard/merge byte-identity is structural. */
std::string
candidateTable(const std::vector<accel::DseCandidate> &candidates)
{
    std::string out;
    appendf(out, "rank  PEs     steps   score      transform (rows)\n");
    int rank = 1;
    for (const auto &candidate : candidates) {
        std::string rows;
        const auto &m = candidate.transform.matrix();
        for (int r = 0; r < m.rows(); r++)
            rows += vecToString(m.row(r)) + (r + 1 < m.rows() ? " " : "");
        appendf(out, "%-5d %-7lld %-7lld %-10.4g %s\n", rank++,
                (long long)candidate.pes,
                (long long)candidate.scheduleLength, candidate.score,
                rows.c_str());
    }
    return out;
}

} // namespace

RenderResult
renderSim(const SimRequest &request)
{
    // The scope is cloned per workload point by sim::runMany, so both
    // budgets bound each point independently at every thread count.
    std::optional<util::WatchdogScope> scope;
    if (request.stepBudget > 0 || request.timeBudgetMillis > 0)
        scope.emplace("cli.sim", request.stepBudget,
                      request.timeBudgetMillis);

    RenderResult result;
    if (request.workload == "scnn") {
        sim::ScnnConfig handwritten;
        sim::ScnnConfig generated;
        generated.stellarGenerated = true;
        const auto layers_ptr = workloads::cachedAlexnetLayers();
        const auto &layers = *layers_ptr;
        struct Point
        {
            sim::ScnnResult hand, gen;
        };
        auto points = sim::runMany(
                layers.size(), request.threads, [&](std::size_t i) {
                    Point point;
                    point.hand = sim::simulateScnnLayer(handwritten,
                                                        layers[i], 1);
                    point.gen = sim::simulateScnnLayer(generated,
                                                       layers[i], 1);
                    return point;
                });
        appendf(result.output,
                "layer    handwritten  stellar-gen  relative\n");
        for (std::size_t i = 0; i < layers.size(); i++) {
            double hand = points[i].hand.utilization;
            double gen = points[i].gen.utilization;
            appendf(result.output, "%-8s %10.1f%% %11.1f%% %8.1f%%\n",
                    layers[i].name, 100.0 * hand, 100.0 * gen,
                    100.0 * gen / hand);
        }
        return result;
    }
    if (request.workload == "outerspace") {
        sim::OuterSpaceConfig config;
        config.dma = sim::DmaConfig::withRate(16);
        const auto &profiles = sparse::outerSpaceSuite();
        struct Point
        {
            std::int64_t nnz = 0;
            sim::OuterSpaceResult result;
        };
        auto points = sim::runMany(
                profiles.size(), request.threads, [&](std::size_t i) {
                    auto matrix = workloads::cachedSuiteSparse(
                            sparse::scaleProfile(profiles[i], 60000), 1);
                    Point point;
                    point.nnz = matrix->nnz();
                    point.result =
                            sim::simulateOuterSpace(config, *matrix);
                    return point;
                });
        appendf(result.output,
                "matrix           nnz      cycles       GF/s@1.5GHz\n");
        for (std::size_t i = 0; i < profiles.size(); i++) {
            const auto &point = points[i];
            appendf(result.output, "%-14s %7lld %11lld %10.2f\n",
                    profiles[i].name.c_str(), (long long)point.nnz,
                    (long long)point.result.cycles,
                    point.result.gflops(1.5));
        }
        return result;
    }
    throw FatalError("unknown sim workload '" + request.workload +
                     "' (scnn | outerspace)");
}

accel::DseOptions
dseOptionsFor(const DseRequest &request, accel::DesignPointMemo *memo)
{
    accel::DseOptions options;
    options.threads = request.threads;
    options.topK = request.topK;
    options.maxPes = request.maxPes;
    options.analyticPrepass = request.prepass;
    options.analyticTopK = request.analyticTopK;
    options.streamEnumeration = request.stream;
    options.enumerate.maxHopLength = request.maxHop;
    options.enumerate.minCoeff = -request.maxCoeff;
    options.enumerate.maxCoeff = request.maxCoeff;
    options.enumerate.limit = request.enumLimit;
    options.stepBudget = request.stepBudget;
    options.timeBudgetMillis = request.timeBudgetMillis;
    options.retryWallClockTimeout = request.retryWallClock;
    options.isolateFailures = !request.failFast;
    if (memo != nullptr) {
        options.memo = memo;
        // The spec side of the key: the matmul spec and the default
        // area/timing params are fixed per dim here, so the dim is the
        // whole spec identity (bounds/widths are folded in by
        // candidateKey itself).
        options.memoSpecKey = "matmul:dim=" + std::to_string(request.dim);
    }
    return options;
}

RenderResult
renderDse(const DseRequest &request, accel::DesignPointMemo *memo)
{
    accel::DseOptions options = dseOptionsFor(request, memo);
    model::AreaParams area_params;
    model::TimingParams timing_params;
    RenderResult result;
    int dim = request.dim;
    auto candidates = accel::exploreDataflows(
            func::matmulSpec(), {dim, dim, dim}, options, area_params,
            timing_params, &result.dseStats);
    result.output += candidateTable(candidates);
    result.output += accel::dseStatsReport(result.dseStats,
                                           request.timings);
    result.exitCode = candidates.empty() ? 1 : 0;
    return result;
}

RenderResult
renderShardScan(const ShardScanRequest &request)
{
    if (request.shardCount < 1)
        throw FatalError("--shard: shard count must be >= 1");
    if (request.shardIndex < 0 || request.shardIndex >= request.shardCount)
        throw FatalError("--shard: shard index must be in [0, count)");
    if (request.outPath.empty())
        throw FatalError("--shard requires --emit-records FILE");
    if (request.dse.analyticTopK == 0)
        throw FatalError("--shard requires --analytic-top-k >= 1 "
                         "(shard scans are analytic-tier scans)");
    if (!request.dse.stream)
        throw FatalError("--shard requires the streamed enumeration "
                         "(drop --no-stream)");
    if (request.dse.prepass != 0)
        throw FatalError("--shard is incompatible with --prepass "
                         "(the analytic tier subsumes it)");

    accel::ShardConfig config;
    config.dim = request.dse.dim;
    config.maxHop = request.dse.maxHop;
    config.maxCoeff = request.dse.maxCoeff;
    config.topK = std::int64_t(request.dse.topK);
    config.analyticTopK = std::int64_t(request.dse.analyticTopK);
    config.enumLimit = std::int64_t(request.dse.enumLimit);
    config.maxPes = request.dse.maxPes;

    model::AreaParams area_params;
    model::TimingParams timing_params;
    int dim = request.dse.dim;
    auto shard = accel::scanShard(func::matmulSpec(), {dim, dim, dim},
                                  config, request.shardIndex,
                                  request.shardCount, request.dse.threads,
                                  area_params, timing_params);
    accel::saveShardRecordsFile(shard, request.outPath);

    RenderResult result;
    appendf(result.output,
            "shard %lld/%lld: codes [%lld, %lld) of %lld, "
            "%lld records -> %s\n",
            (long long)shard.range.shardIndex,
            (long long)shard.range.shardCount, (long long)shard.range.lo,
            (long long)shard.range.hi, (long long)shard.range.codesTotal,
            (long long)shard.records.size(), request.outPath.c_str());
    return result;
}

RenderResult
renderMerge(const MergeRequest &request)
{
    if (request.inputs.empty())
        throw FatalError("merge: no shard records files given");

    std::vector<accel::ShardRecords> shards;
    shards.reserve(request.inputs.size());
    for (const auto &path : request.inputs)
        shards.push_back(accel::loadShardRecordsFile(path));

    accel::MergeEvalOptions eval;
    eval.threads = request.threads;
    eval.stepBudget = request.stepBudget;
    eval.timeBudgetMillis = request.timeBudgetMillis;
    eval.retryWallClockTimeout = request.retryWallClock;
    eval.isolateFailures = !request.failFast;

    model::AreaParams area_params;
    model::TimingParams timing_params;
    int dim = int(shards.front().config.dim);
    RenderResult result;
    auto candidates = accel::mergeShardRecords(
            std::move(shards), func::matmulSpec(), {dim, dim, dim}, eval,
            area_params, timing_params, &result.dseStats);
    result.output += candidateTable(candidates);
    result.output += accel::dseStatsReport(result.dseStats,
                                           request.timings);
    result.exitCode = candidates.empty() ? 1 : 0;
    return result;
}

} // namespace stellar::serve
