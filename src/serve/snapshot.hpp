/**
 * @file
 * Versioned on-disk snapshots of the design-point memo.
 *
 * A daemon restart should not re-pay elaboration for every design point
 * it had already scored, so the memo is serialized to a JSON file on
 * graceful shutdown and re-loaded on start. The file is *untrusted
 * input* — it sat on disk where anything may have scribbled on it — so
 * the loader never trusts warm-start bytes: the format carries a
 * version, a magic kind string, and an FNV-1a checksum over the entry
 * payload, and every mismatch (or a transform matrix that no longer
 * inverts) raises a classified FatalError. The server catches it,
 * logs, and starts cold; a corrupt snapshot can cost warmth, never
 * correctness and never the process.
 *
 * Format (version 1):
 *   {"version":1,"kind":"stellar-design-memo","checksum":"<fnv1a hex>",
 *    "entries":[{"key":"...","candidate":{"name":"...","rows":R,
 *      "cols":C,"matrix":[...row-major ints...],"enum_index":N,
 *      "pes":N,"wires":N,"wire_length":N,"schedule_length":N,
 *      "fmax_mhz":F,"area_um2":F,"score":F}}, ...]}
 * The checksum covers the exact serialized bytes of the entries array.
 */

#ifndef STELLAR_SERVE_SNAPSHOT_HPP
#define STELLAR_SERVE_SNAPSHOT_HPP

#include <cstddef>
#include <string>

#include "accel/dse.hpp"

namespace stellar::serve
{

/** The snapshot format version this build reads and writes. */
inline constexpr int kSnapshotVersion = 1;

/** Serialize every resident memo entry. */
std::string serializeSnapshot(const accel::DesignPointMemo &memo);

/**
 * Validate and load a snapshot into `memo`; returns the number of
 * entries restored. FatalError on any violation: wrong kind or
 * version, checksum mismatch, malformed JSON, or a candidate whose
 * transform matrix is not invertible.
 */
std::size_t loadSnapshot(accel::DesignPointMemo &memo,
                         const std::string &text);

/** serializeSnapshot to `path` (atomically: temp file + rename). */
void saveSnapshotFile(const accel::DesignPointMemo &memo,
                      const std::string &path);

/**
 * Load the snapshot at `path` if one exists; a missing file is a cold
 * start (returns 0), anything else invalid raises like loadSnapshot.
 */
std::size_t loadSnapshotFile(accel::DesignPointMemo &memo,
                             const std::string &path);

/**
 * Ways a snapshot can rot on disk, for tests (the corruptMatrixMarket
 * pattern): each mode must be *rejected with a classified error* by
 * loadSnapshot, never half-loaded or crashed on.
 */
enum class SnapshotCorruption
{
    TruncateTail,    //!< partial write: file cut mid-document
    FlipByte,        //!< bit rot inside the entries payload
    VersionBump,     //!< written by a future format version
    ChecksumClobber, //!< checksum field no longer matches the payload
    GarbageHeader,   //!< not our file at all
};

/** Apply one corruption mode to a serialized snapshot. */
std::string corruptSnapshot(std::string text, SnapshotCorruption mode);

} // namespace stellar::serve

#endif // STELLAR_SERVE_SNAPSHOT_HPP
