/**
 * @file
 * The sim/dse command implementations shared by stellar_cli and the
 * serve daemon.
 *
 * Byte-identity of a served response versus the one-shot CLI is the
 * serve correctness contract; the only way to keep that contract
 * trivially true is for both front ends to call the *same* renderer
 * and treat its string as the output. stellar_cli printf()s it to
 * stdout; the daemon ships it inside an `ok` response.
 *
 * Renderers throw on invalid inputs (FatalError) and on budget expiry
 * (TimeoutError out of the watchdogs); the CLI's top-level catch turns
 * that into `error: ...` on stderr, the server classifies it into a
 * structured error response.
 */

#ifndef STELLAR_SERVE_COMMANDS_HPP
#define STELLAR_SERVE_COMMANDS_HPP

#include <string>

#include "accel/dse.hpp"
#include "serve/protocol.hpp"

namespace stellar::serve
{

/** A rendered command: the CLI exit code and its exact stdout bytes. */
struct RenderResult
{
    int exitCode = 0;
    std::string output;

    /** The exploration counters (dse only), for the stats endpoint. */
    accel::DseStats dseStats;
};

/**
 * `stellar_cli sim`: sweep a cycle simulator over its workload suite
 * through sim::runMany. Synthesis goes through workloads::Cache, so a
 * warm daemon skips it; output is byte-identical warm or cold.
 * FatalError on an unknown workload.
 */
RenderResult renderSim(const SimRequest &request);

/**
 * `stellar_cli dse`: explore matmul dataflows at the requested dim.
 * When `memo` is non-null every scored candidate round-trips through
 * the cross-call design-point memo (rankings byte-identical warm or
 * cold). Exit code 1 when nothing was evaluated, as the CLI does.
 */
RenderResult renderDse(const DseRequest &request,
                       accel::DesignPointMemo *memo = nullptr);

/** The DseOptions a DseRequest maps to (exposed for differential
 *  tests that call exploreDataflows directly). */
accel::DseOptions dseOptionsFor(const DseRequest &request,
                                accel::DesignPointMemo *memo);

} // namespace stellar::serve

#endif // STELLAR_SERVE_COMMANDS_HPP
