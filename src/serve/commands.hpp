/**
 * @file
 * The sim/dse command implementations shared by stellar_cli and the
 * serve daemon.
 *
 * Byte-identity of a served response versus the one-shot CLI is the
 * serve correctness contract; the only way to keep that contract
 * trivially true is for both front ends to call the *same* renderer
 * and treat its string as the output. stellar_cli printf()s it to
 * stdout; the daemon ships it inside an `ok` response.
 *
 * Renderers throw on invalid inputs (FatalError) and on budget expiry
 * (TimeoutError out of the watchdogs); the CLI's top-level catch turns
 * that into `error: ...` on stderr, the server classifies it into a
 * structured error response.
 */

#ifndef STELLAR_SERVE_COMMANDS_HPP
#define STELLAR_SERVE_COMMANDS_HPP

#include <string>
#include <vector>

#include "accel/dse.hpp"
#include "accel/records.hpp"
#include "serve/protocol.hpp"

namespace stellar::serve
{

/** A rendered command: the CLI exit code and its exact stdout bytes. */
struct RenderResult
{
    int exitCode = 0;
    std::string output;

    /** The exploration counters (dse only), for the stats endpoint. */
    accel::DseStats dseStats;
};

/**
 * `stellar_cli sim`: sweep a cycle simulator over its workload suite
 * through sim::runMany. Synthesis goes through workloads::Cache, so a
 * warm daemon skips it; output is byte-identical warm or cold.
 * FatalError on an unknown workload.
 */
RenderResult renderSim(const SimRequest &request);

/**
 * `stellar_cli dse`: explore matmul dataflows at the requested dim.
 * When `memo` is non-null every scored candidate round-trips through
 * the cross-call design-point memo (rankings byte-identical warm or
 * cold). Exit code 1 when nothing was evaluated, as the CLI does.
 */
RenderResult renderDse(const DseRequest &request,
                       accel::DesignPointMemo *memo = nullptr);

/** The DseOptions a DseRequest maps to (exposed for differential
 *  tests that call exploreDataflows directly). */
accel::DseOptions dseOptionsFor(const DseRequest &request,
                                accel::DesignPointMemo *memo);

/**
 * `stellar_cli dse --shard i/N --emit-records FILE`: scan one shard of
 * the candidate space and write its records file instead of a ranking.
 * Sharding is an analytic-tier transport, so the request must have the
 * streamed analytic tier on (`analyticTopK > 0`, `stream`, no legacy
 * prepass) — anything else is a FatalError before any work runs.
 */
struct ShardScanRequest
{
    DseRequest dse;
    std::int64_t shardIndex = 0;
    std::int64_t shardCount = 1;
    std::string outPath;
};

RenderResult renderShardScan(const ShardScanRequest &request);

/**
 * `stellar_cli merge FILE...`: fold shard records files into the
 * single-process ranking + stats report (byte-identical to the
 * `stellar_cli dse` run over the whole space, timings excepted).
 * Exit code 1 when nothing was evaluated, as renderDse does.
 */
struct MergeRequest
{
    std::vector<std::string> inputs;
    std::size_t threads = 0;
    std::int64_t stepBudget = 0;
    std::int64_t timeBudgetMillis = 0;
    bool retryWallClock = false;
    bool failFast = false;
    bool timings = false;
};

RenderResult renderMerge(const MergeRequest &request);

} // namespace stellar::serve

#endif // STELLAR_SERVE_COMMANDS_HPP
