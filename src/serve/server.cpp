#include "serve/server.hpp"

#include <cstdio>
#include <exception>

#include "serve/commands.hpp"
#include "serve/snapshot.hpp"
#include "util/fault_inject.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"
#include "workloads/cache.hpp"

namespace stellar::serve
{

namespace
{

/** Effective watchdog budget under a server-wide cap: a request asking
 *  for 0 (unlimited) or more than the cap gets exactly the cap. */
std::int64_t
clampBudget(std::int64_t requested, std::int64_t cap)
{
    if (cap <= 0)
        return requested;
    if (requested <= 0 || requested > cap)
        return cap;
    return requested;
}

std::string
memoStatsJson(const util::MemoStats &stats)
{
    std::string out = "{";
    out += "\"lookups\":" + std::to_string(stats.lookups);
    out += ",\"hits\":" + std::to_string(stats.hits);
    out += ",\"misses\":" + std::to_string(stats.misses);
    out += ",\"inserts\":" + std::to_string(stats.inserts);
    out += ",\"evictions\":" + std::to_string(stats.evictions);
    out += ",\"bytes\":" + std::to_string(stats.bytes);
    out += ",\"entries\":" + std::to_string(stats.entries);
    out += ",\"spills\":" + std::to_string(stats.spills);
    out += ",\"reloads\":" + std::to_string(stats.reloads);
    out += "}";
    return out;
}

} // namespace

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Response
Server::executeOnce(const Request &request_in)
{
    util::fault::checkpoint("serve.execute");
    Request request = request_in;
    Response response;
    switch (request.command) {
      case Command::Sim: {
        request.sim.stepBudget = clampBudget(request.sim.stepBudget,
                                             options_.maxStepBudget);
        request.sim.timeBudgetMillis =
                clampBudget(request.sim.timeBudgetMillis,
                            options_.maxTimeBudgetMillis);
        RenderResult rendered = renderSim(request.sim);
        response.exitCode = rendered.exitCode;
        response.output = std::move(rendered.output);
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.simRequests++;
        break;
      }
      case Command::Dse: {
        request.dse.stepBudget = clampBudget(request.dse.stepBudget,
                                             options_.maxStepBudget);
        request.dse.timeBudgetMillis =
                clampBudget(request.dse.timeBudgetMillis,
                            options_.maxTimeBudgetMillis);
        RenderResult rendered = renderDse(request.dse, &memo_);
        response.exitCode = rendered.exitCode;
        response.output = std::move(rendered.output);
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.dseRequests++;
        stats_.dseEnumerated += rendered.dseStats.enumerated;
        stats_.dseEvaluated += rendered.dseStats.evaluated;
        stats_.dseFailed += rendered.dseStats.failed;
        stats_.dseCandidateRetries += rendered.dseStats.retried;
        stats_.dseOrbitSkipped += rendered.dseStats.orbitSkipped;
        break;
      }
      case Command::Stats:
        response.output = statsJson();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.statsRequests++;
        }
        break;
      case Command::Shutdown:
        // Idempotent: asking a draining daemon to shut down is `ok`,
        // not an error — the double-shutdown path in the tests.
        requestDrain();
        response.output = "draining\n";
        break;
    }
    return response;
}

Response
Server::execute(const Request &request)
{
    if (!options_.retryWallClock)
        return executeOnce(request);
    try {
        return executeOnce(request);
    } catch (const util::TimeoutError &err) {
        // Only wall-clock expiry can be transient; a step budget
        // counts deterministic work and would fail identically.
        if (!err.isWallClock())
            throw;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.retried++;
        }
        Response response = executeOnce(request); // fresh budget
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.retrySucceeded++;
        return response;
    }
}

void
Server::bumpError(const util::Failure &failure)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.errors++;
    stats_.errorsByKind[std::size_t(failure.kind)]++;
}

std::string
Server::handleRequestText(const std::string &text)
{
    Response response;
    try {
        Request request = parseRequest(text, options_.limits);
        bool is_work = request.command == Command::Sim ||
                       request.command == Command::Dse;
        if (draining() && is_work) {
            // Queued behind a drain: answered, never silently dropped.
            response.status = Status::ShuttingDown;
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.drained++;
        } else {
            response = execute(request);
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.completed++;
        }
    } catch (...) {
        // THE isolation point: any failure anywhere in parse/execute
        // becomes a classified error response; nothing escapes to the
        // worker, so no request input can take the daemon down.
        response.status = Status::Error;
        response.failure = util::classifyException(
                std::current_exception(), "serve.request");
        bumpError(response.failure);
    }
    return serializeResponse(response);
}

void
Server::handleConnection(util::LocalSocket &conn)
{
    if (draining()) {
        Response response;
        response.status = Status::ShuttingDown;
        if (!conn.writeAll(serializeResponse(response))) {
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.writeFailures++;
        }
        // Answered without reading the request: absorb it so the close
        // does not reset the peer under the reply (see drainRead).
        conn.drainRead(options_.limits.maxBytes);
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.drained++;
        return;
    }

    std::string text;
    util::SocketReadStatus status =
            conn.readAll(text, options_.limits.maxBytes);
    std::string reply;
    if (status == util::SocketReadStatus::Eof) {
        reply = handleRequestText(text);
    } else {
        // The request never fully arrived; classify the transport
        // failure directly (every outcome has a non-Unknown kind).
        Response response;
        response.status = Status::Error;
        response.failure.stage = "serve.read";
        switch (status) {
          case util::SocketReadStatus::Overflow:
            response.failure.kind = util::FailureKind::UserSpec;
            response.failure.message =
                    "request exceeds " +
                    std::to_string(options_.limits.maxBytes) + " bytes";
            break;
          case util::SocketReadStatus::Timeout:
            response.failure.kind = util::FailureKind::Timeout;
            response.failure.message =
                    "receive timed out after " +
                    std::to_string(options_.ioTimeoutMillis) +
                    " ms mid-request";
            break;
          default:
            response.failure.kind = util::FailureKind::UserSpec;
            response.failure.message = "socket read error";
            break;
        }
        bumpError(response.failure);
        reply = serializeResponse(response);
    }
    if (!conn.writeAll(reply)) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        stats_.writeFailures++;
    }
    if (status == util::SocketReadStatus::Overflow) {
        // The tail of the oversized request is still unread; absorb it
        // (bounded) so the reply survives the close.
        conn.drainRead(options_.limits.maxBytes);
    }
}

int
Server::serve()
{
    require(!options_.socketPath.empty(),
            "stellar_serve: a socket path is required");
    util::LocalSocket listener =
            util::LocalSocket::listenOn(options_.socketPath);

    if (!options_.snapshotPath.empty()) {
        try {
            std::size_t restored =
                    loadSnapshotFile(memo_, options_.snapshotPath);
            if (restored > 0)
                std::fprintf(stderr,
                             "stellar_serve: warm start: %zu memoized "
                             "design points\n",
                             restored);
        } catch (...) {
            // Never trust warm-start bytes: a corrupt snapshot costs
            // warmth, not correctness and not the process.
            util::Failure failure = util::classifyException(
                    std::current_exception(), "serve.snapshot",
                    options_.snapshotPath);
            std::fprintf(stderr, "stellar_serve: %s; starting cold\n",
                         failure.toString().c_str());
        }
    }

    std::size_t workers = std::max<std::size_t>(1, options_.workers);
    util::ThreadPool pool(workers);
    std::atomic<std::size_t> pending{0};

    while (true) {
        if (!draining() && options_.drainPoll && options_.drainPoll())
            requestDrain();
        if (draining() && pending.load(std::memory_order_acquire) == 0)
            break;
        if (!listener.waitReadable(50))
            continue;
        util::LocalSocket conn = listener.accept();
        if (!conn.valid())
            continue;
        conn.setTimeouts(options_.ioTimeoutMillis);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.accepted++;
        }
        if (draining()) {
            Response response;
            response.status = Status::ShuttingDown;
            if (!conn.writeAll(serializeResponse(response))) {
                std::lock_guard<std::mutex> lock(statsMutex_);
                stats_.writeFailures++;
            }
            // This runs on the accept thread: re-arm a short receive
            // timeout so a slow peer cannot wedge admission while its
            // unsent request is absorbed.
            conn.setTimeouts(50);
            conn.drainRead(options_.limits.maxBytes);
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.drained++;
            continue;
        }
        // Admission control: bounded in-flight work, shed the rest
        // immediately so latency stays bounded under storms.
        if (pending.load(std::memory_order_acquire) >=
            workers + options_.maxQueueDepth) {
            Response response;
            response.status = Status::Overloaded;
            response.retryAfterMillis = options_.retryAfterMillis;
            if (!conn.writeAll(serializeResponse(response))) {
                std::lock_guard<std::mutex> lock(statsMutex_);
                stats_.writeFailures++;
            }
            conn.setTimeouts(50); // accept thread: bounded absorb
            conn.drainRead(options_.limits.maxBytes);
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.shed++;
            continue;
        }
        pending.fetch_add(1, std::memory_order_acq_rel);
        auto shared =
                std::make_shared<util::LocalSocket>(std::move(conn));
        pool.submit([this, shared, &pending] {
            try {
                handleConnection(*shared);
            } catch (...) {
                // handleConnection classifies everything itself; this
                // is belt-and-braces so `pending` can never leak.
            }
            pending.fetch_sub(1, std::memory_order_acq_rel);
        });
    }

    if (!options_.snapshotPath.empty()) {
        try {
            saveSnapshotFile(memo_, options_.snapshotPath);
        } catch (...) {
            util::Failure failure = util::classifyException(
                    std::current_exception(), "serve.snapshot",
                    options_.snapshotPath);
            std::fprintf(stderr, "stellar_serve: %s; snapshot skipped\n",
                         failure.toString().c_str());
        }
    }
    return 0;
}

ServeStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

std::string
Server::statsJson() const
{
    ServeStats s = stats();
    std::string out = "{\"serve\":{";
    out += "\"accepted\":" + std::to_string(s.accepted);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"shed\":" + std::to_string(s.shed);
    out += ",\"drained\":" + std::to_string(s.drained);
    out += ",\"write_failures\":" + std::to_string(s.writeFailures);
    out += ",\"sim_requests\":" + std::to_string(s.simRequests);
    out += ",\"dse_requests\":" + std::to_string(s.dseRequests);
    out += ",\"stats_requests\":" + std::to_string(s.statsRequests);
    out += ",\"retried\":" + std::to_string(s.retried);
    out += ",\"retry_succeeded\":" + std::to_string(s.retrySucceeded);
    out += ",\"errors_by_kind\":{";
    for (std::size_t k = 0; k < util::kFailureKindCount; k++) {
        if (k != 0)
            out += ",";
        out += util::json::quote(
                       util::failureKindName(util::FailureKind(k))) +
               ":" + std::to_string(s.errorsByKind[k]);
    }
    out += "}";
    out += ",\"dse\":{\"enumerated\":" + std::to_string(s.dseEnumerated);
    out += ",\"evaluated\":" + std::to_string(s.dseEvaluated);
    out += ",\"failed\":" + std::to_string(s.dseFailed);
    out += ",\"candidate_retries\":" +
           std::to_string(s.dseCandidateRetries);
    out += ",\"orbit_skipped\":" + std::to_string(s.dseOrbitSkipped);
    out += "}}";
    out += ",\"design_memo\":" + memoStatsJson(memo_.stats());
    out += ",\"workload_cache\":" +
           workloads::cacheStatsJson(
                   workloads::Cache::global().stats());
    out += "}";
    return out;
}

} // namespace stellar::serve
