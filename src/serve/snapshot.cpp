#include "serve/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/memo.hpp"

namespace stellar::serve
{

namespace
{

namespace json = util::json;

[[noreturn]] void
fail(const std::string &what)
{
    throw FatalError("design-memo snapshot: " + what);
}

std::string
checksumHex(const std::string &payload)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)util::fnv1a(payload));
    return buffer;
}

std::string
serializeEntries(const accel::DesignPointMemo &memo)
{
    std::string out = "[";
    bool first = true;
    memo.forEach([&](const std::string &key,
                     const accel::DseCandidate &candidate) {
        if (!first)
            out += ",";
        first = false;
        const IntMatrix &m = candidate.transform.matrix();
        out += "{\"key\":" + json::quote(key);
        out += ",\"candidate\":{\"name\":" +
               json::quote(candidate.transform.name());
        out += ",\"rows\":" + std::to_string(m.rows());
        out += ",\"cols\":" + std::to_string(m.cols());
        out += ",\"matrix\":[";
        for (int r = 0; r < m.rows(); r++)
            for (int c = 0; c < m.cols(); c++) {
                if (r != 0 || c != 0)
                    out += ",";
                out += std::to_string(m.at(r, c));
            }
        out += "]";
        out += ",\"enum_index\":" + std::to_string(candidate.enumIndex);
        out += ",\"pes\":" + std::to_string(candidate.pes);
        out += ",\"wires\":" + std::to_string(candidate.wires);
        out += ",\"wire_length\":" + std::to_string(candidate.wireLength);
        out += ",\"schedule_length\":" +
               std::to_string(candidate.scheduleLength);
        out += ",\"fmax_mhz\":" + json::serializeDouble(candidate.fmaxMhz);
        out += ",\"area_um2\":" + json::serializeDouble(candidate.areaUm2);
        out += ",\"score\":" + json::serializeDouble(candidate.score);
        out += "}}";
    });
    out += "]";
    return out;
}

const json::Value &
member(const json::Value &object, const std::string &key)
{
    const json::Value *value = object.find(key);
    if (value == nullptr)
        fail("missing field '" + key + "'");
    return *value;
}

std::int64_t
intMember(const json::Value &object, const std::string &key)
{
    return json::toInt64(member(object, key),
                         "design-memo snapshot: '" + key + "'");
}

double
numberMember(const json::Value &object, const std::string &key)
{
    const json::Value &value = member(object, key);
    if (!value.isNumber())
        fail("'" + key + "' must be a number");
    return value.number;
}

} // namespace

std::string
serializeSnapshot(const accel::DesignPointMemo &memo)
{
    std::string entries = serializeEntries(memo);
    std::string out = "{\"version\":" + std::to_string(kSnapshotVersion);
    out += ",\"kind\":\"stellar-design-memo\"";
    out += ",\"checksum\":" + json::quote(checksumHex(entries));
    out += ",\"entries\":" + entries;
    out += "}";
    return out;
}

std::size_t
loadSnapshot(accel::DesignPointMemo &memo, const std::string &text)
{
    json::Value root = json::parse(text, "design-memo snapshot");
    if (!root.isObject())
        fail("snapshot must be an object");
    const json::Value *kind = root.find("kind");
    if (kind == nullptr || !kind->isString() ||
        kind->string != "stellar-design-memo")
        fail("not a stellar-design-memo file");
    std::int64_t version = intMember(root, "version");
    if (version != kSnapshotVersion)
        fail("unsupported version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(kSnapshotVersion) + ")");

    // Re-serialize the parsed entries and compare checksums: any byte
    // that changed a value anywhere in the payload is caught here,
    // before a single entry is admitted to the memo.
    const json::Value &entries = member(root, "entries");
    if (!entries.isArray())
        fail("'entries' must be an array");
    std::string canonical = json::serialize(entries);
    const json::Value &checksum = member(root, "checksum");
    if (!checksum.isString() ||
        checksum.string != checksumHex(canonical))
        fail("checksum mismatch (file damaged or hand-edited)");

    // Validate every entry fully before inserting any, so a bad entry
    // can never leave the memo half-loaded.
    std::vector<std::pair<std::string, accel::DseCandidate>> loaded;
    loaded.reserve(entries.array.size());
    for (const json::Value &entry : entries.array) {
        if (!entry.isObject())
            fail("entry must be an object");
        const json::Value &key = member(entry, "key");
        if (!key.isString() || key.string.empty())
            fail("entry key must be a nonempty string");
        const json::Value &body = member(entry, "candidate");
        if (!body.isObject())
            fail("'candidate' must be an object");
        int rows = int(intMember(body, "rows"));
        int cols = int(intMember(body, "cols"));
        if (rows <= 0 || cols <= 0 || rows > 16 || cols > 16)
            fail("implausible matrix shape " + std::to_string(rows) +
                 "x" + std::to_string(cols));
        const json::Value &cells = member(body, "matrix");
        if (!cells.isArray() ||
            cells.array.size() != std::size_t(rows) * std::size_t(cols))
            fail("matrix must carry rows*cols cells");
        IntMatrix matrix(rows, cols);
        std::size_t at = 0;
        for (int r = 0; r < rows; r++)
            for (int c = 0; c < cols; c++)
                matrix.at(r, c) = json::toInt64(
                        cells.array[at++],
                        "design-memo snapshot: matrix cell");
        const json::Value &name = member(body, "name");
        if (!name.isString())
            fail("'name' must be a string");
        // The transform constructor re-validates invertibility; a
        // corrupted matrix dies here as a classified error.
        accel::DseCandidate candidate;
        candidate.transform = dataflow::SpaceTimeTransform(
                std::move(matrix), name.string);
        candidate.enumIndex =
                std::size_t(intMember(body, "enum_index"));
        candidate.pes = intMember(body, "pes");
        candidate.wires = intMember(body, "wires");
        candidate.wireLength = intMember(body, "wire_length");
        candidate.scheduleLength = intMember(body, "schedule_length");
        candidate.fmaxMhz = numberMember(body, "fmax_mhz");
        candidate.areaUm2 = numberMember(body, "area_um2");
        candidate.score = numberMember(body, "score");
        loaded.emplace_back(key.string, std::move(candidate));
    }
    for (auto &[entry_key, candidate] : loaded)
        memo.insert(entry_key, std::move(candidate));
    return loaded.size();
}

void
saveSnapshotFile(const accel::DesignPointMemo &memo,
                 const std::string &path)
{
    std::string text = serializeSnapshot(memo);
    std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            fail("cannot write " + temp);
        out << text;
        if (!out.flush())
            fail("short write to " + temp);
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fail("cannot rename " + temp + " to " + path);
}

std::size_t
loadSnapshotFile(accel::DesignPointMemo &memo, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0; // no snapshot yet: a normal cold start
    std::ostringstream text;
    text << in.rdbuf();
    return loadSnapshot(memo, text.str());
}

std::string
corruptSnapshot(std::string text, SnapshotCorruption mode)
{
    switch (mode) {
      case SnapshotCorruption::TruncateTail:
        text.resize(text.size() / 2);
        return text;
      case SnapshotCorruption::FlipByte: {
        // Flip a digit inside the entries payload so the document
        // still parses but the checksum no longer matches.
        std::size_t at = text.find("\"entries\":");
        for (at = at == std::string::npos ? 0 : at; at < text.size();
             at++) {
            if (text[at] >= '0' && text[at] <= '8') {
                text[at] = char(text[at] + 1);
                return text;
            }
        }
        return text;
      }
      case SnapshotCorruption::VersionBump: {
        std::size_t at = text.find("\"version\":");
        if (at != std::string::npos)
            text.replace(at, 10, "\"version\":9");
        return text;
      }
      case SnapshotCorruption::ChecksumClobber: {
        std::size_t at = text.find("\"checksum\":\"");
        if (at != std::string::npos)
            text[at + 12] = text[at + 12] == '0' ? '1' : '0';
        return text;
      }
      case SnapshotCorruption::GarbageHeader:
        return "\x7f" "ELF not json at all" + text;
    }
    return text;
}

} // namespace stellar::serve
