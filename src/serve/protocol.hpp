/**
 * @file
 * The stellar_serve wire protocol.
 *
 * One JSON request per connection, mirroring the `stellar_cli sim|dse`
 * flags field-for-field, and one JSON response. Requests come from an
 * untrusted peer, so parsing is a validation gauntlet: the shared
 * util::json parser enforces syntax with byte offsets, and this layer
 * enforces the schema — known commands, known fields (unknown fields
 * are *rejected*, not ignored: a typoed field silently ignored is a
 * sweep run with the wrong budget), integral ranges, and protocol-level
 * caps on dimensions and thread counts so a hostile request cannot ask
 * for an astronomically large exploration outright.
 *
 * Every violation raises FatalError, which the server classifies as a
 * UserSpec failure and returns as a structured `error` response.
 *
 * Requests:
 *   {"command":"sim","workload":"scnn","threads":2,
 *    "step_budget":0,"time_budget_ms":0}
 *   {"command":"dse","dim":8,"threads":2,"topk":10,"max_pes":0,
 *    "prepass":0,"analytic_top_k":0,"max_hop":2,"max_coeff":1,
 *    "enum_limit":4096,"step_budget":0,"time_budget_ms":0,
 *    "retry_wall_clock":false,"fail_fast":false,"timings":false}
 *   {"command":"stats"}
 *   {"command":"shutdown"}
 *
 * Responses:
 *   {"status":"ok","exit_code":0,"output":"..."}
 *   {"status":"error","failure":{"kind":"user-spec","stage":"...",
 *    "candidate":"...","message":"..."}}
 *   {"status":"overloaded","retry_after_ms":50}
 *   {"status":"shutting_down"}
 */

#ifndef STELLAR_SERVE_PROTOCOL_HPP
#define STELLAR_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <string>

#include "util/failure.hpp"

namespace stellar::serve
{

enum class Command
{
    Sim,
    Dse,
    Stats,
    Shutdown,
};

/** Mirror of `stellar_cli sim` flags. */
struct SimRequest
{
    std::string workload = "scnn";
    std::size_t threads = 1;
    std::int64_t stepBudget = 0;
    std::int64_t timeBudgetMillis = 0;
};

/** Mirror of `stellar_cli dse` flags. */
struct DseRequest
{
    int dim = 8;
    std::size_t threads = 1;
    std::size_t topK = 10;
    std::int64_t maxPes = 0;
    std::size_t prepass = 0;

    /** DseOptions::analyticTopK: closed-form tier, 0 = disabled. */
    std::size_t analyticTopK = 0;

    /** Enumeration controls (EnumerateOptions defaults): hop budget,
     *  symmetric coefficient range, and the candidate cap. These are
     *  what open the hop-3 spaces the analytic tier exists for. */
    int maxHop = 2;
    int maxCoeff = 1;
    std::size_t enumLimit = 4096;
    std::int64_t stepBudget = 0;
    std::int64_t timeBudgetMillis = 0;
    bool retryWallClock = false;
    bool failFast = false;

    /** Include the wall-time line of dseStatsReport (the CLI default);
     *  served requests default to false so responses are deterministic
     *  and byte-comparable. Matches `stellar_cli dse --no-timings`. */
    bool timings = false;

    /** DseOptions::streamEnumeration: fuse the coefficient scan into
     *  the analytic tier (byte-identical output; false forces the
     *  materialized path, matching `stellar_cli dse --no-stream`). */
    bool stream = true;
};

/** One parsed, validated request. */
struct Request
{
    Command command = Command::Sim;
    SimRequest sim;
    DseRequest dse;
};

/**
 * Protocol-level caps applied at parse time; anything beyond them is a
 * UserSpec rejection before a single cycle of work is admitted. These
 * bound what a request may *ask*; the server separately clamps watchdog
 * budgets (ServeOptions) to bound what an admitted request may *spend*.
 */
struct RequestLimits
{
    std::size_t maxBytes = 1 << 20; //!< max request size on the wire
    int maxDim = 64;
    std::size_t maxThreads = 64;
    std::size_t maxTopK = 4096;

    /** Analytic-tier survivor cap: the tier itself is cheap, but every
     *  survivor is a full elaboration, so this bounds admitted work the
     *  same way maxTopK does. */
    std::size_t maxAnalyticTopK = 1 << 16;

    /** Enumeration caps: hop budget, coefficient magnitude, and the
     *  enumerated-candidate ceiling a request may ask for. */
    int maxHop = 6;
    int maxCoeff = 4;
    std::size_t maxEnumerated = 1 << 20;

    /** Cap on the coefficient-code space a dse request may scan
     *  ((2*maxCoeff+1)^9 for the 3-iterator matmul spec). The orbit-
     *  canonical scan walks ~1e8 codes in seconds, but admission stays
     *  explicit: a request whose space exceeds this is rejected at
     *  parse time instead of burning a worker. */
    std::int64_t maxScanCodes = 100000000;
};

/** Parse + validate one request. FatalError on any violation. */
Request parseRequest(const std::string &text,
                     const RequestLimits &limits = {});

/** Response statuses (the closed set the soak invariant checks). */
enum class Status
{
    Ok,
    Error,
    Overloaded,
    ShuttingDown,
};

const char *statusName(Status status);

struct Response
{
    Status status = Status::Ok;
    int exitCode = 0;          //!< ok: what the CLI would have exited
    std::string output;        //!< ok: byte-identical CLI stdout
    util::Failure failure;     //!< error: the classified cause
    std::int64_t retryAfterMillis = 0; //!< overloaded: backoff hint
};

std::string serializeResponse(const Response &response);

/** Parse a response (clients, tests, and the soak validator).
 *  FatalError on malformed text or an unknown status/kind. */
Response parseResponse(const std::string &text);

} // namespace stellar::serve

#endif // STELLAR_SERVE_PROTOCOL_HPP
