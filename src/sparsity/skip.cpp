#include "sparsity/skip.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace stellar::sparsity
{

SkipSpec
skipWhenZero(int index, int tensor,
             const std::vector<func::IndexExpr> &coords)
{
    SkipSpec skip;
    skip.skippedIndices = {index};
    skip.condition.kind = SkipCondition::Kind::TensorZero;
    skip.condition.tensor = tensor;
    skip.condition.coords = coords;
    return skip;
}

SkipSpec
skipWhenNotEqual(int index_a, int index_b)
{
    SkipSpec skip;
    skip.skippedIndices = {index_a, index_b};
    skip.condition.kind = SkipCondition::Kind::IndexRelation;
    skip.condition.lhsIndex = index_a;
    skip.condition.rhsIndex = index_b;
    return skip;
}

SkipSpec
skipFiberZero(int index, int tensor,
              const std::vector<func::IndexExpr> &fixed_coords,
              int wildcard_axis)
{
    SkipSpec skip;
    skip.skippedIndices = {index};
    skip.condition.kind = SkipCondition::Kind::FiberZero;
    skip.condition.tensor = tensor;
    skip.condition.coords = fixed_coords;
    skip.condition.wildcardAxis = wildcard_axis;
    return skip;
}

SkipSpec
optimisticSkip(int index, int tensor,
               const std::vector<func::IndexExpr> &coords, int bundle_size)
{
    SkipSpec skip = skipWhenZero(index, tensor, coords);
    skip.optimistic = true;
    skip.bundleSize = bundle_size;
    return skip;
}

std::set<int>
SparsitySpec::skippedIndices() const
{
    std::set<int> out;
    for (const auto &skip : skips_)
        if (!skip.optimistic)
            out.insert(skip.skippedIndices.begin(),
                       skip.skippedIndices.end());
    return out;
}

std::set<int>
SparsitySpec::optimisticIndices() const
{
    std::set<int> out;
    for (const auto &skip : skips_)
        if (skip.optimistic)
            out.insert(skip.skippedIndices.begin(),
                       skip.skippedIndices.end());
    return out;
}

std::set<int>
SparsitySpec::expansionDeps(int index) const
{
    std::set<int> deps;
    for (const auto &skip : skips_) {
        if (!skip.skippedIndices.count(index))
            continue;
        switch (skip.condition.kind) {
          case SkipCondition::Kind::TensorZero:
            // Every iterator in the condition's coordinates other than the
            // skipped one parameterizes the expansion function.
            for (const auto &coord : skip.condition.coords)
                if (coord.isAffine())
                    for (const auto &[id, coeff] : coord.coeffs)
                        if (coeff != 0 && id != index)
                            deps.insert(id);
            break;
          case SkipCondition::Kind::IndexRelation:
            // Skipping i and k when i != k ties each to the other.
            if (skip.condition.lhsIndex == index)
                deps.insert(skip.condition.rhsIndex);
            else if (skip.condition.rhsIndex == index)
                deps.insert(skip.condition.lhsIndex);
            break;
          case SkipCondition::Kind::FiberZero:
            // A whole-fiber condition depends on the coordinates that pick
            // the fiber; they are exactly the non-wildcard coords.
            for (const auto &coord : skip.condition.coords)
                if (coord.isAffine())
                    for (const auto &[id, coeff] : coord.coeffs)
                        if (coeff != 0 && id != index)
                            deps.insert(id);
            break;
        }
    }
    return deps;
}

bool
SparsitySpec::isSkipped(int index) const
{
    for (const auto &skip : skips_)
        if (skip.skippedIndices.count(index))
            return true;
    return false;
}

bool
SparsitySpec::isOptimistic(int index) const
{
    for (const auto &skip : skips_)
        if (skip.optimistic && skip.skippedIndices.count(index))
            return true;
    return false;
}

int
SparsitySpec::bundleSizeOf(int index) const
{
    int size = 1;
    for (const auto &skip : skips_)
        if (skip.optimistic && skip.skippedIndices.count(index))
            size = std::max(size, skip.bundleSize);
    return size;
}

std::string
SparsitySpec::toString(const func::FunctionalSpec &spec) const
{
    std::ostringstream os;
    for (const auto &skip : skips_) {
        os << (skip.optimistic ? "OptimisticSkip " : "Skip ");
        bool first = true;
        for (int id : skip.skippedIndices) {
            if (!first)
                os << " and ";
            os << spec.indexNames()[std::size_t(id)];
            first = false;
        }
        os << " when ";
        const auto &cond = skip.condition;
        switch (cond.kind) {
          case SkipCondition::Kind::TensorZero: {
            os << spec.tensorNames()[std::size_t(cond.tensor)] << "(";
            for (std::size_t i = 0; i < cond.coords.size(); i++) {
                if (i > 0)
                    os << ", ";
                os << cond.coords[i].toString(spec.indexNames());
            }
            os << ") == 0";
            break;
          }
          case SkipCondition::Kind::IndexRelation:
            os << spec.indexNames()[std::size_t(cond.lhsIndex)] << " != "
               << spec.indexNames()[std::size_t(cond.rhsIndex)];
            break;
          case SkipCondition::Kind::FiberZero: {
            os << spec.tensorNames()[std::size_t(cond.tensor)] << "(";
            int rank = spec.tensorRank(cond.tensor);
            std::size_t fixed = 0;
            for (int axis = 0; axis < rank; axis++) {
                if (axis > 0)
                    os << ", ";
                if (axis == cond.wildcardAxis)
                    os << "->";
                else if (fixed < cond.coords.size())
                    os << cond.coords[fixed++].toString(spec.indexNames());
            }
            os << ") == 0";
            break;
          }
        }
        if (skip.optimistic)
            os << " [bundle=" << skip.bundleSize << "]";
        os << "\n";
    }
    return os.str();
}

} // namespace stellar::sparsity
