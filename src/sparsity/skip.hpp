/**
 * @file
 * Sparse-data-structure specifications (Section III-C).
 *
 * Sparsity is specified by declaring which tensor iterators may be
 * *skipped* and under which conditions (Listing 2). These declarations say
 * nothing about how tensors are stored in memory (that is Section III-E /
 * src/mem); they only drive the spatial-array connection pruning of
 * Section IV-B.
 *
 * Skipping an iterator makes its *expanded* coordinate a symbolic function
 * f of the compressed coordinate and the iterators its condition depends
 * on (e.g. for "Skip j when B(k, j) == 0", j_expanded = f(k, j_comp)).
 * The pruning pass in src/core uses the dependency sets computed here.
 */

#ifndef STELLAR_SPARSITY_SKIP_HPP
#define STELLAR_SPARSITY_SKIP_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "func/spec.hpp"

namespace stellar::sparsity
{

/** The condition under which iterations are skipped. */
struct SkipCondition
{
    enum class Kind
    {
        TensorZero,      //!< skip when tensor(coords) == 0 (CSR/CSC style)
        IndexRelation,   //!< skip when e.g. i != k (diagonal matrices)
        FiberZero,       //!< skip when a whole fiber is zero: A(i, ->) == 0
    };

    Kind kind = Kind::TensorZero;

    /** TensorZero / FiberZero: the tensor whose zeros trigger skipping. */
    int tensor = -1;

    /** TensorZero: the access coordinates; FiberZero: the fixed coords. */
    std::vector<func::IndexExpr> coords;

    /** IndexRelation: skip when lhsIndex != rhsIndex. */
    int lhsIndex = -1;
    int rhsIndex = -1;

    /** FiberZero: the axis position that is wildcarded ("->"). */
    int wildcardAxis = -1;
};

/**
 * One Skip / OptimisticSkip declaration. `optimistic` corresponds to the
 * paper's OptimisticSkip keyword: PE-to-PE connections are retained but
 * widened into bundles of `bundleSize` potentially-useful values (the A100
 * 2:4 structured-sparsity case, Fig 5).
 */
struct SkipSpec
{
    std::set<int> skippedIndices;
    SkipCondition condition;
    bool optimistic = false;
    int bundleSize = 1;
};

/** Convenience builders mirroring the paper's Listing 2. */
SkipSpec skipWhenZero(int index, int tensor,
                      const std::vector<func::IndexExpr> &coords);
SkipSpec skipWhenNotEqual(int index_a, int index_b);
SkipSpec skipFiberZero(int index, int tensor,
                       const std::vector<func::IndexExpr> &fixed_coords,
                       int wildcard_axis);
SkipSpec optimisticSkip(int index, int tensor,
                        const std::vector<func::IndexExpr> &coords,
                        int bundle_size);

/** The full sparsity specification for an accelerator. */
class SparsitySpec
{
  public:
    void add(const SkipSpec &skip) { skips_.push_back(skip); }

    const std::vector<SkipSpec> &skips() const { return skips_; }
    bool empty() const { return skips_.empty(); }

    /** All iterators skipped non-optimistically. */
    std::set<int> skippedIndices() const;

    /** All iterators skipped optimistically. */
    std::set<int> optimisticIndices() const;

    /**
     * The expansion-dependency set of a skipped iterator s: the iterators
     * that parameterize s's compressed-to-expanded mapping. For
     * "Skip j when B(k, j) == 0" this is {k}: each value of k selects a
     * different row of B, hence a different expansion function f(k, *).
     */
    std::set<int> expansionDeps(int index) const;

    /** True when the iterator is skipped (optimistically or not). */
    bool isSkipped(int index) const;
    bool isOptimistic(int index) const;

    /** Largest bundle size among optimistic skips of this iterator. */
    int bundleSizeOf(int index) const;

    std::string toString(const func::FunctionalSpec &spec) const;

  private:
    std::vector<SkipSpec> skips_;
};

} // namespace stellar::sparsity

#endif // STELLAR_SPARSITY_SKIP_HPP
